"""Content-addressed on-disk cache for expensive evaluation artifacts.

The sweep re-derives the same intermediate products again and again: the
same binary is traced for the native/binrec/wytiwyg measurements, and a
re-run after an unrelated change repeats every lift.  :class:`EvalCache`
stores pickled :class:`~repro.emu.tracer.TraceSet`s and recompiled
results keyed by a digest of the *content* that determines them — the
image's serialized form, the traced inputs, and an options tag — so a
hit is valid by construction and the cache never needs manual
invalidation when binaries change.

Writes are atomic (temp file + rename), which makes the cache safe to
share between the parallel sweep's worker processes.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from pathlib import Path

from .. import obs
from ..binary.image import BinaryImage

log = logging.getLogger("repro.evaluation.cache")

#: Bump to orphan every existing entry after a format change.
_FORMAT = "v1"


class EvalCache:
    """Pickle store addressed by (image content, inputs, options)."""

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get("REPRO_EVAL_CACHE", ".eval_cache")
        self.root = Path(root)

    @staticmethod
    def key(image: BinaryImage, inputs, options: str = "") -> str:
        """Digest of everything that determines a derived artifact."""
        h = hashlib.sha256()
        h.update(image.to_json().encode())
        h.update(repr(inputs).encode())
        h.update(options.encode())
        h.update(_FORMAT.encode())
        return h.hexdigest()[:32]

    @staticmethod
    def module_key(module, inputs=None, options: str = "") -> str:
        """Digest for artifacts derived from an IR module.

        Reuses the replay engine's content fingerprint
        (:func:`~repro.replay.module_fingerprint`), so a module the
        pipeline validated and one reloaded from disk with identical
        content share cache entries.
        """
        from ..replay import module_fingerprint
        h = hashlib.sha256()
        h.update(module_fingerprint(module).encode())
        h.update(repr(inputs).encode())
        h.update(options.encode())
        h.update(_FORMAT.encode())
        return h.hexdigest()[:32]

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    def get(self, kind: str, key: str):
        """Load a cached artifact, or None on miss/corruption.

        Corruption (a truncated or ununpicklable entry, e.g. from an
        interrupted writer on a filesystem without atomic rename) falls
        through to recompute like a miss, but is reported: a structured
        warning naming the entry, plus the ``evalcache.corrupt``
        counter, so it never hides as an ordinary miss.
        """
        path = self._path(kind, key)
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
        except FileNotFoundError:
            obs.count("evalcache.miss")
            return None
        except Exception as exc:
            log.warning(
                "corrupt eval-cache entry kind=%s key=%s path=%s "
                "error=%s: %s — recomputing",
                kind, key, path, type(exc).__name__, exc)
            obs.count("evalcache.corrupt")
            return None
        obs.count("evalcache.hit")
        return obj

    def put(self, kind: str, key: str, obj) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def memo(self, kind: str, key: str, compute):
        """Return the cached artifact for ``key``, computing on miss."""
        obj = self.get(kind, key)
        if obj is None:
            obj = compute()
            self.put(kind, key, obj)
        return obj
