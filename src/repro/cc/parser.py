"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from ..errors import CompileError
from . import ast_nodes as ast
from .ctypes import (
    CHAR,
    CType,
    FuncType,
    INT,
    ArrayType,
    IntType,
    PtrType,
    SHORT,
    StructType,
    VOID,
)
from .lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

#: Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # -- token plumbing ------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tok
        self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self.tok.text!r}",
                self.tok.line)
        return tok

    def expect_op(self, text: str) -> Token:
        return self.expect("op", text)

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.tok
        if tok.kind != "keyword":
            return False
        return tok.text in ("int", "char", "short", "void", "struct",
                            "unsigned", "const")

    def parse_base_type(self) -> CType:
        self.accept("keyword", "const")
        unsigned = bool(self.accept("keyword", "unsigned"))
        if self.accept("keyword", "int"):
            return IntType(4, signed=not unsigned)
        if self.accept("keyword", "char"):
            return IntType(1, signed=not unsigned)
        if self.accept("keyword", "short"):
            self.accept("keyword", "int")
            return IntType(2, signed=not unsigned)
        if unsigned:
            return IntType(4, signed=False)
        if self.accept("keyword", "void"):
            return VOID
        if self.accept("keyword", "struct"):
            name = self.expect("ident").text
            struct = self.structs.get(name)
            if struct is None:
                struct = StructType(name)
                self.structs[name] = struct
            if self.tok.kind == "op" and self.tok.text == "{":
                self.advance()
                if struct.complete:
                    raise CompileError(f"redefinition of struct {name}",
                                       self.tok.line)
                fields: list[tuple[str, CType]] = []
                while not self.accept("op", "}"):
                    base = self.parse_base_type()
                    while True:
                        fname, ftype = self.parse_declarator(base)
                        fields.append((fname, ftype))
                        if not self.accept("op", ","):
                            break
                    self.expect_op(";")
                struct.lay_out(fields)
            return struct
        raise CompileError(f"expected type, found {self.tok.text!r}",
                           self.tok.line)

    def parse_declarator(self, base: CType) -> tuple[str, CType]:
        """Parse pointers, name and suffixes. Returns (name, type).

        Supports ``int *p``, ``int a[4][4]``, ``int (*fp)(int, int)`` and
        plain function declarators ``int f(int x)`` (the caller decides
        whether a body follows).
        """
        ctype = base
        while self.accept("op", "*"):
            self.accept("keyword", "const")
            ctype = PtrType(ctype)
        if self.accept("op", "("):
            # Parenthesized declarator: "(*name)" or "(*name[N])" --
            # a function pointer or an array of function pointers.
            self.expect_op("*")
            name = self.expect("ident").text
            fp_dims: list[int] = []
            while self.tok.kind == "op" and self.tok.text == "[":
                self.advance()
                fp_dims.append(self.parse_const_int())
                self.expect_op("]")
            self.expect_op(")")
            params, vararg = self.parse_param_types()
            ctype = PtrType(FuncType(ctype, tuple(params), vararg))
            for dim in reversed(fp_dims):
                ctype = ArrayType(ctype, dim)
            return name, ctype
        name = self.expect("ident").text
        dims: list[int] = []
        while self.tok.kind == "op" and self.tok.text == "[":
            self.advance()
            if self.tok.kind == "op" and self.tok.text == "]":
                dims.append(-1)  # size from initializer
                self.advance()
            else:
                dims.append(self.parse_const_int())
                self.expect_op("]")
        for dim in reversed(dims):
            ctype = ArrayType(ctype, dim)
        return name, ctype

    def parse_param_types(self) -> tuple[list[CType], bool]:
        self.expect_op("(")
        params: list[CType] = []
        vararg = False
        if self.accept("op", ")"):
            return params, vararg
        if self.tok.kind == "keyword" and self.tok.text == "void" \
                and self.peek().text == ")":
            self.advance()
            self.expect_op(")")
            return params, vararg
        while True:
            if self.accept("op", "..."):
                vararg = True
                break
            base = self.parse_base_type()
            ctype = base
            while self.accept("op", "*"):
                ctype = PtrType(ctype)
            self.accept("ident")  # optional parameter name
            params.append(ctype)
            if not self.accept("op", ","):
                break
        self.expect_op(")")
        return params, vararg

    def parse_const_int(self) -> int:
        expr = self.parse_ternary()
        value = _const_eval(expr)
        if value is None:
            raise CompileError("expected constant expression",
                               self.tok.line)
        return value

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            rhs = self.parse_assignment()
            expr = ast.Binary(",", expr, rhs, line=rhs.line)
        return expr

    def parse_assignment(self) -> ast.Node:
        lhs = self.parse_ternary()
        if self.tok.kind == "op" and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            rhs = self.parse_assignment()
            return ast.Assign(op, lhs, rhs, line=lhs.line)
        return lhs

    def parse_ternary(self) -> ast.Node:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            if_true = self.parse_assignment()
            self.expect_op(":")
            if_false = self.parse_ternary()
            return ast.Ternary(cond, if_true, if_false, line=cond.line)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Node:
        lhs = self.parse_unary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return lhs
            prec = _BIN_PREC.get(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(tok.text, lhs, rhs, line=tok.line)

    def parse_unary(self) -> ast.Node:
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&",
                                             "++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.text, operand, line=tok.line)
        if tok.kind == "keyword" and tok.text == "sizeof":
            self.advance()
            if self.tok.kind == "op" and self.tok.text == "(" and \
                    self._type_follows(1):
                self.advance()
                ctype = self.parse_type_name()
                self.expect_op(")")
                return ast.SizeofType(ctype, line=tok.line)
            operand = self.parse_unary()
            return ast.SizeofExpr(operand, line=tok.line)
        if tok.kind == "op" and tok.text == "(" and self._type_follows(1):
            self.advance()
            ctype = self.parse_type_name()
            self.expect_op(")")
            operand = self.parse_unary()
            return ast.Cast(ctype, operand, line=tok.line)
        return self.parse_postfix()

    def _type_follows(self, offset: int) -> bool:
        tok = self.peek(offset)
        return tok.kind == "keyword" and tok.text in (
            "int", "char", "short", "void", "struct", "unsigned", "const")

    def parse_type_name(self) -> CType:
        ctype = self.parse_base_type()
        while self.accept("op", "*"):
            ctype = PtrType(ctype)
        return ctype

    def parse_postfix(self) -> ast.Node:
        expr = self.parse_primary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return expr
            if tok.text == "(":
                self.advance()
                args: list[ast.Node] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect_op(")")
                expr = ast.Call(expr, args, line=tok.line)
            elif tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(expr, index, line=tok.line)
            elif tok.text == ".":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(expr, name, arrow=False, line=tok.line)
            elif tok.text == "->":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(expr, name, arrow=True, line=tok.line)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = ast.Postfix(tok.text, expr, line=tok.line)
            else:
                return expr

    def parse_primary(self) -> ast.Node:
        tok = self.tok
        if tok.kind == "int" or tok.kind == "char":
            self.advance()
            return ast.IntLit(tok.value, line=tok.line)
        if tok.kind == "string":
            self.advance()
            value = tok.value
            while self.tok.kind == "string":  # adjacent literal concat
                value += self.advance().value
            return ast.StrLit(value, line=tok.line)
        if tok.kind == "ident":
            self.advance()
            return ast.Ident(tok.text, line=tok.line)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise CompileError(f"unexpected token {tok.text!r}", tok.line)

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> ast.Node:
        tok = self.tok
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "keyword":
            if tok.text == "if":
                self.advance()
                self.expect_op("(")
                cond = self.parse_expression()
                self.expect_op(")")
                then = self.parse_statement()
                otherwise = None
                if self.accept("keyword", "else"):
                    otherwise = self.parse_statement()
                return ast.If(cond, then, otherwise, line=tok.line)
            if tok.text == "while":
                self.advance()
                self.expect_op("(")
                cond = self.parse_expression()
                self.expect_op(")")
                body = self.parse_statement()
                return ast.While(cond, body, line=tok.line)
            if tok.text == "do":
                self.advance()
                body = self.parse_statement()
                self.expect("keyword", "while")
                self.expect_op("(")
                cond = self.parse_expression()
                self.expect_op(")")
                self.expect_op(";")
                return ast.DoWhile(body, cond, line=tok.line)
            if tok.text == "for":
                self.advance()
                self.expect_op("(")
                init: ast.Node | None = None
                if not self.accept("op", ";"):
                    if self.at_type():
                        init = self.parse_declaration_stmt()
                    else:
                        init = ast.ExprStmt(self.parse_expression(),
                                            line=tok.line)
                        self.expect_op(";")
                cond = None
                if not self.accept("op", ";"):
                    cond = self.parse_expression()
                    self.expect_op(";")
                step = None
                if not (self.tok.kind == "op" and self.tok.text == ")"):
                    step = self.parse_expression()
                self.expect_op(")")
                body = self.parse_statement()
                return ast.For(init, cond, step, body, line=tok.line)
            if tok.text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "op" and self.tok.text == ";"):
                    value = self.parse_expression()
                self.expect_op(";")
                return ast.Return(value, line=tok.line)
            if tok.text == "break":
                self.advance()
                self.expect_op(";")
                return ast.Break(line=tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect_op(";")
                return ast.Continue(line=tok.line)
            if tok.text == "switch":
                return self.parse_switch()
            if tok.text in ("case", "default"):
                raise CompileError("case label outside switch", tok.line)
            if self.at_type() or tok.text in ("static", "extern"):
                return self.parse_declaration_stmt()
        if self.accept("op", ";"):
            return ast.ExprStmt(None, line=tok.line)
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr, line=tok.line)

    def parse_switch(self) -> ast.Node:
        tok = self.expect("keyword", "switch")
        self.expect_op("(")
        expr = self.parse_expression()
        self.expect_op(")")
        self.expect_op("{")
        body: list[ast.Node] = []
        while not self.accept("op", "}"):
            if self.accept("keyword", "case"):
                value = self.parse_const_int()
                self.expect_op(":")
                body.append(ast.CaseLabel(value, line=self.tok.line))
            elif self.accept("keyword", "default"):
                self.expect_op(":")
                body.append(ast.CaseLabel(None, line=self.tok.line))
            else:
                body.append(self.parse_statement())
        return ast.Switch(expr, body, line=tok.line)

    def parse_block(self) -> ast.Block:
        tok = self.expect_op("{")
        stmts: list[ast.Node] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return ast.Block(stmts, line=tok.line)

    def parse_declaration_stmt(self) -> ast.DeclStmt:
        line = self.tok.line
        static = bool(self.accept("keyword", "static"))
        self.accept("keyword", "extern")
        base = self.parse_base_type()
        decls: list[ast.VarDecl] = []
        if self.tok.kind == "op" and self.tok.text == ";":
            self.advance()  # bare struct declaration
            return ast.DeclStmt(decls, line=line)
        while True:
            name, ctype = self.parse_declarator(base)
            init = None
            if self.accept("op", "="):
                init = self.parse_initializer()
            ctype = _complete_array_from_init(ctype, init, line)
            decls.append(ast.VarDecl(name, ctype, init, static, line=line))
            if not self.accept("op", ","):
                break
        self.expect_op(";")
        return ast.DeclStmt(decls, line=line)

    def parse_initializer(self):
        if self.tok.kind == "op" and self.tok.text == "{":
            self.advance()
            items = []
            if not self.accept("op", "}"):
                while True:
                    items.append(self.parse_initializer())
                    if not self.accept("op", ","):
                        break
                    if self.tok.kind == "op" and self.tok.text == "}":
                        break  # trailing comma
                self.expect_op("}")
            return items
        return self.parse_assignment()

    # -- top level ---------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit([])
        while self.tok.kind != "eof":
            unit.decls.extend(self.parse_top_level())
        return unit

    def parse_top_level(self) -> list[ast.Node]:
        line = self.tok.line
        static = bool(self.accept("keyword", "static"))
        extern = bool(self.accept("keyword", "extern"))
        base = self.parse_base_type()
        if self.accept("op", ";"):
            return []  # bare struct definition
        name, ctype = self.parse_declarator(base)
        # Function definition or prototype?
        if self.tok.kind == "op" and self.tok.text == "(" and \
                not isinstance(ctype, PtrType):
            params = self.parse_params_with_names()
            if self.accept("op", ";"):
                return [ast.FuncDef(name, ctype, params, None, static,
                                    line=line)]
            body = self.parse_block()
            return [ast.FuncDef(name, ctype, params, body, static,
                                line=line)]
        decls: list[ast.Node] = []
        while True:
            init = None
            if self.accept("op", "="):
                init = self.parse_initializer()
            ctype = _complete_array_from_init(ctype, init, line)
            if not extern:
                decls.append(ast.VarDecl(name, ctype, init, static,
                                         line=line))
            if not self.accept("op", ","):
                break
            name, ctype = self.parse_declarator(base)
        self.expect_op(";")
        return decls

    def parse_params_with_names(self) -> list[tuple[str, CType]]:
        self.expect_op("(")
        params: list[tuple[str, CType]] = []
        if self.accept("op", ")"):
            return params
        if self.tok.kind == "keyword" and self.tok.text == "void" \
                and self.peek().text == ")":
            self.advance()
            self.expect_op(")")
            return params
        while True:
            base = self.parse_base_type()
            pname, ptype = self.parse_declarator(base)
            from .ctypes import decay
            params.append((pname, decay(ptype)))
            if not self.accept("op", ","):
                break
        self.expect_op(")")
        return params


def _complete_array_from_init(ctype: CType, init, line: int) -> CType:
    """Fill in ``[]`` array sizes from initializer lists / string
    literals."""
    if isinstance(ctype, ArrayType) and ctype.count == -1:
        if isinstance(init, list):
            return ArrayType(ctype.element, len(init))
        if isinstance(init, ast.StrLit):
            return ArrayType(ctype.element, len(init.value) + 1)
        raise CompileError("cannot size [] array without initializer",
                           line)
    return ctype


def _const_eval(expr) -> int | None:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_eval(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        lhs = _const_eval(expr.lhs)
        rhs = _const_eval(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b,
               "/": lambda a, b: int(a / b) if b else None,
               "%": lambda a, b: a - int(a / b) * b if b else None,
               "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
               "|": lambda a, b: a | b, "&": lambda a, b: a & b,
               "^": lambda a, b: a ^ b}
        fn = ops.get(expr.op)
        return fn(lhs, rhs) if fn else None
    return None


def parse(source: str) -> ast.TranslationUnit:
    return Parser(source).parse_translation_unit()
