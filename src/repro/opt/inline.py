"""Function inlining.

Inlines small or single-call-site callees.  Handles the IR's multi-result
calls (lifted signatures) by joining every returned value through a phi in
the continuation block.
"""

from __future__ import annotations

from ..ir.module import Block, Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Br,
    Call,
    CallExt,
    CallInd,
    CondBr,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Phi,
    Result,
    Ret,
    Store,
    Switch,
    Unary,
    Unreachable,
    Value,
)

#: Inlining splices whole cloned CFGs into callers: nothing is preserved.
PRESERVES: frozenset = frozenset()


def _clone_instr(instr: Instr) -> Instr:
    """Shallow structural clone; operands/blocks fixed up by the caller."""
    if isinstance(instr, BinOp):
        return BinOp(instr.opcode, instr.lhs, instr.rhs)
    if isinstance(instr, ICmp):
        return ICmp(instr.pred, instr.lhs, instr.rhs)
    if isinstance(instr, Unary):
        return Unary(instr.opcode, instr.src)
    if isinstance(instr, Load):
        return Load(instr.addr, instr.size)
    if isinstance(instr, Store):
        return Store(instr.addr, instr.value, instr.size)
    if isinstance(instr, Alloca):
        return Alloca(instr.size, instr.align, instr.var_name)
    if isinstance(instr, Call):
        return Call(instr.callee, instr.args, instr.nresults)
    if isinstance(instr, CallInd):
        return CallInd(instr.target, instr.args, instr.nresults)
    if isinstance(instr, CallExt):
        return CallExt(instr.ext_name, instr.args, instr.sp)
    if isinstance(instr, Result):
        return Result(instr.call, instr.index)
    if isinstance(instr, Intrinsic):
        return Intrinsic(instr.intrinsic, list(instr.ops),
                         dict(instr.meta))
    if isinstance(instr, Phi):
        return Phi(list(zip(instr.blocks, instr.ops, strict=True)))
    if isinstance(instr, Br):
        return Br(instr.target)
    if isinstance(instr, CondBr):
        return CondBr(instr.cond, instr.if_true, instr.if_false)
    if isinstance(instr, Switch):
        return Switch(instr.value, list(instr.cases), instr.default)
    if isinstance(instr, Ret):
        return Ret(list(instr.ops))
    if isinstance(instr, Unreachable):
        return Unreachable(instr.note)
    raise TypeError(f"cannot clone {instr!r}")


def inline_call(caller: Function, call: Call, callee: Function) -> None:
    """Inline ``call`` (a call to ``callee``) into ``caller``."""
    call_block = call.block
    assert call_block is not None
    call_index = call_block.instrs.index(call)

    # Split the caller block: everything after the call (minus its Result
    # extractions, handled below) moves to a continuation block.
    continuation = Block(f"{call_block.name}.cont")
    continuation.function = caller
    tail = call_block.instrs[call_index + 1:]
    call_block.instrs = call_block.instrs[:call_index]
    caller.blocks.insert(caller.blocks.index(call_block) + 1, continuation)

    # Successor phis that routed through call_block now come from the
    # continuation block.
    for instr in tail:
        instr.block = continuation
    continuation.instrs = tail
    if continuation.is_terminated:
        for succ in continuation.successors():
            for phi in succ.phis():
                phi.blocks = [continuation if b is call_block else b
                              for b in phi.blocks]

    # Clone the callee body (unique prefix: the same callee may be
    # inlined several times into one caller).
    serial = caller.meta.get("inline_serial", 0)
    caller.meta["inline_serial"] = serial + 1
    value_map: dict[Value, Value] = dict(zip(callee.params, call.args,
                                             strict=True))
    block_map: dict[Block, Block] = {}
    for cb in callee.blocks:
        nb = Block(f"inl{serial}.{callee.name}.{cb.name}")
        nb.function = caller
        block_map[cb] = nb
    ret_sites: list[tuple[Block, list[Value]]] = []
    for cb in callee.blocks:
        nb = block_map[cb]
        for instr in cb.instrs:
            clone = _clone_instr(instr)
            value_map[instr] = clone
            if isinstance(instr, Ret):
                # Replace returns with branches to the continuation.
                ret_sites.append((nb, list(instr.ops)))
                br = Br(continuation)
                br.block = nb
                nb.instrs.append(br)
            else:
                clone.block = nb
                nb.instrs.append(clone)

    # Fix up operands and block references inside the cloned body.
    for cb in callee.blocks:
        nb = block_map[cb]
        for instr in nb.instrs:
            instr.ops = [value_map.get(op, op) for op in instr.ops]
            if isinstance(instr, Phi):
                instr.blocks = [block_map[b] for b in instr.blocks]
            elif isinstance(instr, Br) and instr.target in block_map:
                instr.target = block_map[instr.target]
            elif isinstance(instr, CondBr):
                instr.if_true = block_map[instr.if_true]
                instr.if_false = block_map[instr.if_false]
            elif isinstance(instr, Switch):
                instr.cases = [(v, block_map[b]) for v, b in instr.cases]
                instr.default = block_map[instr.default]

    # Resolve returned values in ret_sites through the value map.
    resolved_rets = [
        (nb, [value_map.get(v, v) for v in values])
        for nb, values in ret_sites
    ]

    # Join return values: one phi per result index in the continuation.
    result_values: list[Value] = []
    for i in range(callee.nresults):
        if len(resolved_rets) == 1:
            result_values.append(resolved_rets[0][1][i])
        else:
            phi = Phi([(nb, values[i]) for nb, values in resolved_rets])
            phi.block = continuation
            continuation.instrs.insert(i, phi)
            result_values.append(phi)

    # Rewire the call's results throughout the caller.
    replacements: dict[Instr, Value] = {}
    if call.nresults == 1:
        replacements[call] = result_values[0]
    for block in caller.blocks:
        for instr in list(block.instrs):
            if isinstance(instr, Result) and instr.call is call:
                replacements[instr] = result_values[instr.index]
    for block in caller.blocks:
        block.instrs = [i for i in block.instrs if i not in replacements]
        for instr in block.instrs:
            instr.ops = [replacements.get(op, op) for op in instr.ops]

    # Splice the cloned blocks after the call block and branch into them.
    entry_clone = block_map[callee.entry]
    br = Br(entry_clone)
    br.block = call_block
    call_block.instrs.append(br)
    insert_at = caller.blocks.index(call_block) + 1
    for cb in callee.blocks:
        caller.blocks.insert(insert_at, block_map[cb])
        insert_at += 1

    # Hoist cloned static allocas into the caller's entry block so that a
    # call site inside a loop does not grow the frame per iteration (the
    # moral equivalent of LLVM's static-alloca placement).
    entry = caller.entry
    for cb in callee.blocks:
        nb = block_map[cb]
        hoisted = [i for i in nb.instrs if isinstance(i, Alloca)]
        if hoisted:
            nb.instrs = [i for i in nb.instrs
                         if not isinstance(i, Alloca)]
            for alloca in reversed(hoisted):
                alloca.block = entry
                entry.instrs.insert(0, alloca)

    # If there were no returns (callee always exits), the continuation is
    # unreachable; leave it with an unreachable terminator.
    if not resolved_rets and not continuation.is_terminated:
        continuation.instrs.append(Unreachable("no-return inline"))
    if not continuation.is_terminated and not continuation.instrs:
        continuation.instrs.append(Unreachable("empty continuation"))
    caller.invalidate()


def _size_of(func: Function) -> int:
    return sum(len(b.instrs) for b in func.blocks)


def _has_unreachable(func: Function) -> bool:
    return any(isinstance(i, Unreachable) for i in func.instructions())


def inline_functions(module: Module, max_callee_size: int = 40,
                     always_single_use: bool = True,
                     growth_budget: int = 4000) -> bool:
    """Module-level inlining driver. Returns True if anything changed."""
    return bool(inline_functions_tracked(
        module, max_callee_size=max_callee_size,
        always_single_use=always_single_use,
        growth_budget=growth_budget))


def inline_functions_tracked(module: Module, max_callee_size: int = 40,
                             always_single_use: bool = True,
                             growth_budget: int = 4000) -> set[str]:
    """:func:`inline_functions`, reporting *which* callers changed.

    Returns the names of the functions that actually received inlined
    code — the only functions the pass manager needs to re-enqueue
    afterwards (callees are cloned, not mutated).
    """
    call_counts = _call_counts(module)
    # Functions whose address is taken cannot be dropped and their call
    # count is unreliable; still inlinable at direct sites.
    changed: set[str] = set()
    for func in list(module.functions.values()):
        budget = growth_budget
        again = True
        while again and budget > 0:
            again = False
            for block in list(func.blocks):
                for instr in list(block.instrs):
                    if not isinstance(instr, Call):
                        continue
                    callee = module.functions.get(instr.callee.name)
                    if _inlinable(func, callee, call_counts,
                                  max_callee_size, always_single_use,
                                  growth_budget):
                        inline_call(func, instr, callee)
                        changed.add(func.name)
                        budget -= _size_of(callee)
                        call_counts[callee.name] = \
                            call_counts.get(callee.name, 1) - 1
                        for inner in callee.instructions():
                            if isinstance(inner, Call):
                                call_counts[inner.callee.name] = \
                                    call_counts.get(inner.callee.name,
                                                    0) + 1
                        again = True
                        break
                if again:
                    break
    return changed


def inline_would_change(module: Module, max_callee_size: int = 40,
                        always_single_use: bool = True,
                        growth_budget: int = 4000) -> bool:
    """Dry-run: would :func:`inline_functions` inline anything?

    True iff some direct call site passes the same admission test the
    real driver applies to its first candidate.  The pass manager uses
    this to prove a whole module is at fixpoint (no candidate now means
    the real driver would be a no-op)."""
    call_counts = _call_counts(module)
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, Call) and _inlinable(
                    func, module.functions.get(instr.callee.name),
                    call_counts, max_callee_size, always_single_use,
                    growth_budget):
                return True
    return False


def _call_counts(module: Module) -> dict[str, int]:
    counts: dict[str, int] = {}
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, Call):
                counts[instr.callee.name] = \
                    counts.get(instr.callee.name, 0) + 1
    return counts


def _inlinable(func: Function, callee: Function | None,
               call_counts: dict[str, int], max_callee_size: int,
               always_single_use: bool, growth_budget: int) -> bool:
    if callee is None or callee is func or _calls_self(callee):
        return False
    size = _size_of(callee)
    single = call_counts.get(callee.name, 0) == 1
    return size <= max_callee_size or \
        (always_single_use and single and size <= growth_budget)


def _calls_self(func: Function) -> bool:
    for instr in func.instructions():
        if isinstance(instr, Call) and instr.callee.name == func.name:
            return True
    return False
