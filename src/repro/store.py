"""repro.store — the content-addressed artifact store.

One keyed, on-disk store for every expensive artifact the pipeline
produces: per-input traces, merged tracing-runtime state, lifted and
optimized modules, lowered functions, recompiled images, and full job
results.  It generalizes the evaluation harness's
:class:`~repro.evaluation.cache.EvalCache` (now a thin subclass) and
reuses the replay engine's content fingerprints
(:func:`~repro.replay.fingerprint.module_fingerprint`) so an artifact's
key is a digest of exactly the content that determines it — a hit is
valid by construction and nothing ever needs manual invalidation.

Key model (full table in DESIGN.md):

==========  ============================================================
kind        keyed on
==========  ============================================================
trace       image content + one input run + cost-model tag
result      image content + ordered input runs + pipeline options tag
source      image content (the submitted image itself, for campaign
            resubmission without re-uploading)
module      module fingerprint + options tag (optimized/lowered forms)
==========  ============================================================

Kinds are open-ended (each is a subdirectory); the table lists the
canonical ones used by :mod:`repro.core.incremental` and
:mod:`repro.serve`.

Writes are **atomic**: the entry is written to a temp file in the same
directory, fsynced, and moved into place with :func:`os.replace`, so a
reader racing a writer sees either the old entry or the new one —
never a torn pickle.  Concurrent writers (forked sweep workers, several
serve jobs) therefore share one store safely; last writer wins, and
both wrote the same bytes anyway because the key pins the content.

Observability: counters ``store.hit`` / ``store.miss`` / ``store.put``
/ ``store.corrupt`` (namespace overridable by subclasses — the
evaluation cache keeps its historical ``evalcache.*`` names) and ledger
events ``store.hit`` / ``store.miss`` / ``store.put`` carrying the
artifact kind and key, so ``repro obs diff`` can compare warm and cold
service runs.  Each store instance also tracks in-process
:attr:`ArtifactStore.stats` for callers (the serve status op, tests)
that do not want to arm the global recorder.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path

from . import obs

__all__ = [
    "ArtifactStore",
    "Campaign",
    "atomic_write_bytes",
    "decode_items",
    "decode_runs",
    "encode_items",
    "encode_runs",
    "image_key",
    "options_tag",
    "result_key",
    "trace_key",
]

log = logging.getLogger("repro.store")

#: Bump to orphan every existing entry after a format change.
STORE_FORMAT = "v1"

#: Thread-unique suffix source for temp names (fork-safe together with
#: the pid component — a forked child starts from the inherited value
#: but writes under its own pid).
_TMP_SEQ = itertools.count()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically.

    The bytes land in a temp file *in the same directory* (so the final
    :func:`os.replace` cannot cross a filesystem boundary), are flushed
    and fsynced, and are moved into place in one step.  A concurrent
    reader observes either the previous entry or the complete new one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp")
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


# -- keys ----------------------------------------------------------------

def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    h.update(STORE_FORMAT.encode())
    return h.hexdigest()[:32]


def image_key(image) -> str:
    """Digest of a binary image's full serialized content."""
    return _digest("image", image.to_json())


def trace_key(img_key: str, items, costs: str = "default") -> str:
    """Digest addressing the trace of one input run of one image."""
    return _digest("trace", img_key, repr(list(items)), costs)


def result_key(img_key: str, runs, options: str) -> str:
    """Digest addressing a full pipeline result: the image, the ordered
    input runs (order matters — it fixes trace-merge order), and the
    pipeline options tag (:func:`options_tag`)."""
    return _digest("result", img_key,
                   repr([list(items) for items in runs]), options)


def options_tag(**options) -> str:
    """Canonical rendering of a pipeline-options mapping for keying."""
    return json.dumps(
        {k: options[k] for k in sorted(options)},
        separators=(",", ":"), default=repr)


# -- JSON-safe input encoding (shared with the serve protocol) -----------

def encode_items(items) -> list:
    """One input run as JSON-safe values (bytes ride as ``{"b": ...}``
    latin-1 strings)."""
    out = []
    for item in items:
        if isinstance(item, bytes):
            out.append({"b": item.decode("latin-1")})
        else:
            out.append(int(item))
    return out


def decode_items(items) -> list:
    out = []
    for item in items:
        if isinstance(item, dict):
            out.append(str(item["b"]).encode("latin-1"))
        elif isinstance(item, str):
            out.append(item.encode("latin-1"))
        else:
            out.append(int(item))
    return out


def encode_runs(runs) -> list:
    return [encode_items(items) for items in runs]


def decode_runs(runs) -> list:
    return [decode_items(items) for items in runs]


# -- the store -----------------------------------------------------------

class ArtifactStore:
    """Pickle store addressed by content digests, with atomic writes.

    ``root`` defaults to ``$REPRO_STORE`` (``.repro_store`` when unset).
    Subclasses may override :attr:`NAMESPACE` (counter prefix),
    :attr:`DESCRIBE` (log wording) and :attr:`PUT_COUNTER`.
    """

    NAMESPACE = "store"
    DESCRIBE = "store"
    PUT_COUNTER = True
    ENV_VAR = "REPRO_STORE"
    DEFAULT_ROOT = ".repro_store"

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get(self.ENV_VAR, self.DEFAULT_ROOT)
        self.root = Path(root)
        #: In-process counts: hit / miss / put / corrupt / evicted.
        self.stats: dict[str, int] = {"hit": 0, "miss": 0, "put": 0,
                                      "corrupt": 0, "evicted": 0}
        self._lock = threading.Lock()

    def _count(self, what: str) -> None:
        with self._lock:
            self.stats[what] += 1

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    def get(self, kind: str, key: str):
        """Load a cached artifact, or None on miss/corruption.

        Corruption (a truncated or ununpicklable entry) falls through
        to recompute like a miss, but is reported: a structured warning
        naming the entry plus the ``<ns>.corrupt`` counter, so it never
        hides as an ordinary miss.
        """
        path = self._path(kind, key)
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
        except FileNotFoundError:
            self._count("miss")
            obs.count(f"{self.NAMESPACE}.miss")
            obs.event("store.miss", store=self.NAMESPACE, artifact=kind,
                      key=key)
            return None
        except Exception as exc:
            self._count("corrupt")
            type(self)._log().warning(
                "corrupt %s entry kind=%s key=%s path=%s "
                "error=%s: %s — recomputing",
                self.DESCRIBE, kind, key, path,
                type(exc).__name__, exc)
            obs.count(f"{self.NAMESPACE}.corrupt")
            obs.event("store.miss", store=self.NAMESPACE, artifact=kind,
                      key=key, corrupt=True)
            return None
        self._count("hit")
        obs.count(f"{self.NAMESPACE}.hit")
        obs.event("store.hit", store=self.NAMESPACE, artifact=kind, key=key)
        try:
            # Refresh mtime so GC's LRU order tracks last *use*, not
            # last write.  Best-effort: a read-only store still serves.
            os.utime(path)
        except OSError:
            pass
        return obj

    def put(self, kind: str, key: str, obj) -> None:
        """Store an artifact atomically (temp file + ``os.replace``)."""
        atomic_write_bytes(
            self._path(kind, key),
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        self._count("put")
        if self.PUT_COUNTER:
            obs.count(f"{self.NAMESPACE}.put")
        obs.event("store.put", store=self.NAMESPACE, artifact=kind, key=key)

    def memo(self, kind: str, key: str, compute):
        """Return the cached artifact for ``key``, computing on miss."""
        obj = self.get(kind, key)
        if obj is None:
            obj = compute()
            self.put(kind, key, obj)
        return obj

    def contains(self, kind: str, key: str) -> bool:
        """Presence probe without loading (no hit/miss accounting)."""
        return self._path(kind, key).exists()

    @classmethod
    def _log(cls) -> logging.Logger:
        return log

    # -- eviction / GC ---------------------------------------------------

    def entries(self) -> list[tuple[str, str, Path, int, float]]:
        """Every stored artifact as ``(kind, key, path, size, mtime)``.
        Campaign JSONs and in-flight temp files are not artifacts and
        are excluded."""
        out: list[tuple[str, str, Path, int, float]] = []
        if not self.root.is_dir():
            return out
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir() or kind_dir.name == "campaign":
                continue
            for path in kind_dir.glob("*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue    # raced an eviction or a temp cleanup
                out.append((kind_dir.name, path.stem, path,
                            st.st_size, st.st_mtime))
        return out

    def pinned_keys(self) -> set[tuple[str, str]]:
        """``(kind, key)`` pairs GC must not evict: every campaign's
        stored source image and its per-input trace records.  Evicting
        either would break the campaign contract (resubmission without
        re-uploading; monotone trace accumulation) — everything else,
        results included, is recomputable from these."""
        pinned: set[tuple[str, str]] = set()
        for name in self.list_campaigns():
            campaign = self.load_campaign(name)
            if campaign is None:
                continue
            pinned.add(("source", campaign.image_key))
            for items in campaign.inputs:
                pinned.add(("trace",
                            trace_key(campaign.image_key, items)))
        return pinned

    def gc(self, max_bytes: int, pin_campaigns: bool = True,
           dry_run: bool = False) -> dict:
        """Evict least-recently-used artifacts until the store fits in
        ``max_bytes``.

        LRU is by file mtime, which :meth:`get` refreshes on every hit,
        so the order reflects last use.  Campaign-pinned entries
        (:meth:`pinned_keys`) are skipped unless ``pin_campaigns`` is
        False.  ``dry_run`` reports what would be evicted without
        deleting anything (and without counters/events).  Returns a
        summary dict; evictions are also visible as the
        ``store.evicted`` counter and ledger event stream.
        """
        entries = self.entries()
        before = sum(entry[3] for entry in entries)
        total = before
        pinned = self.pinned_keys() if pin_campaigns else set()
        evicted: list[dict] = []
        skipped_pinned = 0
        for kind, key, path, size, _mtime in sorted(
                entries, key=lambda entry: entry[4]):
            if total <= max_bytes:
                break
            if (kind, key) in pinned:
                skipped_pinned += 1
                continue
            if not dry_run:
                try:
                    path.unlink()
                except FileNotFoundError:
                    total -= size   # a racing GC already removed it
                    continue
                except OSError:
                    continue
                self._count("evicted")
                obs.count(f"{self.NAMESPACE}.evicted")
                obs.event("store.evicted", store=self.NAMESPACE,
                          artifact=kind, key=key, bytes=size)
            evicted.append({"kind": kind, "key": key, "bytes": size})
            total -= size
        return {"limit_bytes": int(max_bytes),
                "before_bytes": before,
                "after_bytes": total,
                "evicted": len(evicted),
                "evicted_bytes": before - total,
                "evicted_entries": evicted,
                "pinned_kept": skipped_pinned,
                "dry_run": bool(dry_run)}

    # -- campaigns -------------------------------------------------------

    def _campaign_path(self, name: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in name)
        return self.root / "campaign" / f"{safe}.json"

    def load_campaign(self, name: str) -> "Campaign | None":
        path = self._campaign_path(name)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            log.warning("corrupt campaign %s at %s: %s — starting fresh",
                        name, path, exc)
            return None
        return Campaign.from_dict(doc)

    def save_campaign(self, campaign: "Campaign") -> None:
        atomic_write_bytes(
            self._campaign_path(campaign.name),
            (json.dumps(campaign.to_dict(), indent=2, sort_keys=True)
             + "\n").encode())

    def list_campaigns(self) -> list[str]:
        root = self.root / "campaign"
        if not root.is_dir():
            return []
        return sorted(p.stem for p in root.glob("*.json"))


@dataclass
class Campaign:
    """A named, per-image accumulated input set (the BinRec campaign
    model): every submission unions its input runs into the campaign,
    and jobs for the campaign run over the *accumulated* set, so
    coverage only ever grows.  Persisted as JSON in the store
    (``campaign/<name>.json``), atomically rewritten per update."""

    name: str
    image_key: str
    #: Accumulated input runs, in first-submission order, deduplicated.
    inputs: list[list] = field(default_factory=list)
    #: Jobs executed against this campaign.
    jobs: int = 0
    #: Latest coverage summary (trace-derived).
    coverage: dict = field(default_factory=dict)

    def add_inputs(self, runs) -> list[list]:
        """Union new input runs in; returns the runs actually added."""
        seen = {repr(items) for items in self.inputs}
        added = []
        for items in runs:
            items = list(items)
            if repr(items) not in seen:
                seen.add(repr(items))
                self.inputs.append(items)
                added.append(items)
        return added

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "image_key": self.image_key,
            "inputs": encode_runs(self.inputs),
            "jobs": self.jobs,
            "coverage": dict(self.coverage),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Campaign":
        return cls(name=doc["name"], image_key=doc["image_key"],
                   inputs=decode_runs(doc.get("inputs", [])),
                   jobs=int(doc.get("jobs", 0)),
                   coverage=dict(doc.get("coverage", {})))
