"""Superblock execution engine for the machine emulator.

The seed interpreter paid a per-instruction tax on every step: a decode
cache lookup, a mnemonic-keyed handler dict lookup, a cost-model
recomputation, and a trace-sink callback.  This module removes all four
by caching, per basic block, a tuple of *pre-compiled closures* — one
per instruction — plus the block's static cycle cost and its instruction
addresses:

* each closure is specialized at block-build time on the operand shapes
  (register index, immediate, addressing mode), so executing it does no
  ``isinstance`` dispatch and no register-view indirection;
* the block's static cost (the sum the cost model assigns each
  instruction) is computed once; dynamic extras (taken branches, import
  dispatch) are added by the terminator closures exactly as the per-step
  handlers did;
* closures capture only the instruction, never machine state, so one
  :class:`BlockCache` is safely shared by every :class:`~repro.emu.
  machine.Machine` bound to the same image and cost model (the tracer
  runs one machine per input and reuses the cache across all of them).

Semantics are bit-for-bit those of the per-step path (``Machine._step``),
which is kept as the reference implementation and exercised against this
engine by the differential tests.
"""

from __future__ import annotations

import weakref
from typing import Callable

from ..errors import EmulationError
from ..isa.disassembler import Disassembler
from ..obs import count as _obs_count
from ..isa.instructions import Imm, ImportRef, Instruction, Mem
from ..isa.registers import Reg
from .costs import CostModel
from .libc import StackArgs

MASK32 = 0xFFFFFFFF

#: Sentinel return address pushed by the loader: returning from the
#: entry function halts the machine with eax as the exit code (the same
#: convenience a real crt0 provides).
EXIT_SENTINEL = 0xFFFF0000

ESP_INDEX = 4
EBP_INDEX = 5

#: Condition-code predicates specialized at compile time (mirrors
#: :meth:`repro.emu.cpu.Flags.condition`).
_CC_FNS = {
    "e": lambda f: f.zf,
    "ne": lambda f: not f.zf,
    "l": lambda f: f.sf != f.of,
    "le": lambda f: f.zf or f.sf != f.of,
    "g": lambda f: not f.zf and f.sf == f.of,
    "ge": lambda f: f.sf == f.of,
    "b": lambda f: f.cf,
    "be": lambda f: f.cf or f.zf,
    "a": lambda f: not f.cf and not f.zf,
    "ae": lambda f: not f.cf,
    "s": lambda f: f.sf,
    "ns": lambda f: not f.sf,
}


# ---------------------------------------------------------------------------
# Operand access closures
# ---------------------------------------------------------------------------


def _addr_closure(op: Mem):
    """Address computation for a memory operand, or None if the operand
    still carries an unresolved symbolic displacement."""
    if not isinstance(op.disp, int):
        return None
    disp = op.disp
    base = op.base.index if op.base is not None else None
    index = op.index.index if op.index is not None else None
    scale = op.scale
    if base is not None and index is not None:
        return lambda m: (m.cpu.regs[base] + m.cpu.regs[index] * scale
                          + disp) & MASK32
    if base is not None:
        if disp == 0:
            return lambda m: m.cpu.regs[base]
        return lambda m: (m.cpu.regs[base] + disp) & MASK32
    if index is not None:
        return lambda m: (m.cpu.regs[index] * scale + disp) & MASK32
    const = disp & MASK32
    return lambda m: const


def _read_closure(op):
    """Value read for an operand, or None if unspecializable."""
    if isinstance(op, Reg):
        i = op.index
        if op.width == 4:
            return lambda m: m.cpu.regs[i]
        if op.width == 2:
            return lambda m: m.cpu.regs[i] & 0xFFFF
        if op.high8:
            return lambda m: (m.cpu.regs[i] >> 8) & 0xFF
        return lambda m: m.cpu.regs[i] & 0xFF
    if isinstance(op, Imm):
        const = op.value & MASK32
        return lambda m: const
    if isinstance(op, Mem):
        addr = _addr_closure(op)
        if addr is None:
            return None
        size = op.size
        return lambda m: m.mem.read(addr(m), size)
    return None


def _write_closure(op):
    """Value write for an operand (call with (m, value)), or None."""
    if isinstance(op, Reg):
        i = op.index
        if op.width == 4:
            def wr(m, v, i=i):
                m.cpu.regs[i] = v & MASK32
            return wr
        if op.width == 2:
            def wr(m, v, i=i):
                regs = m.cpu.regs
                regs[i] = (regs[i] & 0xFFFF0000) | (v & 0xFFFF)
            return wr
        if op.high8:
            def wr(m, v, i=i):
                regs = m.cpu.regs
                regs[i] = (regs[i] & 0xFFFF00FF) | ((v & 0xFF) << 8)
            return wr

        def wr(m, v, i=i):
            regs = m.cpu.regs
            regs[i] = (regs[i] & 0xFFFFFF00) | (v & 0xFF)
        return wr
    if isinstance(op, Mem):
        addr = _addr_closure(op)
        if addr is None:
            return None
        size = op.size
        return lambda m, v: m.mem.write(addr(m), size, v)
    return None


# ---------------------------------------------------------------------------
# Instruction templates
# ---------------------------------------------------------------------------


def _compile_mov(instr: Instruction):
    dst, src = instr.operands
    rd = _read_closure(src)
    if rd is None:
        return None
    # Flatten the hottest shapes: 32-bit register destinations.
    if isinstance(dst, Reg) and dst.width == 4:
        d = dst.index
        if isinstance(src, Reg) and src.width == 4:
            s = src.index

            def op(m):
                m.cpu.regs[d] = m.cpu.regs[s]
            return op
        if isinstance(src, Imm):
            const = src.value & MASK32

            def op(m):
                m.cpu.regs[d] = const
            return op

        def op(m):
            m.cpu.regs[d] = rd(m)
        return op
    wr = _write_closure(dst)
    if wr is None:
        return None

    def op(m):
        wr(m, rd(m))
    return op


def _compile_movsx(instr: Instruction):
    dst, src = instr.operands
    rd = _read_closure(src)
    wr = _write_closure(dst)
    if rd is None or wr is None:
        return None
    width = src.width if isinstance(src, Reg) else \
        src.size if isinstance(src, Mem) else 4
    sign_bit = 1 << (8 * width - 1)
    ext = MASK32 ^ ((1 << (8 * width)) - 1)

    def op(m):
        v = rd(m)
        if v & sign_bit:
            v |= ext
        wr(m, v)
    return op


def _compile_lea(instr: Instruction):
    dst, src = instr.operands
    if not isinstance(src, Mem):
        return None
    addr = _addr_closure(src)
    wr = _write_closure(dst)
    if addr is None or wr is None:
        return None

    def op(m):
        wr(m, addr(m))
    return op


def _compile_push(instr: Instruction):
    src = instr.operands[0]
    rd = _read_closure(src)
    if rd is None:
        return None

    def op(m):
        regs = m.cpu.regs
        value = rd(m)
        esp = (regs[ESP_INDEX] - 4) & MASK32
        regs[ESP_INDEX] = esp
        m.mem.write(esp, 4, value)
    return op


def _compile_pop(instr: Instruction):
    dst = instr.operands[0]
    if isinstance(dst, Reg) and dst.width == 4:
        d = dst.index

        def op(m):
            regs = m.cpu.regs
            esp = regs[ESP_INDEX]
            regs[d] = m.mem.read(esp, 4)
            regs[ESP_INDEX] = (esp + 4) & MASK32
        return op
    wr = _write_closure(dst)
    if wr is None:
        return None

    def op(m):
        regs = m.cpu.regs
        esp = regs[ESP_INDEX]
        wr(m, m.mem.read(esp, 4))
        regs[ESP_INDEX] = (esp + 4) & MASK32
    return op


def _compile_arith(instr: Instruction):
    mnem = instr.mnemonic
    dst, src = instr.operands
    rs = _read_closure(src)
    if rs is None:
        return None
    reg4 = isinstance(dst, Reg) and dst.width == 4
    if reg4:
        d = dst.index
        if mnem == "add":
            def op(m):
                cpu = m.cpu
                regs = cpu.regs
                a = regs[d]
                b = rs(m)
                r = a + b
                fl = cpu.flags
                fl.zf = (r & MASK32) == 0
                fl.sf = bool(r & 0x80000000)
                fl.cf = r > MASK32
                fl.of = bool((~(a ^ b) & (a ^ r)) & 0x80000000)
                regs[d] = r & MASK32
            return op
        if mnem == "sub":
            def op(m):
                cpu = m.cpu
                regs = cpu.regs
                a = regs[d]
                b = rs(m)
                r = a - b
                fl = cpu.flags
                fl.zf = (r & MASK32) == 0
                fl.sf = bool(r & 0x80000000)
                fl.cf = a < b
                fl.of = bool(((a ^ b) & (a ^ r)) & 0x80000000)
                regs[d] = r & MASK32
            return op
        # and / or / xor
        if mnem == "and":
            combine = lambda a, b: a & b  # noqa: E731
        elif mnem == "or":
            combine = lambda a, b: a | b  # noqa: E731
        else:
            combine = lambda a, b: a ^ b  # noqa: E731

        def op(m):
            cpu = m.cpu
            regs = cpu.regs
            r = combine(regs[d], rs(m)) & MASK32
            fl = cpu.flags
            fl.zf = r == 0
            fl.sf = bool(r & 0x80000000)
            fl.cf = False
            fl.of = False
            regs[d] = r
        return op
    rd = _read_closure(dst)
    wr = _write_closure(dst)
    if rd is None or wr is None:
        return None
    if mnem == "add":
        def op(m):
            cpu = m.cpu
            a = rd(m)
            b = rs(m)
            r = a + b
            cpu.flags.set_add(a, b, r)
            wr(m, r & MASK32)
        return op
    if mnem == "sub":
        def op(m):
            cpu = m.cpu
            a = rd(m)
            b = rs(m)
            r = a - b
            cpu.flags.set_sub(a, b, r)
            wr(m, r & MASK32)
        return op
    if mnem == "and":
        combine = lambda a, b: a & b  # noqa: E731
    elif mnem == "or":
        combine = lambda a, b: a | b  # noqa: E731
    else:
        combine = lambda a, b: a ^ b  # noqa: E731

    def op(m):
        r = combine(rd(m), rs(m)) & MASK32
        m.cpu.flags.set_logic(r)
        wr(m, r)
    return op


def _compile_cmp(instr: Instruction):
    ra = _read_closure(instr.operands[0])
    rb = _read_closure(instr.operands[1])
    if ra is None or rb is None:
        return None

    def op(m):
        a = ra(m)
        b = rb(m)
        r = a - b
        fl = m.cpu.flags
        fl.zf = (r & MASK32) == 0
        fl.sf = bool(r & 0x80000000)
        fl.cf = a < b
        fl.of = bool(((a ^ b) & (a ^ r)) & 0x80000000)
    return op


def _compile_test(instr: Instruction):
    ra = _read_closure(instr.operands[0])
    rb = _read_closure(instr.operands[1])
    if ra is None or rb is None:
        return None

    def op(m):
        r = ra(m) & rb(m)
        fl = m.cpu.flags
        fl.zf = r == 0
        fl.sf = bool(r & 0x80000000)
        fl.cf = False
        fl.of = False
    return op


def _compile_incdec(instr: Instruction):
    dec = instr.mnemonic == "dec"
    dst = instr.operands[0]
    if isinstance(dst, Reg) and dst.width == 4:
        d = dst.index

        def op(m):
            cpu = m.cpu
            regs = cpu.regs
            a = regs[d]
            r = a - 1 if dec else a + 1
            fl = cpu.flags
            fl.zf = (r & MASK32) == 0
            fl.sf = bool(r & 0x80000000)
            # CF is preserved, as on x86.
            fl.of = bool(((a ^ 1) & (a ^ r)) & 0x80000000) if dec else \
                bool((~(a ^ 1) & (a ^ r)) & 0x80000000)
            regs[d] = r & MASK32
        return op
    rd = _read_closure(dst)
    wr = _write_closure(dst)
    if rd is None or wr is None:
        return None

    def op(m):
        cpu = m.cpu
        a = rd(m)
        r = a - 1 if dec else a + 1
        carry = cpu.flags.cf
        if dec:
            cpu.flags.set_sub(a, 1, r)
        else:
            cpu.flags.set_add(a, 1, r)
        cpu.flags.cf = carry
        wr(m, r & MASK32)
    return op


def _compile_shift(instr: Instruction):
    mnem = instr.mnemonic
    dst, count_op = instr.operands
    rd = _read_closure(dst)
    wr = _write_closure(dst)
    rc = _read_closure(count_op)
    if rd is None or wr is None or rc is None:
        return None

    def op(m):
        count = rc(m) & 31
        a = rd(m)
        if mnem == "shl":
            r = (a << count) & MASK32
        elif mnem == "shr":
            r = (a & MASK32) >> count
        else:  # sar
            sa = a - 0x100000000 if a & 0x80000000 else a
            r = (sa >> count) & MASK32
        if count:
            fl = m.cpu.flags
            fl.zf = r == 0
            fl.sf = bool(r & 0x80000000)
        wr(m, r)
    return op


def _compile_negnot(instr: Instruction):
    neg = instr.mnemonic == "neg"
    dst = instr.operands[0]
    rd = _read_closure(dst)
    wr = _write_closure(dst)
    if rd is None or wr is None:
        return None

    def op(m):
        a = rd(m)
        if neg:
            r = (-a) & MASK32
            m.cpu.flags.set_sub(0, a, r)
        else:
            r = (~a) & MASK32
        wr(m, r)
    return op


def _compile_setcc(instr: Instruction):
    wr = _write_closure(instr.operands[0])
    if wr is None:
        return None
    cond = _CC_FNS[instr.cc]

    def op(m):
        wr(m, 1 if cond(m.cpu.flags) else 0)
    return op


def _compile_leave(instr: Instruction):
    def op(m):
        regs = m.cpu.regs
        ebp = regs[EBP_INDEX]
        regs[ESP_INDEX] = ebp
        regs[EBP_INDEX] = m.mem.read(ebp, 4)
        regs[ESP_INDEX] = (ebp + 4) & MASK32
    return op


def _compile_nop(instr: Instruction):
    def op(m):
        pass
    return op


# -- terminators ------------------------------------------------------------


def _compile_jmp(instr: Instruction, src: int, costs: CostModel):
    taken = costs.branch_taken
    target_op = instr.operands[0]
    if isinstance(target_op, Imm):
        target = target_op.value & MASK32

        def op(m):
            ts = m.trace_sink
            if ts is not None:
                ts.transfer(src, target, "jump")
            m.cycles += taken
            m.cpu.eip = target
        return op
    rd = _read_closure(target_op)
    if rd is None:
        return None

    def op(m):
        target = rd(m)
        ts = m.trace_sink
        if ts is not None:
            ts.transfer(src, target, "jump")
        m.cycles += taken
        m.cpu.eip = target
    return op


def _compile_jcc(instr: Instruction, src: int, next_eip: int,
                 costs: CostModel):
    target_op = instr.operands[0]
    if not isinstance(target_op, Imm):
        return None
    target = target_op.value & MASK32
    cond = _CC_FNS[instr.cc]
    taken = costs.branch_taken

    def op(m):
        cpu = m.cpu
        ts = m.trace_sink
        if cond(cpu.flags):
            if ts is not None:
                ts.transfer(src, target, "jump")
            m.cycles += taken
            cpu.eip = target
        else:
            if ts is not None:
                ts.transfer(src, next_eip, "fallthrough")
            cpu.eip = next_eip
    return op


def _compile_call(instr: Instruction, src: int, next_eip: int,
                  costs: CostModel):
    target_op = instr.operands[0]
    if isinstance(target_op, ImportRef):
        name = target_op.name
        import_cost = costs.import_call

        def op(m):
            m.cycles += import_cost
            ts = m.trace_sink
            if ts is not None:
                ts.transfer(src, next_eip, "import")
            result = m.libc.call(name,
                                 StackArgs(m.mem, m.cpu.regs[ESP_INDEX]))
            m.cpu.regs[0] = result & MASK32
            m.cpu.eip = next_eip
        return op
    if isinstance(target_op, Imm):
        target = target_op.value & MASK32

        def op(m):
            regs = m.cpu.regs
            esp = (regs[ESP_INDEX] - 4) & MASK32
            regs[ESP_INDEX] = esp
            m.mem.write(esp, 4, next_eip)
            ts = m.trace_sink
            if ts is not None:
                ts.transfer(src, target, "call")
            m.cpu.eip = target
        return op
    rd = _read_closure(target_op)
    if rd is None:
        return None

    def op(m):
        target = rd(m)
        regs = m.cpu.regs
        esp = (regs[ESP_INDEX] - 4) & MASK32
        regs[ESP_INDEX] = esp
        m.mem.write(esp, 4, next_eip)
        ts = m.trace_sink
        if ts is not None:
            ts.transfer(src, target, "call")
        m.cpu.eip = target
    return op


def _compile_ret(instr: Instruction, src: int):
    def op(m):
        regs = m.cpu.regs
        esp = regs[ESP_INDEX]
        target = m.mem.read(esp, 4)
        regs[ESP_INDEX] = (esp + 4) & MASK32
        if target == EXIT_SENTINEL:
            m._halted = regs[0]
            return
        ts = m.trace_sink
        if ts is not None:
            ts.transfer(src, target, "ret")
        m.cpu.eip = target
    return op


def _compile_hlt(instr: Instruction):
    def op(m):
        m._halted = m.cpu.regs[0]
    return op


def _compile(instr: Instruction, next_eip: int, costs: CostModel):
    """Specialize one instruction, or return None for the generic path."""
    mnem = instr.mnemonic
    src = instr.addr
    if mnem in ("mov", "movzx"):
        return _compile_mov(instr)
    if mnem == "movsx":
        return _compile_movsx(instr)
    if mnem == "lea":
        return _compile_lea(instr)
    if mnem == "push":
        return _compile_push(instr)
    if mnem == "pop":
        return _compile_pop(instr)
    if mnem in ("add", "sub", "and", "or", "xor"):
        return _compile_arith(instr)
    if mnem == "cmp":
        return _compile_cmp(instr)
    if mnem == "test":
        return _compile_test(instr)
    if mnem in ("inc", "dec"):
        return _compile_incdec(instr)
    if mnem in ("shl", "shr", "sar"):
        return _compile_shift(instr)
    if mnem in ("neg", "not"):
        return _compile_negnot(instr)
    if mnem == "setcc":
        return _compile_setcc(instr)
    if mnem == "leave":
        return _compile_leave(instr)
    if mnem == "nop":
        return _compile_nop(instr)
    if mnem == "jmp":
        return _compile_jmp(instr, src, costs)
    if mnem == "jcc":
        return _compile_jcc(instr, src, next_eip, costs)
    if mnem == "call":
        return _compile_call(instr, src, next_eip, costs)
    if mnem == "ret":
        return _compile_ret(instr, src)
    if mnem == "hlt":
        return _compile_hlt(instr)
    return None  # imul / cdq / idiv / anything new: generic handler


def _generic(handler, instr: Instruction, next_eip: int):
    """Fallback: run the per-step handler, first restoring eip so that
    trace sources and error messages match the reference path."""
    addr = instr.addr

    def op(m):
        m.cpu.eip = addr
        handler(m, instr, next_eip)
    return op


# ---------------------------------------------------------------------------
# Block cache
# ---------------------------------------------------------------------------


class SuperBlock:
    """One decoded, pre-compiled basic block."""

    __slots__ = ("addr", "addrs", "code", "cost", "count")

    def __init__(self, addr: int, addrs: tuple[int, ...],
                 code: tuple[Callable, ...], cost: int):
        self.addr = addr
        self.addrs = addrs   # executed-instruction addresses, in order
        self.code = code     # one closure per instruction, terminator last
        self.cost = cost     # static cycle cost of the whole block
        self.count = len(code)

    def __repr__(self) -> str:
        return f"<superblock {self.addr:#x}: {self.count} instrs>"


class BlockCache:
    """Compiled basic blocks for one image under one cost model.

    Shareable across any number of machines bound to the same image: the
    closures capture instruction constants only and receive the machine
    as an argument.
    """

    def __init__(self, disasm: Disassembler, costs: CostModel,
                 handlers: dict[str, Callable]):
        self.disasm = disasm
        self.costs = costs
        self.handlers = handlers
        self._blocks: dict[int, SuperBlock] = {}

    def block_at(self, addr: int) -> SuperBlock:
        block = self._blocks.get(addr)
        if block is None:
            block = self._build(addr)
            self._blocks[addr] = block
        return block

    def _build(self, addr: int) -> SuperBlock:
        _obs_count("emu.block_cache.compiled_blocks")
        instrs = self.disasm.basic_block(addr)
        costs = self.costs
        code = []
        cost = 0
        for instr in instrs:
            next_eip = instr.addr + instr.size
            compiled = _compile(instr, next_eip, costs)
            if compiled is None:
                handler = self.handlers.get(instr.mnemonic)
                if handler is None:
                    raise EmulationError(f"unimplemented {instr!r}")
                compiled = _generic(handler, instr, next_eip)
            code.append(compiled)
            cost += costs.instruction_cost(instr)
        return SuperBlock(addr, tuple(i.addr for i in instrs),
                          tuple(code), cost)


#: id(image) -> {cost model -> BlockCache}.  Keyed by identity (images are
#: unhashable dataclasses) with a finalizer that drops the entry when the
#: image is collected, so caches don't pin every binary ever executed.
_SHARED: dict[int, dict[CostModel, "BlockCache"]] = {}


def _drop_shared_entry(key: int) -> None:
    """Finalizer for a collected image: evict its compiled blocks."""
    per_image = _SHARED.pop(key, None)
    if per_image:
        dropped = sum(len(c._blocks) for c in per_image.values())
        _obs_count("emu.block_cache.evictions", dropped)


def shared_block_cache(image, costs: CostModel,
                       handlers: dict[str, Callable]) -> BlockCache:
    """The process-wide block cache for ``image`` under ``costs``.

    Every machine bound to the same image object reuses one cache, so a
    binary is decoded and compiled once per process no matter how many
    runs (tracing inputs, cycle measurements, output comparisons) touch
    it.
    """
    key = id(image)
    per_image = _SHARED.get(key)
    if per_image is None:
        per_image = {}
        _SHARED[key] = per_image
        weakref.finalize(image, _drop_shared_entry, key)
    cache = per_image.get(costs)
    if cache is None:
        cache = BlockCache(Disassembler(image), costs, handlers)
        per_image[costs] = cache
    return cache
