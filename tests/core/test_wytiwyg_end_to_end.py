"""The full WYTIWYG pipeline on small programs (paper §6.1-style)."""

import pytest

from repro.core import wytiwyg_recompile
from repro.emu import run_binary
from repro.lifting import EMUSTACK_NAME
from tests.conftest import FEATURE_SOURCE, FEATURE_STDOUT, \
    KERNEL_SOURCE, KERNEL_STDOUT, cached_image

CONFIGS = (("gcc12", "3"), ("gcc12", "0"), ("gcc44", "3"),
           ("clang16", "3"))


@pytest.mark.parametrize("compiler,opt", CONFIGS)
def test_feature_program_recompiles_correctly(compiler, opt):
    image = cached_image(FEATURE_SOURCE, compiler, opt)
    result = wytiwyg_recompile(image, [[]])
    assert not result.fallback
    recovered = run_binary(result.recovered)
    assert recovered.stdout == FEATURE_STDOUT
    assert recovered.exit_code == 0


def test_emulated_stack_removed_after_symbolization():
    image = cached_image(KERNEL_SOURCE)
    result = wytiwyg_recompile(image, [[]])
    assert EMUSTACK_NAME not in result.module.globals
    for func in result.module.functions.values():
        for param in func.params:
            assert param.name != "sp"


def test_symbolized_faster_than_unsymbolized():
    from repro.baselines import binrec_recompile
    image = cached_image(FEATURE_SOURCE)
    native = run_binary(image)
    nosym = run_binary(binrec_recompile(image.stripped(), [[]]))
    sym = run_binary(wytiwyg_recompile(image, [[]]).recovered)
    assert sym.cycles < nosym.cycles
    assert sym.stdout == nosym.stdout == native.stdout


def test_accuracy_report_produced():
    image = cached_image(KERNEL_SOURCE)
    result = wytiwyg_recompile(image, [[]])
    assert result.accuracy is not None
    assert result.accuracy.total_objects > 0
    assert result.accuracy.counts["matched"] > 0
    assert 0.0 <= result.accuracy.precision <= 1.0
    assert 0.0 <= result.accuracy.recall <= 1.0


def test_layouts_recover_known_array():
    # The kernel program has int arr[8] (32 bytes) in main (inlined into
    # the entry function at O3).
    image = cached_image(KERNEL_SOURCE)
    result = wytiwyg_recompile(image, [[]])
    sizes = {v.end - v.start
             for layout in result.layouts.values()
             for v in layout.variables}
    assert 32 in sizes


def test_untraced_path_traps_after_recompilation():
    from repro.cc import compile_source
    src = r'''
int main() {
    int x = read_int();
    if (x > 100) { printf("big\n"); return 1; }
    printf("small\n");
    return 0;
}
'''
    image = compile_source(src, "gcc12", "3", "t")
    result = wytiwyg_recompile(image, [[5]])
    ok = run_binary(result.recovered, [7])
    assert ok.stdout == b"small\n"
    trap = run_binary(result.recovered, [999])
    assert trap.exit_code in (198, 199)  # coverage failure, not garbage


def test_incremental_relifting_fixes_coverage():
    from repro.cc import compile_source
    src = r'''
int main() {
    int x = read_int();
    if (x > 100) { printf("big\n"); return 1; }
    printf("small\n");
    return 0;
}
'''
    image = compile_source(src, "gcc12", "3", "t")
    result = wytiwyg_recompile(image, [[5], [999]])
    assert run_binary(result.recovered, [999]).stdout == b"big\n"
    assert run_binary(result.recovered, [7]).stdout == b"small\n"


def test_multiple_inputs_merge_bounds():
    from repro.cc import compile_source
    src = r'''
int main() {
    int buf[16];
    int n = read_int();
    int i;
    for (i = 0; i < n; i++) buf[i] = i;
    int s = 0;
    for (i = 0; i < n; i++) s += buf[i];
    printf("%d\n", s);
    return 0;
}
'''
    image = compile_source(src, "gcc12", "3", "t")
    # A short run alone under-covers the array; together with a longer
    # run the variable must reach its full observed extent.
    result = wytiwyg_recompile(image, [[3], [16]])
    sizes = {v.end - v.start
             for layout in result.layouts.values()
             for v in layout.variables}
    assert any(s >= 64 for s in sizes)
    assert run_binary(result.recovered, [10]).stdout == b"45\n"
