"""repro — a full-system reproduction of *What You Trace is What You
Get: Dynamic Stack-Layout Recovery for Binary Recompilation* (Parzefall
et al., ASPLOS 2024).

The package contains every layer the paper's system needs, built from
scratch:

========================  ====================================================
``repro.isa``             32-bit x86-like ISA: assembler, encoder, disassembler
``repro.binary``          binary image container (sections, imports, debug)
``repro.emu``             machine emulator, control-flow tracer, libc model
``repro.cc``              MiniC compiler with toolchain personalities
``repro.ir``              compiler-level IR, verifier, interpreter
``repro.opt``             optimizer (mem2reg, GVN, DCE, inlining, ...)
``repro.lifting``         trace-based lifter (the BinRec analogue)
``repro.core``            **WYTIWYG**: refinement lifting & stack symbolization
``repro.baselines``       BinRec (no-symbolize) and SecondWrite (static)
``repro.recompile``       IR -> machine backend shared by compiler & recompiler
``repro.workloads``       the SPECint-2006-like benchmark suite
``repro.evaluation``      Table 1 / Figure 6 / Figure 7 harnesses
========================  ====================================================

Quickstart::

    from repro import compile_source, run_binary, wytiwyg_recompile

    image = compile_source(C_SOURCE, compiler="gcc12", opt_level="3")
    native = run_binary(image, inputs)
    result = wytiwyg_recompile(image, [inputs])
    recovered = run_binary(result.recovered, inputs)
    assert recovered.stdout == native.stdout
"""

from .baselines import binrec_recompile, secondwrite_recompile
from .binary import BinaryImage
from .cc import compile_source, compile_to_ir, personality
from .core import (
    WytiwygResult,
    incremental_recompile,
    wytiwyg_lift,
    wytiwyg_recompile,
)
from .emu import run_binary, trace_binary
from .errors import ReproError
from .lifting import lift_binary, lift_traces
from .recompile import recompile_ir
from .store import ArtifactStore, Campaign
from .workloads import WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore", "BinaryImage", "Campaign", "ReproError",
    "WORKLOADS", "WytiwygResult",
    "__version__", "binrec_recompile", "compile_source", "compile_to_ir",
    "incremental_recompile",
    "lift_binary", "lift_traces", "personality", "recompile_ir",
    "run_binary", "secondwrite_recompile", "trace_binary",
    "wytiwyg_lift", "wytiwyg_recompile",
]
