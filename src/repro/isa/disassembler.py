"""Disassembler for the repro ISA.

Provides decode-at-address (what the emulator and dynamic tracer use — the
paper's approach never requires a static linear sweep to be correct) plus a
whole-text linear listing used for debugging and by the static baseline
(:mod:`repro.baselines.secondwrite`), which, like real static rewriters,
depends on the text section decoding linearly.
"""

from __future__ import annotations

from ..binary.image import BinaryImage
from ..errors import EncodingError
from . import encoding
from .instructions import Instruction

#: Mnemonics that end a basic block: everything after them depends on
#: dynamic control flow.  ``call`` terminates blocks too — import calls
#: fall through, but internal calls transfer, and keeping the boundary
#: uniform keeps block-level trace accounting exact.
BLOCK_TERMINATORS = frozenset({"jmp", "jcc", "call", "ret", "hlt"})


class Disassembler:
    """Caching instruction decoder over a binary image's text section."""

    def __init__(self, image: BinaryImage):
        self._image = image
        self._text = image.text
        self._cache: dict[int, Instruction] = {}
        self._blocks: dict[int, tuple[Instruction, ...]] = {}

    def at(self, addr: int) -> Instruction:
        """Decode (with caching) the instruction at virtual address."""
        cached = self._cache.get(addr)
        if cached is not None:
            return cached
        if not self._text.contains(addr):
            raise EncodingError(f"address {addr:#x} outside text section")
        instr, _size = encoding.decode(self._text.data,
                                       addr - self._text.base,
                                       self._image.imports)
        instr.addr = addr
        self._cache[addr] = instr
        return instr

    def basic_block(self, addr: int) -> tuple[Instruction, ...]:
        """Decode (with caching) the basic block starting at ``addr``.

        The block is the straight-line run of instructions from ``addr``
        up to and including the first control-flow instruction.  Within a
        block, execution is linear, so the whole tuple can be decoded once
        and replayed without further address lookups.
        """
        cached = self._blocks.get(addr)
        if cached is not None:
            return cached
        instrs: list[Instruction] = []
        cursor = addr
        while True:
            instr = self.at(cursor)
            instrs.append(instr)
            if instr.mnemonic in BLOCK_TERMINATORS:
                break
            cursor += instr.size
        block = tuple(instrs)
        self._blocks[addr] = block
        return block

    def linear(self) -> list[Instruction]:
        """Linear sweep of the whole text section."""
        out = []
        addr = self._text.base
        while addr < self._text.end:
            instr = self.at(addr)
            out.append(instr)
            addr += instr.size
        return out

    def listing(self) -> str:
        """Human-readable disassembly with symbol annotations."""
        by_addr = {a: n for n, a in self._image.symbols.items()}
        lines = []
        for instr in self.linear():
            name = by_addr.get(instr.addr)
            if name is not None:
                lines.append(f"{name}:")
            lines.append(f"  {instr!r}")
        return "\n".join(lines)
