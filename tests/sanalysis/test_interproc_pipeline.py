"""End-to-end tests for the interprocedural corroboration gate.

``examples/escape.c`` is the motivating case: main passes ``&buf`` to a
recursive callee, so every array access happens in a different frame
than the one that owns the array.  Per-function corroboration is blind
— main never touches buf, and fill's accesses are parameter-relative —
so an under-tracing input (n=3 of 8) recovers a truncated variable
without a single intra-function finding.  The call-graph summary pass
must translate fill's footprint into main's frame and flag the split,
name the exact call chain, and stay byte-for-byte out of the way when
the gate passes or is disabled.
"""

import json
from pathlib import Path

import pytest

from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE, cached_image
from repro import obs
from repro.core.driver import wytiwyg_lift, wytiwyg_recompile
from repro.emu import run_binary, trace_binary
from repro.errors import CheckError

ESCAPE_SOURCE = (Path(__file__).resolve().parents[2]
                 / "examples" / "escape.c").read_text()


@pytest.fixture(scope="module")
def escape_image():
    return cached_image(ESCAPE_SOURCE, name="escape")


def lift_report(image, inputs, **kwargs):
    traces = trace_binary(image.stripped(), inputs)
    return wytiwyg_lift(traces, **kwargs)


# -- the under-traced escaping array -----------------------------------------


def test_undertraced_escape_is_flagged_with_call_chain(escape_image):
    _module, _layouts, _notes, report = lift_report(escape_image, [[3]])
    splits = report.by_kind("escaped-split")
    assert len(splits) == 1, [f.render() for f in report.findings]
    finding = splits[0]
    assert finding.severity == "error"
    assert "escapes via" in finding.message
    chain = finding.provenance["chain"]
    assert len(chain) == 2
    assert all(name.startswith("fn_") for name in chain)
    # The region the callee can reach extends past the traced variable.
    lo, hi = finding.provenance["region"]
    v_lo, v_hi = finding.provenance["variable"]
    assert lo <= v_lo and hi > v_hi


def test_gate_off_is_blind_to_the_split(escape_image, monkeypatch):
    monkeypatch.setenv("REPRO_INTERPROC", "0")
    _m, _l, _n, report = lift_report(escape_image, [[3]])
    assert report.by_kind("escaped-split") == []
    assert report.errors == [], [f.render() for f in report.errors]


def test_full_trace_corroborates_cleanly(escape_image):
    _m, _l, _n, report = lift_report(escape_image, [[8]])
    assert report.by_kind("escaped-split") == []
    assert report.by_kind("extern-divergence") == []
    assert report.errors == [], [f.render() for f in report.errors]


def test_widening_repairs_the_escaped_split(escape_image):
    _m, layouts, _n, report = lift_report(escape_image, [[3]],
                                          static_widen=True)
    applied = [w for w in report.widenings if w["applied"]]
    assert any("escaped pointer footprint" in w["reason"]
               for w in applied), report.widenings
    # Re-corroboration after the repair: the split is resolved.
    assert report.by_kind("escaped-split") == []
    # The widened caller variable now covers the callee's whole reach.
    span = max(v.end - v.start
               for layout in layouts.values()
               for v in layout.variables)
    assert span >= 32


def test_widened_recompile_matches_on_held_out_inputs(escape_image):
    result = wytiwyg_recompile(escape_image, [[3]],
                               collect_accuracy=False,
                               static_widen=True)
    assert not result.fallback
    for held_out in ([8], [5], [0]):
        want = run_binary(escape_image, held_out)
        got = run_binary(result.recovered, held_out)
        assert got.stdout == want.stdout, held_out
        assert got.exit_code == want.exit_code


# -- the gate is pure observation when it passes -----------------------------


def _image_doc(image):
    doc = json.loads(image.to_json())
    doc.pop("metadata", None)
    return doc


def test_recompile_is_byte_identical_with_gate_on_and_off(
        escape_image, monkeypatch):
    on = wytiwyg_recompile(escape_image, [[8]],
                           collect_accuracy=False)
    monkeypatch.setenv("REPRO_INTERPROC", "0")
    off = wytiwyg_recompile(escape_image, [[8]],
                            collect_accuracy=False)
    assert _image_doc(on.recovered) == _image_doc(off.recovered)


# -- extern-signature recovery on the example corpus -------------------------


@pytest.mark.parametrize("source", [KERNEL_SOURCE, FEATURE_SOURCE])
def test_inferred_extern_signatures_agree_with_the_db(source):
    image = cached_image(source)
    _m, _l, _n, report = lift_report(image, [[]])
    assert report.by_kind("extern-divergence") == [], \
        [f.render() for f in report.by_kind("extern-divergence")]
    assert report.by_kind("extern-candidate") == []


# -- zero traced inputs ------------------------------------------------------


def test_zero_traced_inputs_is_a_check_error(escape_image):
    traces = trace_binary(escape_image.stripped(), [])
    with pytest.raises(CheckError, match="no traced inputs"):
        wytiwyg_lift(traces)


# -- observability -----------------------------------------------------------


def test_summary_counters_and_span(escape_image):
    obs.enable(reset=True)
    try:
        lift_report(escape_image, [[3]])
        doc = obs.export(obs.recorder())
    finally:
        obs.disable()
    counters = doc["metrics"]["counters"]
    assert counters.get("sanalysis.summary.computed", 0) >= 2
    assert counters.get("sanalysis.escape.findings", 0) >= 1
    spans = {s["name"] for s in obs.iter_spans(doc)}
    assert "sanalysis.interproc" in spans
    assert "sanalysis.summaries" in spans


def test_escape_chain_lands_in_the_ledger_and_explain(escape_image):
    led = obs.enable_ledger()
    try:
        result = wytiwyg_recompile(escape_image, [[3]], optimize=False,
                                   collect_accuracy=False,
                                   static_widen=True)
        escapes = [e for e in led.events
                   if e["kind"] == "sanalysis.escape"]
        assert escapes
        assert len(escapes[0]["chain"]) == 2
        func, widened = max(
            ((fname, var) for fname, layout in result.layouts.items()
             for var in layout.variables),
            key=lambda pair: pair[1].end - pair[1].start)
        prov = obs.explain_variable(led.events, func,
                                    (widened.start, widened.end),
                                    widened.name)
        splits = [e for e in prov.findings
                  if e["finding"] == "escaped-split"]
        assert splits and "escapes via" in splits[0]["message"]
        grown = [e for e in prov.widenings if e["applied"]]
        assert grown
        text = obs.render_provenance(prov)
        assert "escaped-split" in text
    finally:
        obs.disable_ledger()
