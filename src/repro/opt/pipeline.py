"""Standard optimization pipelines and the legacy fixed schedule.

``optimize_module`` is the LLVM ``opt`` analogue used by the MiniC
compiler personalities and by the recompiler after lifting/symbolization.
It normally dispatches to the incremental worklist engine in
:mod:`repro.opt.manager` (function-level change tracking, cross-stage
memoization); ``REPRO_PASS_BASELINE=1`` selects the legacy fixed
schedule kept verbatim below.  The two produce byte-identical output —
``tests/opt/test_pass_manager.py`` holds them to that.

Observability: when a :mod:`repro.obs` recorder is active, every pass
run records its wall time (timer ``opt.pass.<name>``) and instruction
delta (counters ``opt.pass.<name>.runs`` / ``.instrs_removed``); the
disabled path runs the passes back-to-back exactly as before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..ir.module import Function, Module
from ..obs import recorder as _obs_recorder
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .dse import eliminate_dead_stores
from .flagfuse import fuse_flags
from .gvn import eliminate_redundant_loads, global_value_numbering
from .inline import inline_functions
from .manager import (
    drop_unused_private_functions,
    pass_baseline_enabled,
    run_worklist,
)
from .mem2reg import promote_allocas
from .simplifycfg import simplify_cfg

__all__ = [
    "OptOptions", "drop_unused_private_functions", "optimize_function",
    "optimize_module",
]


@dataclass(frozen=True)
class OptOptions:
    """Knobs that differentiate pipelines (compiler personalities)."""

    level: int = 2                # 0..3
    inline: bool = True
    inline_threshold: int = 40
    gvn: bool = True              # dominator-scoped CSE
    load_elim: bool = True        # alias-driven load forwarding
    dse: bool = True
    rounds: int = 3

    @classmethod
    def o0(cls) -> "OptOptions":
        return cls(level=0, inline=False, gvn=False, load_elim=False,
                   dse=False, rounds=0)

    @classmethod
    def o1(cls) -> "OptOptions":
        return cls(level=1, inline=False, gvn=False, load_elim=True,
                   dse=True, rounds=2)

    @classmethod
    def o2(cls) -> "OptOptions":
        return cls(level=2, rounds=2)

    @classmethod
    def o3(cls) -> "OptOptions":
        return cls(level=3, inline_threshold=80, rounds=3)


def _function_passes(opts: OptOptions, module: Module | None):
    """The per-round pass sequence as (name, callable) pairs."""
    passes = [
        ("simplifycfg", simplify_cfg),
        ("mem2reg", promote_allocas),
        ("constfold", fold_constants),
        ("flagfuse", fuse_flags),
    ]
    if opts.gvn:
        passes.append(("gvn", global_value_numbering))
    if opts.load_elim:
        passes.append(
            ("loadelim", lambda f: eliminate_redundant_loads(f, module)))
    if opts.dse:
        passes.append(
            ("dse", lambda f: eliminate_dead_stores(f, module)))
    passes.append(("dce", eliminate_dead_code))
    passes.append(("simplifycfg", simplify_cfg))
    return passes


def _ninstrs(func: Function) -> int:
    return sum(len(b.instrs) for b in func.blocks)


def optimize_function(func: Function, module: Module | None = None,
                      options: OptOptions | None = None) -> None:
    opts = options or OptOptions()
    if opts.level == 0:
        return
    passes = _function_passes(opts, module)
    rec = _obs_recorder()
    for _ in range(max(opts.rounds, 1)):
        changed = False
        if rec is None:
            for _name, run in passes:
                changed |= run(func)
        else:
            registry = rec.registry
            for name, run in passes:
                before = _ninstrs(func)
                start = time.perf_counter()
                changed |= run(func)
                registry.timer(f"opt.pass.{name}").add(
                    time.perf_counter() - start)
                registry.count(f"opt.pass.{name}.runs")
                delta = before - _ninstrs(func)
                if delta:
                    registry.count(f"opt.pass.{name}.instrs_removed",
                                   delta)
        if not changed:
            break


def optimize_module(module: Module,
                    options: OptOptions | None = None,
                    jobs: int | None = None) -> None:
    """Optimize every function of ``module``.

    ``jobs`` fans the worklist engine's per-function visits over the
    shared fork pool (default ``$REPRO_OPT_JOBS``, i.e. serial); output
    is byte-identical for any job count.  The baseline schedule is
    always serial.
    """
    opts = options or OptOptions()
    if opts.level == 0:
        return
    if pass_baseline_enabled():
        _optimize_module_baseline(module, opts)
        return
    run_worklist(module, opts, jobs=jobs)


def _optimize_module_baseline(module: Module, opts: OptOptions) -> None:
    """The pre-worklist fixed schedule: every function every time, and a
    full-module re-run after any inlining."""
    for func in module.functions.values():
        optimize_function(func, module, opts)
    if opts.inline:
        rec = _obs_recorder()
        if rec is None:
            inlined = inline_functions(
                module, max_callee_size=opts.inline_threshold)
        else:
            before = sum(_ninstrs(f) for f in module.functions.values())
            start = time.perf_counter()
            inlined = inline_functions(
                module, max_callee_size=opts.inline_threshold)
            registry = rec.registry
            registry.timer("opt.pass.inline").add(
                time.perf_counter() - start)
            registry.count("opt.pass.inline.runs")
            delta = before - sum(_ninstrs(f)
                                 for f in module.functions.values())
            if delta:
                registry.count("opt.pass.inline.instrs_removed", delta)
        if inlined:
            for func in module.functions.values():
                optimize_function(func, module, opts)
    drop_unused_private_functions(module)
