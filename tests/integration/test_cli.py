"""The ``python -m repro`` command-line interface."""


import pytest

from repro.__main__ import main

SOURCE = r"""
int main() {
    int n = read_int();
    printf("double=%d\n", n * 2);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return path


def test_compile_run_roundtrip(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    assert main(["compile", str(source_file), "-o", str(image)]) == 0
    assert main(["run", str(image), "--input", "int:21"]) == 0
    out = capsys.readouterr().out
    assert "double=42" in out
    assert "[exit 0" in out


def test_recompile_wytiwyg(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    assert main(["recompile", str(image), "-o", str(recovered),
                 "--input", "int:5"]) == 0
    assert main(["run", str(recovered), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "double=10" in out


def test_recompile_binrec(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["recompile", str(image), "-o", str(recovered),
          "--pipeline", "binrec", "--input", "int:5"])
    main(["run", str(recovered), "--input", "int:5"])
    assert "double=10" in capsys.readouterr().out


def test_layout_command(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image),
          "--compiler", "gcc44"])
    assert main(["layout", str(image), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "fn_" in out and "bytes" in out


def test_multiple_input_runs(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["run", str(image), "--input", "int:1", "/", "int:2"])
    out = capsys.readouterr().out
    assert "double=2" in out and "double=4" in out


def test_bad_input_spec_rejected(source_file, tmp_path):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    with pytest.raises(SystemExit):
        main(["run", str(image), "--input", "float:1"])


UNDERTRACE = r"""
int main() {
    int buf[16];
    int i;
    int n;
    n = read_int();
    for (i = 0; i < n; i++) buf[i] = i * 7;
    int s = 0;
    for (i = 0; i < n; i++) s += buf[i];
    printf("s=%d\n", s);
    return 0;
}
"""


@pytest.fixture
def undertrace_file(tmp_path):
    path = tmp_path / "under.c"
    path.write_text(UNDERTRACE)
    return path


def test_check_command_reports_coverage_gap(undertrace_file, tmp_path,
                                            capsys):
    image = tmp_path / "under.img.json"
    report_json = tmp_path / "check.json"
    main(["compile", str(undertrace_file), "-o", str(image)])
    # Warnings alone exit 0 by default, 1 under --strict.
    assert main(["check", str(image), "--input", "int:3",
                 "--json", str(report_json)]) == 0
    out = capsys.readouterr().out
    assert "coverage-gap" in out
    assert "warning" in out
    import json as _json
    doc = _json.loads(report_json.read_text())
    assert doc["counts"]["warning"] >= 1
    assert main(["check", str(image), "--input", "int:3",
                 "--strict"]) == 1


def test_check_command_clean_program_exits_zero(source_file, tmp_path,
                                                capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    assert main(["check", str(image), "--input", "int:5",
                 "--strict"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_recompile_check_strict_aborts(undertrace_file, tmp_path,
                                       capsys):
    image = tmp_path / "under.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(undertrace_file), "-o", str(image)])
    assert main(["recompile", str(image), "-o", str(recovered),
                 "--input", "int:3", "--check", "strict"]) == 1
    err = capsys.readouterr().err
    assert "static check gate" in err
    assert not recovered.exists()
