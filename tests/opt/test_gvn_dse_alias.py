"""Value numbering, load forwarding, dead stores, alias analysis."""

from repro.ir import (
    Builder,
    Const,
    Function,
    GlobalRef,
    GlobalVar,
    Load,
    Module,
    Store,
    run_module,
)
from repro.opt import (
    AliasAnalysis,
    eliminate_dead_stores,
    eliminate_redundant_loads,
    global_value_numbering,
)


def build(params=("p",)):
    m = Module()
    f = Function("main", list(params))
    m.add_function(f)
    m.entry_name = "main"
    m.add_global(GlobalVar("g", 16))
    return m, f, Builder(f)


def count(f, cls):
    return sum(1 for i in f.instructions() if isinstance(i, cls))


def test_gvn_merges_identical_arithmetic():
    m, f, b = build()
    b.position(f.add_block("entry"))
    a = b.add(f.params[0], Const(3))
    c = b.add(f.params[0], Const(3))
    b.ret([b.binop("xor", a, c)])
    global_value_numbering(f)
    from repro.ir import BinOp
    adds = [i for i in f.instructions()
            if isinstance(i, BinOp) and i.opcode == "add"]
    assert len(adds) == 1
    assert run_module(m).exit_code == 0


def test_gvn_respects_commutativity():
    m, f, b = build()
    b.position(f.add_block("entry"))
    a = b.add(f.params[0], Const(1))
    a2 = b.add(f.params[0], Const(2))
    x = b.binop("mul", a, a2)
    y = b.binop("mul", a2, a)
    b.ret([b.binop("sub", x, y)])
    global_value_numbering(f)
    from repro.ir import BinOp
    muls = [i for i in f.instructions()
            if isinstance(i, BinOp) and i.opcode == "mul"]
    assert len(muls) == 1


def test_store_to_load_forwarding():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(8)
    b.store(slot, Const(5))
    v = b.load(slot)
    b.ret([v])
    assert eliminate_redundant_loads(f, m)
    assert count(f, Load) == 0
    assert run_module(m).exit_code == 5


def test_aliasing_store_blocks_forwarding():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(8)
    b.store(slot, Const(5))
    b.store(f.params[0], Const(9))  # unknown pointer: may alias? no!
    v = b.load(slot)
    b.ret([v])
    # slot never escapes, so the unknown store CANNOT alias it and the
    # load still forwards.
    assert eliminate_redundant_loads(f, m)
    assert count(f, Load) == 0


def test_escaping_alloca_conservative():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(8)
    b.call_external("free", [slot])  # escapes
    b.store(slot, Const(5))
    b.store(f.params[0], Const(9))
    v = b.load(slot)
    b.ret([v])
    eliminate_redundant_loads(f, m)
    assert count(f, Load) == 1  # cannot forward across may-alias store


def test_call_clobbers_escaping_memory():
    m, f, b = build()
    b.position(f.add_block("entry"))
    v1 = b.load(GlobalRef("g"))
    b.call_external("rand", [])
    v2 = b.load(GlobalRef("g"))
    b.ret([b.binop("sub", v1, v2)])
    eliminate_redundant_loads(f, m)
    assert count(f, Load) == 2  # call may write the global


def test_dead_store_overwritten():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(1))
    b.store(slot, Const(2))
    v = b.load(slot)
    b.ret([v])
    assert eliminate_dead_stores(f, m)
    assert count(f, Store) == 1
    assert run_module(m).exit_code == 2


def test_never_read_alloca_stores_removed():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(16)
    b.store(b.add(slot, Const(4)), Const(1))
    b.store(b.add(slot, Const(8)), Const(2))
    b.ret([Const(0)])
    assert eliminate_dead_stores(f, m)
    assert count(f, Store) == 0


def test_alias_facts():
    m, f, b = build()
    b.position(f.add_block("entry"))
    a1 = b.alloca(8)
    a2 = b.alloca(8)
    p = b.add(a1, Const(4))
    b.store(p, Const(0))
    b.ret([Const(0)])
    aa = AliasAnalysis(f, m)
    assert not aa.may_alias(a1, 4, a2, 4)
    assert not aa.may_alias(a1, 4, GlobalRef("g"), 4)
    assert aa.may_alias(a1, 8, p, 4)       # overlapping ranges
    assert not aa.may_alias(a1, 4, p, 4)   # disjoint offsets
    assert not aa.clobbered_by_call(a1)    # never escapes


def test_alias_unknown_vs_escaping():
    m, f, b = build()
    b.position(f.add_block("entry"))
    a1 = b.alloca(8)
    b.call_external("free", [a1])
    b.ret([Const(0)])
    aa = AliasAnalysis(f, m)
    assert aa.may_alias(f.params[0], 4, a1, 4)  # escaped
    assert aa.clobbered_by_call(a1)
