"""Promotion of allocas to SSA registers (mem2reg).

This is the pass that gives stack symbolization its payoff: once WYTIWYG
has replaced emulated-stack traffic with distinct allocas, mem2reg turns
scalar locals into SSA values and the rest of the pipeline can finally
reason about them.  Against the opaque emulated-stack byte array the pass
can do nothing — exactly the contrast the paper evaluates.
"""

from __future__ import annotations

from ..ir.module import Block, Function
from ..ir.values import Alloca, Const, Instr, Load, Phi, Store, Unary, Value
from .analysis import CFG_ANALYSES, dominators
from .simplifycfg import remove_unreachable

#: Promotion rewrites loads/stores into phis and SSA uses but never adds,
#: removes, or retargets a block itself, so cached CFG analyses survive a
#: change.  The entry ``remove_unreachable`` call is the one exception;
#: it changes the block count, which voids retention automatically (see
#: :func:`repro.opt.analysis.retain_analyses`).
PRESERVES = CFG_ANALYSES


def promotable_allocas(func: Function) -> list[Alloca]:
    """Allocas in the entry block whose address never escapes.

    Every use must be a load from, or a store of an unrelated value to,
    the alloca's exact address, and access sizes must allow a single SSA
    value to carry the content (all loads no wider than every store).
    """
    candidates: dict[Alloca, dict] = {}
    for instr in func.entry.instrs:
        if isinstance(instr, Alloca):
            candidates[instr] = {"loads": [], "stores": [], "ok": True}
    if not candidates:
        return []
    for instr in func.instructions():
        for op in instr.operands():
            if isinstance(op, Alloca) and op in candidates:
                info = candidates[op]
                if isinstance(instr, Load) and instr.addr is op:
                    info["loads"].append(instr)
                elif isinstance(instr, Store) and instr.addr is op \
                        and instr.value is not op:
                    info["stores"].append(instr)
                else:
                    info["ok"] = False
    out = []
    for alloca, info in candidates.items():
        if not info["ok"]:
            continue
        max_load = max((ld.size for ld in info["loads"]), default=0)
        min_store = min((st.size for st in info["stores"]), default=4)
        if max_load <= min_store:
            out.append(alloca)
    return out


_EXT_FOR_SIZE = {1: "zext8", 2: "zext16"}


def promote_allocas(func: Function) -> bool:
    """Run mem2reg on all promotable allocas. Returns True if changed."""
    changed = remove_unreachable(func)
    allocas = promotable_allocas(func)
    if not allocas:
        return changed
    alloca_set = set(allocas)
    doms = dominators(func)

    # Phi placement at iterated dominance frontiers of defining blocks.
    phi_for: dict[tuple[Block, Alloca], Phi] = {}
    for alloca in allocas:
        def_blocks = {instr.block for instr in func.instructions()
                      if isinstance(instr, Store) and instr.addr is alloca}
        work = list(def_blocks)
        placed: set[Block] = set()
        while work:
            block = work.pop()
            for frontier in doms.frontiers.get(block, ()):
                if frontier in placed:
                    continue
                placed.add(frontier)
                phi = Phi([])
                phi.block = frontier
                frontier.instrs.insert(0, phi)
                phi_for[(frontier, alloca)] = phi
                work.append(frontier)

    replacements: dict[Instr, Value] = {}
    alloca_of_phi = {phi: a for (_b, a), phi in phi_for.items()}

    def rename(block: Block, state: dict[Alloca, Value]) -> None:
        for instr in list(block.instrs):
            if isinstance(instr, Phi):
                alloca = alloca_of_phi.get(instr)
                if alloca is not None:
                    state[alloca] = instr
                continue
            if isinstance(instr, Load) and instr.addr in alloca_set:
                alloca = instr.addr
                current = state.get(alloca, Const(0))
                if instr.size < 4:
                    ext = Unary(_EXT_FOR_SIZE[instr.size], current)
                    ext.block = block
                    pos = block.instrs.index(instr)
                    block.instrs[pos] = ext
                    replacements[instr] = ext
                else:
                    replacements[instr] = current
            elif isinstance(instr, Store) and instr.addr in alloca_set:
                state[instr.addr] = instr.value

        # Feed successor phis (each executed predecessor contributes one
        # incoming; duplicate edges contribute duplicates consistently).
        for succ in block.successors():
            for alloca in allocas:
                phi = phi_for.get((succ, alloca))
                if phi is not None:
                    phi.add_incoming(block,
                                     state.get(alloca, Const(0)))

    # Iterative dominator-tree preorder walk (lifted -O0 functions can
    # have very deep dominator trees; recursion would overflow).
    work: list[tuple[Block, dict[Alloca, Value]]] = [(func.entry, {})]
    while work:
        block, state = work.pop()
        rename(block, state)
        for child in doms.tree_children(block):
            work.append((child, dict(state)))

    # Drop dead loads/stores/allocas and resolve replacement chains.
    def resolve(v: Value) -> Value:
        while isinstance(v, Instr) and v in replacements:
            v = replacements[v]
        return v

    for block in func.blocks:
        new_instrs = []
        for instr in block.instrs:
            if instr in replacements and not isinstance(instr, Unary):
                continue  # plain load, folded away
            if isinstance(instr, Store) and instr.addr in alloca_set:
                continue
            if isinstance(instr, Alloca) and instr in alloca_set:
                continue
            instr.ops = [resolve(op) for op in instr.ops]
            new_instrs.append(instr)
        block.instrs = new_instrs
    func.invalidate()
    return True
