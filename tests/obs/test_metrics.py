"""Metrics registry: recording, serialization, cross-process merging."""

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, Profile


def test_histogram_summary_stats():
    h = Histogram()
    for v in (2.0, 8.0, 5.0):
        h.add(v)
    assert h.count == 3
    assert h.total == pytest.approx(15.0)
    assert (h.min, h.max) == (2.0, 8.0)
    assert h.mean == pytest.approx(5.0)
    doc = h.to_dict()
    assert doc == {"count": 3, "sum": pytest.approx(15.0), "min": 2.0,
                   "max": 8.0, "mean": pytest.approx(5.0)}


def test_empty_histogram_serializes_finite():
    assert Histogram().to_dict() == {"count": 0, "sum": 0.0, "min": 0.0,
                                     "max": 0.0, "mean": 0.0}


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.add(1.0)
    b.add(10.0)
    b.add(4.0)
    a.merge_dict(b.to_dict())
    assert a.count == 3
    assert (a.min, a.max) == (1.0, 10.0)
    a.merge_dict(Histogram().to_dict())  # empty merge is a no-op
    assert a.count == 3


def test_profile_top_and_hex_keys():
    p = Profile()
    p.add(0x401000, 5)
    p.add(0x402000, 9)
    p.add("helper")
    assert p.total == 15
    assert p.top(1) == [(0x402000, 9)]
    doc = p.to_dict(top=2)
    assert doc["unique"] == 3
    assert doc["top"] == [["0x402000", 9], ["0x401000", 5]]


def test_registry_records_every_kind():
    reg = MetricsRegistry()
    reg.count("c", 2)
    reg.count("c")
    reg.gauge("g", 7.5)
    reg.observe("h", 3.0)
    with reg.time("t"):
        pass
    reg.profile("p").add("k", 4)
    doc = reg.to_dict()
    assert doc["counters"] == {"c": 3}
    assert doc["gauges"] == {"g": 7.5}
    assert doc["histograms"]["h"]["count"] == 1
    assert doc["timers"]["t"]["count"] == 1
    assert doc["timers"]["t"]["sum"] >= 0.0
    assert doc["profiles"]["p"]["top"] == [["k", 4]]


def test_registry_merge_sums_and_preserves_totals():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.count("c", 1)
    b.count("c", 2)
    b.gauge("g", 9.0)
    b.observe("h", 4.0)
    for key, n in (("x", 6), ("y", 3), ("z", 1)):
        b.profile("p").add(key, n)
    # Export keeps only the top-1 profile entry; the remainder must
    # survive the merge as the "(other)" sentinel so totals still match.
    a.merge(b.to_dict(top=1))
    assert a.counters == {"c": 3}
    assert a.gauges == {"g": 9.0}
    assert a.histograms["h"].count == 1
    prof = a.profiles["p"]
    assert prof.counts == {"x": 6, "(other)": 4}
    assert prof.total == b.profiles["p"].total


def test_module_helpers_are_noops_when_disabled():
    obs.disable()
    obs.count("never")
    obs.gauge("never", 1.0)
    obs.observe("never", 1.0)
    with obs.timed("never"):
        pass
    assert obs.recorder() is None
    assert not obs.enabled()


def test_module_helpers_record_when_enabled():
    rec = obs.enable(reset=True)
    try:
        obs.count("c", 5)
        obs.gauge("g", 2.0)
        obs.observe("h", 1.5)
        with obs.timed("t"):
            pass
    finally:
        obs.disable()
    assert rec.registry.counters == {"c": 5}
    assert rec.registry.gauges == {"g": 2.0}
    assert rec.registry.histograms["h"].count == 1
    assert rec.registry.timers["t"].count == 1
