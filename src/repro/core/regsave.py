"""Refinement 1: dynamic saved-register / argument classification
(paper §4.1) and the signature-shrinking transform it enables.

On entry to every lifted function each virtual register receives a fresh
symbolic value.  The shadow plugin then observes how that symbol flows:

* stored to and reloaded from the function's own emulated-stack frame —
  harmless (a register save);
* used in any computation, compared, stored outside the frame, or passed
  to an external function — the register carries an **argument**;
* passed onward (still symbolic) into a callee — **forwarded**: a
  constraint "arg here iff arg there" resolved after tracing;
* present unmodified in the register file at return — restored/clean.

After classification, function signatures shrink to the true arguments
and the registers actually modified; at every call site the dropped
result positions are replaced by the caller's own pre-call values, which
is the paper's "preemptively save and restore these registers at all
call sites" rewritten into SSA-friendly form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import STACK_TOP
from ..ir.interp import Interpreter
from ..ir.module import Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Call,
    CallInd,
    Const,
    ICmp,
    Instr,
    Load,
    Param,
    Phi,
    Ret,
    Result,
    Store,
    Unary,
)
from ..lifting.translator import EMUSTACK_BASE, EMUSTACK_SIZE, REG_ORDER

#: Largest plausible frame extent used for the own-frame store test.
FRAME_LIMIT = 1 << 16


@dataclass(frozen=True)
class RegSym:
    """The symbolic entry value of one register in one activation."""

    frame_id: int
    func_name: str
    reg: str


@dataclass
class _FrameInfo:
    func_name: str
    sp0: int
    syms: dict[str, RegSym]
    incoming: list  # shadows passed by the caller, aligned with params


@dataclass
class RegSaveResult:
    """Classification outcome for a lifted module."""

    #: Registers that are true incoming arguments, per function.
    args: dict[str, set[str]] = field(default_factory=dict)
    #: Registers whose value is modified at return, per function.
    outputs: dict[str, set[str]] = field(default_factory=dict)
    #: Functions observed as indirect call targets (keep full signature).
    indirect_targets: set[str] = field(default_factory=set)

    def is_saved(self, func: str, reg: str) -> bool:
        return reg not in self.args.get(func, set()) and \
            reg not in self.outputs.get(func, set())


class RegSavePlugin:
    """Interpreter shadow plugin implementing the §4.1 analysis."""

    def __init__(self) -> None:
        self.used: dict[tuple[str, str], bool] = {}
        self.forwarded: dict[tuple[str, str],
                             set[tuple[str, str]]] = {}
        self.modified: dict[tuple[str, str], bool] = {}
        self.indirect_targets: set[str] = set()
        self.seen_functions: set[str] = set()
        self._frames: dict[int, _FrameInfo] = {}
        self._mem_shadow: dict[int, RegSym] = {}

    # -- plugin interface ---------------------------------------------------

    def call_enter(self, func: Function, frame_id: int, args: list[int],
                   arg_shadows: list):
        if not _is_lifted_signature(func):
            return None
        self.seen_functions.add(func.name)
        sp0 = args[0] if args else 0
        syms = {}
        shadows: list = [None] * len(args)
        for i, reg in enumerate(REG_ORDER):
            sym = RegSym(frame_id, func.name, reg)
            syms[reg] = sym
            shadows[i + 1] = sym
            incoming = arg_shadows[i + 1] if i + 1 < len(arg_shadows) \
                else None
            if isinstance(incoming, RegSym):
                # The caller's symbol is forwarded into this callee.
                self.forwarded.setdefault(
                    (incoming.func_name, incoming.reg),
                    set()).add((func.name, reg))
        self._frames[frame_id] = _FrameInfo(func.name, sp0, syms,
                                            list(arg_shadows))
        return shadows

    def call_exit(self, func: Function, frame_id: int,
                  ret_values: list[int], ret_shadows: list):
        info = self._frames.pop(frame_id, None)
        if info is None:
            return None
        translated: list = [None] * len(ret_shadows)
        for i, reg in enumerate(REG_ORDER[:len(ret_shadows)]):
            shadow = ret_shadows[i]
            own = info.syms[reg]
            if shadow is own:
                # Clean exit: the caller's value survives; hand the
                # caller back the shadow it passed in.
                incoming = info.incoming[i + 1] \
                    if i + 1 < len(info.incoming) else None
                translated[i] = incoming
            else:
                self.modified[(func.name, reg)] = True
        return translated

    def on_instr(self, frame_id: int, instr: Instr,
                 operand_shadows: list, result):
        for shadow in operand_shadows:
            if isinstance(shadow, RegSym):
                self.used[(shadow.func_name, shadow.reg)] = True
        return None

    def on_store(self, frame_id: int, instr: Instr, addr: int,
                 value: int, value_shadow) -> None:
        if isinstance(value_shadow, RegSym) and instr.size == 4:
            info = self._frames.get(frame_id)
            in_own_frame = (
                info is not None
                and info.sp0 - FRAME_LIMIT < addr < info.sp0
                and EMUSTACK_BASE <= addr < EMUSTACK_BASE + EMUSTACK_SIZE)
            in_native = addr >= STACK_TOP - (64 << 20)
            if in_own_frame or in_native:
                self._mem_shadow[addr] = value_shadow
            else:
                # Escapes the frame: globals, heap, or a caller frame.
                self.used[(value_shadow.func_name,
                           value_shadow.reg)] = True
                self._mem_shadow.pop(addr, None)
        else:
            self._mem_shadow.pop(addr, None)

    def on_load(self, frame_id: int, instr: Instr, addr: int,
                value: int):
        if instr.size == 4:
            return self._mem_shadow.get(addr)
        return None

    def on_callext(self, frame_id: int, instr: Instr,
                   arg_values: list[int], arg_shadows: list) -> None:
        for shadow in arg_shadows:
            if isinstance(shadow, RegSym):
                self.used[(shadow.func_name, shadow.reg)] = True

    def on_indirect_call(self, callee: Function) -> None:
        self.indirect_targets.add(callee.name)

    # -- resolution -----------------------------------------------------------

    def resolve(self) -> RegSaveResult:
        """Resolve forwarded-register constraints to a fixed point."""
        args: dict[str, set[str]] = {f: set()
                                     for f in self.seen_functions}
        for (func, reg), flag in self.used.items():
            if flag:
                args.setdefault(func, set()).add(reg)
        changed = True
        while changed:
            changed = False
            for (func, reg), targets in self.forwarded.items():
                if reg in args.setdefault(func, set()):
                    continue
                if any(treg in args.setdefault(tfunc, set())
                       for tfunc, treg in targets):
                    args[func].add(reg)
                    changed = True
        outputs: dict[str, set[str]] = {f: set()
                                        for f in self.seen_functions}
        for (func, reg), flag in self.modified.items():
            if flag:
                outputs.setdefault(func, set()).add(reg)
        return RegSaveResult(args, outputs, set(self.indirect_targets))


def _is_lifted_signature(func: Function) -> bool:
    return (len(func.params) == 1 + len(REG_ORDER)
            and func.params[0].name == "sp"
            and func.nresults == len(REG_ORDER))


def classify_registers(module: Module,
                       inputs: list[list[int | bytes]],
                       static_augment: bool = False) -> RegSaveResult:
    """Run the dynamic register classification over all traced inputs.

    With ``static_augment`` (hybrid mode, paper §7.2), the dynamic
    result is widened by an ABI-heuristic static read-before-write
    analysis, so registers consumed only on statically-added (untraced)
    paths are still classified as arguments.
    """
    plugin = RegSavePlugin()
    for input_items in inputs:
        Interpreter(module, input_items, shadow=plugin).run()
    result = plugin.resolve()
    if static_augment:
        static = classify_statically(module)
        for name, args in static.args.items():
            result.args.setdefault(name, set()).update(args)
        for name, outs in static.outputs.items():
            result.outputs.setdefault(name, set()).update(outs)
    return result


# -- static (ABI-heuristic) classification ----------------------------------
#
# Used standalone by the SecondWrite baseline and as the widening step of
# hybrid mode: callee-saved registers are never arguments; caller-saved
# registers are arguments iff read before written; eax returns the
# result.

_CALLER_SAVED = ("eax", "ecx", "edx")


def reads_before_write(func: Function, reg: str) -> bool:
    """Path-insensitive: does any path read vcpu.<reg> before writing it
    (ignoring the translator's entry parameter spill)?"""
    from collections import deque
    alloca = None
    for instr in func.entry.instrs:
        if isinstance(instr, Alloca) and instr.var_name == f"vcpu.{reg}":
            alloca = instr
            break
    if alloca is None:
        return False
    work = deque([(func.entry, False)])
    seen: set = set()
    while work:
        block, written = work.popleft()
        if (block, written) in seen:
            continue
        seen.add((block, written))
        for instr in block.instrs:
            if isinstance(instr, Store) and instr.addr is alloca:
                if isinstance(instr.value, Param):
                    continue  # parameter spill
                written = True
            elif isinstance(instr, Load) and instr.addr is alloca                     and not written:
                return True
        if block.is_terminated and not written:
            for succ in block.successors():
                work.append((succ, False))
    return False


def classify_statically(module: Module) -> RegSaveResult:
    """ABI-convention register classification (no execution needed)."""
    from .sp0fold import is_lifted_function
    result = RegSaveResult()
    for name, func in module.functions.items():
        if not is_lifted_function(func):
            continue
        args = {reg for reg in _CALLER_SAVED
                if reads_before_write(func, reg)}
        result.args[name] = args
        result.outputs[name] = {"eax"}
    return result


# ---------------------------------------------------------------------------
# Transform: shrink signatures according to the classification.
# ---------------------------------------------------------------------------


def apply_register_classification(module: Module,
                                  result: RegSaveResult) -> None:
    """Rewrite lifted signatures: keep true args, return modified regs.

    Functions observed as indirect-call targets keep the full register
    signature so every call site of an indirect call remains compatible.
    """
    plans: dict[str, tuple[list[str], list[str]]] = {}
    for name, func in module.functions.items():
        if not _is_lifted_signature(func) or name not in \
                result.args.keys() | result.outputs.keys():
            continue
        if name in result.indirect_targets:
            continue
        arg_regs = [r for r in REG_ORDER
                    if r in result.args.get(name, set())]
        out_regs = [r for r in REG_ORDER
                    if r in result.outputs.get(name, set())]
        plans[name] = (arg_regs, out_regs)

    # Rewrite call sites first (they reference the old Result layout).
    for func in module.functions.values():
        for block in func.blocks:
            calls = [i for i in block.instrs
                     if isinstance(i, Call) and i.callee.name in plans]
            for call in calls:
                _rewrite_call_site(func, call,
                                   plans[call.callee.name])

    # Then rewrite the functions themselves.
    for name, (arg_regs, out_regs) in plans.items():
        _rewrite_function(module.functions[name], arg_regs, out_regs)
    module.metadata["regsave"] = ",".join(
        f"{n}:{len(a)}a{len(o)}o" for n, (a, o) in sorted(plans.items()))


def _rewrite_call_site(caller: Function, call: Call,
                       plan: tuple[list[str], list[str]]) -> None:
    arg_regs, out_regs = plan
    old_args = call.args  # [sp, eax, ecx, edx, ebx, ebp, esi, edi]
    reg_index = {reg: i for i, reg in enumerate(REG_ORDER)}
    new_args = [old_args[0]] + [old_args[1 + reg_index[r]]
                                for r in arg_regs]

    # Replace dropped results with the caller's own pre-call values --
    # the paper's save/restore-at-call-site rewrite.
    replacements: dict[Instr, object] = {}
    new_index = {reg: i for i, reg in enumerate(out_regs)}
    block = call.block
    for instr in list(block.instrs):
        if isinstance(instr, Result) and instr.call is call:
            reg = REG_ORDER[instr.index]
            if reg not in new_index:
                replacements[instr] = old_args[1 + reg_index[reg]]
            elif len(out_regs) == 1:
                # Single-result convention: the call itself is the value.
                replacements[instr] = call
            else:
                instr.index = new_index[reg]
    if replacements:
        for b in caller.blocks:
            b.instrs = [i for i in b.instrs if i not in replacements]
            for instr in b.instrs:
                instr.ops = [replacements.get(op, op)
                             for op in instr.ops]
        caller.invalidate()
    callee_ref = call.ops[0]
    call.ops = [callee_ref, *new_args]
    call.nresults = len(out_regs)


def _rewrite_function(func: Function, arg_regs: list[str],
                      out_regs: list[str]) -> None:
    old_params = func.params
    new_names = ["sp", *arg_regs]
    func.params = [Param(n, i) for i, n in enumerate(new_names)]
    param_map: dict[Param, object] = {old_params[0]: func.params[0]}
    new_by_reg = {r: func.params[1 + i] for i, r in enumerate(arg_regs)}
    for i, reg in enumerate(REG_ORDER):
        old = old_params[1 + i]
        param_map[old] = new_by_reg.get(reg, Const(0))
    reg_index = {reg: i for i, reg in enumerate(REG_ORDER)}
    for block in func.blocks:
        for instr in block.instrs:
            instr.ops = [param_map.get(op, op) if isinstance(op, Param)
                         else op for op in instr.ops]
            if isinstance(instr, Ret) and len(instr.ops) == \
                    len(REG_ORDER):
                instr.ops = [instr.ops[reg_index[r]] for r in out_regs]
    func.nresults = len(out_regs)
