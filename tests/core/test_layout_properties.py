"""Property-based tests for the layout coalescing invariants."""

from hypothesis import given, strategies as st

from repro.core.layout import FrameVariable, build_frame_layout
from repro.core.runtime import StackVar, TracingRuntime


@st.composite
def ref_populations(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    refs = {}
    rt = TracingRuntime()
    for rid in range(n):
        offset = -4 * draw(st.integers(min_value=1, max_value=24))
        refs[rid] = (None, offset)
        if draw(st.booleans()):
            low = draw(st.integers(min_value=-8, max_value=8))
            size = draw(st.integers(min_value=1, max_value=32))
            rt.stack_vars[rid] = StackVar(rid, "f", offset, low,
                                          low + size)
        else:
            rt.stack_vars[rid] = StackVar(rid, "f", offset)
    links = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=4))
    rt.links = {frozenset(p) for p in links if p[0] != p[1]}
    return refs, rt


@given(ref_populations())
def test_every_frame_ref_is_assigned(population):
    refs, rt = population
    layout = build_frame_layout("f", refs, rt)
    for rid, (_v, off) in refs.items():
        if off < 0:
            assert rid in layout.ref_to_var


@given(ref_populations())
def test_variables_are_disjoint_and_sorted(population):
    refs, rt = population
    layout = build_frame_layout("f", refs, rt)
    spans = [(v.start, v.end) for v in layout.variables]
    assert spans == sorted(spans)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:], strict=False):
        assert e1 <= s2  # no overlap after coalescing


@given(ref_populations())
def test_defined_intervals_are_covered(population):
    refs, rt = population
    layout = build_frame_layout("f", refs, rt)
    for rid, (_v, off) in refs.items():
        if off >= 0:
            continue
        var = rt.stack_vars[rid]
        if not var.defined:
            continue
        home = layout.ref_to_var[rid]
        assert home.start <= off + var.low
        assert off + var.high <= home.end


@given(st.lists(st.tuples(st.integers(-64, 64),
                          st.integers(1, 16)), min_size=1, max_size=20))
def test_stackvar_touch_is_monotone(touches):
    var = StackVar(0, "f", -16)
    lows, highs = [], []
    for offset, size in touches:
        var.touch(offset, size)
        lows.append(var.low)
        highs.append(var.high)
    assert var.low == min(o for o, _s in touches)
    assert var.high == max(o + s for o, s in touches)
    # Bounds only ever widen.
    assert lows == sorted(lows, reverse=True) or len(set(lows)) <= len(lows)
    for a, b in zip(lows, lows[1:], strict=False):
        assert b <= a
    for a, b in zip(highs, highs[1:], strict=False):
        assert b >= a


def test_symmetric_offsets_get_distinct_names():
    # A local at sp0-8 and a stack arg at sp0+8 must not both be "sv_8":
    # symbolization names allocas after the variable, and a collision
    # silently merges two distinct objects.
    below = FrameVariable(-8, -4)
    above = FrameVariable(8, 12)
    assert below.name != above.name
    assert below.name == "sv_m8"
    assert above.name == "sv_p8"


def test_variable_names_unique_across_frame():
    variables = [FrameVariable(s, s + 4)
                 for s in (-16, -8, -4, 0, 4, 8, 16)]
    names = [v.name for v in variables]
    assert len(set(names)) == len(names)
