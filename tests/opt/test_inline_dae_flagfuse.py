"""Inlining, dead-argument elimination, and flag-pattern fusion."""

from repro.ir import (
    Builder,
    Call,
    Const,
    Function,
    ICmp,
    Module,
    Phi,
    run_module,
    verify_module,
)
from repro.opt import (
    fuse_flags,
    inline_functions,
    shrink_signatures,
)


def module_with_callee(nresults=1):
    m = Module()
    callee = Function("callee", ["a", "b"])
    callee.nresults = nresults
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    s = b.add(callee.params[0], callee.params[1])
    if nresults == 1:
        b.ret([s])
    else:
        b.ret([s, b.binop("mul", callee.params[0], callee.params[1])])
    m.add_function(callee)
    return m, callee


def test_inline_single_result():
    m, callee = module_with_callee()
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    call = mb.call("callee", [Const(2), Const(3)])
    mb.ret([call])
    m.add_function(main)
    m.entry_name = "main"
    assert inline_functions(m, max_callee_size=100)
    verify_module(m)
    assert not any(isinstance(i, Call)
                   for i in m.functions["main"].instructions())
    assert run_module(m).exit_code == 5


def test_inline_multi_result():
    m, callee = module_with_callee(nresults=2)
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    call = mb.call("callee", [Const(2), Const(3)], nresults=2)
    r0 = mb.result(call, 0)
    r1 = mb.result(call, 1)
    mb.ret([mb.add(r0, r1)])
    m.add_function(main)
    m.entry_name = "main"
    inline_functions(m, max_callee_size=100)
    verify_module(m)
    assert run_module(m).exit_code == 11


def test_inline_branching_callee_creates_phi():
    m = Module()
    callee = Function("pick", ["c"])
    b = Builder(callee)
    entry = callee.add_block("entry")
    t = callee.add_block("t")
    e = callee.add_block("e")
    b.position(entry)
    b.condbr(callee.params[0], t, e)
    b.position(t)
    b.ret([Const(10)])
    b.position(e)
    b.ret([Const(20)])
    m.add_function(callee)
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    call = mb.call("pick", [Const(1)])
    mb.ret([call])
    m.add_function(main)
    m.entry_name = "main"
    inline_functions(m, max_callee_size=100)
    verify_module(m)
    assert run_module(m).exit_code == 10


def test_recursive_callee_not_inlined():
    m = Module()
    rec = Function("rec", ["n"])
    b = Builder(rec)
    b.position(rec.add_block("entry"))
    call = b.call("rec", [rec.params[0]])
    b.ret([call])
    m.add_function(rec)
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    mb.ret([mb.call("rec", [Const(1)])])
    m.add_function(main)
    m.entry_name = "main"
    inline_functions(m, max_callee_size=100)
    assert any(isinstance(i, Call)
               for i in m.functions["main"].instructions())


def test_dead_params_dropped():
    m = Module()
    callee = Function("f", ["used", "unused"])
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    b.ret([callee.params[0]])
    m.add_function(callee)
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    mb.ret([mb.call("f", [Const(3), Const(99)])])
    m.add_function(main)
    m.entry_name = "main"
    assert shrink_signatures(m)
    assert len(m.functions["f"].params) == 1
    verify_module(m)
    assert run_module(m).exit_code == 3


def test_dead_results_dropped_through_recursion():
    # f returns (useful, junk); junk only flows through f's own rets.
    m = Module()
    f = Function("f", ["n"])
    f.nresults = 2
    b = Builder(f)
    entry = f.add_block("entry")
    base = f.add_block("base")
    rec = f.add_block("rec")
    b.position(entry)
    cond = b.icmp("sle", f.params[0], Const(0))
    b.condbr(cond, base, rec)
    b.position(base)
    b.ret([Const(0), Const(7)])
    b.position(rec)
    call = b.call("f", [b.sub(f.params[0], Const(1))], nresults=2)
    r0 = b.result(call, 0)
    r1 = b.result(call, 1)
    b.ret([b.add(r0, f.params[0]), r1])
    m.add_function(f)
    main = Function("main", [])
    mb = Builder(main)
    mb.position(main.add_block("entry"))
    call = mb.call("f", [Const(4)], nresults=2)
    r0 = mb.result(call, 0)
    mb.ret([r0])
    m.add_function(main)
    m.entry_name = "main"
    assert shrink_signatures(m)
    assert m.functions["f"].nresults == 1
    verify_module(m)
    assert run_module(m).exit_code == 10


def test_entry_function_protected():
    m = Module()
    main = Function("main", ["argc"])
    b = Builder(main)
    b.position(main.add_block("entry"))
    b.ret([Const(0)])
    m.add_function(main)
    m.entry_name = "main"
    shrink_signatures(m)
    assert len(main.params) == 1  # untouched


def test_flag_fusion_slt_tree():
    # The lifter's signed-less-than tree must fold to a single icmp.
    m = Module()
    f = Function("main", ["a"])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    a = f.params[0]
    res = b.add(a, Const(-10))             # a - 10
    sf = b.icmp("slt", res, Const(0))
    x1 = b.binop("xor", a, Const(10))
    x2 = b.binop("xor", a, res)
    of = b.binop("shr", b.binop("and", x1, x2), Const(31))
    pred = b.binop("xor", sf, of)
    b.ret([pred])
    from repro.ir import Interpreter
    baseline = [Interpreter(m).run(args=[v & 0xFFFFFFFF]).exit_code
                for v in (-5, 5, 10, 15, 2**31 - 1, -2**31)]
    assert fuse_flags(f)
    from repro.opt import eliminate_dead_code
    eliminate_dead_code(f)
    icmps = [i for i in f.instructions() if isinstance(i, ICmp)]
    assert len(icmps) == 1 and icmps[0].pred == "slt"
    after = [Interpreter(m).run(args=[v & 0xFFFFFFFF]).exit_code
             for v in (-5, 5, 10, 15, 2**31 - 1, -2**31)]
    assert after == baseline


def test_flag_fusion_inversion_and_combination():
    m = Module()
    f = Function("main", ["a", "b"])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    eq = b.icmp("eq", f.params[0], f.params[1])
    ne = b.binop("xor", eq, Const(1))
    lt = b.icmp("ult", f.params[0], f.params[1])
    le = b.binop("or", lt, eq)
    b.ret([b.binop("and", ne, le)])
    fuse_flags(f)
    preds = sorted(i.pred for i in f.instructions()
                   if isinstance(i, ICmp))
    assert "ult" in preds  # and(ule, ne) -> ult
    from repro.ir import Interpreter
    assert Interpreter(m).run(args=[1, 2]).exit_code == 1
    assert Interpreter(m).run(args=[2, 2]).exit_code == 0
    assert Interpreter(m).run(args=[3, 2]).exit_code == 0


def test_flag_fusion_zext_of_bool():
    m = Module()
    f = Function("main", ["a"])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    c = b.icmp("ne", f.params[0], Const(0))
    z = b.unary("zext8", c)
    c2 = b.icmp("eq", z, Const(0))
    b.ret([c2])
    fuse_flags(f)
    from repro.ir import Interpreter
    assert Interpreter(m).run(args=[0]).exit_code == 1
    assert Interpreter(m).run(args=[5]).exit_code == 0
