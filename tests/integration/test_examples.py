"""Every example script must run to completion (they self-assert)."""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "behaviour preserved" in out


def test_reoptimize_legacy(capsys):
    run_example("reoptimize_legacy.py")
    out = capsys.readouterr().out
    assert "WYTIWYG speedup over the legacy binary" in out


def test_stack_sanitizer(capsys):
    run_example("stack_sanitizer.py")
    out = capsys.readouterr().out
    assert "overflow caught" in out


def test_incremental_lifting(capsys):
    run_example("incremental_lifting.py")
    out = capsys.readouterr().out
    assert "coverage repaired" in out
