"""Sparse flat memory used by both the machine emulator and IR interpreter.

Memory is byte-addressed, little-endian, and demand-paged with zero-filled
pages, so freshly mapped stack/heap/BSS reads as zero.  Both execution
engines (machine code and lifted IR) share this model, which is what lets
the lifted program see the exact same address space the original binary
did — global data stays at its original addresses, as in BinRec.
"""

from __future__ import annotations

from ..binary.image import BinaryImage
from ..errors import EmulationError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Sparse little-endian byte memory over 4 KiB pages."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> PAGE_SHIFT] = page
        return page

    def read(self, addr: int, size: int) -> int:
        """Read an unsigned little-endian integer of ``size`` bytes."""
        if addr < 0 or addr + size > 0x100000000:
            raise EmulationError(f"read outside address space: {addr:#x}")
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._page(addr)
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write an integer as ``size`` little-endian bytes (truncating)."""
        if addr < 0 or addr + size > 0x100000000:
            raise EmulationError(f"write outside address space: {addr:#x}")
        value &= (1 << (8 * size)) - 1
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._page(addr)
            page[off:off + size] = value.to_bytes(size, "little")
        else:
            self.write_bytes(addr, value.to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            off = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - off)
            out += self._page(addr)[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            off = (addr + pos) & PAGE_MASK
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self._page(addr + pos)[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated byte string (used by the libc model)."""
        out = bytearray()
        for i in range(limit):
            b = self.read(addr + i, 1)
            if b == 0:
                return bytes(out)
            out.append(b)
        raise EmulationError(f"unterminated string at {addr:#x}")

    def load_image(self, image: BinaryImage) -> None:
        for section in image.sections:
            self.write_bytes(section.base, section.data)
