"""IR verifier catches malformed structures."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Builder,
    Call,
    Const,
    FuncRef,
    Function,
    GlobalRef,
    Module,
    Phi,
    Ret,
    verify_function,
    verify_module,
)


def valid_function():
    f = Function("f", ["x"])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([f.params[0]])
    return f


def test_valid_function_passes():
    verify_function(valid_function())


def test_missing_terminator_rejected():
    f = Function("f", [])
    f.add_block("entry")
    with pytest.raises(IRError):
        verify_function(f)


def test_foreign_value_rejected():
    f = valid_function()
    other = Function("g", ["y"])
    f.entry.instrs[-1].ops = [other.params[0]]
    with pytest.raises(IRError):
        verify_function(f)


def test_ret_arity_checked():
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([Const(0), Const(1)])
    with pytest.raises(IRError):
        verify_function(f)


def test_phi_preds_must_match():
    f = Function("f", [])
    b = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    u = f.add_block("u")
    b.position(e)
    b.br(t)
    b.position(t)
    phi = Phi([(u, Const(1))])  # wrong: pred is entry, not u
    phi.block = t
    t.instrs.insert(0, phi)
    b.ret([phi])
    with pytest.raises(IRError):
        verify_function(f)


def test_module_checks_call_arity():
    m = Module()
    callee = Function("callee", ["a", "b"])
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    b.ret([Const(0)])
    m.add_function(callee)

    caller = Function("caller", [])
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    call = b.call("callee", [Const(1)])  # too few args
    b.ret([call])
    m.add_function(caller)
    m.entry_name = "caller"
    with pytest.raises(IRError):
        verify_module(m)


def test_module_checks_unknown_global():
    m = Module()
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    v = b.load(GlobalRef("nope"))
    b.ret([v])
    m.add_function(f)
    m.entry_name = "f"
    with pytest.raises(IRError):
        verify_module(m)


def test_result_index_bounds():
    m = Module()
    callee = Function("c", [])
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    b.ret([Const(0), Const(1)])
    callee.nresults = 2
    m.add_function(callee)

    caller = Function("f", [])
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    call = b.call("c", [], nresults=2)
    bad = b.result(call, 5)
    b.ret([bad])
    m.add_function(caller)
    with pytest.raises(IRError):
        verify_module(m)
