"""Hybrid static+dynamic lifting (the paper's §7.2 future-work
direction, implemented as an extension)."""

import pytest

from repro.cc import compile_source
from repro.core import wytiwyg_recompile
from repro.emu import run_binary

BRANCHY = r'''
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;
}
int main() {
    int kind = read_int();
    int value = read_int();
    printf("score=%d\n", score(kind, value));
    return 0;
}
'''


@pytest.fixture(scope="module")
def image():
    return compile_source(BRANCHY, "gcc12", "3", "hybrid")


def test_plain_mode_traps_on_untraced(image):
    result = wytiwyg_recompile(image, [[0, 7]])
    assert run_binary(result.recovered, [0, 7]).stdout == b"score=14\n"
    assert run_binary(result.recovered, [1, 7]).exit_code in (198, 199)


def test_hybrid_mode_covers_untraced_branches(image):
    result = wytiwyg_recompile(image, [[0, 7]], hybrid=True)
    assert not result.fallback
    assert any("hybrid" in note for note in result.notes)
    assert run_binary(result.recovered, [0, 7]).stdout == b"score=14\n"
    assert run_binary(result.recovered, [1, 7]).stdout == b"score=107\n"
    assert run_binary(result.recovered, [2, 5]).stdout == b"score=-5\n"


def test_hybrid_preserves_traced_behaviour_on_suite_kernel(image):
    # Hybrid mode must never regress the traced-input guarantee.
    native = run_binary(image, [0, 9])
    result = wytiwyg_recompile(image, [[0, 9]], hybrid=True)
    recovered = run_binary(result.recovered, [0, 9])
    assert recovered.stdout == native.stdout
    assert recovered.exit_code == native.exit_code


def test_hybrid_does_not_follow_indirect_control_flow():
    src = r'''
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int main() {
    int k = read_int();
    int (*ops[2])(int, int);
    ops[0] = add;
    ops[1] = sub;
    printf("%d\n", ops[k](10, 3));
    return 0;
}
'''
    image = compile_source(src, "gcc12", "3", "t")
    result = wytiwyg_recompile(image, [[0]], hybrid=True)
    assert run_binary(result.recovered, [0]).stdout == b"13\n"
    # The indirect-call target for k=1 was never traced; hybrid's static
    # growth stops at indirect control flow, so this still traps rather
    # than guessing.
    assert run_binary(result.recovered, [1]).exit_code in (198, 199)


def test_hybrid_on_larger_program():
    from tests.conftest import FEATURE_SOURCE, FEATURE_STDOUT
    image = compile_source(FEATURE_SOURCE, "gcc12", "3", "t")
    result = wytiwyg_recompile(image, [[]], hybrid=True)
    assert run_binary(result.recovered).stdout == FEATURE_STDOUT


def test_hybrid_tags_static_blocks_for_provenance(image):
    # Statically-extended code carries no dynamic evidence; the lifted
    # function records which blocks came from static extension so
    # static-analysis findings can report their provenance.
    from repro.emu import trace_binary
    from repro.core.driver import wytiwyg_lift
    from repro.lifting.cfg import recover_cfg

    traces = trace_binary(image.stripped(), [[0, 7]])
    cfg = recover_cfg(traces, static_extend=True)
    assert cfg.static_addrs, "extension added no code"

    module, _layouts, _notes, _report = wytiwyg_lift(traces,
                                                     hybrid=True)
    tagged = [f for f in module.functions.values()
              if f.meta.get("static_blocks")]
    assert tagged, "no lifted function recorded static blocks"
    for func in tagged:
        names = {b.name for b in func.blocks}
        assert set(func.meta["static_blocks"]) <= names


def test_plain_lift_has_no_static_blocks(image):
    from repro.emu import trace_binary
    from repro.core.driver import wytiwyg_lift

    traces = trace_binary(image.stripped(), [[0, 7]])
    module, _layouts, _notes, _report = wytiwyg_lift(traces)
    assert not any(f.meta.get("static_blocks")
                   for f in module.functions.values())
