"""Execution substrate: memory, CPU, machine emulator, tracer, libc."""

from .costs import DEFAULT_COSTS, CostModel
from .cpu import CPU, Flags, signed32
from .libc import Args, ExitProgram, LibC, ListArgs, StackArgs, parse_format
from .machine import Machine, RunResult, run_binary
from .memory import Memory
from .tracer import TraceSet, Tracer, Transfer, trace_binary

__all__ = [
    "Args", "CPU", "CostModel", "DEFAULT_COSTS", "ExitProgram", "Flags",
    "LibC", "ListArgs", "Machine", "Memory", "RunResult", "StackArgs",
    "TraceSet", "Tracer", "Transfer", "parse_format", "run_binary",
    "signed32", "trace_binary",
]
