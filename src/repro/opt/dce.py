"""Dead code elimination: root-based mark and sweep.

Roots are instructions with side effects (stores, calls, probes) and
terminators; everything else is pure and survives only if reachable from
a root through operand edges.  This formulation removes dead phi webs —
loop-carried value cycles no root ever consumes — which use-count DCE
cannot see because the phis keep each other alive.
"""

from __future__ import annotations

from ..ir.module import Function
from ..ir.values import (
    Alloca,
    BinOp,
    ICmp,
    Instr,
    Load,
    Phi,
    Result,
    Unary,
)

from .analysis import CFG_ANALYSES

#: DCE deletes pure, rootless instructions; terminators are always roots
#: and the block list is untouched, so cached CFG analyses survive.
PRESERVES = CFG_ANALYSES

#: Pure instruction classes (loads are pure in this IR: no volatile).
_PURE = (BinOp, ICmp, Unary, Phi, Result, Load, Alloca)


def _is_removable(instr: Instr) -> bool:
    return isinstance(instr, _PURE)


def eliminate_dead_code(func: Function) -> bool:
    live: set[Instr] = set()
    work: list[Instr] = []
    for instr in func.instructions():
        if not _is_removable(instr):
            work.append(instr)
    while work:
        instr = work.pop()
        for op in instr.operands():
            if isinstance(op, Instr) and op not in live:
                live.add(op)
                work.append(op)
    dead = [instr for instr in func.instructions()
            if _is_removable(instr) and instr not in live]
    if not dead:
        return False
    dead_set = set(dead)
    for block in func.blocks:
        block.instrs = [i for i in block.instrs if i not in dead_set]
    func.invalidate()
    return True
