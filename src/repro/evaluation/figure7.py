"""Figure 7: stack-layout recovery accuracy per benchmark (paper §6.3).

For every traced function, each ground-truth stack object is classified
as matched / oversized / undersized / missed against the recovered
layout; the figure plots the per-benchmark ratios, and the text reports
overall precision and recall (paper: 94.4% / 87.6%).

The accuracy numbers come from the same WYTIWYG runs Table 1 measures
(the harness records them per cell); this module aggregates the cells of
the configuration the paper uses for ground truth comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.accuracy import CATEGORIES
from ..workloads import WORKLOADS
from .harness import sweep

#: Accuracy is evaluated on the modern -O3 inputs (compiler ground truth
#: for fully optimized binaries, like the paper's LLVM 16 comparison).
ACCURACY_CONFIG = ("gcc12", "3")


@dataclass
class Figure7:
    workloads: tuple = ()
    #: workload -> {category: count}
    counts: dict = field(default_factory=dict)
    #: workload -> number of recovered variables
    recovered: dict = field(default_factory=dict)

    def ratios(self, name: str) -> dict:
        counts = self.counts[name]
        total = sum(counts.values()) or 1
        return {c: counts[c] / total for c in CATEGORIES}

    @property
    def precision(self) -> float:
        matched = sum(c["matched"] for c in self.counts.values())
        recovered = sum(self.recovered.values())
        return matched / recovered if recovered else 0.0

    @property
    def recall(self) -> float:
        matched = sum(c["matched"] for c in self.counts.values())
        total = sum(sum(c.values()) for c in self.counts.values())
        return matched / total if total else 0.0

    def render(self) -> str:
        lines = ["  ".join([f"{'benchmark':>12s}"]
                           + [f"{c:>10s}" for c in CATEGORIES])]
        for name in self.workloads:
            ratios = self.ratios(name)
            lines.append("  ".join(
                [f"{name:>12s}"]
                + [f"{ratios[c]:10.2f}" for c in CATEGORIES]))
        lines.append(f"precision {self.precision:.1%}  "
                     f"recall {self.recall:.1%}")
        return "\n".join(lines)


def build_figure7(workload_names: tuple[str, ...] | None = None,
                  use_cache: bool = True, progress=None,
                  jobs: int = 1) -> Figure7:
    names = workload_names or tuple(WORKLOADS)
    cells = sweep(names, (ACCURACY_CONFIG,), use_cache=use_cache,
                  include_secondwrite=False, progress=progress,
                  jobs=jobs)
    fig = Figure7(names)
    for name in names:
        cell = cells[(name, *ACCURACY_CONFIG)]
        counts = {c: cell.accuracy_counts.get(c, 0) for c in CATEGORIES}
        fig.counts[name] = counts
        fig.recovered[name] = cell.accuracy_recovered
    return fig
