"""Cycle cost model shared by all performance measurements.

The paper reports wall-clock runtimes on a fixed host and uses them purely
as a proxy for IR quality (Section 6).  Our substitute is a deterministic
cycle model applied identically to input binaries and recompiled binaries,
so relative comparisons (the only quantity the paper interprets) are
meaningful.  Costs are loosely calibrated to a simple in-order pipeline:
memory traffic dominates, division is slow, calls carry frame overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import Instruction, Mem


@dataclass(frozen=True)
class CostModel:
    """Per-event cycle costs."""

    base: int = 1
    mem_read: int = 3
    mem_write: int = 3
    mul: int = 3
    div: int = 20
    branch_taken: int = 1
    call: int = 2
    ret: int = 2
    import_call: int = 12

    def instruction_cost(self, instr: Instruction) -> int:
        """Static portion of the cost of executing ``instr``.

        Dynamic extras (taken branches, import dispatch) are added by the
        machine as they occur.
        """
        cost = self.base
        m = instr.mnemonic
        if m == "imul":
            cost += self.mul
        elif m == "idiv":
            cost += self.div
        elif m == "push":
            cost += self.mem_write
        elif m == "pop":
            cost += self.mem_read
        elif m == "call":
            cost += self.call + self.mem_write  # return address push
        elif m == "ret":
            cost += self.ret + self.mem_read
        elif m == "leave":
            cost += self.mem_read  # pop of the saved frame pointer
        if m != "lea":  # lea computes an address without touching memory
            for i, op in enumerate(instr.operands):
                if isinstance(op, Mem):
                    if i == 0 and m in _WRITES_FIRST_OPERAND:
                        cost += self.mem_write
                        if m in _READ_MODIFY_WRITE:
                            cost += self.mem_read
                    else:
                        cost += self.mem_read
        return cost


_WRITES_FIRST_OPERAND = frozenset({
    "mov", "movzx", "movsx", "add", "sub", "and", "or", "xor", "neg",
    "not", "shl", "shr", "sar", "inc", "dec", "pop", "setcc",
})

_READ_MODIFY_WRITE = frozenset({
    "add", "sub", "and", "or", "xor", "neg", "not", "shl", "shr", "sar",
    "inc", "dec",
})

DEFAULT_COSTS = CostModel()
