#!/usr/bin/env python
"""Quickstart: compile a C program, recover its stack layout, recompile.

Walks the full WYTIWYG loop on a small program:

1. compile MiniC source with the gcc12 -O3 personality (the "input
   binary" — pretend its source is lost);
2. run it natively and record the observable behaviour;
3. trace + refinement-lift + symbolize + recompile with WYTIWYG;
4. run the recovered binary and compare;
5. print the recovered stack layout next to the compiler's ground truth.

Run: python examples/quickstart.py
"""

from repro import compile_source, run_binary, wytiwyg_recompile

SOURCE = r"""
struct point { int x; int y; };

int distance2(struct point *a, struct point *b) {
    int dx = a->x - b->x;
    int dy = a->y - b->y;
    return dx * dx + dy * dy;
}

int main() {
    struct point path[5];
    int i;
    for (i = 0; i < 5; i++) {
        path[i].x = i * 3;
        path[i].y = i * i;
    }
    int total = 0;
    for (i = 1; i < 5; i++)
        total += distance2(&path[i], &path[i - 1]);
    printf("total squared distance: %d\n", total);
    return 0;
}
"""


def main() -> None:
    print("== 1. compile the input binary (gcc12 -O3 personality)")
    image = compile_source(SOURCE, compiler="gcc12", opt_level="3",
                           name="quickstart")
    print(f"   text: {len(image.text.data)} bytes, "
          f"{len(image.ground_truth)} functions with ground truth")

    print("== 2. native run")
    native = run_binary(image)
    print(f"   stdout: {native.stdout.decode()!r}")
    print(f"   cycles: {native.cycles}")

    print("== 3. WYTIWYG: trace -> refine -> symbolize -> recompile")
    result = wytiwyg_recompile(image, [[]])
    for note in result.notes:
        print(f"   {note}")

    print("== 4. recovered binary run")
    recovered = run_binary(result.recovered)
    print(f"   stdout: {recovered.stdout.decode()!r}")
    print(f"   cycles: {recovered.cycles} "
          f"({recovered.cycles / native.cycles:.2f}x of native)")
    assert recovered.stdout == native.stdout
    assert recovered.exit_code == native.exit_code
    print("   behaviour preserved ✔")

    print("== 5. recovered stack layouts vs ground truth")
    truth = {g.entry: g for g in image.ground_truth}
    for name, layout in sorted(result.layouts.items()):
        if not layout.variables:
            continue
        entry = int(name[3:], 16) if name.startswith("fn_") else None
        gt = truth.get(entry)
        print(f"   {name}" + (f"  (originally "
                              f"{gt.func_name})" if gt else ""))
        for var in layout.variables:
            print(f"      recovered [{var.start:5d}, {var.end:5d}) "
                  f"({var.end - var.start} bytes)")
        if gt:
            for obj in gt.objects:
                if obj.kind == "var":
                    print(f"      truth     [{obj.offset:5d}, "
                          f"{obj.offset + obj.size:5d}) {obj.name}")
    if result.accuracy:
        acc = result.accuracy
        print(f"   accuracy: {acc.counts} "
              f"precision={acc.precision:.0%} recall={acc.recall:.0%}")


if __name__ == "__main__":
    main()
