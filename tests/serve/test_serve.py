"""The recompilation daemon: protocol, scheduling, campaigns."""

import json
import os
import shutil
import socket
import tempfile
import threading
import time

import pytest

from repro import compile_source, obs, run_binary
from repro.binary import BinaryImage
from repro.errors import ServeError
from repro.serve import PROTOCOL_VERSION, RecompileServer, ServeClient
from repro.store import ArtifactStore

SOURCE = r"""
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;
}

int main() {
    int kind = read_int();
    int value = read_int();
    printf("score=%d\n", score(kind, value));
    return 0;
}
"""


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "servetest")


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


def _wait_for_socket(path: str, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        time.sleep(0.02)
    raise RuntimeError(f"daemon socket {path} never appeared")


def _wait_for_daemon(path: str, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServeClient(path, timeout=timeout).ping()
        except ServeError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.02)


@pytest.fixture
def served(tmp_path):
    # AF_UNIX paths are length-limited (~104 bytes); pytest tmp paths
    # can exceed that, so the socket lives in a short mkdtemp dir.
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    server = RecompileServer(sock, store=ArtifactStore(tmp_path / "store"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _wait_for_socket(sock)
    client = ServeClient(sock, timeout=300)
    try:
        yield server, client
    finally:
        if not server._shutdown.is_set():
            try:
                client.shutdown()
            except ServeError:
                pass
        thread.join(timeout=10)
        server.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def test_ping_reports_protocol(served):
    server, client = served
    response = client.ping()
    assert response["pid"] == os.getpid()
    assert response["protocol"] == PROTOCOL_VERSION


def test_resubmission_is_served_from_store_byte_identical(served, image):
    server, client = served
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          return_artifact=True)
    assert first["served"] == "cold"
    assert first["stats"]["traces_recorded"] == 1

    second = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                           return_artifact=True)
    assert second["served"] == "store"
    assert second["stats"]["traces_recorded"] == 0
    assert second["artifact"] == first["artifact"]
    assert second["result_key"] == first["result_key"]

    recovered = BinaryImage.from_json(first["artifact"])
    assert run_binary(recovered, [0, 7]).stdout == b"score=14\n"


def test_campaign_accumulates_inputs_and_stores_source(served, image):
    server, client = served
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          campaign="demo")
    assert first["campaign"]["inputs"] == [[0, 7]]

    # The source is persisted, so follow-ups can omit the image; the
    # job runs over the accumulated input set.
    second = client.submit(inputs=[[2, 5]], campaign="demo",
                           return_artifact=True)
    assert second["served"] == "incremental"
    assert second["stats"]["traces_reused"] == 1
    assert second["stats"]["traces_recorded"] == 1
    assert second["campaign"]["inputs"] == [[0, 7], [2, 5]]
    assert second["campaign"]["jobs"] == 2
    assert second["coverage"]["inputs"] == 2

    summary = client.campaign("demo")["campaign"]
    assert summary["inputs"] == [[0, 7], [2, 5]]
    assert summary["coverage"] == second["coverage"]

    recovered = BinaryImage.from_json(second["artifact"])
    assert run_binary(recovered, [2, 5]).stdout == b"score=-5\n"
    assert run_binary(recovered, [0, 7]).stdout == b"score=14\n"


def test_status_reports_stats_and_warm_caches(served, image):
    server, client = served
    client.submit(image_json=image.to_json(), inputs=[[1, 7]])
    status = client.status()
    assert status["stats"]["jobs"] == 1
    assert status["stats"]["served_cold"] == 1
    assert status["store"]["put"] >= 2
    assert "memo_entries" in status["warm"]["opt"]
    assert "entries" in status["warm"]["lower"]
    assert status["campaigns"] == []


def test_errors_do_not_kill_the_daemon(served, image):
    server, client = served
    with pytest.raises(ServeError, match="unknown op"):
        client.request("frobnicate")
    with pytest.raises(ServeError, match="needs 'image'"):
        client.submit(inputs=[[1]])
    with pytest.raises(ServeError, match="unknown campaign"):
        client.campaign("absent")
    with pytest.raises(ServeError, match="at least one input"):
        client.submit(image_json=image.to_json())
    assert client.ping()["ok"]
    assert client.status()["stats"]["errors"] == 4
    assert client.status()["stats"]["jobs"] == 0


def test_campaign_rejects_image_rebinding(served, image):
    server, client = served
    other = compile_source(SOURCE.replace("* 2", "* 3"),
                           "gcc12", "3", "servetest2")
    client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                  campaign="demo")
    with pytest.raises(ServeError, match="bound to image"):
        client.submit(image_json=other.to_json(), inputs=[[1, 1]],
                      campaign="demo")


def test_malformed_request_line_gets_error_response(served):
    server, client = served
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(10)
    conn.connect(client.socket_path)
    conn.sendall(b"this is not json\n")
    raw = conn.makefile("rb").readline()
    conn.close()
    response = json.loads(raw)
    assert response["ok"] is False
    assert response["kind"] == "JSONDecodeError"


def test_job_events_reach_the_ledger(served, image):
    server, client = served
    led = obs.enable_ledger()
    client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                  campaign="demo")
    kinds = [e["kind"] for e in led.events]
    for kind in ("job.submitted", "job.started", "job.finished",
                 "store.miss", "store.put"):
        assert kind in kinds, kind
    finished = [e for e in led.events if e["kind"] == "job.finished"]
    assert finished[0]["served"] == "cold"
    assert finished[0]["job"] == 1


def test_stale_socket_is_replaced_live_socket_refused(served):
    server, client = served
    # A second daemon must refuse to steal the live socket.
    rival = RecompileServer(server.socket_path, store=server.store)
    with pytest.raises(ServeError, match="another daemon"):
        rival.serve_forever()
    assert client.ping()["ok"]  # the refusal left the live daemon alone
    # But a dead leftover socket file is silently replaced.
    sockdir = tempfile.mkdtemp(prefix="repro-stale-")
    stale = os.path.join(sockdir, "d.sock")
    try:
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(stale)
        dead.close()  # file remains, nobody listening
        fresh = RecompileServer(stale, store=server.store)
        thread = threading.Thread(target=fresh.serve_forever,
                                  daemon=True)
        thread.start()
        assert _wait_for_daemon(stale)["ok"]
        ServeClient(stale).shutdown()
        thread.join(timeout=10)
    finally:
        shutil.rmtree(sockdir, ignore_errors=True)


def test_shutdown_stops_the_daemon_and_removes_socket(served):
    server, client = served
    assert client.shutdown()["ok"]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and os.path.exists(
            client.socket_path):
        time.sleep(0.02)
    assert not os.path.exists(client.socket_path)
    with pytest.raises(ServeError, match="cannot reach"):
        client.ping()
