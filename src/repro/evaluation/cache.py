"""Content-addressed on-disk cache for expensive evaluation artifacts.

The sweep re-derives the same intermediate products again and again: the
same binary is traced for the native/binrec/wytiwyg measurements, and a
re-run after an unrelated change repeats every lift.  :class:`EvalCache`
stores pickled :class:`~repro.emu.tracer.TraceSet`s and recompiled
results keyed by a digest of the *content* that determines them — the
image's serialized form, the traced inputs, and an options tag — so a
hit is valid by construction and the cache never needs manual
invalidation when binaries change.

Since the artifact store landed (:mod:`repro.store`), this is a thin
subclass of :class:`~repro.store.ArtifactStore`: same atomic-write
discipline (temp file in the same directory + ``os.replace``, so
concurrent sweep workers can never observe a torn entry), same
corrupt-entry warn-and-recompute path, but the historical
``evalcache.*`` counter names, log channel, and ``$REPRO_EVAL_CACHE``
root are preserved.
"""

from __future__ import annotations

import hashlib
import logging

from ..binary.image import BinaryImage
from ..store import STORE_FORMAT, ArtifactStore

log = logging.getLogger("repro.evaluation.cache")

#: Kept for compatibility with existing keys; tracks the store format.
_FORMAT = STORE_FORMAT


class EvalCache(ArtifactStore):
    """Pickle store addressed by (image content, inputs, options)."""

    NAMESPACE = "evalcache"
    DESCRIBE = "eval-cache"
    #: The eval cache predates the ``store.put`` counter; its metric
    #: surface (hit/miss/corrupt) stays as documented in README.
    PUT_COUNTER = False
    ENV_VAR = "REPRO_EVAL_CACHE"
    DEFAULT_ROOT = ".eval_cache"

    @classmethod
    def _log(cls) -> logging.Logger:
        return log

    @staticmethod
    def key(image: BinaryImage, inputs, options: str = "") -> str:
        """Digest of everything that determines a derived artifact."""
        h = hashlib.sha256()
        h.update(image.to_json().encode())
        h.update(repr(inputs).encode())
        h.update(options.encode())
        h.update(_FORMAT.encode())
        return h.hexdigest()[:32]

    @staticmethod
    def module_key(module, inputs=None, options: str = "") -> str:
        """Digest for artifacts derived from an IR module.

        Reuses the replay engine's content fingerprint
        (:func:`~repro.replay.module_fingerprint`), so a module the
        pipeline validated and one reloaded from disk with identical
        content share cache entries.
        """
        from ..replay import module_fingerprint
        h = hashlib.sha256()
        h.update(module_fingerprint(module).encode())
        h.update(repr(inputs).encode())
        h.update(options.encode())
        h.update(_FORMAT.encode())
        return h.hexdigest()[:32]
