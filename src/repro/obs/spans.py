"""Structured tracing spans.

A :class:`Span` is one named, timed region of pipeline work.  Spans nest:
entering a span while another is open makes it a child, so a recompile
run produces a tree (``pipeline.wytiwyg`` -> ``stage.lift`` -> ...).
Each span carries free-form attributes — IR size deltas, verifier
status, cache statistics — set by the instrumented code via
:meth:`Span.set`.

When observability is disabled the pipeline uses :data:`NULL_SPAN`, a
singleton whose every operation is a no-op, so the instrumentation sites
cost one global read and nothing else.
"""

from __future__ import annotations

import time

__all__ = ["NULL_SPAN", "Span"]


class Span:
    """One named, timed, attributed region of work (a tree node)."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_rec")

    def __init__(self, name: str, attrs: dict, rec) -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self._rec = rec

    def set(self, **attrs) -> "Span":
        """Attach attributes; later calls override earlier keys."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self._rec._span_started(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._rec._span_finished(self)
        return False

    @property
    def seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    def to_dict(self) -> dict:
        doc: dict = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def __repr__(self) -> str:
        return f"<span {self.name} {self.seconds * 1e3:.2f}ms>"


class _NullSpan:
    """Inert span used whenever observability is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
