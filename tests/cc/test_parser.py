"""MiniC parser structure."""

import pytest

from repro.cc import parse
from repro.cc import ast_nodes as ast
from repro.cc.ctypes import ArrayType, FuncType, PtrType, \
    StructType
from repro.errors import CompileError


def first_func(src, name=None):
    unit = parse(src)
    for decl in unit.decls:
        if isinstance(decl, ast.FuncDef) and decl.body is not None:
            if name is None or decl.name == name:
                return decl
    raise AssertionError("no function found")


def test_function_and_params():
    f = first_func("int f(int a, char *b) { return a; }")
    assert f.name == "f"
    assert [n for n, _ in f.params] == ["a", "b"]
    assert isinstance(f.params[1][1], PtrType)


def test_array_declarator_dimensions():
    unit = parse("int grid[4][6];")
    decl = unit.decls[0]
    assert isinstance(decl.ctype, ArrayType)
    assert decl.ctype.count == 4
    assert decl.ctype.element.count == 6


def test_array_size_from_initializer():
    unit = parse('char s[] = "abcd"; int a[] = {1, 2, 3};')
    assert unit.decls[0].ctype.count == 5  # includes NUL
    assert unit.decls[1].ctype.count == 3


def test_function_pointer_declarator():
    f = first_func("int go(int (*op)(int, int)) { return op(1, 2); }")
    ptype = f.params[0][1]
    assert isinstance(ptype, PtrType)
    assert isinstance(ptype.pointee, FuncType)
    assert len(ptype.pointee.params) == 2


def test_struct_definition_and_layout():
    unit = parse("struct p { char c; int x; }; struct p g;")
    ctype = unit.decls[0].ctype
    assert isinstance(ctype, StructType)
    fields = {f.name: f.offset for f in ctype.fields}
    assert fields["c"] == 0 and fields["x"] == 4  # aligned
    assert ctype.size == 8


def test_precedence():
    f = first_func("int f(int a) { return a + 2 * 3 == 7; }")
    ret = f.body.stmts[0]
    assert isinstance(ret.value, ast.Binary) and ret.value.op == "=="
    lhs = ret.value.lhs
    assert lhs.op == "+" and lhs.rhs.op == "*"


def test_assignment_right_associative():
    f = first_func("int f(int a, int b) { a = b = 1; return a; }")
    expr = f.body.stmts[0].expr
    assert isinstance(expr, ast.Assign)
    assert isinstance(expr.value, ast.Assign)


def test_switch_case_structure():
    f = first_func("""
int f(int v) {
    switch (v) {
    case 1: return 1;
    case 2:
    default: return 0;
    }
}
""")
    sw = f.body.stmts[0]
    labels = [s.value for s in sw.body if isinstance(s, ast.CaseLabel)]
    assert labels == [1, 2, None]


def test_for_with_declaration():
    f = first_func("int f() { for (int i = 0; i < 3; i++) {} return 0; }")
    loop = f.body.stmts[0]
    assert isinstance(loop.init, ast.DeclStmt)


def test_sizeof_forms():
    f = first_func("int f(int x) { return sizeof(int) + sizeof x; }")
    expr = f.body.stmts[0].value
    assert isinstance(expr.lhs, ast.SizeofType)
    assert isinstance(expr.rhs, ast.SizeofExpr)


def test_string_concatenation():
    f = first_func('int f() { printf("ab" "cd"); return 0; }')
    call = f.body.stmts[0].expr
    assert call.args[0].value == b"abcd"


def test_errors_reported_with_line():
    with pytest.raises(CompileError) as info:
        parse("int f() {\n  return )\n}")
    assert "line 2" in str(info.value)


def test_case_outside_switch_rejected():
    with pytest.raises(CompileError):
        parse("int f() { case 1: return 0; }")
