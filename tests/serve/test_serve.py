"""The recompilation daemon: protocol, scheduling, campaigns."""

import json
import os
import shutil
import socket
import tempfile
import threading
import time

import pytest

from repro import compile_source, obs, run_binary
from repro.binary import BinaryImage
from repro.errors import ServeError
from repro.serve import PROTOCOL_VERSION, RecompileServer, ServeClient
from repro.store import ArtifactStore

SOURCE = r"""
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;
}

int main() {
    int kind = read_int();
    int value = read_int();
    printf("score=%d\n", score(kind, value));
    return 0;
}
"""


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "servetest")


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


def _wait_for_socket(path: str, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        time.sleep(0.02)
    raise RuntimeError(f"daemon socket {path} never appeared")


def _wait_for_daemon(path: str, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServeClient(path, timeout=timeout).ping()
        except ServeError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.02)


@pytest.fixture
def served(tmp_path):
    # AF_UNIX paths are length-limited (~104 bytes); pytest tmp paths
    # can exceed that, so the socket lives in a short mkdtemp dir.
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    server = RecompileServer(sock, store=ArtifactStore(tmp_path / "store"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _wait_for_socket(sock)
    client = ServeClient(sock, timeout=300)
    try:
        yield server, client
    finally:
        if not server._shutdown.is_set():
            try:
                client.shutdown()
            except ServeError:
                pass
        thread.join(timeout=10)
        server.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def test_ping_reports_protocol(served):
    server, client = served
    response = client.ping()
    assert response["pid"] == os.getpid()
    assert response["protocol"] == PROTOCOL_VERSION


def test_resubmission_is_served_from_store_byte_identical(served, image):
    server, client = served
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          return_artifact=True)
    assert first["served"] == "cold"
    assert first["stats"]["traces_recorded"] == 1

    second = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                           return_artifact=True)
    assert second["served"] == "store"
    assert second["stats"]["traces_recorded"] == 0
    assert second["artifact"] == first["artifact"]
    assert second["result_key"] == first["result_key"]

    recovered = BinaryImage.from_json(first["artifact"])
    assert run_binary(recovered, [0, 7]).stdout == b"score=14\n"


def test_campaign_accumulates_inputs_and_stores_source(served, image):
    server, client = served
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          campaign="demo")
    assert first["campaign"]["inputs"] == [[0, 7]]

    # The source is persisted, so follow-ups can omit the image; the
    # job runs over the accumulated input set.
    second = client.submit(inputs=[[2, 5]], campaign="demo",
                           return_artifact=True)
    assert second["served"] == "incremental"
    assert second["stats"]["traces_reused"] == 1
    assert second["stats"]["traces_recorded"] == 1
    assert second["campaign"]["inputs"] == [[0, 7], [2, 5]]
    assert second["campaign"]["jobs"] == 2
    assert second["coverage"]["inputs"] == 2

    summary = client.campaign("demo")["campaign"]
    assert summary["inputs"] == [[0, 7], [2, 5]]
    assert summary["coverage"] == second["coverage"]

    recovered = BinaryImage.from_json(second["artifact"])
    assert run_binary(recovered, [2, 5]).stdout == b"score=-5\n"
    assert run_binary(recovered, [0, 7]).stdout == b"score=14\n"


def test_status_reports_stats_and_warm_caches(served, image):
    server, client = served
    client.submit(image_json=image.to_json(), inputs=[[1, 7]])
    status = client.status()
    assert status["stats"]["jobs"] == 1
    assert status["stats"]["served_cold"] == 1
    assert status["store"]["put"] >= 2
    assert "memo_entries" in status["warm"]["opt"]
    assert "entries" in status["warm"]["lower"]
    assert status["campaigns"] == []


def test_errors_do_not_kill_the_daemon(served, image):
    server, client = served
    with pytest.raises(ServeError, match="unknown op"):
        client.request("frobnicate")
    with pytest.raises(ServeError, match="needs 'image'"):
        client.submit(inputs=[[1]])
    with pytest.raises(ServeError, match="unknown campaign"):
        client.campaign("absent")
    with pytest.raises(ServeError, match="at least one input"):
        client.submit(image_json=image.to_json())
    assert client.ping()["ok"]
    assert client.status()["stats"]["errors"] == 4
    assert client.status()["stats"]["jobs"] == 0


def test_campaign_rejects_image_rebinding(served, image):
    server, client = served
    other = compile_source(SOURCE.replace("* 2", "* 3"),
                           "gcc12", "3", "servetest2")
    client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                  campaign="demo")
    with pytest.raises(ServeError, match="bound to image"):
        client.submit(image_json=other.to_json(), inputs=[[1, 1]],
                      campaign="demo")


def test_malformed_request_line_gets_error_response(served):
    server, client = served
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(10)
    conn.connect(client.socket_path)
    conn.sendall(b"this is not json\n")
    raw = conn.makefile("rb").readline()
    conn.close()
    response = json.loads(raw)
    assert response["ok"] is False
    assert response["kind"] == "JSONDecodeError"


def test_job_events_reach_the_ledger(served, image):
    server, client = served
    led = obs.enable_ledger()
    client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                  campaign="demo")
    kinds = [e["kind"] for e in led.events]
    for kind in ("job.submitted", "job.started", "job.finished",
                 "store.miss", "store.put"):
        assert kind in kinds, kind
    finished = [e for e in led.events if e["kind"] == "job.finished"]
    assert finished[0]["served"] == "cold"
    assert finished[0]["job"] == 1


def test_stale_socket_is_replaced_live_socket_refused(served):
    server, client = served
    # A second daemon must refuse to steal the live socket.
    rival = RecompileServer(server.socket_path, store=server.store)
    with pytest.raises(ServeError, match="another daemon"):
        rival.serve_forever()
    assert client.ping()["ok"]  # the refusal left the live daemon alone
    # But a dead leftover socket file is silently replaced.
    sockdir = tempfile.mkdtemp(prefix="repro-stale-")
    stale = os.path.join(sockdir, "d.sock")
    try:
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(stale)
        dead.close()  # file remains, nobody listening
        fresh = RecompileServer(stale, store=server.store)
        thread = threading.Thread(target=fresh.serve_forever,
                                  daemon=True)
        thread.start()
        assert _wait_for_daemon(stale)["ok"]
        ServeClient(stale).shutdown()
        thread.join(timeout=10)
    finally:
        shutil.rmtree(sockdir, ignore_errors=True)


def test_shutdown_stops_the_daemon_and_removes_socket(served):
    server, client = served
    assert client.shutdown()["ok"]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and os.path.exists(
            client.socket_path):
        time.sleep(0.02)
    assert not os.path.exists(client.socket_path)
    with pytest.raises(ServeError, match="cannot reach"):
        client.ping()


# -- request-size limit ---------------------------------------------------

def test_oversized_request_gets_a_clear_error(served):
    server, client = served
    server.max_request_bytes = 4096
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(10)
    conn.connect(client.socket_path)
    conn.sendall(b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n')
    raw = conn.makefile("rb").readline()
    conn.close()
    response = json.loads(raw)
    assert response["ok"] is False
    assert response["kind"] == "ServeError"
    assert "exceeds the 4096 byte limit" in response["error"]
    # An in-limit request on a fresh connection still works.
    assert client.ping()["ok"]
    assert client.status()["stats"]["errors"] == 1


# -- client timeout -------------------------------------------------------

def test_client_timeout_is_a_clean_error():
    sockdir = tempfile.mkdtemp(prefix="repro-wedge-")
    sock = os.path.join(sockdir, "d.sock")
    try:
        # A listener that accepts but never responds: a wedged daemon.
        wedged = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        wedged.bind(sock)
        wedged.listen(1)
        client = ServeClient(sock, timeout=0.3)
        with pytest.raises(ServeError,
                           match="did not respond within 0.3s"):
            client.ping()
        wedged.close()
    finally:
        shutil.rmtree(sockdir, ignore_errors=True)


# -- worker-pool mode -----------------------------------------------------

@pytest.fixture
def pooled(tmp_path):
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    server = RecompileServer(sock,
                             store=ArtifactStore(tmp_path / "store"),
                             workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _wait_for_socket(sock)
    client = ServeClient(sock, timeout=300)
    try:
        yield server, client
    finally:
        if not server._shutdown.is_set():
            try:
                client.shutdown()
            except ServeError:
                pass
        thread.join(timeout=15)
        server.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def test_pool_serves_jobs_and_reports_sched_status(pooled, image):
    server, client = pooled
    assert client.ping()["workers"] == 2
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          return_artifact=True)
    assert first["served"] == "cold"
    assert first["worker"] in (0, 1)
    second = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                           return_artifact=True)
    assert second["served"] == "store"
    assert second["worker"] == first["worker"]  # image affinity
    assert second["artifact"] == first["artifact"]
    status = client.status()
    sched = status["sched"]
    assert sched["workers"] == 2
    assert sched["stats"]["completed"] == 2
    assert sched["stats"]["affine"] == 2
    worker = sched["per_worker"][first["worker"]]
    assert worker["jobs"] == 2
    assert worker["last_image"] == first["image_key"]
    assert "memo_entries" in worker["warm"]["opt"]


def test_pool_campaigns_accumulate_across_workers(pooled, image):
    server, client = pooled
    first = client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                          campaign="demo")
    assert first["campaign"]["inputs"] == [[0, 7]]
    second = client.submit(inputs=[[2, 5]], campaign="demo")
    assert second["served"] == "incremental"
    assert second["stats"]["traces_reused"] == 1
    assert second["campaign"]["inputs"] == [[0, 7], [2, 5]]


def test_pool_job_events_and_sched_events_reach_the_ledger(pooled,
                                                           image):
    server, client = pooled
    led = obs.enable_ledger()
    obs.enable(reset=True)
    client.submit(image_json=image.to_json(), inputs=[[0, 7]])
    kinds = [e["kind"] for e in led.events]
    # Parent-side scheduling events and the worker's shipped pipeline
    # events both land in the parent's in-memory ledger.
    for kind in ("job.submitted", "job.started", "sched.dispatch",
                 "store.put", "job.finished"):
        assert kind in kinds, kind
    assert obs.recorder().registry.counters["sched.dispatch"] == 1


def test_pool_worker_errors_keep_their_kind(pooled, image):
    server, client = pooled
    # The job fails inside the worker process (the output path's
    # directory does not exist); the original exception class name must
    # survive the process hop instead of flattening to RemoteJobError.
    with pytest.raises(ServeError, match="FileNotFoundError"):
        client.submit(image_json=image.to_json(), inputs=[[0, 7]],
                      output="/nonexistent-repro-dir/out.json")
    assert client.ping()["ok"]
    status = client.status()
    assert status["sched"]["stats"]["failed"] == 1
    assert status["sched"]["stats"]["respawns"] == 0  # worker survived


SLOW_SOURCE = r"""
int main() {
    int n = read_int();
    int s = 0;
    int i = 0;
    while (i < n) { s = s + i; i = i + 1; }
    printf("s=%d\n", s);
    return 0;
}
"""


def test_pool_job_timeout_fails_job_and_daemon_survives(tmp_path):
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    server = RecompileServer(sock,
                             store=ArtifactStore(tmp_path / "store"),
                             workers=1, job_timeout=0.4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        _wait_for_socket(sock)
        client = ServeClient(sock, timeout=300)
        # Tracing a 10k-iteration loop takes seconds — far past the
        # 0.4s limit — so the deadline fires mid-job deterministically.
        slow = compile_source(SLOW_SOURCE, "gcc12", "3", "slowjob")
        with pytest.raises(ServeError,
                           match="JobTimeout.*wall-clock limit"):
            client.submit(image_json=slow.to_json(), inputs=[[10000]])
        # The worker slot was recycled; the daemon still serves.
        assert client.ping()["ok"]
        status = client.status()
        assert status["sched"]["stats"]["timeouts"] == 1
        assert status["sched"]["stats"]["respawns"] == 1
        client.shutdown()
        thread.join(timeout=15)
    finally:
        server.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def test_job_timeout_requires_workers(tmp_path):
    with pytest.raises(ServeError, match="needs the worker pool"):
        RecompileServer(tmp_path / "d.sock",
                        store=ArtifactStore(tmp_path / "store"),
                        job_timeout=5.0)


def test_pool_backpressure_reports_retry_hint(tmp_path, image):
    sockdir = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(sockdir, "d.sock")
    # A zero-depth queue rejects every submission — degenerate on
    # purpose, to exercise the protocol's retry_after plumbing without
    # timing-sensitive queue saturation.
    server = RecompileServer(sock,
                             store=ArtifactStore(tmp_path / "store"),
                             workers=1, queue_depth=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        _wait_for_socket(sock)
        client = ServeClient(sock, timeout=60)
        with pytest.raises(ServeError,
                           match=r"queue full.*retry in ~\d"):
            client.submit(image_json=image.to_json(), inputs=[[0, 7]])
        assert client.status()["sched"]["stats"]["rejected"] == 1
        client.shutdown()
        thread.join(timeout=15)
    finally:
        server.close()
        shutil.rmtree(sockdir, ignore_errors=True)


def test_shutdown_drains_inflight_jobs_and_rejects_new_ones(pooled,
                                                            image):
    server, client = pooled
    distinct = [image] + [
        compile_source(SOURCE.replace("value * 2", f"value * {k}"),
                       "gcc12", "3", f"drain{k}") for k in (7, 11)]
    boxes = []

    def submit(img):
        box = {}
        try:
            box["response"] = ServeClient(
                client.socket_path, timeout=300).submit(
                    image_json=img.to_json(), inputs=[[0, 3]])
        except ServeError as exc:
            box["error"] = exc
        boxes.append(box)

    threads = [threading.Thread(target=submit, args=(img,), daemon=True)
               for img in distinct]
    for thread in threads:
        thread.start()
    time.sleep(0.3)   # let some jobs reach the scheduler
    client.shutdown()
    for thread in threads:
        thread.join(timeout=60)
    assert len(boxes) == 3
    for box in boxes:
        # Every concurrent submission either completed (drained) or was
        # cleanly rejected — never a hang, never a torn response.
        if "response" in box:
            assert box["response"]["ok"]
        else:
            assert isinstance(box["error"], ServeError)
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline and os.path.exists(
            client.socket_path):
        time.sleep(0.02)
    assert not os.path.exists(client.socket_path)


def test_stale_socket_is_replaced_under_worker_pool(tmp_path):
    sockdir = tempfile.mkdtemp(prefix="repro-stale-")
    stale = os.path.join(sockdir, "d.sock")
    try:
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(stale)
        dead.close()   # leftover file, nobody listening
        fresh = RecompileServer(stale,
                                store=ArtifactStore(tmp_path / "store"),
                                workers=2)
        thread = threading.Thread(target=fresh.serve_forever,
                                  daemon=True)
        thread.start()
        assert _wait_for_daemon(stale)["workers"] == 2
        ServeClient(stale).shutdown()
        thread.join(timeout=15)
        fresh.close()
    finally:
        shutil.rmtree(sockdir, ignore_errors=True)
