"""gobmk stand-in: go-like board analysis — recursive flood fill for
group liberties on a 2D board, move generation and greedy play with an
LCG opponent."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
int board[169];        /* 13 x 13, 0 empty / 1 black / 2 white */
int visited[169];
int size;

int rng_state;
int rng() {
    rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
    return rng_state >> 16;
}

int liberties(int x, int y, int color) {
    if (x < 0 || x >= size || y < 0 || y >= size) return 0;
    int idx = y * size + x;
    if (visited[idx]) return 0;
    visited[idx] = 1;
    int v = board[idx];
    if (v == 0) return 1;
    if (v != color) return 0;
    return liberties(x - 1, y, color) + liberties(x + 1, y, color)
         + liberties(x, y - 1, color) + liberties(x, y + 1, color);
}

int group_liberties(int x, int y) {
    int i;
    for (i = 0; i < size * size; i++) visited[i] = 0;
    return liberties(x, y, board[y * size + x]);
}

int evaluate(int color) {
    int score = 0;
    int y;
    for (y = 0; y < size; y++) {
        int x;
        for (x = 0; x < size; x++) {
            int v = board[y * size + x];
            if (v == 0) continue;
            int libs = group_liberties(x, y);
            if (v == color) score = score + 2 + libs;
            else score = score - 2 - libs;
        }
    }
    return score;
}

int best_move(int color) {
    int best = -1000000;
    int best_idx = -1;
    int idx;
    for (idx = 0; idx < size * size; idx++) {
        if (board[idx]) continue;
        if ((idx * 7 + color) % 3) continue;   /* prune candidates */
        board[idx] = color;
        int score = evaluate(color);
        board[idx] = 0;
        if (score > best) { best = score; best_idx = idx; }
    }
    return best_idx;
}

int main() {
    size = read_int();
    rng_state = read_int();
    int moves = read_int();
    int i;
    /* random prelude to give the board structure */
    for (i = 0; i < size * size / 3; i++) {
        int idx = rng() % (size * size);
        if (board[idx] == 0) board[idx] = 1 + (rng() & 1);
    }
    int m;
    for (m = 0; m < moves; m++) {
        int color = 1 + (m & 1);
        int idx;
        if (color == 1) {
            idx = best_move(1);
        } else {
            idx = rng() % (size * size);
            int tries = 0;
            while (board[idx] && tries < 20) {
                idx = rng() % (size * size);
                tries = tries + 1;
            }
            if (board[idx]) idx = -1;
        }
        if (idx >= 0) board[idx] = color;
        printf("move %d: %s plays %d\n", m,
               color == 1 ? "black" : "white", idx);
    }
    printf("final score (black): %d\n", evaluate(1));
    return 0;
}
"""

WORKLOAD = Workload(
    name="gobmk",
    source=SOURCE,
    ref_inputs=(
        (6, 99991, 3),
    ),
    description="board game analysis: recursive flood fill + greedy play",
)
