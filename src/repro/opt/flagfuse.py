"""Flag-pattern fusion: collapse lifted EFLAGS computations back into
single comparisons.

The lifter materializes x86 status flags as explicit IR (zf/sf/cf/of
expressions); branch predicates become trees like
``xor(icmp slt(sub(a,b),0), shr(and(xor(a,b),xor(a,sub(a,b))),31))``.
LLVM's instcombine recognizes and refolds these shapes in real
recompilers; this pass does the same for the exact trees our translator
emits, restoring ``icmp slt a, b``-style predicates that the backend can
fuse into cmp+jcc.

The rules are semantics-preserving for all inputs (they encode the
actual flag definitions), so the pass is safe for any IR, not just
lifted code.
"""

from __future__ import annotations

from ..ir.module import Function
from ..ir.values import BinOp, Const, ICmp, Instr, Unary, Value
from .analysis import CFG_ANALYSES

#: Fusion substitutes comparison trees instruction-for-instruction; the
#: block list and terminator targets are untouched.
PRESERVES = CFG_ANALYSES

_INVERT = {
    "eq": "ne", "ne": "eq", "slt": "sge", "sge": "slt", "sle": "sgt",
    "sgt": "sle", "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
}

#: or(pred1, pred2) on identical operands -> combined predicate.
_OR_COMBINE = {
    frozenset(("slt", "eq")): "sle",
    frozenset(("sgt", "eq")): "sge",
    frozenset(("ult", "eq")): "ule",
    frozenset(("ugt", "eq")): "uge",
    frozenset(("slt", "sgt")): "ne",
    frozenset(("ult", "ugt")): "ne",
}

#: and(pred1, pred2) on identical operands -> combined predicate.
_AND_COMBINE = {
    frozenset(("sge", "ne")): "sgt",
    frozenset(("sle", "ne")): "slt",
    frozenset(("uge", "ne")): "ugt",
    frozenset(("ule", "ne")): "ult",
    frozenset(("sle", "sge")): "eq",
    frozenset(("ule", "uge")): "eq",
}


def _as_sub(v: Value) -> tuple[Value, Value] | None:
    """View ``v`` as a subtraction a - b (constfold canonicalizes
    ``sub x, c`` into ``add x, -c``)."""
    if isinstance(v, BinOp):
        if v.opcode == "sub":
            return v.lhs, v.rhs
        if v.opcode == "add" and isinstance(v.rhs, Const):
            return v.lhs, Const((-v.rhs.value) & 0xFFFFFFFF)
    return None


def _same_operands(a: ICmp, b: ICmp) -> bool:
    # Instr operands compare by identity, Consts by value.
    return a.lhs == b.lhs and a.rhs == b.rhs


def _match_overflow_shr(v: Value, a: Value, b: Value,
                        res: Value) -> bool:
    """Match ``shr(and(xor(a,b), xor(a,res)), 31)`` (sub overflow)."""
    if not (isinstance(v, BinOp) and v.opcode == "shr"
            and isinstance(v.rhs, Const) and v.rhs.value == 31):
        return False
    inner = v.lhs
    if not (isinstance(inner, BinOp) and inner.opcode == "and"):
        return False
    sides = [inner.lhs, inner.rhs]

    def same(x: Value, y: Value) -> bool:
        if x is y:
            return True
        return (isinstance(x, Const) and isinstance(y, Const)
                and x.value == y.value)

    def is_xor(x: Value, p: Value, q: Value) -> bool:
        return (isinstance(x, BinOp) and x.opcode == "xor"
                and ((same(x.lhs, p) and same(x.rhs, q))
                     or (same(x.lhs, q) and same(x.rhs, p))))

    return ((is_xor(sides[0], a, b) and is_xor(sides[1], a, res))
            or (is_xor(sides[1], a, b) and is_xor(sides[0], a, res)))


def _simplify_one(instr: Instr) -> Instr | Value | None:
    """Return a replacement (new ICmp instr or existing value) or
    None."""
    # zext of a boolean is the boolean.
    if isinstance(instr, Unary) and instr.opcode in ("zext8", "zext16",
                                                     "trunc8",
                                                     "trunc16"):
        if isinstance(instr.src, ICmp):
            return instr.src

    if isinstance(instr, ICmp):
        # icmp eq/ne (bool), 0 -> inverted / same boolean.
        if isinstance(instr.lhs, ICmp) and isinstance(instr.rhs, Const) \
                and instr.rhs.value == 0:
            if instr.pred == "eq":
                inner = instr.lhs
                return ICmp(_INVERT[inner.pred], inner.lhs, inner.rhs)
            if instr.pred == "ne":
                return instr.lhs
        # icmp eq/ne (a - b), 0 -> icmp eq/ne a, b.
        if instr.pred in ("eq", "ne") and isinstance(instr.rhs, Const) \
                and instr.rhs.value == 0:
            viewed = _as_sub(instr.lhs)
            if viewed is not None:
                return ICmp(instr.pred, viewed[0], viewed[1])
        return None

    if not isinstance(instr, BinOp):
        return None

    # xor(bool, 1) -> inverted bool.
    if instr.opcode == "xor" and isinstance(instr.lhs, ICmp) \
            and isinstance(instr.rhs, Const) and instr.rhs.value == 1:
        inner = instr.lhs
        return ICmp(_INVERT[inner.pred], inner.lhs, inner.rhs)

    # and(x, x) / or(x, x) -> x.
    if instr.opcode in ("and", "or") and instr.lhs is instr.rhs:
        return instr.lhs

    # The signed-less-than tree: xor(sf, of).
    if instr.opcode == "xor":
        for sf, of in ((instr.lhs, instr.rhs), (instr.rhs, instr.lhs)):
            if isinstance(sf, ICmp) and sf.pred == "slt" \
                    and isinstance(sf.rhs, Const) and sf.rhs.value == 0:
                viewed = _as_sub(sf.lhs)
                if viewed is not None and _match_overflow_shr(
                        of, viewed[0], viewed[1], sf.lhs):
                    return ICmp("slt", viewed[0], viewed[1])

    # Predicate combination over identical operands.
    if instr.opcode in ("or", "and") and isinstance(instr.lhs, ICmp) \
            and isinstance(instr.rhs, ICmp):
        a, b = instr.lhs, instr.rhs
        if _same_operands(a, b):
            table = _OR_COMBINE if instr.opcode == "or" else _AND_COMBINE
            pred = table.get(frozenset((a.pred, b.pred)))
            if pred is not None:
                return ICmp(pred, a.lhs, a.rhs)
    return None


def fuse_flags(func: Function) -> bool:
    """Iterate flag-tree fusion to a fixed point."""
    changed = False
    for _ in range(16):
        replacements: dict[Instr, Value] = {}
        for block in func.blocks:
            for idx, instr in enumerate(block.instrs):
                new = _simplify_one(instr)
                if new is None:
                    continue
                if isinstance(new, ICmp) and new.block is None:
                    # Fresh comparison: substitute it in place.
                    new.block = block
                    block.instrs[idx] = new
                replacements[instr] = new
        if not replacements:
            return changed
        changed = True

        def resolve(v: Value) -> Value:
            while isinstance(v, Instr) and v in replacements:
                v = replacements[v]
            return v

        fresh = {v for v in replacements.values()
                 if isinstance(v, Instr)}
        for block in func.blocks:
            block.instrs = [i for i in block.instrs
                            if i not in replacements or i in fresh]
            for instr in block.instrs:
                instr.ops = [resolve(op) for op in instr.ops]
        func.invalidate()
    return changed
