"""Control-transfer tracing and trace merging."""

from repro.emu import trace_binary
from repro.isa import (
    AsmFunction,
    AsmProgram,
    EAX,
    Imm,
    ImportRef,
    Label,
    assemble,
    ins,
    jcc,
)


def image_with_branch():
    f = AsmFunction("_start", [
        ins("mov", EAX, Imm(0)),
        ins("call", ImportRef("read_int")),
        ins("cmp", EAX, Imm(5)),
        jcc("l", Label("low")),
        ins("mov", EAX, Imm(1)),
        ins("hlt"),
        "low",
        ins("mov", EAX, Imm(2)),
        ins("hlt"),
    ])
    return assemble(AsmProgram(functions=[f], imports=["read_int"]))


def test_trace_records_taken_direction_only():
    image = image_with_branch()
    traces = trace_binary(image, [[9]])
    kinds = {t.kind for t in traces.transfers}
    assert "fallthrough" in kinds
    assert "import" in kinds
    jumps = [t for t in traces.transfers if t.kind == "jump"]
    assert not jumps  # branch not taken with input 9


def test_trace_merging_accumulates_coverage():
    image = image_with_branch()
    solo = trace_binary(image, [[9]])
    both = trace_binary(image, [[9], [1]])
    assert len(both.executed) > len(solo.executed)
    assert len(both.results) == 2
    assert both.results[0].exit_code == 1
    assert both.results[1].exit_code == 2


def test_call_targets_extracted():
    f = AsmFunction("_start", [
        ins("call", Label("fn")),
        ins("hlt"),
    ])
    g = AsmFunction("fn", [ins("mov", EAX, Imm(3)), ins("ret")])
    image = assemble(AsmProgram(functions=[f, g]))
    traces = trace_binary(image, [[]])
    assert image.symbols["fn"] in traces.call_targets
