"""The WYTIWYG refinements, stage by stage (paper §4-§5)."""


from repro.cc import compile_source
from repro.emu import run_binary, trace_binary
from repro.ir import run_module, verify_module
from repro.lifting import lift_traces
from repro.core import (
    apply_register_classification,
    classify_registers,
    classify_stack_refs,
    compute_sp0_offsets,
    recover_vararg_calls,
)
from repro.core.driver import _canonicalize
from tests.conftest import KERNEL_SOURCE, cached_image


def lifted(source=KERNEL_SOURCE, compiler="gcc12", opt="3",
           inputs=None):
    image = cached_image(source, compiler, opt)
    traces = trace_binary(image.stripped(), inputs or [[]])
    return image, traces, lift_traces(traces)


# -- varargs refinement (§5.2) -------------------------------------------------


def test_vararg_sites_become_explicit():
    from repro.ir.values import CallExt
    image, traces, module = lifted()
    before = [i for f in module.functions.values()
              for i in f.instructions()
              if isinstance(i, CallExt) and i.stack_args]
    assert before  # printf lifted with stack switching
    n = recover_vararg_calls(module, traces.inputs)
    assert n == len(before)
    after = [i for f in module.functions.values()
             for i in f.instructions()
             if isinstance(i, CallExt) and i.stack_args]
    assert not after
    verify_module(module)
    assert run_module(module).stdout == run_binary(image).stdout


def test_vararg_argument_count_from_format():
    src = r'''
int main() {
    printf("%d %d %d\n", 1, 2, 3);
    printf("none\n");
    return 0;
}
'''
    from repro.ir.values import CallExt
    image = compile_source(src, "gcc12", "0", "t")
    traces = trace_binary(image.stripped(), [[]])
    module = lift_traces(traces)
    recover_vararg_calls(module, traces.inputs)
    counts = sorted(len(i.args) for f in module.functions.values()
                    for i in f.instructions()
                    if isinstance(i, CallExt) and i.ext_name == "printf")
    assert counts == [1, 4]


# -- register save/argument classification (§4.1) -------------------------------


def test_registers_classified_and_signatures_shrink():
    image, traces, module = lifted()
    recover_vararg_calls(module, traces.inputs)
    result = classify_registers(module, traces.inputs)
    assert result.args  # every lifted function classified
    apply_register_classification(module, result)
    verify_module(module)
    lifted_funcs = [f for f in module.functions.values()
                    if f.name.startswith("fn_")]
    assert any(f.nresults < 7 for f in lifted_funcs)
    assert all(len(f.params) <= 8 for f in lifted_funcs)
    assert run_module(module).stdout == run_binary(image).stdout


def test_callee_saved_registers_not_args():
    # gcc44 keeps a frame pointer: ebp is saved/restored, never an arg.
    image, traces, module = lifted(compiler="gcc44")
    recover_vararg_calls(module, traces.inputs)
    result = classify_registers(module, traces.inputs)
    for name, args in result.args.items():
        assert "ebp" not in args, name


def test_stack_pointer_never_in_signatures():
    image, traces, module = lifted()
    recover_vararg_calls(module, traces.inputs)
    result = classify_registers(module, traces.inputs)
    for args in result.args.values():
        assert "esp" not in args


# -- sp0 folding (§4.1) ----------------------------------------------------------


def test_sp0_offsets_fold_after_canonicalization():
    image, traces, module = lifted()
    recover_vararg_calls(module, traces.inputs)
    apply_register_classification(
        module, classify_registers(module, traces.inputs))
    _canonicalize(module)
    for func in module.functions.values():
        if not func.name.startswith("fn_"):
            continue
        offsets = compute_sp0_offsets(func)
        refs = classify_stack_refs(func)
        assert offsets[func.params[0]] == 0
        # Every call site's stack pointer argument must be foldable.
        from repro.ir.values import Call
        for instr in func.instructions():
            if isinstance(instr, Call) and \
                    instr.callee.name.startswith("fn_"):
                assert instr.args[0] in offsets
        # Base pointers (refs) are a subset of offset-known values.
        assert set(refs) <= set(offsets)


def test_stack_refs_exclude_pure_chain_nodes():
    image, traces, module = lifted()
    recover_vararg_calls(module, traces.inputs)
    apply_register_classification(
        module, classify_registers(module, traces.inputs))
    _canonicalize(module)
    func = next(f for f in module.functions.values()
                if f.name.startswith("fn_"))
    refs = classify_stack_refs(func)
    offsets = func.meta["sp0_offsets"]
    # There must exist chain-only values (e.g. intermediate esp updates)
    # that are not classified as base pointers.
    assert len(offsets) >= len(refs)
