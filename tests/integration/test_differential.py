"""Differential testing: every pipeline must agree on observable output.

Random MiniC programs are compiled at several personalities and pushed
through the IR interpreter, the machine, BinRec recompilation, and the
full WYTIWYG pipeline; all observable outputs must agree.
"""

import pytest

from repro.baselines import binrec_recompile
from repro.cc import compile_source, compile_to_ir, personality
from repro.core import wytiwyg_recompile
from repro.emu import run_binary
from repro.ir import run_module
from tests.integration.progen import generate

SEEDS = list(range(8))


@pytest.mark.parametrize("seed", SEEDS)
def test_personalities_agree(seed):
    src = generate(seed)
    outputs = set()
    for comp, lvl in (("gcc12", "0"), ("gcc12", "3"), ("gcc44", "3"),
                      ("clang16", "3")):
        image = compile_source(src, comp, lvl, f"p{seed}")
        result = run_binary(image)
        outputs.add((result.stdout, result.exit_code))
    assert len(outputs) == 1


@pytest.mark.parametrize("seed", SEEDS)
def test_ir_interpreter_agrees_with_machine(seed):
    src = generate(seed)
    config = personality("gcc12", "3")
    module = compile_to_ir(src, f"p{seed}", config)
    interp = run_module(module)
    machine = run_binary(compile_source(src, "gcc12", "3", f"p{seed}"))
    assert interp.stdout == machine.stdout
    assert interp.exit_code == machine.exit_code


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_recompilation_pipelines_preserve_output(seed):
    src = generate(seed)
    image = compile_source(src, "gcc12", "3", f"p{seed}")
    native = run_binary(image)
    binrec = run_binary(binrec_recompile(image.stripped(), [[]]))
    assert binrec.stdout == native.stdout
    assert binrec.exit_code == native.exit_code
    wyt = wytiwyg_recompile(image, [[]])
    recovered = run_binary(wyt.recovered)
    assert recovered.stdout == native.stdout
    assert recovered.exit_code == native.exit_code
    assert not wyt.fallback
