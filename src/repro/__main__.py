"""Command-line interface: ``python -m repro <command>``.

Commands mirror the toolchain a downstream user needs:

* ``compile``   MiniC source -> binary image (JSON container)
* ``run``       execute a binary image on inputs
* ``recompile`` WYTIWYG-recompile a binary image (or ``--pipeline
  binrec`` / ``secondwrite``); ``--check`` arms the static gate;
  ``--store DIR`` routes the run through the content-addressed
  artifact store so repeated runs reuse traces and results
* ``serve``     run the recompilation daemon: jobs over a Unix socket,
  backed by the artifact store and named campaigns
* ``submit``    client for ``serve``: submit a job (or ``--status`` /
  ``--ping`` / ``--shutdown``) to a running daemon
* ``layout``    print the stack layout WYTIWYG recovers for a binary
* ``check``     run the static corroboration + sanitizer suite and
  print the findings (exit 1 on errors; ``--strict`` fails on
  warnings too)
* ``explain``   run the layout pipeline with the event ledger on and
  print the provenance chain (seeds, merges, widenings, findings)
  behind each recovered variable (``--var fn_08048000:sv_m8``)
* ``obs diff``  structural diff of two observability JSON reports
* ``obs regress``  perf-regression gate: fresh pytest-benchmark JSONs
  vs committed baselines, exit 1 past tolerance
* ``eval``      regenerate the paper's tables and figures

Inputs are passed as ``--input int:N bytes:TEXT ...``; a ``/`` item
separates multiple runs (e.g. ``--input int:1 / int:2``).

Observability: ``--obs-out report.json`` (or ``REPRO_OBS=1`` in the
environment) activates :mod:`repro.obs` — the command then prints a
per-stage summary table to stderr, and ``--obs-out`` additionally
writes the full JSON report.  ``--ledger events.jsonl`` (or
``REPRO_LEDGER=...``) additionally records the structured event ledger.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import obs
from .baselines import binrec_recompile, secondwrite_recompile
from .binary import BinaryImage
from .cc import compile_source
from .core import wytiwyg_lift, wytiwyg_recompile
from .emu import run_binary, trace_binary
from .errors import CheckError, StaticCheckError


def _parse_inputs(spec: list[str]) -> list[list]:
    """['int:3', 'bytes:abc', '/', 'int:9'] -> [[3, b'abc'], [9]]."""
    runs: list[list] = [[]]
    for item in spec:
        if item == "/":
            runs.append([])
        elif item.startswith("int:"):
            runs[-1].append(int(item[4:], 0))
        elif item.startswith("bytes:"):
            runs[-1].append(item[6:].encode())
        else:
            raise SystemExit(f"bad input spec {item!r} "
                             f"(use int:N, bytes:TEXT, or /)")
    return runs


def cmd_compile(args) -> int:
    source = Path(args.source).read_text()
    image = compile_source(source, args.compiler, args.opt_level,
                           Path(args.source).stem)
    Path(args.output).write_text(image.to_json())
    print(f"compiled {args.source} [{args.compiler} -O{args.opt_level}] "
          f"-> {args.output} ({len(image.text.data)} text bytes)")
    return 0


def cmd_run(args) -> int:
    image = BinaryImage.from_json(Path(args.image).read_text())
    runs = _parse_inputs(args.input)
    for items in runs:
        result = run_binary(image, items)
        sys.stdout.write(result.stdout.decode("latin-1"))
        print(f"[exit {result.exit_code}, {result.cycles} cycles]")
    return 0


def cmd_recompile(args) -> int:
    image = BinaryImage.from_json(Path(args.image).read_text())
    runs = _parse_inputs(args.input)
    if args.pipeline == "wytiwyg":
        try:
            if args.store is not None:
                from .core.incremental import incremental_recompile
                from .store import ArtifactStore
                result = incremental_recompile(
                    image, runs, ArtifactStore(args.store),
                    jobs=args.jobs, check=args.check,
                    opt_jobs=args.opt_jobs)
                print(f"  store: served={result.stats.served} "
                      f"traces reused={result.stats.traces_reused} "
                      f"recorded={result.stats.traces_recorded}")
            else:
                result = wytiwyg_recompile(image, runs, jobs=args.jobs,
                                           check=args.check,
                                           opt_jobs=args.opt_jobs)
        except StaticCheckError as exc:
            print(f"static check gate aborted recompilation: {exc}",
                  file=sys.stderr)
            if exc.report is not None:
                print(exc.report.render(), file=sys.stderr)
            return 1
        recovered = result.recovered
        for note in result.notes:
            print(f"  {note}")
        if result.fallback:
            print("  (fell back to the unsymbolized pipeline)")
        if result.accuracy is not None:
            acc = result.accuracy
            print(f"  accuracy vs ground truth: "
                  f"P={acc.precision:.0%} R={acc.recall:.0%}")
    elif args.pipeline == "binrec":
        recovered = binrec_recompile(image.stripped(), runs)
    else:
        recovered = secondwrite_recompile(image.stripped()).recovered
    Path(args.output).write_text(recovered.to_json())
    print(f"recompiled [{args.pipeline}] -> {args.output}")
    return 0


def cmd_serve(args) -> int:
    from .serve import RecompileServer
    server = RecompileServer(args.socket, store=args.store,
                             jobs=args.jobs, opt_jobs=args.opt_jobs,
                             workers=args.workers,
                             queue_depth=args.queue_depth,
                             job_timeout=args.job_timeout)
    pool = (f", workers={server.workers}" if server.workers else "")
    print(f"repro serve: listening on {args.socket} "
          f"(store {server.store.root}, jobs={server.jobs}{pool})",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    print("repro serve: stopped", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    from .serve import ServeClient
    client = ServeClient(args.socket, timeout=args.timeout)
    if args.ping:
        response = client.ping()
    elif args.status:
        response = client.status()
    elif args.shutdown:
        response = client.shutdown()
    elif args.campaign_info:
        response = client.campaign(args.campaign_info)
    else:
        if args.image is None and args.campaign is None:
            raise SystemExit("submit needs an IMAGE (or --campaign "
                             "with a stored image, or --ping/--status/"
                             "--shutdown)")
        runs = _parse_inputs(args.input) if args.input else []
        options = {}
        if args.no_optimize:
            options["optimize"] = False
        if args.check is not None:
            options["check"] = args.check
        response = client.submit(
            image=args.image, inputs=runs, campaign=args.campaign,
            options=options or None, output=args.output)
    print(json.dumps(response, indent=2, default=repr))
    return 0


def _parse_size(text: str) -> int:
    """A byte count with an optional K/M/G suffix (binary units)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = text.strip().lower().removesuffix("b")
    factor = units.get(text[-1:], None)
    if factor is not None:
        text = text[:-1]
    try:
        return int(float(text) * (factor or 1))
    except ValueError:
        raise SystemExit(f"bad size {text!r}: use bytes or a K/M/G "
                         f"suffix (e.g. 512M)") from None


def cmd_store_gc(args) -> int:
    from .store import ArtifactStore
    store = ArtifactStore(args.store)
    summary = store.gc(_parse_size(args.max_bytes),
                       pin_campaigns=not args.no_pin,
                       dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"store gc [{store.root}]: {verb} {summary['evicted']} "
          f"entries ({summary['evicted_bytes']} bytes), "
          f"{summary['after_bytes']}/{summary['limit_bytes']} bytes "
          f"kept, {summary['pinned_kept']} campaign-pinned skipped",
          file=sys.stderr if args.json else sys.stdout)
    if args.json:
        print(json.dumps(summary, indent=2))
    return 0


def cmd_layout(args) -> int:
    image = BinaryImage.from_json(Path(args.image).read_text())
    runs = _parse_inputs(args.input)
    result = wytiwyg_recompile(image, runs, optimize=False,
                               jobs=args.jobs, opt_jobs=args.opt_jobs)
    for name, layout in sorted(result.layouts.items()):
        if not layout.variables:
            continue
        print(f"{name}:")
        for var in layout.variables:
            print(f"  [{var.start:6d}, {var.end:6d})  "
                  f"{var.end - var.start:4d} bytes  align {var.align}")
    if result.accuracy is not None:
        acc = result.accuracy
        print(f"accuracy vs ground truth: {acc.counts} "
              f"(P={acc.precision:.0%} R={acc.recall:.0%})")
    return 0


def cmd_check(args) -> int:
    image = BinaryImage.from_json(Path(args.image).read_text())
    runs = _parse_inputs(args.input)
    traces = trace_binary(image, runs)
    _module, _layouts, _notes, report = wytiwyg_lift(
        traces, jobs=args.jobs, static_widen=args.widen)
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"check report written to {args.json}")
    counts = report.counts()
    failing = counts["error"]
    if args.strict:
        failing += counts["warning"]
    return 1 if failing else 0


def cmd_explain(args) -> int:
    image = BinaryImage.from_json(Path(args.image).read_text())
    runs = _parse_inputs(args.input)
    # The provenance query needs the event stream of *this* run: unless
    # the user pointed the ledger at a file, record in memory.
    led = obs.ledger()
    owned = led is None
    if owned:
        led = obs.enable_ledger()
    try:
        result = wytiwyg_recompile(
            image, runs, optimize=False, collect_accuracy=False,
            jobs=args.jobs,
            static_widen=True if args.widen else None)
        events = (led.events if led.path is None
                  else obs.read_events(led.path))
        try:
            pairs = list(obs.select_variables(result.layouts, args.var))
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 1
        for func, var in pairs:
            prov = obs.explain_variable(events, func,
                                        (var.start, var.end), var.name)
            print(obs.render_provenance(prov))
    finally:
        if owned:
            obs.disable_ledger()
    return 0


def cmd_obs_diff(args) -> int:
    a = json.loads(Path(args.a).read_text())
    b = json.loads(Path(args.b).read_text())
    diff = obs.diff_reports(a, b, ratio_threshold=args.ratio_threshold)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(obs.render_diff(diff))
    return 0


def cmd_obs_regress(args) -> int:
    baseline = obs.load_benchmarks(args.baseline)
    fresh = obs.load_benchmarks(args.fresh)
    result = obs.regress(baseline, fresh, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(obs.render_regress(result))
    return 0 if result["ok"] else 1


def cmd_eval(args) -> int:
    from examples.run_paper_eval import main as eval_main  # pragma: no cover
    return eval_main(["--full"] if args.full else [])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--obs-out", metavar="PATH", default=None,
        help="enable observability and write the JSON report here "
             "(a per-stage summary also goes to stderr)")
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="record the structured event ledger (JSONL) to this file "
             "(equivalent to REPRO_LEDGER=PATH)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC to a binary image")
    p.add_argument("source")
    p.add_argument("-o", "--output", default="a.img.json")
    p.add_argument("--compiler", default="gcc12",
                   choices=("gcc12", "gcc44", "clang16"))
    p.add_argument("--opt-level", default="3", choices=("0", "3"))
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a binary image")
    p.add_argument("image")
    p.add_argument("--input", nargs="*", default=[])
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("recompile", help="lift and recompile an image")
    p.add_argument("image")
    p.add_argument("-o", "--output", default="recovered.img.json")
    p.add_argument("--pipeline", default="wytiwyg",
                   choices=("wytiwyg", "binrec", "secondwrite"))
    p.add_argument("--input", nargs="*", default=[])
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan replay sweeps out over N worker processes "
                        "(output is byte-identical to --jobs 1)")
    p.add_argument("--opt-jobs", type=int, default=None, metavar="N",
                   help="fan the optimizer's per-function visits over "
                        "N worker processes (default $REPRO_OPT_JOBS; "
                        "output is byte-identical to --opt-jobs 1)")
    p.add_argument("--check", nargs="?", const="1", default=None,
                   metavar="MODE",
                   help="arm the static check gate: error findings "
                        "abort before optimization (pass 'strict' to "
                        "abort on warnings too)")
    p.add_argument("--store", metavar="DIR", nargs="?",
                   const="", default=None,
                   help="route the run through the content-addressed "
                        "artifact store at DIR (default $REPRO_STORE "
                        "or .repro_store): repeated runs reuse traces "
                        "and results")
    p.set_defaults(func=cmd_recompile)

    p = sub.add_parser(
        "serve",
        help="recompilation daemon: jobs over a local Unix socket")
    p.add_argument("--socket", default=".repro-serve.sock",
                   metavar="PATH", help="Unix socket path to listen on")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="artifact store root (default $REPRO_STORE "
                        "or .repro_store)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan each job's replay sweeps over N worker "
                        "processes (the pool is shared across jobs)")
    p.add_argument("--opt-jobs", type=int, default=None, metavar="N",
                   help="fan each job's optimizer visits over N "
                        "worker processes (default $REPRO_OPT_JOBS)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="run jobs on a pool of N long-lived worker "
                        "processes with warm-cache image affinity "
                        "(default 0: jobs serialize in-process)")
    p.add_argument("--queue-depth", type=int, default=None, metavar="N",
                   help="bound the scheduler's job queue (default "
                        "4 per worker); submissions past it are "
                        "rejected with a retry hint")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job wall-clock limit (needs --workers): "
                        "an overrunning job fails and its worker is "
                        "recycled")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running repro serve daemon")
    p.add_argument("image", nargs="?", default=None,
                   help="binary image to recompile (optional when the "
                        "campaign already has a stored image)")
    p.add_argument("--socket", default=".repro-serve.sock",
                   metavar="PATH", help="daemon socket path")
    p.add_argument("--input", nargs="*", default=[])
    p.add_argument("--campaign", default=None, metavar="NAME",
                   help="accumulate inputs into this named campaign "
                        "and run over its full input set")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="write the recovered image here (server-side)")
    p.add_argument("--no-optimize", action="store_true",
                   help="skip the optimizer stage")
    p.add_argument("--check", nargs="?", const="1", default=None,
                   metavar="MODE", help="arm the static check gate")
    p.add_argument("--timeout", type=float, default=600.0,
                   metavar="SECONDS", help="client-side timeout")
    p.add_argument("--ping", action="store_true",
                   help="liveness probe instead of a job")
    p.add_argument("--status", action="store_true",
                   help="daemon counters + store stats instead of a job")
    p.add_argument("--shutdown", action="store_true",
                   help="stop the daemon instead of submitting a job")
    p.add_argument("--campaign-info", default=None, metavar="NAME",
                   help="print one campaign's summary instead of a job")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "store", help="artifact-store maintenance (gc)")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    q = store_sub.add_parser(
        "gc",
        help="evict least-recently-used artifacts down to a byte cap")
    q.add_argument("--max-bytes", required=True, metavar="SIZE",
                   help="target store size (bytes, or K/M/G suffix)")
    q.add_argument("--store", default=None, metavar="DIR",
                   help="store root (default $REPRO_STORE or "
                        ".repro_store)")
    q.add_argument("--dry-run", action="store_true",
                   help="report what would be evicted, delete nothing")
    q.add_argument("--no-pin", action="store_true",
                   help="allow evicting campaign sources and traces "
                        "(breaks image-less campaign resubmission)")
    q.add_argument("--json", action="store_true",
                   help="also print the full summary as JSON")
    q.set_defaults(func=cmd_store_gc)

    p = sub.add_parser("layout", help="print recovered stack layouts")
    p.add_argument("image")
    p.add_argument("--input", nargs="*", default=[])
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan replay sweeps out over N worker processes")
    p.add_argument("--opt-jobs", type=int, default=None, metavar="N",
                   help="fan canonicalization visits over N worker "
                        "processes (default $REPRO_OPT_JOBS)")
    p.set_defaults(func=cmd_layout)

    p = sub.add_parser(
        "check",
        help="static corroboration + sanitizer findings for an image")
    p.add_argument("image")
    p.add_argument("--input", nargs="*", default=[])
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan replay sweeps out over N worker processes")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on warnings as well as errors")
    p.add_argument("--widen", action="store_true",
                   help="apply coverage-gap widening suggestions "
                        "(REPRO_STATIC_WIDEN) before reporting")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the report as JSON")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "explain",
        help="provenance chain behind recovered stack variables")
    p.add_argument("image")
    p.add_argument("--input", nargs="*", default=[])
    p.add_argument("--var", metavar="SPEC", default=None,
                   help="which variable(s) to explain: FUNC:NAME one "
                        "variable (e.g. fn_08048000:sv_m8), NAME every "
                        "function's variable of that name, FUNC the "
                        "whole frame; default: everything")
    p.add_argument("--widen", action="store_true",
                   help="apply coverage-gap widening suggestions "
                        "(REPRO_STATIC_WIDEN) so their ledger events "
                        "appear in the chain")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan replay sweeps out over N worker processes")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "obs", help="observability artifact tools (diff, regress)")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser(
        "diff", help="structural diff of two obs JSON reports")
    q.add_argument("a")
    q.add_argument("b")
    q.add_argument("--ratio-threshold", type=float, default=0.2,
                   metavar="R",
                   help="ignore timer/histogram mean shifts below this "
                        "relative change (default 0.2)")
    q.add_argument("--json", action="store_true",
                   help="print the diff as JSON instead of text")
    q.set_defaults(func=cmd_obs_diff)

    q = obs_sub.add_parser(
        "regress",
        help="perf gate: fresh pytest-benchmark JSONs vs baselines")
    q.add_argument("--baseline", nargs="+", required=True,
                   metavar="JSON",
                   help="committed baseline pytest-benchmark JSON(s)")
    q.add_argument("--fresh", nargs="+", required=True, metavar="JSON",
                   help="freshly produced pytest-benchmark JSON(s)")
    q.add_argument("--tolerance", type=float, default=1.5, metavar="X",
                   help="fail when fresh mean > X * baseline mean "
                        "(default 1.5)")
    q.add_argument("--json", action="store_true",
                   help="print the verdict as JSON instead of text")
    q.set_defaults(func=cmd_obs_regress)

    p = sub.add_parser("eval", help="regenerate the paper's evaluation")
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=cmd_eval)

    args = parser.parse_args(argv)
    if args.obs_out:
        obs.enable()
    if args.ledger:
        obs.enable_ledger(args.ledger)
    try:
        status = args.func(args)
    except CheckError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        status = 2
    finally:
        if args.ledger:
            obs.disable_ledger()
    rec = obs.recorder()
    if rec is not None:
        doc = obs.export(rec)
        if args.obs_out:
            obs.write_json(rec, args.obs_out)
            print(f"observability report written to {args.obs_out}",
                  file=sys.stderr)
        print(obs.summary(doc), file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
