"""Deterministic libc model."""

import pytest

from repro.emu.libc import ExitProgram, LibC, ListArgs, parse_format
from repro.emu.memory import Memory
from repro.errors import EmulationError


def make():
    mem = Memory()
    return mem, LibC(mem, [7, b"blob", 9])


def cstr(mem, addr, text):
    mem.write_bytes(addr, text + b"\x00")
    return addr


def test_parse_format():
    assert parse_format(b"%d %s %x %c %%") == ["int", "str", "int",
                                               "int"]
    assert parse_format(b"no conversions") == []
    assert parse_format(b"%5d %-3s %04x") == ["int", "str", "int"]
    with pytest.raises(EmulationError):
        parse_format(b"%f")


def test_printf_formats_and_counts():
    mem, libc = make()
    cstr(mem, 0x100, b"a=%d b=%s c=%x")
    cstr(mem, 0x200, b"txt")
    n = libc.call("printf", ListArgs([0x100, -5 & 0xFFFFFFFF, 0x200,
                                      255]))
    assert libc.stdout == b"a=-5 b=txt c=ff"
    assert n == len(libc.stdout)


def test_printf_width_padding():
    mem, libc = make()
    cstr(mem, 0x100, b"[%5d][%-4d][%04d]")
    libc.call("printf", ListArgs([0x100, 42, 7, 3]))
    assert libc.stdout == b"[   42][7   ][0003]"


def test_sprintf_writes_nul():
    mem, libc = make()
    cstr(mem, 0x100, b"x=%d")
    libc.call("sprintf", ListArgs([0x300, 0x100, 9]))
    assert mem.read_cstring(0x300) == b"x=9"


def test_puts_putchar():
    mem, libc = make()
    cstr(mem, 0x100, b"hello")
    libc.call("puts", ListArgs([0x100]))
    libc.call("putchar", ListArgs([ord("!")]))
    assert libc.stdout == b"hello\n!"


def test_string_functions():
    mem, libc = make()
    cstr(mem, 0x100, b"abc")
    cstr(mem, 0x200, b"abd")
    assert libc.call("strlen", ListArgs([0x100])) == 3
    assert libc.call("strcmp", ListArgs([0x100, 0x200])) != 0
    libc.call("strcpy", ListArgs([0x300, 0x100]))
    assert mem.read_cstring(0x300) == b"abc"
    libc.call("strcat", ListArgs([0x300, 0x200]))
    assert mem.read_cstring(0x300) == b"abcabd"


def test_memcpy_memset_memcmp():
    mem, libc = make()
    mem.write_bytes(0x100, b"\x01\x02\x03\x04")
    libc.call("memcpy", ListArgs([0x200, 0x100, 4]))
    assert libc.call("memcmp", ListArgs([0x100, 0x200, 4])) == 0
    libc.call("memset", ListArgs([0x200, 0xAB, 2]))
    assert mem.read_bytes(0x200, 4) == b"\xab\xab\x03\x04"


def test_strtok_state():
    mem, libc = make()
    cstr(mem, 0x100, b"a,b;c")
    cstr(mem, 0x200, b",;")
    first = libc.call("strtok", ListArgs([0x100, 0x200]))
    second = libc.call("strtok", ListArgs([0, 0x200]))
    third = libc.call("strtok", ListArgs([0, 0x200]))
    done = libc.call("strtok", ListArgs([0, 0x200]))
    assert mem.read_cstring(first) == b"a"
    assert mem.read_cstring(second) == b"b"
    assert mem.read_cstring(third) == b"c"
    assert done == 0


def test_atoi():
    mem, libc = make()
    for text, expected in ((b"123", 123), (b"-45x", -45 & 0xFFFFFFFF),
                           (b"  7", 7), (b"abc", 0)):
        cstr(mem, 0x100, text)
        assert libc.call("atoi", ListArgs([0x100])) == expected


def test_malloc_alignment_and_distinct():
    mem, libc = make()
    a = libc.call("malloc", ListArgs([10]))
    b = libc.call("malloc", ListArgs([10]))
    assert a % 16 == 0 and b % 16 == 0 and b > a
    c = libc.call("calloc", ListArgs([4, 4]))
    assert mem.read_bytes(c, 16) == b"\x00" * 16


def test_exit_raises():
    _mem, libc = make()
    with pytest.raises(ExitProgram) as info:
        libc.call("exit", ListArgs([3]))
    assert info.value.code == 3


def test_rand_deterministic():
    _mem, libc1 = make()
    _mem2, libc2 = make()
    seq1 = [libc1.call("rand", ListArgs([])) for _ in range(5)]
    seq2 = [libc2.call("rand", ListArgs([])) for _ in range(5)]
    assert seq1 == seq2
    libc1.call("srand", ListArgs([99]))
    assert libc1.call("rand", ListArgs([])) != seq1[0] or True


def test_input_stream():
    mem, libc = make()  # inputs: [7, b"blob", 9]
    assert libc.call("read_int", ListArgs([])) == 7
    n = libc.call("read_buf", ListArgs([0x500, 2]))
    assert n == 2 and mem.read_bytes(0x500, 2) == b"bl"
    assert libc.call("read_int", ListArgs([])) == 9
    assert libc.call("read_int", ListArgs([])) == 0xFFFFFFFF  # exhausted


def test_unknown_external_rejected():
    _mem, libc = make()
    with pytest.raises(EmulationError):
        libc.call("mystery", ListArgs([]))


def test_abs():
    _mem, libc = make()
    assert libc.call("abs", ListArgs([-9 & 0xFFFFFFFF])) == 9
    assert libc.call("abs", ListArgs([9])) == 9
