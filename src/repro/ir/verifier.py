"""IR verifier: structural well-formedness checks.

Run after every transformation in tests; catching a malformed rewrite at
the pass boundary is vastly cheaper than debugging a miscompare three
stages later.
"""

from __future__ import annotations

from ..errors import IRError
from .module import Function, Module
from .values import (
    Call,
    CallInd,
    Const,
    FuncRef,
    GlobalRef,
    Instr,
    Param,
    Phi,
    Result,
    Ret,
    Value,
)


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func, module)


def verify_function(func: Function, module: Module | None = None) -> None:
    if not func.blocks:
        raise IRError(f"{func.name}: function has no blocks")

    defined: set[Instr] = set()
    block_set = set(func.blocks)
    for block in func.blocks:
        if not block.is_terminated:
            raise IRError(f"{func.name}/{block.name}: missing terminator")
        seen_non_phi = False
        for i, instr in enumerate(block.instrs):
            if instr.is_terminator and i != len(block.instrs) - 1:
                raise IRError(
                    f"{func.name}/{block.name}: terminator mid-block")
            if isinstance(instr, Phi):
                # Phis must form a contiguous leading run; comparing
                # positions against the phi *count* would miss a phi
                # sandwiched between non-phis once later phis pad the
                # count, so track the first non-phi explicitly.
                if seen_non_phi:
                    raise IRError(
                        f"{func.name}/{block.name}: phi below non-phi")
            else:
                seen_non_phi = True
            defined.add(instr)

    preds = func.predecessors()
    params = set(func.params)
    for block in func.blocks:
        for instr in block.instrs:
            for op in instr.operands():
                _check_operand(func, block.name, op, defined, params,
                               block_set, module)
        for phi in block.phis():
            phi_preds = set(phi.blocks)
            actual = set(preds[block])
            if phi_preds != actual:
                names = sorted(b.name for b in phi_preds ^ actual)
                raise IRError(
                    f"{func.name}/{block.name}: phi incoming blocks "
                    f"disagree with predecessors ({names})")
        if block.is_terminated:
            for succ in block.successors():
                if succ not in block_set:
                    raise IRError(
                        f"{func.name}/{block.name}: successor "
                        f"{succ.name} not in function")

    # Result extraction and return arity.
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Result):
                call = instr.call
                if not isinstance(call, (Call, CallInd)):
                    raise IRError(f"{func.name}: result of non-call")
                if not 0 <= instr.index < call.nresults:
                    raise IRError(
                        f"{func.name}: result index {instr.index} out of "
                        f"range for {call.nresults}-result call")
            if isinstance(instr, Ret) and len(instr.ops) != func.nresults:
                raise IRError(
                    f"{func.name}: ret carries {len(instr.ops)} values, "
                    f"function declares {func.nresults}")

    if module is not None:
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call):
                    callee = module.functions.get(instr.callee.name)
                    if callee is None:
                        raise IRError(
                            f"{func.name}: call to unknown function "
                            f"{instr.callee.name}")
                    if len(instr.args) != len(callee.params):
                        raise IRError(
                            f"{func.name}: call to {callee.name} passes "
                            f"{len(instr.args)} args, callee takes "
                            f"{len(callee.params)}")
                    if instr.nresults != callee.nresults:
                        raise IRError(
                            f"{func.name}: call to {callee.name} expects "
                            f"{instr.nresults} results, callee returns "
                            f"{callee.nresults}")


def _check_operand(func: Function, where: str, op: Value,
                   defined: set[Instr], params: set[Param],
                   block_set: set, module: Module | None) -> None:
    if isinstance(op, Const):
        return
    if isinstance(op, Param):
        if op not in params:
            raise IRError(f"{func.name}/{where}: foreign parameter {op!r}")
        return
    if isinstance(op, GlobalRef):
        if module is not None and op.name not in module.globals:
            raise IRError(f"{func.name}/{where}: unknown global {op.name}")
        return
    if isinstance(op, FuncRef):
        if module is not None and op.name not in module.functions:
            raise IRError(f"{func.name}/{where}: unknown function ref "
                          f"{op.name}")
        return
    if isinstance(op, Instr):
        if op not in defined:
            raise IRError(
                f"{func.name}/{where}: use of instruction not in function: "
                f"{op!r}")
        return
    raise IRError(f"{func.name}/{where}: bad operand {op!r}")
