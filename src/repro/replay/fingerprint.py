"""Content fingerprinting for IR modules.

The replay engine needs one question answered cheaply: *did this stage
change the module since the last point it was known to reproduce the
traces?*  Mutation counters (:attr:`repro.ir.module.Function.version`)
answer "was it touched", but a refinement that finds nothing to do may
still bump versions, and counters do not survive process boundaries.  A
content hash answers the real question: two modules with equal
fingerprints have equal textual IR, equal global data, and equal entry
metadata, so a validation sweep that passed for one passes for the
other.

The hash is built from the canonical printer rendering (which renumbers
value names, so it is insensitive to stale printing hints) plus the
parts the printer elides: global initializers, the address table, and
the entry name.  :class:`~repro.evaluation.cache.EvalCache` reuses the
same digest for module-derived artifact keys.
"""

from __future__ import annotations

import hashlib

from ..ir.module import Function, Module
from ..ir.printer import function_to_text, module_to_text


def function_fingerprint(func: Function) -> str:
    """Hex digest of one function's canonical rendering.

    The per-function analogue of :func:`module_fingerprint`, used by the
    optimizer's cross-stage memo (:mod:`repro.opt.manager`): two
    functions with equal fingerprints print identically — same
    signature, blocks, instructions, and operand structure — so a pass
    schedule that reached fixpoint on one is a no-op on the other.
    Module-level context (global layouts) is *not* part of the digest;
    callers that depend on it must key it separately.
    """
    return hashlib.sha256(
        function_to_text(func).encode()).hexdigest()[:32]


def module_fingerprint(module: Module) -> str:
    """Hex digest of everything that determines a module's behaviour."""
    h = hashlib.sha256()
    h.update(module_to_text(module).encode())
    for name, g in module.globals.items():
        h.update(name.encode())
        h.update(repr(g.init).encode())
        h.update(f"{g.size}:{g.align}:{g.fixed_addr}:{g.writable}"
                 .encode())
    for addr in sorted(module.address_table):
        h.update(f"{addr}={module.address_table[addr]}".encode())
    h.update(module.entry_name.encode())
    return h.hexdigest()[:32]
