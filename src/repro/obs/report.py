"""Report generation: JSON export and the per-stage summary table.

``export`` turns a recorder into a plain-dict document (the JSON schema
documented in README's Observability section); ``summary`` renders that
document as the human-readable table the CLI prints to stderr.
"""

from __future__ import annotations

import json
from pathlib import Path

from .recorder import Recorder

__all__ = ["export", "iter_spans", "summary", "write_json"]

# v2: histogram/timer entries gained p50/p95/p99 and the bounded
# sample reservoir behind them (additive — v1 readers that ignore
# unknown keys keep working; merge_dict treats absent samples as empty).
SCHEMA_VERSION = 2


def export(rec: Recorder, top: int = 10) -> dict:
    """Serialize a recorder to a plain-dict report document."""
    return {
        "version": SCHEMA_VERSION,
        "spans": [s.to_dict() for s in rec.spans] + list(rec.foreign_spans),
        "metrics": rec.registry.to_dict(top),
    }


def write_json(rec: Recorder, path: str | Path, top: int = 10) -> dict:
    doc = export(rec, top)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=False))
    return doc


def iter_spans(doc: dict):
    """Depth-first walk over every span dict in a report document."""
    stack = list(reversed(doc.get("spans", [])))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.get("children", [])))


def _ratio(counters: dict, hit: str, miss: str) -> float | None:
    hits, misses = counters.get(hit, 0), counters.get(miss, 0)
    total = hits + misses
    return hits / total if total else None


def _fmt_delta(attrs: dict) -> str:
    before, after = attrs.get("ir_before"), attrs.get("ir_after")
    if not (before and after):
        return ""
    return (f"{before['instrs']:>6} -> {after['instrs']:<6} instrs  "
            f"({before['functions']}f/{before['blocks']}b -> "
            f"{after['functions']}f/{after['blocks']}b)")


#: Counter prefixes grouped into labeled stderr-summary sections so
#: cache/pool behaviour is readable at a glance.
COUNTER_SECTIONS = (
    ("lowering cache", "lower.cache."),
    ("fork pool", "parallel.pool."),
    ("pass manager", "opt.manager."),
    ("artifact store", "store."),
    ("serve", "serve."),
)


def _counter_sections(counters: dict) -> list[str]:
    lines = []
    for label, prefix in COUNTER_SECTIONS:
        rows = [(name[len(prefix):], n) for name, n
                in sorted(counters.items()) if name.startswith(prefix)]
        if not rows:
            continue
        lines.append("")
        lines.append(f"{label} ({prefix}*):")
        width = max(len(short) for short, _ in rows)
        for short, n in rows:
            lines.append(f"  {short:<{width}}  {n:>10,}")
        hits = counters.get(prefix + "hits")
        misses = counters.get(prefix + "misses")
        if hits is not None and misses is not None and hits + misses:
            lines.append(f"  {'hit rate':<{width}}  "
                         f"{hits / (hits + misses):>10.2%}")
    return lines


def _percentile_rows(timers: dict) -> list[str]:
    rows = [(name, h) for name, h in sorted(timers.items())
            if h.get("count")]
    if not rows:
        return []
    width = max(len(name) for name, _ in rows)
    lines = ["", f"{'timer':<{width}}  {'count':>7}  {'mean ms':>9}  "
                 f"{'p50 ms':>9}  {'p95 ms':>9}  {'p99 ms':>9}"]
    for name, h in rows:
        lines.append(
            f"{name:<{width}}  {h['count']:>7}  {h['mean'] * 1e3:>9.3f}"
            f"  {h.get('p50', 0.0) * 1e3:>9.3f}"
            f"  {h.get('p95', 0.0) * 1e3:>9.3f}"
            f"  {h.get('p99', 0.0) * 1e3:>9.3f}")
    return lines


def summary(doc: dict) -> str:
    """Render a report document as a per-stage table plus highlights."""
    lines = ["=== repro.obs summary ==="]
    stage_rows = []
    for span in iter_spans(doc):
        name = span.get("name", "")
        if not name.startswith("stage."):
            continue
        attrs = span.get("attrs", {})
        status = "ERROR" if "error" in attrs else \
            ("ok" if attrs.get("verified") else "")
        stage_rows.append((name[len("stage."):],
                           span.get("seconds", 0.0) * 1e3,
                           _fmt_delta(attrs), status))
    if stage_rows:
        width = max(len(r[0]) for r in stage_rows)
        lines.append(f"{'stage':<{width}}  {'wall ms':>9}  "
                     f"{'IR delta':<48}  verify")
        for name, ms, delta, status in stage_rows:
            lines.append(f"{name:<{width}}  {ms:>9.2f}  {delta:<48}  "
                         f"{status}")

    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", {})
    highlights = []
    block_rate = _ratio(counters, "emu.block_cache.hit",
                        "emu.block_cache.miss")
    if block_rate is not None:
        highlights.append(f"block cache hit rate   {block_rate:7.2%}  "
                          f"({counters.get('emu.block_cache.hit', 0)} hit"
                          f" / {counters.get('emu.block_cache.miss', 0)}"
                          f" miss)")
    if counters.get("emu.instructions_retired"):
        highlights.append("instructions retired   "
                          f"{counters['emu.instructions_retired']:,}")
    mem_rate = _ratio(counters, "emu.mem.fast_path", "emu.mem.slow_path")
    if mem_rate is not None:
        highlights.append(f"memory fast-path rate  {mem_rate:7.2%}")
    eval_rate = _ratio(counters, "evalcache.hit", "evalcache.miss")
    if eval_rate is not None:
        highlights.append(f"eval cache hit rate    {eval_rate:7.2%}")
    if counters.get("evalcache.corrupt"):
        highlights.append("eval cache corrupt     "
                          f"{counters['evalcache.corrupt']}")
    if counters.get("ir.code_cache.invalidations") is not None:
        highlights.append("IR code invalidations  "
                          f"{counters['ir.code_cache.invalidations']}")
    if highlights:
        lines.append("")
        lines.extend(highlights)

    lines.extend(_counter_sections(counters))
    lines.extend(_percentile_rows(metrics.get("timers", {})))

    hot = metrics.get("profiles", {}).get("emu.hot_blocks")
    if hot and hot.get("top"):
        lines.append("")
        lines.append("hot blocks (executions):")
        for addr, n in hot["top"]:
            lines.append(f"  {addr:>12}  {n:,}")
    return "\n".join(lines)
