"""Flag semantics and condition-code predicates."""

import pytest

from repro.emu.cpu import CPU, Flags, signed32
from repro.isa.registers import AH, AL, AX, EAX


def test_signed32():
    assert signed32(0xFFFFFFFF) == -1
    assert signed32(0x7FFFFFFF) == 0x7FFFFFFF
    assert signed32(0x80000000) == -(2**31)


def test_sub_flags_equal():
    f = Flags()
    f.set_sub(5, 5, 0)
    assert f.zf and not f.sf and not f.cf and not f.of


def test_sub_flags_unsigned_borrow():
    f = Flags()
    f.set_sub(1, 2, 1 - 2)
    assert f.cf and f.sf and not f.zf


def test_sub_flags_signed_overflow():
    f = Flags()
    a, b = 0x80000000, 1  # INT_MIN - 1 overflows
    f.set_sub(a, b, a - b)
    assert f.of


def test_add_flags_carry_and_overflow():
    f = Flags()
    f.set_add(0xFFFFFFFF, 1, 0xFFFFFFFF + 1)
    assert f.cf and f.zf and not f.of
    f.set_add(0x7FFFFFFF, 1, 0x80000000)
    assert f.of and f.sf and not f.cf


def test_logic_flags_clear_carry():
    f = Flags(cf=True, of=True)
    f.set_logic(0)
    assert f.zf and not f.cf and not f.of


@pytest.mark.parametrize("a,b,true_ccs", [
    (5, 5, {"e", "le", "ge", "be", "ae", "ns"}),
    (3, 7, {"ne", "l", "le", "b", "be", "s"}),
    (7, 3, {"ne", "g", "ge", "a", "ae", "ns"}),
    (-1 & 0xFFFFFFFF, 1, {"ne", "l", "le", "a", "ae", "s"}),
])
def test_condition_predicates_after_cmp(a, b, true_ccs):
    f = Flags()
    f.set_sub(a, b, a - b)
    for cc in ("e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae",
               "s", "ns"):
        assert f.condition(cc) == (cc in true_ccs), cc


def test_cpu_subregister_views():
    cpu = CPU()
    cpu.set(EAX, 0xAABBCCDD)
    assert cpu.get(AL) == 0xDD
    assert cpu.get(AH) == 0xCC
    cpu.set(AX, 0x1122)
    assert cpu.get(EAX) == 0xAABB1122


def test_cpu_snapshot():
    cpu = CPU()
    cpu.set_name("esi", 42)
    snap = cpu.snapshot()
    assert snap["esi"] == 42 and snap["eax"] == 0
