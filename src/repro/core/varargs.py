"""Variadic external call recovery (paper §5.2).

Lifted calls to printf-style functions initially use *stack switching*:
the emulated stack pointer is handed to the external function, which
reads its arguments directly from the emulated stack.  Stack switching is
incompatible with removing the emulated stack, so this refinement runs
the lifted program and inspects each variadic call site's format string
at runtime to determine an exact per-site prototype, then rewrites the
site to load and pass its arguments explicitly.
"""

from __future__ import annotations

from ..emu.libc import parse_format
from ..ir.interp import Interpreter
from ..ir.module import Module
from ..ir.values import CallExt, Const, Load, BinOp
from .extfuncs import EXTERNAL_DB


def find_vararg_sites(module: Module) -> list[CallExt]:
    sites = []
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, CallExt) and instr.stack_args:
                sites.append(instr)
    return sites


class VarargObserver:
    """Records, per call site, the maximal argument count observed."""

    def __init__(self) -> None:
        self.max_args: dict[int, int] = {}

    def __call__(self, frame, instr: CallExt, sp: int | None,
                 args: list[int] | None) -> None:
        if sp is None:
            return  # already-explicit call
        sig = EXTERNAL_DB.get(instr.ext_name)
        if sig is None or sig.format_arg is None:
            # Unknown effect: keep the fixed arguments only.
            count = sig.nargs if sig else 0
        else:
            interp: Interpreter = self._interp
            fmt_addr = interp.mem.read(sp + 4 * sig.format_arg, 4)
            fmt = interp.mem.read_cstring(fmt_addr)
            count = sig.nargs + len(parse_format(fmt))
        site = id(instr)
        self.max_args[site] = max(self.max_args.get(site, 0), count)

    _interp: Interpreter = None  # bound per run


def recover_vararg_calls(module: Module,
                         inputs: list[list[int | bytes]]) -> int:
    """Run the module on all inputs, then rewrite variadic call sites
    with explicit arguments.  Returns the number of rewritten sites."""
    sites = find_vararg_sites(module)
    if not sites:
        return 0
    observer = VarargObserver()
    for input_items in inputs:
        interp = Interpreter(module, input_items,
                             callext_hook=observer)
        observer._interp = interp
        interp.run()

    rewritten = 0
    for site in sites:
        count = observer.max_args.get(id(site))
        if count is None:
            # Never executed under the traced inputs (cannot happen for
            # lifted code, which only contains traced paths).
            count = EXTERNAL_DB[site.ext_name].nargs
        sp = site.sp
        block = site.block
        index = block.instrs.index(site)
        args = []
        for i in range(count):
            addr = sp if i == 0 else BinOp("add", sp, Const(4 * i))
            if i:
                addr.block = block
                block.instrs.insert(index, addr)
                index += 1
            load = Load(addr if i else sp, 4)
            load.block = block
            block.instrs.insert(index, load)
            index += 1
            args.append(load)
        # Rewrite the call in place so existing uses stay valid.
        site.ops = args
        site.stack_args = False
        if block.function is not None:
            block.function.invalidate()
        rewritten += 1
    module.metadata["varargs_recovered"] = str(rewritten)
    return rewritten
