"""Observability benches: pipeline stage timings under repro.obs and
the cost of the instrumentation when it is switched off.

Runs as the second ``tools/bench.sh`` pass (``-m obs``) and lands in
``BENCH_obs.json``: each bench's ``extra_info`` carries the per-stage
wall times, the emulator's cache hit rates, and the enabled-vs-disabled
overhead ratio, so a CI job can diff a run against a saved baseline.
"""

import time

import pytest

from repro import obs
from repro.cc import compile_source
from repro.core.driver import wytiwyg_recompile
from repro.emu import trace_binary

pytestmark = pytest.mark.obs

SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 30; i++) acc += fib(9) & 7;
    printf("acc=%d\n", acc);
    return 0;
}
"""

STAGES = ("trace", "lift", "varargs", "regsave", "canonicalize",
          "bounds", "sanalysis", "sanitize", "optimize", "recompile")


@pytest.fixture(scope="module")
def image():
    return compile_source(SOURCE, "gcc12", "3", "obs_bench")


def _median_seconds(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_bench_recompile_observed(benchmark, image):
    """Full WYTIWYG recompile with observability on; per-stage wall
    times and emulator cache rates land in extra_info."""
    def run():
        obs.enable(reset=True)
        wytiwyg_recompile(image, [[]])
        return obs.export(obs.recorder())

    try:
        doc = benchmark(run)
    finally:
        obs.disable()

    stages = {s["name"][len("stage."):]: s["seconds"]
              for s in obs.iter_spans(doc)
              if s["name"].startswith("stage.")}
    assert set(stages) == set(STAGES)
    benchmark.extra_info["stage_seconds"] = stages

    counters = doc["metrics"]["counters"]
    hits = counters.get("emu.block_cache.hit", 0)
    misses = counters.get("emu.block_cache.miss", 0)
    benchmark.extra_info["block_cache_hit_rate"] = \
        hits / (hits + misses) if hits + misses else None
    benchmark.extra_info["instructions_retired"] = \
        counters.get("emu.instructions_retired", 0)


def test_bench_trace_disabled_overhead(benchmark, image):
    """Trace with observability *off* (the tier-1 configuration); the
    enabled-path cost lands in extra_info as an overhead ratio."""
    stripped = image.stripped()
    obs.enable(reset=True)
    try:
        enabled_median = _median_seconds(
            lambda: trace_binary(stripped, [[]]))
    finally:
        obs.disable()

    benchmark(lambda: trace_binary(stripped, [[]]))
    disabled_median = benchmark.stats.stats.median
    benchmark.extra_info["enabled_seconds"] = enabled_median
    benchmark.extra_info["observed_overhead"] = \
        enabled_median / disabled_median - 1.0


def test_bench_trace_ledger_overhead(benchmark, image, tmp_path):
    """Observer-effect guard for the event ledger: the tracer's hot
    loops never emit events and :func:`repro.obs.event` is a single
    module-global read when disabled, so arming a file-backed ledger
    must not slow tracing.  Measured overhead sits around 1%; the
    assertion allows 15% so scheduler jitter on shared CI runners
    cannot flake the gate."""
    stripped = image.stripped()
    obs.disable()
    obs.disable_ledger()
    obs.enable_ledger(tmp_path / "bench_events.jsonl")
    try:
        armed_median = _median_seconds(
            lambda: trace_binary(stripped, [[]]))
    finally:
        obs.disable_ledger()

    benchmark(lambda: trace_binary(stripped, [[]]))
    disabled_median = benchmark.stats.stats.median
    overhead = armed_median / disabled_median - 1.0
    benchmark.extra_info["ledger_overhead"] = overhead
    assert overhead < 0.15, \
        f"ledger-armed tracing {overhead:.1%} slower than disabled"
