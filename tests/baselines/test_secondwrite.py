"""SecondWrite static baseline: successes, collapses, and failures."""

import pytest

from repro.baselines import (
    SecondWriteError,
    secondwrite_recompile,
    static_cfg,
)
from repro.cc import compile_source
from repro.emu import run_binary
from tests.conftest import KERNEL_SOURCE, cached_image


def test_static_pipeline_recompiles_simple_program():
    image = cached_image(KERNEL_SOURCE, "gcc44", "3")
    native = run_binary(image)
    result = secondwrite_recompile(image.stripped())
    recovered = run_binary(result.recovered)
    assert recovered.stdout == native.stdout


def test_fails_on_jump_tables():
    src = r'''
int pick(int v) {
    switch (v) {
    case 0: return 5;
    case 1: return 6;
    case 2: return 7;
    case 3: return 8;
    case 4: return 9;
    default: return -1;
    }
}
int main() {
    int i; int s = 0;
    for (i = 0; i < 6; i++) s += pick(i);
    printf("%d\n", s);
    return 0;
}
'''
    image = compile_source(src, "gcc12", "3", "t")  # emits a jump table
    with pytest.raises(SecondWriteError):
        secondwrite_recompile(image.stripped())


def test_fails_on_function_pointers():
    src = r'''
int add(int a, int b) { return a + b; }
int apply(int (*f)(int, int)) { return f(1, 2); }
int main() { printf("%d\n", apply(add)); return 0; }
'''
    image = compile_source(src, "gcc12", "3", "t")
    with pytest.raises(SecondWriteError):
        secondwrite_recompile(image.stripped())


def test_complex_frames_collapse_to_single_symbol():
    src = r'''
int main() {
    int arr[16];
    int i;
    for (i = 0; i < 16; i++) arr[i] = i;     /* indexed: complex */
    int s = 0;
    for (i = 0; i < 16; i++) s += arr[i];
    printf("%d\n", s);
    return 0;
}
'''
    image = compile_source(src, "gcc44", "3", "t")
    result = secondwrite_recompile(image.stripped())
    assert result.report.collapsed  # single-symbol frames exist
    assert run_binary(result.recovered).stdout == b"120\n"


def test_simple_frames_are_split():
    src = r'''
int combine(int a, int b) {
    int x = a + 1;
    int y = b + 2;
    int z = x * y;
    return z;
}
int main() { printf("%d\n", combine(3, 4)); return 0; }
'''
    image = compile_source(src, "gcc44", "0", "t")
    result = secondwrite_recompile(image.stripped())
    assert result.report.split
    assert run_binary(result.recovered).stdout == b"24\n"


def test_constant_format_strings_recovered_statically():
    image = cached_image(KERNEL_SOURCE, "gcc44", "3")
    result = secondwrite_recompile(image.stripped())
    from repro.ir.values import CallExt
    stack_call = [i for f in result.module.functions.values()
                  for i in f.instructions()
                  if isinstance(i, CallExt) and i.stack_args]
    assert not stack_call


def test_static_cfg_covers_whole_text():
    image = cached_image(KERNEL_SOURCE, "gcc44", "3")
    cfg = static_cfg(image.stripped())
    # Static CFG covers at least as much as any trace would.
    total = sum(len(b.instrs) for b in cfg.blocks.values())
    assert total > 0
    assert cfg.call_targets
