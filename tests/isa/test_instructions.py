"""Instruction/operand construction and validation."""

import pytest

from repro.isa import (
    EAX,
    EBX,
    ESP,
    Imm,
    ImportRef,
    Label,
    Mem,
    ins,
    jcc,
    setcc,
)
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg


def test_basic_construction():
    i = ins("mov", EAX, Imm(5))
    assert i.mnemonic == "mov"
    assert i.operands == (EAX, Imm(5))
    assert not i.is_branch


def test_unknown_mnemonic_rejected():
    with pytest.raises(ValueError):
        ins("bogus", EAX)


def test_jcc_requires_condition():
    with pytest.raises(ValueError):
        Instruction("jcc", (Imm(0),))
    with pytest.raises(ValueError):
        Instruction("jcc", (Imm(0),), cc="zz")
    assert jcc("ne", Label("x")).cc == "ne"


def test_cc_rejected_on_plain_mnemonics():
    with pytest.raises(ValueError):
        Instruction("mov", (EAX, Imm(0)), cc="e")


def test_display_name_folds_condition():
    assert jcc("le", Label("t")).name == "jle"
    assert setcc("a", Reg(0, 1)).name == "seta"
    assert ins("ret").name == "ret"


def test_branch_classification():
    assert ins("jmp", Imm(4)).is_branch
    assert ins("call", Imm(4)).is_branch
    assert ins("ret").is_branch
    assert ins("hlt").is_branch
    assert not ins("add", EAX, Imm(1)).is_branch


def test_flags_classification():
    assert ins("add", EAX, Imm(1)).writes_flags
    assert ins("cmp", EAX, EBX).writes_flags
    assert not ins("mov", EAX, EBX).writes_flags
    assert not ins("lea", EAX, Mem(ESP, disp=4)).writes_flags


def test_mem_validation():
    with pytest.raises(ValueError):
        Mem(EAX, scale=3)
    with pytest.raises(ValueError):
        Mem(EAX, size=8)
    with pytest.raises(ValueError):
        Mem(Reg(0, 2))  # 16-bit base


def test_mem_label_displacement():
    m = Mem(None, disp=Label("table", 8))
    assert isinstance(m.disp, Label)
    assert m.disp.addend == 8


def test_label_addend_repr():
    assert repr(Label("x")) == "x"
    assert repr(Label("x", 4)) == "x+4"
