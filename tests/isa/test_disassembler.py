"""Disassembler: decode-at, caching, linear sweep, listings."""

import pytest

from repro.errors import EncodingError
from repro.isa import AsmFunction, AsmProgram, EAX, Imm, assemble, ins
from repro.isa.disassembler import Disassembler


def build():
    f = AsmFunction("_start", [
        ins("mov", EAX, Imm(1)),
        ins("add", EAX, Imm(2)),
        ins("hlt"),
    ])
    return assemble(AsmProgram(functions=[f]))


def test_decode_at_assigns_addresses():
    image = build()
    d = Disassembler(image)
    first = d.at(image.entry)
    assert first.mnemonic == "mov" and first.addr == image.entry
    second = d.at(image.entry + first.size)
    assert second.mnemonic == "add"


def test_decoding_is_cached():
    image = build()
    d = Disassembler(image)
    assert d.at(image.entry) is d.at(image.entry)


def test_linear_sweep_covers_whole_text():
    image = build()
    instrs = Disassembler(image).linear()
    assert [i.mnemonic for i in instrs] == ["mov", "add", "hlt"]
    assert sum(i.size for i in instrs) == len(image.text.data)


def test_out_of_text_address_rejected():
    image = build()
    with pytest.raises(EncodingError):
        Disassembler(image).at(0x1000)


def test_listing_mentions_symbols():
    image = build()
    text = Disassembler(image).listing()
    assert "_start:" in text and "hlt" in text
