"""Cross-process aggregation: sweep(jobs=2) workers report their
registries back to the parent and the merged export covers the sweep."""

from repro import obs
from repro.evaluation.harness import sweep
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload

TINY = Workload(
    name="tinyobs",
    source=r'''
int twice(int x) { return x + x; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 20; i++) total += twice(i) & 0x3F;
    printf("%d\n", total);
    return 0;
}
''',
    ref_inputs=((),),
    description="observability sweep-merge kernel",
)


def test_parallel_sweep_merges_worker_metrics(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EVAL_CACHE", str(tmp_path))
    # Workers see the injected workload because the pool forks after it
    # lands in the (shared) WORKLOADS dict.
    monkeypatch.setitem(WORKLOADS, TINY.name, TINY)
    obs.enable(reset=True)
    try:
        out = sweep((TINY.name,),
                    configs=(("gcc12", "3"), ("gcc12", "0")),
                    include_secondwrite=False, jobs=2)
        doc = obs.export(obs.recorder())
    finally:
        obs.disable()
    assert len(out) == 2
    assert all(cell.wytiwyg_match for cell in out.values())

    # One eval.cell span and one eval.cell_seconds sample per worker
    # cell, all visible from the parent's recorder.
    cells = [s for s in obs.iter_spans(doc) if s["name"] == "eval.cell"]
    assert len(cells) == 2
    assert {(s["attrs"]["compiler"], s["attrs"]["opt_level"])
            for s in cells} == {("gcc12", "3"), ("gcc12", "0")}
    assert doc["metrics"]["timers"]["eval.cell_seconds"]["count"] == 2

    # Engine-level metrics recorded inside the workers merged too.
    counters = doc["metrics"]["counters"]
    assert counters["emu.instructions_retired"] > 0
    assert counters["eval.cell_cache.miss"] == 2


def test_serial_sweep_records_in_parent(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_EVAL_CACHE", str(tmp_path))
    monkeypatch.setitem(WORKLOADS, TINY.name, TINY)
    obs.enable(reset=True)
    try:
        out = sweep((TINY.name,), configs=(("gcc12", "0"),),
                    include_secondwrite=False, jobs=1)
        doc = obs.export(obs.recorder())
    finally:
        obs.disable()
    assert len(out) == 1
    assert doc["metrics"]["timers"]["eval.cell_seconds"]["count"] == 1
    cells = [s for s in obs.iter_spans(doc) if s["name"] == "eval.cell"]
    assert len(cells) == 1
