"""ArtifactStore: keys, atomic writes, corruption, campaigns."""

import logging
import pickle

import pytest

from repro import obs
from repro.store import (
    ArtifactStore,
    Campaign,
    atomic_write_bytes,
    decode_items,
    decode_runs,
    encode_items,
    encode_runs,
    image_key,
    options_tag,
    result_key,
    trace_key,
)


class _FakeImage:
    def __init__(self, text):
        self._text = text

    def to_json(self):
        return self._text


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


# -- keys ----------------------------------------------------------------

def test_image_key_tracks_content():
    a = image_key(_FakeImage('{"x": 1}'))
    b = image_key(_FakeImage('{"x": 1}'))
    c = image_key(_FakeImage('{"x": 2}'))
    assert a == b
    assert a != c
    assert len(a) == 32


def test_trace_key_separates_inputs_and_cost_model():
    base = trace_key("img", [1, 2])
    assert trace_key("img", [1, 2]) == base
    assert trace_key("img", [2, 1]) != base
    assert trace_key("img", [1, 2], costs="alt") != base
    assert trace_key("other", [1, 2]) != base


def test_result_key_is_order_sensitive():
    opts = options_tag(optimize=True)
    base = result_key("img", [[1], [2]], opts)
    assert result_key("img", [[1], [2]], opts) == base
    assert result_key("img", [[2], [1]], opts) != base
    assert result_key("img", [[1], [2]], options_tag(optimize=False)) != base


def test_options_tag_is_canonical():
    assert options_tag(b=2, a=1) == options_tag(a=1, b=2)
    assert options_tag(a=1) != options_tag(a=2)


def test_items_encode_round_trips_bytes_and_ints():
    items = [3, b"hi\xff", 0]
    assert decode_items(encode_items(items)) == items
    runs = [[1, b"x"], [2]]
    assert decode_runs(encode_runs(runs)) == runs
    # The encoded form must be plain JSON values.
    import json
    json.dumps(encode_runs(runs))


# -- atomic writes -------------------------------------------------------

def test_atomic_write_creates_parents_and_leaves_no_temps(tmp_path):
    target = tmp_path / "deep" / "entry.bin"
    atomic_write_bytes(target, b"one")
    assert target.read_bytes() == b"one"
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    leftovers = [p for p in target.parent.iterdir() if p != target]
    assert leftovers == []


def test_atomic_write_failure_cleans_up_temp(tmp_path, monkeypatch):
    target = tmp_path / "entry.bin"
    import repro.store as store_mod

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(store_mod.os, "replace", boom)
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"payload")
    assert list(tmp_path.iterdir()) == []


# -- the store -----------------------------------------------------------

def test_round_trip_counters_and_events(tmp_path):
    store = ArtifactStore(tmp_path)
    obs.enable(reset=True)
    led = obs.enable_ledger()
    assert store.get("trace", "absent") is None
    store.put("trace", "k", {"payload": 42})
    assert store.get("trace", "k") == {"payload": 42}
    counters = dict(obs.recorder().registry.counters)
    assert counters == {"store.miss": 1, "store.put": 1, "store.hit": 1}
    kinds = [e["kind"] for e in led.events]
    assert kinds == ["store.miss", "store.put", "store.hit"]
    assert all(e["store"] == "store" for e in led.events)
    assert all(e["artifact"] == "trace" for e in led.events)
    assert store.stats == {"hit": 1, "miss": 1, "put": 1, "corrupt": 0}


def test_corrupt_entry_recomputes_with_warning(tmp_path, caplog):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", {"payload": 42})
    store._path("trace", "k").write_bytes(b"\x80\x04 not a pickle")
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.get("trace", "k") is None
    assert store.stats["corrupt"] == 1
    assert any("corrupt store entry" in r.getMessage()
               for r in caplog.records)


def test_memo_computes_once(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return {"v": 7}

    assert store.memo("module", "m", compute) == {"v": 7}
    assert store.memo("module", "m", compute) == {"v": 7}
    assert len(calls) == 1
    assert store.contains("module", "m")
    assert not store.contains("module", "absent")


def test_env_var_picks_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envroot"))
    store = ArtifactStore()
    assert store.root == tmp_path / "envroot"


def test_kinds_live_in_separate_namespaces(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", "a trace")
    store.put("result", "k", "a result")
    assert store.get("trace", "k") == "a trace"
    assert store.get("result", "k") == "a result"


def test_put_is_pickled_payload(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("trace", "k", {"x": 1})
    raw = store._path("trace", "k").read_bytes()
    assert pickle.loads(raw) == {"x": 1}


# -- campaigns -----------------------------------------------------------

def test_campaign_add_inputs_dedups_in_order():
    campaign = Campaign("demo", "imgkey")
    added = campaign.add_inputs([[1, 2], [3]])
    assert added == [[1, 2], [3]]
    added = campaign.add_inputs([[3], [4], [1, 2]])
    assert added == [[4]]
    assert campaign.inputs == [[1, 2], [3], [4]]


def test_campaign_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    campaign = Campaign("demo", "imgkey", inputs=[[1, b"x"]], jobs=3,
                        coverage={"executed": 10})
    store.save_campaign(campaign)
    loaded = store.load_campaign("demo")
    assert loaded == campaign
    assert store.list_campaigns() == ["demo"]
    assert store.load_campaign("absent") is None


def test_campaign_name_is_sanitized(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save_campaign(Campaign("a/b c", "imgkey"))
    path = store._campaign_path("a/b c")
    assert path.exists()
    assert "/" not in path.stem and " " not in path.stem


def test_corrupt_campaign_starts_fresh(tmp_path, caplog):
    store = ArtifactStore(tmp_path)
    store.save_campaign(Campaign("demo", "imgkey"))
    store._campaign_path("demo").write_text("{not json")
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        assert store.load_campaign("demo") is None
    assert any("corrupt campaign" in r.getMessage()
               for r in caplog.records)
