"""repro.replay — the dynamic re-execution subsystem.

Owns every replay of lifted IR over the traced inputs: deduplicated
sweeps, fingerprint-gated (skippable) validation, parallel fan-out of
validation and instrumented bounds runs, and deterministic merging of
per-input tracing runtimes.  See :mod:`repro.replay.engine`.
"""

from .engine import ReplayEngine
from .fingerprint import function_fingerprint, module_fingerprint

__all__ = ["ReplayEngine", "function_fingerprint",
           "module_fingerprint"]
