"""Machine-code to IR translation (the RevGen/BinRec analogue).

Every lifted function takes the virtual register file explicitly —
``(sp, eax, ecx, edx, ebx, ebp, esi, edi)`` — and returns the seven
general registers (``sp`` is reconstructed by the caller, since ``ret``
always pops exactly the return address in this ABI).  Inside a function
the virtual registers and the four status flags live in allocas; mem2reg
then turns them into SSA values, which is the paper's "we turn virtual
CPU registers into SSA-values before instrumentation".

The original program's stack lives in a dedicated **emulated stack**
global; all push/pop/call/ret effects are translated into explicit loads
and stores against it (paper §2.1, Figure 1).  Original data sections are
pinned at their original addresses so absolute-address accesses keep
working unchanged.
"""

from __future__ import annotations

from .. import obs
from ..binary.image import BinaryImage
from ..emu.tracer import TraceSet
from ..errors import LiftError
from ..ir.builder import Builder
from ..ir.module import Block, Function, GlobalVar, Module
from ..ir.values import Const, GlobalRef, Value
from ..isa.instructions import Imm, ImportRef, Instruction, Mem
from ..isa.registers import Reg
from .cfg import RecoveredCFG, recover_cfg
from .function_recovery import RecoveredFunction, recover_functions

#: Virtual registers threaded through lifted signatures (esp excluded
#: from results; see module docstring).
REG_ORDER = ("eax", "ecx", "edx", "ebx", "ebp", "esi", "edi")
FLAG_ORDER = ("zf", "sf", "cf", "of")

EMUSTACK_NAME = "__emustack"
EMUSTACK_BASE = 0x0B200000
EMUSTACK_SIZE = 0x00200000

def _external_db():
    """Signature database shared with the refinement constraint DB.

    Imported lazily: repro.core's package __init__ pulls in the driver,
    which imports this module (a cycle at import time otherwise).
    """
    from ..core.extfuncs import EXTERNAL_DB
    return EXTERNAL_DB


class FunctionTranslator:
    """Translates one recovered machine function to an IR function."""

    def __init__(self, rfunc: RecoveredFunction, cfg: RecoveredCFG,
                 module: Module, entries: set[int]):
        self.rfunc = rfunc
        self.cfg = cfg
        self.module = module
        self.entries = entries
        self.func = Function(rfunc.name,
                             ["sp", *REG_ORDER], nresults=len(REG_ORDER))
        self.func.orig_entry = rfunc.entry
        self.b = Builder(self.func)
        self.vregs: dict[str, Value] = {}
        self.flags: dict[str, Value] = {}
        self.ir_blocks: dict[int, Block] = {}
        self._trap: Block | None = None
        self._tail_stubs: dict[int, Block] = {}

    # ------------------------------------------------------------ plumbing

    def translate(self) -> Function:
        entry_ir = self.func.add_block("entry")
        self.b.position(entry_ir)
        for name in ("esp", *REG_ORDER):
            self.vregs[name] = self.b.alloca(4, 4, f"vcpu.{name}")
        for name in FLAG_ORDER:
            self.flags[name] = self.b.alloca(4, 4, f"vcpu.{name}")
        self.b.store(self.vregs["esp"], self.func.params[0], 4)
        for i, name in enumerate(REG_ORDER):
            self.b.store(self.vregs[name], self.func.params[1 + i], 4)

        for addr in sorted(self.rfunc.blocks):
            self.ir_blocks[addr] = self.func.add_block(f"b{addr:x}")
        self.b.position(entry_ir)
        self.b.br(self.ir_blocks[self.rfunc.entry])

        for addr in sorted(self.rfunc.blocks):
            self._translate_block(addr)
        # Provenance for downstream diagnostics: blocks whose machine
        # code came from static coverage extension, not a trace.
        static = sorted(self.ir_blocks[a].name
                        for a in self.rfunc.blocks
                        if a in self.cfg.static_addrs)
        if static:
            self.func.meta["static_blocks"] = tuple(static)
        return self.func

    def _trap_block(self) -> Block:
        if self._trap is None:
            self._trap = self.func.add_block("trap")
            saved = self.b.block
            self.b.position(self._trap)
            self.b.unreachable("untraced path")
            self.b.position(saved)
        return self._trap

    def _target_block(self, addr: int) -> Block:
        """IR block for a branch target; tail calls get call+ret stubs."""
        if addr in self.ir_blocks:
            return self.ir_blocks[addr]
        if addr in self.entries:
            return self._tail_stub(addr)
        return self._trap_block()

    def _tail_stub(self, target: int) -> Block:
        stub = self._tail_stubs.get(target)
        if stub is not None:
            return stub
        stub = self.func.add_block(f"tail_{target:x}")
        self._tail_stubs[target] = stub
        saved = self.b.block
        self.b.position(stub)
        # Tail call becomes a regular call followed by a return: esp
        # already points at the original caller's return address.
        args = [self._rread_name("esp")] + \
               [self._rread_name(r) for r in REG_ORDER]
        call = self.b.call(f"fn_{target:08x}", args,
                           nresults=len(REG_ORDER))
        results = [self.b.result(call, i) for i in range(len(REG_ORDER))]
        self.b.ret(results)
        self.b.position(saved)
        return stub

    # -------------------------------------------------------- register file

    def _rread_name(self, name: str) -> Value:
        return self.b.load(self.vregs[name], 4)

    def _rwrite_name(self, name: str, value: Value) -> None:
        self.b.store(self.vregs[name], value, 4)

    def _rread(self, reg: Reg) -> Value:
        from ..isa.registers import GPR32
        full = self._rread_name(GPR32[reg.index] if reg.index != 4
                                else "esp")
        if reg.width == 4:
            return full
        if reg.width == 2:
            return self.b.unary("zext16", full)
        if reg.high8:
            return self.b.unary("zext8", self.b.binop("shr", full,
                                                      Const(8)))
        return self.b.unary("zext8", full)

    def _rwrite(self, reg: Reg, value: Value) -> None:
        from ..isa.registers import GPR32
        name = GPR32[reg.index] if reg.index != 4 else "esp"
        if reg.width == 4:
            self._rwrite_name(name, value)
            return
        # Partial write: merge into the untouched upper bits.  This is
        # the instruction shape behind the paper's "false derive"
        # discussion (§4.2.3).
        full = self._rread_name(name)
        if reg.width == 2:
            merged = self.b.binop(
                "or", self.b.binop("and", full, Const(0xFFFF0000)),
                self.b.unary("zext16", value))
        elif reg.high8:
            merged = self.b.binop(
                "or", self.b.binop("and", full, Const(0xFFFF00FF)),
                self.b.binop("shl", self.b.unary("zext8", value),
                             Const(8)))
        else:
            merged = self.b.binop(
                "or", self.b.binop("and", full, Const(0xFFFFFF00)),
                self.b.unary("zext8", value))
        self._rwrite_name(name, merged)

    def _fread(self, flag: str) -> Value:
        return self.b.load(self.flags[flag], 4)

    def _fwrite(self, flag: str, value: Value) -> None:
        self.b.store(self.flags[flag], value, 4)

    # ------------------------------------------------------------ operands

    def _mem_addr(self, op: Mem) -> Value:
        """Translate an addressing mode into IR arithmetic.

        The displacement is applied to the base *before* the index:
        ``base + disp`` is the direct stack reference (the paper's
        ``-44(%ebp,%eax,8)`` has base pointer ``ebp - 44``), and the
        dynamic index is a derivation from it.  Applying the index first
        would glue every indexed access in a frame to the stack
        pointer's own variable.
        """
        disp = op.disp if isinstance(op.disp, int) else 0
        addr: Value | None = None
        if op.base is not None:
            addr = self._rread(op.base)
            if disp:
                addr = self.b.add(addr, Const(disp))
                disp = 0
        if op.index is not None:
            index = self._rread(op.index)
            if op.scale != 1:
                index = self.b.mul(index, Const(op.scale))
            addr = index if addr is None else self.b.add(addr, index)
        if addr is None:
            return Const(disp)
        if disp:
            addr = self.b.add(addr, Const(disp))
        return addr

    def _read_op(self, op) -> Value:
        if isinstance(op, Reg):
            return self._rread(op)
        if isinstance(op, Imm):
            return Const(op.value)
        if isinstance(op, Mem):
            return self.b.load(self._mem_addr(op), op.size)
        raise LiftError(f"cannot read operand {op!r}")

    def _write_op(self, op, value: Value) -> None:
        if isinstance(op, Reg):
            self._rwrite(op, value)
        elif isinstance(op, Mem):
            self.b.store(self._mem_addr(op), value, op.size)
        else:
            raise LiftError(f"cannot write operand {op!r}")

    @staticmethod
    def _width_of(op) -> int:
        if isinstance(op, Reg):
            return op.width
        if isinstance(op, Mem):
            return op.size
        return 4

    # --------------------------------------------------------------- flags

    def _set_flags_logic(self, result: Value) -> None:
        self._fwrite("zf", self.b.icmp("eq", result, Const(0)))
        self._fwrite("sf", self.b.icmp("slt", result, Const(0)))
        self._fwrite("cf", Const(0))
        self._fwrite("of", Const(0))

    def _set_flags_add(self, a: Value, bv: Value, result: Value) -> None:
        self._fwrite("zf", self.b.icmp("eq", result, Const(0)))
        self._fwrite("sf", self.b.icmp("slt", result, Const(0)))
        self._fwrite("cf", self.b.icmp("ult", result, a))
        overflow = self.b.binop(
            "and", self.b.binop("xor", a, result),
            self.b.binop("xor", bv, result))
        self._fwrite("of", self.b.binop("shr", overflow, Const(31)))

    def _set_flags_sub(self, a: Value, bv: Value, result: Value) -> None:
        self._fwrite("zf", self.b.icmp("eq", result, Const(0)))
        self._fwrite("sf", self.b.icmp("slt", result, Const(0)))
        self._fwrite("cf", self.b.icmp("ult", a, bv))
        overflow = self.b.binop(
            "and", self.b.binop("xor", a, bv),
            self.b.binop("xor", a, result))
        self._fwrite("of", self.b.binop("shr", overflow, Const(31)))

    def _cond_value(self, cc: str) -> Value:
        b = self.b
        one = Const(1)
        if cc == "e":
            return self._fread("zf")
        if cc == "ne":
            return b.binop("xor", self._fread("zf"), one)
        if cc == "l":
            return b.binop("xor", self._fread("sf"), self._fread("of"))
        if cc == "ge":
            return b.binop("xor", b.binop("xor", self._fread("sf"),
                                          self._fread("of")), one)
        if cc == "le":
            return b.binop("or", self._fread("zf"),
                           b.binop("xor", self._fread("sf"),
                                   self._fread("of")))
        if cc == "g":
            le = b.binop("or", self._fread("zf"),
                         b.binop("xor", self._fread("sf"),
                                 self._fread("of")))
            return b.binop("xor", le, one)
        if cc == "b":
            return self._fread("cf")
        if cc == "ae":
            return b.binop("xor", self._fread("cf"), one)
        if cc == "be":
            return b.binop("or", self._fread("cf"), self._fread("zf"))
        if cc == "a":
            be = b.binop("or", self._fread("cf"), self._fread("zf"))
            return b.binop("xor", be, one)
        if cc == "s":
            return self._fread("sf")
        if cc == "ns":
            return b.binop("xor", self._fread("sf"), one)
        raise LiftError(f"unknown condition {cc!r}")

    # -------------------------------------------------------------- blocks

    def _translate_block(self, addr: int) -> None:
        mblock = self.rfunc.blocks[addr]
        self.b.position(self.ir_blocks[addr])
        for instr in mblock.instrs[:-1]:
            self._translate_plain(instr)
        self._translate_terminator(mblock)

    def _translate_terminator(self, mblock) -> None:
        instr = mblock.terminator
        m = instr.mnemonic
        next_addr = instr.addr + instr.size
        if m == "jmp":
            self._translate_jmp(mblock, instr)
        elif m == "jcc":
            taken_addr = instr.operands[0].value \
                if isinstance(instr.operands[0], Imm) else None
            if taken_addr is None:
                raise LiftError("indirect conditional jump")
            cond = self._cond_value(instr.cc)
            taken_traced = taken_addr in mblock.succs
            fall_traced = next_addr in mblock.succs
            taken_block = self._target_block(taken_addr) if taken_traced \
                else self._trap_block()
            fall_block = self._target_block(next_addr) if fall_traced \
                else self._trap_block()
            self.b.condbr(cond, taken_block, fall_block)
        elif m == "call":
            self._translate_call(mblock, instr, next_addr)
        elif m == "ret":
            results = [self._rread_name(r) for r in REG_ORDER]
            self.b.ret(results)
        elif m == "hlt":
            self.b.call_external("exit", [self._rread_name("eax")])
            self.b.unreachable("after exit")
        else:
            # The block ended at a leader boundary: plain fallthrough.
            self._translate_plain(instr)
            if mblock.succs:
                self.b.br(self._target_block(mblock.succs[0]))
            else:
                self.b.unreachable("fallthrough into untraced code")

    def _translate_jmp(self, mblock, instr: Instruction) -> None:
        op = instr.operands[0]
        if isinstance(op, Imm):
            self.b.br(self._target_block(op.value))
            return
        # Indirect jump: dispatch over traced targets.
        value = self._read_op(op)
        targets = sorted(self.cfg.jump_targets.get(instr.addr,
                                                   set(mblock.succs)))
        cases = [(t, self._target_block(t)) for t in targets]
        self.b.switch(value, cases, self._trap_block())

    def _translate_call(self, mblock, instr: Instruction,
                        next_addr: int) -> None:
        op = instr.operands[0]
        if isinstance(op, ImportRef):
            self._translate_import(instr, op.name)
        else:
            esp = self._rread_name("esp")
            esp1 = self.b.sub(esp, Const(4))
            retaddr_store = self.b.store(esp1, Const(next_addr), 4)
            # Tagged so symbolization can drop the (never-read) return
            # address slot when the emulated stack is removed.
            self.func.meta.setdefault("retaddr_stores",
                                      []).append(retaddr_store)
            self._rwrite_name("esp", esp1)
            args = [esp1] + [self._rread_name(r) for r in REG_ORDER]
            if isinstance(op, Imm):
                call = self.b.call(f"fn_{op.value:08x}", args,
                                   nresults=len(REG_ORDER))
            else:
                target = self._read_op(op)
                # Re-load the registers: reading op may not touch them,
                # but the arg list must see current values.
                args = [esp1] + [self._rread_name(r) for r in REG_ORDER]
                call = self.b.call_indirect(target, args,
                                            nresults=len(REG_ORDER))
            for i, name in enumerate(REG_ORDER):
                self._rwrite_name(name, self.b.result(call, i))
            self._rwrite_name("esp", self.b.add(esp1, Const(4)))
        # Continue at the return site, if it was ever reached.
        if mblock.succs:
            self.b.br(self._target_block(mblock.succs[0]))
        else:
            self.b.unreachable("call never returned in traces")

    def _translate_import(self, instr: Instruction, name: str) -> None:
        sig = _external_db().get(name)
        if sig is None:
            raise LiftError(f"call to unknown external {name!r}")
        esp = self._rread_name("esp")
        if sig.vararg:
            # BinRec-style stack switching until the varargs refinement
            # recovers per-call-site prototypes (paper §5.2).
            result = self.b.call_external(name, [], sp=esp)
        else:
            args = [self.b.load(self.b.add(esp, Const(4 * i)), 4)
                    if i else self.b.load(esp, 4)
                    for i in range(sig.nargs)]
            result = self.b.call_external(name, args)
        self._rwrite_name("eax", result)

    # -------------------------------------------------------- instructions

    def _translate_plain(self, instr: Instruction) -> None:
        m = instr.mnemonic
        handler = getattr(self, f"_lift_{m}", None)
        if handler is None:
            raise LiftError(f"cannot lift {instr!r}")
        handler(instr)

    def _lift_nop(self, instr: Instruction) -> None:
        pass

    def _lift_mov(self, instr: Instruction) -> None:
        dst, src = instr.operands
        self._write_op(dst, self._read_op(src))

    def _lift_movzx(self, instr: Instruction) -> None:
        dst, src = instr.operands
        self._write_op(dst, self._read_op(src))  # loads zero-extend

    def _lift_movsx(self, instr: Instruction) -> None:
        dst, src = instr.operands
        width = self._width_of(src)
        value = self._read_op(src)
        op = "sext8" if width == 1 else "sext16"
        self._write_op(dst, self.b.unary(op, value))

    def _lift_lea(self, instr: Instruction) -> None:
        dst, src = instr.operands
        if not isinstance(src, Mem):
            raise LiftError(f"lea without memory operand: {instr!r}")
        self._write_op(dst, self._mem_addr(src))

    def _lift_push(self, instr: Instruction) -> None:
        value = self._read_op(instr.operands[0])
        esp1 = self.b.sub(self._rread_name("esp"), Const(4))
        self.b.store(esp1, value, 4)
        self._rwrite_name("esp", esp1)

    def _lift_pop(self, instr: Instruction) -> None:
        esp = self._rread_name("esp")
        value = self.b.load(esp, 4)
        self._write_op(instr.operands[0], value)
        self._rwrite_name("esp", self.b.add(self._rread_name("esp"),
                                            Const(4)))

    def _arith(self, instr: Instruction, ir_op: str, flags: str) -> None:
        dst, src = instr.operands
        if self._width_of(dst) != 4:
            raise LiftError(f"sub-width arithmetic unsupported: {instr!r}")
        a = self._read_op(dst)
        bv = self._read_op(src)
        result = self.b.binop(ir_op, a, bv)
        if flags == "add":
            self._set_flags_add(a, bv, result)
        elif flags == "sub":
            self._set_flags_sub(a, bv, result)
        else:
            self._set_flags_logic(result)
        self._write_op(dst, result)

    def _lift_add(self, i):
        self._arith(i, "add", "add")

    def _lift_sub(self, i):
        self._arith(i, "sub", "sub")

    def _lift_and(self, i):
        self._arith(i, "and", "logic")

    def _lift_or(self, i):
        self._arith(i, "or", "logic")

    def _lift_xor(self, i):
        self._arith(i, "xor", "logic")

    def _lift_neg(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        a = self._read_op(dst)
        result = self.b.unary("neg", a)
        self._set_flags_sub(Const(0), a, result)
        self._write_op(dst, result)

    def _lift_not(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        self._write_op(dst, self.b.unary("not", self._read_op(dst)))

    def _lift_imul(self, instr: Instruction) -> None:
        dst, src = instr.operands
        a = self._read_op(dst)
        bv = self._read_op(src)
        result = self.b.mul(a, bv)
        # cf/of model 32-bit overflow only approximately; compiled code
        # never branches on them after imul.
        self._fwrite("zf", self.b.icmp("eq", result, Const(0)))
        self._fwrite("sf", self.b.icmp("slt", result, Const(0)))
        self._fwrite("cf", Const(0))
        self._fwrite("of", Const(0))
        self._write_op(dst, result)

    def _lift_cdq(self, instr: Instruction) -> None:
        eax = self._rread_name("eax")
        self._rwrite_name("edx", self.b.binop("sar", eax, Const(31)))

    def _lift_idiv(self, instr: Instruction) -> None:
        # Compiled code always precedes idiv with cdq, so edx:eax is the
        # sign extension of eax and 32-bit signed division suffices.
        divisor = self._read_op(instr.operands[0])
        eax = self._rread_name("eax")
        self._rwrite_name("eax", self.b.binop("div", eax, divisor))
        self._rwrite_name("edx", self.b.binop("rem", eax, divisor))

    def _shift(self, instr: Instruction, ir_op: str) -> None:
        dst, count_op = instr.operands
        a = self._read_op(dst)
        count = self._read_op(count_op)
        if isinstance(count, Const):
            count = Const(count.value & 31)
        else:
            count = self.b.binop("and", count, Const(31))
        result = self.b.binop(ir_op, a, count)
        self._fwrite("zf", self.b.icmp("eq", result, Const(0)))
        self._fwrite("sf", self.b.icmp("slt", result, Const(0)))
        self._write_op(dst, result)

    def _lift_shl(self, i):
        self._shift(i, "shl")

    def _lift_shr(self, i):
        self._shift(i, "shr")

    def _lift_sar(self, i):
        self._shift(i, "sar")

    def _lift_inc(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        a = self._read_op(dst)
        result = self.b.add(a, Const(1))
        carry = self._fread("cf")
        self._set_flags_add(a, Const(1), result)
        self._fwrite("cf", carry)  # inc preserves CF
        self._write_op(dst, result)

    def _lift_dec(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        a = self._read_op(dst)
        result = self.b.sub(a, Const(1))
        carry = self._fread("cf")
        self._set_flags_sub(a, Const(1), result)
        self._fwrite("cf", carry)
        self._write_op(dst, result)

    def _lift_cmp(self, instr: Instruction) -> None:
        a = self._read_op(instr.operands[0])
        bv = self._read_op(instr.operands[1])
        self._set_flags_sub(a, bv, self.b.sub(a, bv))

    def _lift_test(self, instr: Instruction) -> None:
        a = self._read_op(instr.operands[0])
        bv = self._read_op(instr.operands[1])
        self._set_flags_logic(self.b.binop("and", a, bv))

    def _lift_setcc(self, instr: Instruction) -> None:
        self._write_op(instr.operands[0], self._cond_value(instr.cc))

    def _lift_leave(self, instr: Instruction) -> None:
        ebp = self._rread_name("ebp")
        self._rwrite_name("esp", ebp)
        self._rwrite_name("ebp", self.b.load(ebp, 4))
        self._rwrite_name("esp", self.b.add(ebp, Const(4)))


def lift_traces(traces: TraceSet, name: str = "lifted",
                static_extend: bool = False) -> Module:
    """Lift a merged trace set into an IR module (the BinRec phase).

    ``static_extend`` enables the hybrid §7.2 mode: untraced directions
    reachable by static disassembly are lifted too, trading the hard
    trap-on-untraced guarantee for graceful coverage of nearby paths.
    """
    image = traces.image
    cfg = recover_cfg(traces, static_extend=static_extend)
    functions = recover_functions(cfg)

    module = Module(name)
    module.metadata = {"origin": "lifted", **image.metadata}

    # Original data sections stay at their original addresses.
    for section in image.data_sections:
        module.add_global(GlobalVar(
            f"orig{section.name.replace('.', '_')}", len(section.data),
            section.data, align=4, fixed_addr=section.base,
            writable=section.writable))
    module.add_global(GlobalVar(
        EMUSTACK_NAME, EMUSTACK_SIZE, b"", align=16,
        fixed_addr=EMUSTACK_BASE))

    entries = set(functions)
    ledgered = obs.ledger() is not None
    for entry, rfunc in functions.items():
        translator = FunctionTranslator(rfunc, cfg, module, entries)
        func = translator.translate()
        module.add_function(func)
        module.address_table[entry] = rfunc.name
        if ledgered:
            obs.event("lift.function", function=rfunc.name,
                      entry=entry, blocks=len(func.blocks),
                      static_blocks=len(func.meta.get("static_blocks",
                                                      ())))

    # Wrapper entry: set up the emulated stack and call the original
    # entry function.
    start = Function("_start", [])
    module.add_function(start)
    module.entry_name = "_start"
    b = Builder(start)
    b.position(start.add_block("entry"))
    top = b.add(GlobalRef(EMUSTACK_NAME), Const(EMUSTACK_SIZE - 64))
    args: list[Value] = [top] + [Const(0)] * len(REG_ORDER)
    b.call(functions[cfg.entry].name, args, nresults=len(REG_ORDER))
    b.ret([Const(0)])
    return module


def lift_binary(image: BinaryImage,
                inputs: list[list[int | bytes]],
                name: str = "lifted") -> Module:
    """Trace ``image`` on ``inputs`` and lift the merged traces."""
    from ..emu.tracer import trace_binary
    return lift_traces(trace_binary(image, inputs), name)
