"""Random MiniC program generator for differential testing.

Generates closed, deterministic, terminating programs: straight-line
arithmetic over a pool of int variables and a fixed-size array, bounded
loops, conditionals, and helper-function calls.  Division and remainder
are emitted with guarded divisors so no run traps.
"""

from __future__ import annotations

import random


class ProgramGenerator:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth > 2 or r.random() < 0.35:
            choice = r.randrange(3)
            if choice == 0:
                return str(r.randrange(-50, 50))
            if choice == 1:
                return r.choice("abcd")
            return f"arr[{r.randrange(8)}]"
        op = r.choice(["+", "-", "*", "&", "|", "^", "<<", ">>",
                       "/", "%"])
        lhs = self.expr(depth + 1)
        rhs = self.expr(depth + 1)
        if op in ("/", "%"):
            return f"({lhs} {op} (({rhs} & 7) + 1))"
        if op in ("<<", ">>"):
            return f"({lhs} {op} ({rhs} & 3))"
        return f"({lhs} {op} {rhs})"

    def cond(self) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"({self.expr(2)}) {op} ({self.expr(2)})"

    def stmt(self, depth: int = 0) -> str:
        r = self.rng
        roll = r.random()
        if roll < 0.45 or depth > 1:
            target = r.choice(["a", "b", "c", "d", f"arr[{r.randrange(8)}]"])
            op = r.choice(["=", "+=", "-=", "^="])
            return f"{target} {op} {self.expr()};"
        if roll < 0.65:
            return (f"if ({self.cond()}) {{ {self.stmt(depth + 1)} }} "
                    f"else {{ {self.stmt(depth + 1)} }}")
        if roll < 0.85:
            body = " ".join(self.stmt(depth + 1)
                            for _ in range(r.randrange(1, 3)))
            return (f"for (i = 0; i < {r.randrange(2, 7)}; i++) "
                    f"{{ {body} }}")
        return f"a = helper({self.expr(2)}, {self.expr(2)});"

    def program(self) -> str:
        body = "\n    ".join(self.stmt() for _ in range(8))
        return f"""
int arr[8];
int helper(int x, int y) {{
    int local[4];
    local[0] = x + y;
    local[1] = x - y;
    local[2] = x ^ y;
    local[3] = (x & 15) * (y & 15);
    return local[0] + local[1] - local[2] + local[3];
}}
int main() {{
    int a = 1, b = 2, c = 3, d = 4;
    int i;
    for (i = 0; i < 8; i++) arr[i] = i * 5 - 3;
    {body}
    printf("%d %d %d %d\\n", a, b, c, d);
    for (i = 0; i < 8; i++) printf("%d ", arr[i]);
    printf("\\n");
    return 0;
}}
"""


def generate(seed: int) -> str:
    return ProgramGenerator(seed).program()
