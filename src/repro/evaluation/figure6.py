"""Figure 6: runtimes normalized to the GCC 12.2 -O3 *native* baseline.

The paper plots, for each benchmark, the runtime of (a) every input
binary and (b) its WYTIWYG recompilation (and SecondWrite's, where it
works), all divided by the GCC 12.2 -O3 native runtime — showing that
recompiled binaries approach the modern-native baseline no matter which
toolchain produced the input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads import WORKLOADS
from .harness import CONFIGS, geomean, sweep

#: The series of Figure 6: (label, config, which runtime).
SERIES = (
    ("gcc12-O3 native", ("gcc12", "3"), "native"),
    ("gcc12-O3 wytiwyg", ("gcc12", "3"), "wytiwyg"),
    ("gcc12-O0 native", ("gcc12", "0"), "native"),
    ("gcc12-O0 wytiwyg", ("gcc12", "0"), "wytiwyg"),
    ("clang16-O3 native", ("clang16", "3"), "native"),
    ("clang16-O3 wytiwyg", ("clang16", "3"), "wytiwyg"),
    ("gcc44-O3 native", ("gcc44", "3"), "native"),
    ("gcc44-O3 wytiwyg", ("gcc44", "3"), "wytiwyg"),
    ("gcc44-O3 secondwrite", ("gcc44", "3"), "secondwrite"),
)


@dataclass
class Figure6:
    workloads: tuple = ()
    #: series label -> {workload: normalized runtime or None}
    series: dict = field(default_factory=dict)

    def geomeans(self) -> dict:
        return {label: geomean(values[n] for n in self.workloads
                               if values.get(n))
                for label, values in self.series.items()}

    def render(self) -> str:
        lines = ["  ".join([f"{'series':>24s}"]
                           + [f"{n:>10s}" for n in self.workloads]
                           + [f"{'GEOMEAN':>10s}"])]
        means = self.geomeans()
        for label, values in self.series.items():
            cells = [f"{values[n]:10.2f}" if values.get(n)
                     else f"{'—':>10s}" for n in self.workloads]
            lines.append("  ".join([f"{label:>24s}"] + cells
                                   + [f"{means[label]:10.2f}"]))
        return "\n".join(lines)


def build_figure6(workload_names: tuple[str, ...] | None = None,
                  use_cache: bool = True, progress=None,
                  jobs: int = 1) -> Figure6:
    names = workload_names or tuple(WORKLOADS)
    cells = sweep(names, CONFIGS, use_cache=use_cache, progress=progress,
                  jobs=jobs)
    fig = Figure6(names)
    baseline = {n: cells[(n, "gcc12", "3")].native_cycles for n in names}
    for label, (compiler, opt), kind in SERIES:
        values = {}
        for n in names:
            cell = cells[(n, compiler, opt)]
            cycles = {
                "native": cell.native_cycles,
                "wytiwyg": cell.wytiwyg_cycles,
                "secondwrite": cell.secondwrite_cycles,
            }[kind]
            values[n] = (cycles / baseline[n]) \
                if cycles and baseline[n] else None
        fig.series[label] = values
    return fig
