"""Unit tests for the external-function database (paper §5.3).

The DB is the reference the interprocedural extern-signature recovery
cross-checks against, so its own invariants — frozen signatures, the
constraint vocabulary, format-string positions, the vararg set — need
pinning in their own right.
"""

import dataclasses

import pytest

from repro.core.extfuncs import (
    EXTERNAL_DB,
    RET,
    VARARG_FUNCTIONS,
    Constraint,
    ExtSig,
)

KNOWN_KINDS = {"ObjectSize", "ZeroTerminated", "Derive", "Clear",
               "Copy", "FormatStr"}


def test_db_is_keyed_by_signature_name():
    for name, sig in EXTERNAL_DB.items():
        assert sig.name == name
        assert sig.nargs >= 0


def test_signatures_are_frozen():
    sig = EXTERNAL_DB["memcpy"]
    with pytest.raises(dataclasses.FrozenInstanceError):
        sig.nargs = 5
    with pytest.raises(dataclasses.FrozenInstanceError):
        sig.constraints[0].kind = "Derive"


def test_constraint_vocabulary_is_closed():
    for sig in EXTERNAL_DB.values():
        for c in sig.constraints:
            assert c.kind in KNOWN_KINDS, (sig.name, c.kind)


def test_constraint_args_reference_real_positions():
    # Every constraint argument is either RET or a 0-based index below
    # the signature's arity (vararg positions beyond nargs would be
    # meaningless: they differ per call site).
    for sig in EXTERNAL_DB.values():
        for c in sig.constraints:
            for pos in c.args:
                assert pos == RET or 0 <= pos < max(sig.nargs, 1), \
                    (sig.name, c)


def test_format_arg_positions():
    assert EXTERNAL_DB["printf"].format_arg == 0
    assert EXTERNAL_DB["sprintf"].format_arg == 1
    assert EXTERNAL_DB["puts"].format_arg is None
    assert EXTERNAL_DB["memcpy"].format_arg is None


def test_format_arg_returns_first_formatstr():
    sig = ExtSig("weird", 3, vararg=True, constraints=(
        Constraint("ZeroTerminated", (0,)),
        Constraint("FormatStr", (2,)),
        Constraint("FormatStr", (0,)),
    ))
    assert sig.format_arg == 2


def test_vararg_set_matches_db():
    assert VARARG_FUNCTIONS == frozenset(
        name for name, sig in EXTERNAL_DB.items() if sig.vararg)
    assert "printf" in VARARG_FUNCTIONS
    assert "sprintf" in VARARG_FUNCTIONS
    assert "puts" not in VARARG_FUNCTIONS


def test_ret_marker_only_in_derive_positions():
    # RET denotes "the return value"; in the current vocabulary only
    # Derive constraints may talk about it.
    for sig in EXTERNAL_DB.values():
        for c in sig.constraints:
            if RET in c.args:
                assert c.kind == "Derive", (sig.name, c)


def test_sigs_are_hashable_and_equal_by_value():
    a = ExtSig("f", 2, constraints=(Constraint("Clear", (0,)),))
    b = ExtSig("f", 2, constraints=(Constraint("Clear", (0,)),))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1
