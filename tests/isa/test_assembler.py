"""Two-pass assembly: labels, data, layout, ground truth plumbing."""

import pytest

from repro.binary.image import TEXT_BASE
from repro.errors import AsmError
from repro.isa import (
    AsmFunction,
    AsmProgram,
    DataItem,
    EAX,
    Imm,
    Label,
    Mem,
    assemble,
    ins,
    jcc,
)


def minimal(items=None, data=None, entry="_start"):
    f = AsmFunction("_start", items or [ins("hlt")])
    return AsmProgram(functions=[f], data=data or [], entry=entry)


def test_entry_resolution():
    image = assemble(minimal())
    assert image.entry == TEXT_BASE
    assert image.symbols["_start"] == TEXT_BASE


def test_label_resolution_forward_and_backward():
    f = AsmFunction("_start")
    f.emit(ins("jmp", Label("skip")))
    f.label("back")
    f.emit(ins("mov", EAX, Imm(1)))
    f.label("skip")
    f.emit(ins("jmp", Label("back")))
    f.emit(ins("hlt"))
    image = assemble(AsmProgram(functions=[f]))
    assert image.symbols["skip"] > image.symbols["back"] > TEXT_BASE


def test_duplicate_label_rejected():
    f = AsmFunction("_start")
    f.label("x")
    f.label("x")
    f.emit(ins("hlt"))
    with pytest.raises(AsmError):
        assemble(AsmProgram(functions=[f]))


def test_undefined_label_rejected():
    with pytest.raises(AsmError):
        assemble(minimal([ins("jmp", Label("nowhere")), ins("hlt")]))


def test_undefined_entry_rejected():
    with pytest.raises(AsmError):
        assemble(minimal(entry="nope"))


def test_data_placement_and_alignment():
    data = [DataItem("a", b"x", align=1),
            DataItem("b", b"yy", align=16)]
    image = assemble(minimal(data=data))
    assert image.symbols["b"] % 16 == 0
    assert image.symbols["a"] >= image.text.end


def test_word_list_data_with_labels():
    data = [DataItem("table", [Label("_start"), 7, Label("_start", 4)])]
    image = assemble(minimal(data=data))
    section = image.data_sections[0]
    base = image.symbols["table"] - section.base
    words = [int.from_bytes(section.data[base + 4 * i:base + 4 * i + 4],
                            "little") for i in range(3)]
    assert words == [TEXT_BASE, 7, TEXT_BASE + 4]


def test_fixed_address_data_becomes_own_section():
    data = [DataItem("pinned", b"abc", fixed_addr=0x0B000000)]
    image = assemble(minimal(data=data))
    section = image.section_at(0x0B000000)
    assert section is not None and section.data == b"abc"
    assert image.symbols["pinned"] == 0x0B000000


def test_custom_text_base():
    prog = minimal()
    prog.text_base = 0x09000000
    image = assemble(prog)
    assert image.entry == 0x09000000


def test_label_addend_in_memory_operand():
    data = [DataItem("arr", b"\x00" * 16)]
    f = AsmFunction("_start")
    f.emit(ins("mov", EAX, Mem(None, disp=Label("arr", 8))))
    f.emit(ins("hlt"))
    image = assemble(AsmProgram(functions=[f], data=data))
    from repro.isa.disassembler import Disassembler
    instr = Disassembler(image).at(image.entry)
    assert instr.operands[1].disp == image.symbols["arr"] + 8


def test_mem_size_preserved_through_assembly():
    data = [DataItem("arr", b"\x00" * 4)]
    f = AsmFunction("_start")
    f.emit(ins("mov", EAX, Mem(None, disp=Label("arr"), size=1)))
    f.emit(ins("hlt"))
    image = assemble(AsmProgram(functions=[f], data=data))
    from repro.isa.disassembler import Disassembler
    assert Disassembler(image).at(image.entry).operands[1].size == 1
