"""Regenerates Table 1: normalized runtime of recompiled binaries
relative to their input binaries, with and without symbolization, plus
the SecondWrite column (paper §6.2).

Run with ``pytest benchmarks/test_table1.py --benchmark-only -s`` to see
the table.  Expected shape (paper values in parentheses): symbolized
runtimes near 1.0x for modern -O3 inputs (1.06-1.10x), clear speedups
for -O0 (0.48x) and legacy GCC 4.4 (0.82x) inputs, unsymbolized always
slower than symbolized, SecondWrite behind WYTIWYG with failures on
some benchmarks.
"""

import pytest

from repro.emu import run_binary
from repro.evaluation import build_table1
from repro.evaluation.harness import CONFIGS, measure_cell
from repro.workloads import WORKLOADS

from .conftest import selected_workloads

_NAMES = selected_workloads()


@pytest.fixture(scope="module")
def table1():
    table = build_table1(_NAMES)
    rendered = table.render()
    print("\n=== Table 1 (normalized runtime vs input binary) ===")
    print(rendered)
    _save("table1.txt", rendered)
    return table


def _save(name, text):
    import pathlib
    out = pathlib.Path("results")
    out.mkdir(exist_ok=True)
    (out / name).write_text(text + "\n")


def test_print_table1(benchmark, table1):
    means = table1.geomeans()
    # Headline shape assertions (paper: sym < nosym everywhere).
    for key in means["sym"]:
        assert means["sym"][key] < means["nosym"][key]
    # Legacy binaries are accelerated by recompilation (paper: 0.82x).
    assert means["sym"]["gcc44-O3"] < 1.0
    # Unoptimized binaries are accelerated (paper: 0.48x).
    assert means["sym"]["gcc12-O0"] < 1.0
    for key, value in means["sym"].items():
        benchmark.extra_info[f"sym_{key}"] = round(value, 3)
    benchmark(lambda: table1.geomeans())


@pytest.mark.parametrize("name", _NAMES)
@pytest.mark.parametrize("config", CONFIGS,
                         ids=[f"{c}-O{o}" for c, o in CONFIGS])
def test_recompiled_runtime(benchmark, name, config):
    """Benchmark the recompiled binary's execution; cycle ratios are in
    extra_info (cached pipeline results make the setup cheap)."""
    compiler, opt = config
    cell = measure_cell(WORKLOADS[name], compiler, opt)
    assert cell.wytiwyg_match, "recompiled binary must match the input"
    workload = WORKLOADS[name]
    image = workload.compile(compiler, opt)
    inputs = workload.inputs()

    benchmark.extra_info["native_cycles"] = cell.native_cycles
    benchmark.extra_info["wytiwyg_ratio"] = cell.wytiwyg_ratio
    benchmark.extra_info["binrec_ratio"] = cell.binrec_ratio
    benchmark(lambda: [run_binary(image, items) for items in inputs])
