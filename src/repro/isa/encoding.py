"""Byte-level encoding and decoding of repro ISA instructions.

The encoding is a simplified, variable-length scheme (an opcode byte, an
operand-count byte, then self-describing operand encodings).  It is not
binary-compatible with x86, but it gives the toolchain everything a real
encoding gives the paper's system: instructions occupy byte ranges at
concrete addresses, binaries are flat byte arrays, and a disassembler must
decode them back before any analysis can run.
"""

from __future__ import annotations

import struct

from ..errors import EncodingError
from .instructions import (
    CONDITION_CODES,
    MNEMONICS,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Operand,
)
from .registers import Reg


def _build_opcode_table() -> tuple[dict[tuple[str, str | None], int],
                                   list[tuple[str, str | None]]]:
    by_key: dict[tuple[str, str | None], int] = {}
    by_code: list[tuple[str, str | None]] = []
    for m in MNEMONICS:
        if m in ("jcc", "setcc"):
            for cc in CONDITION_CODES:
                by_key[(m, cc)] = len(by_code)
                by_code.append((m, cc))
        else:
            by_key[(m, None)] = len(by_code)
            by_code.append((m, None))
    assert len(by_code) < 256
    return by_key, by_code


_OPCODE_BY_KEY, _KEY_BY_OPCODE = _build_opcode_table()

_TAG_REG, _TAG_IMM, _TAG_MEM, _TAG_IMPORT = range(4)
_WIDTH_CODE = {4: 0, 2: 1, 1: 2}
_WIDTH_FROM_CODE = {v: k for k, v in _WIDTH_CODE.items()}
_SCALE_CODE = {1: 0, 2: 1, 4: 2, 8: 3}
_SCALE_FROM_CODE = {v: k for k, v in _SCALE_CODE.items()}
_SIZE_CODE = {1: 0, 2: 1, 4: 2}
_SIZE_FROM_CODE = {v: k for k, v in _SIZE_CODE.items()}


def _encode_reg(r: Reg) -> bytes:
    return bytes([r.index | (_WIDTH_CODE[r.width] << 3) | (int(r.high8) << 5)])


def _decode_reg(b: int) -> Reg:
    return Reg(b & 0x7, _WIDTH_FROM_CODE[(b >> 3) & 0x3], bool((b >> 5) & 1))


def _encode_operand(op: Operand, import_index: dict[str, int]) -> bytes:
    if isinstance(op, Reg):
        return bytes([_TAG_REG]) + _encode_reg(op)
    if isinstance(op, Imm):
        return bytes([_TAG_IMM]) + struct.pack("<i", _to_signed(op.value))
    if isinstance(op, Mem):
        flags = (int(op.base is not None)
                 | (int(op.index is not None) << 1)
                 | (_SCALE_CODE[op.scale] << 2)
                 | (_SIZE_CODE[op.size] << 4))
        out = bytes([_TAG_MEM, flags])
        if op.base is not None:
            out += _encode_reg(op.base)
        if op.index is not None:
            out += _encode_reg(op.index)
        return out + struct.pack("<i", _to_signed(op.disp))
    if isinstance(op, ImportRef):
        try:
            idx = import_index[op.name]
        except KeyError:
            raise EncodingError(f"unknown import {op.name!r}") from None
        return bytes([_TAG_IMPORT]) + struct.pack("<H", idx)
    if isinstance(op, Label):
        raise EncodingError(f"unresolved label {op.name!r} at encode time")
    raise EncodingError(f"cannot encode operand {op!r}")


def _to_signed(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def encode(instr: Instruction, import_index: dict[str, int]) -> bytes:
    """Encode one instruction; labels must already be resolved."""
    try:
        opcode = _OPCODE_BY_KEY[(instr.mnemonic, instr.cc)]
    except KeyError:
        raise EncodingError(f"cannot encode {instr!r}") from None
    body = b"".join(_encode_operand(op, import_index)
                    for op in instr.operands)
    return bytes([opcode, len(instr.operands)]) + body


def decode(data: bytes, offset: int,
           import_names: list[str]) -> tuple[Instruction, int]:
    """Decode one instruction at ``offset``.

    Returns the instruction and its encoded size.  The instruction's
    ``size`` field is filled in; ``addr`` is left for the caller (which
    knows the load address).
    """
    start = offset
    try:
        mnemonic, cc = _KEY_BY_OPCODE[data[offset]]
    except IndexError:
        raise EncodingError(f"bad opcode {data[offset]:#x} at {offset:#x}") \
            from None
    nops = data[offset + 1]
    offset += 2
    operands: list[Operand] = []
    for _ in range(nops):
        tag = data[offset]
        offset += 1
        if tag == _TAG_REG:
            operands.append(_decode_reg(data[offset]))
            offset += 1
        elif tag == _TAG_IMM:
            (v,) = struct.unpack_from("<i", data, offset)
            operands.append(Imm(v))
            offset += 4
        elif tag == _TAG_MEM:
            flags = data[offset]
            offset += 1
            base = index = None
            if flags & 1:
                base = _decode_reg(data[offset])
                offset += 1
            if flags & 2:
                index = _decode_reg(data[offset])
                offset += 1
            (disp,) = struct.unpack_from("<i", data, offset)
            offset += 4
            operands.append(Mem(base, index,
                                _SCALE_FROM_CODE[(flags >> 2) & 3], disp,
                                _SIZE_FROM_CODE[(flags >> 4) & 3]))
        elif tag == _TAG_IMPORT:
            (idx,) = struct.unpack_from("<H", data, offset)
            offset += 2
            try:
                operands.append(ImportRef(import_names[idx]))
            except IndexError:
                raise EncodingError(f"bad import index {idx}") from None
        else:
            raise EncodingError(f"bad operand tag {tag} at {offset - 1:#x}")
    size = offset - start
    return Instruction(mnemonic, tuple(operands), cc=cc, size=size), size
