"""Execution-count profiles (e.g. the emulator's hot-block profile).

A :class:`Profile` is a key -> count map with a top-N view.  The hot
paths that feed one (the superblock dispatch loop, the IR call path)
grab ``profile.counts`` once and update the plain dict directly, so the
per-event cost is a dict get/set and nothing more.
"""

from __future__ import annotations

__all__ = ["Profile"]


class Profile:
    """A named execution-count profile."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict = {}

    def add(self, key, n: int = 1) -> None:
        counts = self.counts
        counts[key] = counts.get(key, 0) + n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def top(self, n: int = 10) -> list[tuple]:
        """The ``n`` hottest keys as (key, count), hottest first."""
        ranked = sorted(self.counts.items(),
                        key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:n]

    def merge_counts(self, counts: dict) -> None:
        mine = self.counts
        for key, n in counts.items():
            mine[key] = mine.get(key, 0) + n

    def to_dict(self, top: int = 10) -> dict:
        def _key(k):
            return f"{k:#x}" if isinstance(k, int) else str(k)
        return {
            "total": self.total,
            "unique": len(self.counts),
            "top": [[_key(k), n] for k, n in self.top(top)],
        }
