"""CFG analyses shared by optimizer passes: reachability, dominators,
dominance frontiers, and use counting.

Analyses are cached per mutation epoch: :func:`dominators`,
:func:`predecessors`, and :func:`reachable` return a shared result until
the function's :attr:`~repro.ir.module.Function.version` counter (or its
block/instruction count, a safety net for passes that splice lists
without bumping it) changes.  The contract for pass authors: *every*
mutation of a function's blocks, instruction lists, or terminators must
be followed by ``func.invalidate()`` before another pass (or a later
fixed-point round) consults these accessors — the builder API
(:meth:`Block.append` / :meth:`Block.insert`) bumps the version
automatically, direct splices do not.  Callers must treat the returned
objects as immutable.  Set ``REPRO_ANALYSIS_CACHE=0`` to disable caching
(every call recomputes), e.g. to bisect a suspected stale-analysis bug.

Invalidation is *selective* when the mutation's author can vouch for
what it left intact: a pass that only rewrites non-terminator
instructions declares ``PRESERVES = CFG_ANALYSES`` and the pass manager
calls :func:`retain_analyses` after it, migrating the cached CFG
results to the new epoch instead of recomputing them
(``analysis.cache.retained`` counts the saves).
"""

from __future__ import annotations

import os
import weakref

from .. import obs
from ..ir.module import Block, Function
from ..ir.values import Instr, Value

_CACHE_ENABLED = os.environ.get("REPRO_ANALYSIS_CACHE", "1") \
    not in ("0", "false", "off")

#: The analyses this module caches.  All of them are pure CFG analyses:
#: they depend only on the block list and terminator targets, never on
#: non-terminator instructions — which is what makes the selective
#: invalidation of :func:`retain_analyses` sound for passes that rewrite
#: instructions without touching control flow.
CFG_ANALYSES = frozenset({"dominators", "predecessors", "reachable",
                          "loop_headers"})

#: func -> (epoch, {analysis name -> result}); weak so retired modules
#: free their analyses.
_CACHE: "weakref.WeakKeyDictionary[Function, tuple]" = \
    weakref.WeakKeyDictionary()


def analysis_cache_enabled() -> bool:
    return _CACHE_ENABLED


def _epoch(func: Function) -> tuple[int, int, int]:
    return (func.version, len(func.blocks),
            sum(len(b.instrs) for b in func.blocks))


def current_epoch(func: Function) -> tuple[int, int, int]:
    """The function's cache epoch.  The pass manager snapshots this
    before running a pass so :func:`retain_analyses` can migrate
    preserved results across the pass's mutations."""
    return _epoch(func)


def retain_analyses(func: Function, names: frozenset,
                    prior_epoch: tuple[int, int, int]) -> bool:
    """Selective invalidation: carry the named analyses across a
    mutation instead of discarding the whole cache entry.

    Called by the pass manager after a pass that *declared* it preserves
    ``names`` reported a change: the results cached at ``prior_epoch``
    (snapshotted via :func:`current_epoch` before the pass ran) are
    re-keyed to the function's new epoch, so the next consumer hits
    instead of recomputing.  The declaration is the contract — a pass
    that claims to preserve an analysis it invalidates will be served
    stale results — but since every cached analysis is a CFG analysis
    (:data:`CFG_ANALYSES`), a block-count change is proof the claim is
    wrong for this run and nothing is retained (the safety net that
    makes ``remove_unreachable`` calls inside mem2reg/GVN harmless).

    Returns True when at least one analysis survived the migration.
    """
    if not _CACHE_ENABLED or not names:
        return False
    entry = _CACHE.get(func)
    if entry is None or entry[0] != prior_epoch:
        return False
    epoch = _epoch(func)
    if epoch == prior_epoch:
        return False           # no mutation actually landed
    if epoch[1] != prior_epoch[1]:
        return False           # block count changed: CFG claims void
    kept = {name: result for name, result in entry[1].items()
            if name in names}
    _CACHE[func] = (epoch, kept)
    if not kept:
        return False
    obs.count("analysis.cache.retained", len(kept))
    return True


def cached_analysis(func: Function, name: str, build):
    """``build(func)``, memoized until the function's epoch changes."""
    if not _CACHE_ENABLED:
        return build(func)
    epoch = _epoch(func)
    entry = _CACHE.get(func)
    if entry is None or entry[0] != epoch:
        entry = (epoch, {})
        _CACHE[func] = entry
    slot = entry[1]
    if name in slot:
        obs.count("analysis.cache.hits")
        return slot[name]
    obs.count("analysis.cache.misses")
    result = slot[name] = build(func)
    return result


def dominators(func: Function) -> "Dominators":
    """Cached :class:`Dominators` for the current mutation epoch."""
    return cached_analysis(func, "dominators", Dominators)


def predecessors(func: Function) -> dict[Block, list[Block]]:
    """Cached predecessor map (do not mutate the result)."""
    return cached_analysis(func, "predecessors",
                           lambda f: f.predecessors())


def reachable(func: Function) -> list[Block]:
    """Cached entry-reachable block list (do not mutate the result)."""
    return cached_analysis(func, "reachable", reachable_blocks)


def loop_headers(func: Function) -> frozenset[Block]:
    """Cached natural-loop headers: blocks with an incoming back edge
    (an edge from a block they dominate).  The static stack-offset
    interpreter widens phi joins exactly at these blocks."""
    return cached_analysis(func, "loop_headers", _loop_headers)


def _loop_headers(func: Function) -> frozenset[Block]:
    doms = dominators(func)
    preds = predecessors(func)
    in_cfg = set(doms.rpo)
    headers = set()
    for block in doms.rpo:
        for pred in preds[block]:
            if pred in in_cfg and doms.dominates(block, pred):
                headers.add(block)
                break
    return frozenset(headers)


def reachable_blocks(func: Function) -> list[Block]:
    """Blocks reachable from entry, in depth-first discovery order."""
    seen: set[Block] = set()
    order: list[Block] = []
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        order.append(block)
        if block.is_terminated:
            stack.extend(reversed(block.successors()))
    return order


def postorder(func: Function) -> list[Block]:
    seen: set[Block] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        seen.add(block)
        for succ in block.successors():
            if succ not in seen:
                visit(succ)
        order.append(block)

    visit(func.entry)
    return order


class Dominators:
    """Immediate dominators and dominance frontiers.

    Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
    Only reachable blocks participate; passes should prune unreachable
    blocks first (see :func:`repro.opt.simplifycfg.remove_unreachable`).
    """

    def __init__(self, func: Function):
        self.func = func
        rpo = list(reversed(postorder(func)))
        self.rpo = rpo
        index = {b: i for i, b in enumerate(rpo)}
        preds = func.predecessors()
        idom: dict[Block, Block] = {func.entry: func.entry}

        def intersect(a: Block, b: Block) -> Block:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                candidates = [p for p in preds[block]
                              if p in idom and p in index]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom.get(block) is not new:
                    idom[block] = new
                    changed = True
        self.idom = idom

        self.frontiers: dict[Block, set[Block]] = {b: set() for b in rpo}
        for block in rpo:
            block_preds = [p for p in preds[block] if p in index]
            if len(block_preds) >= 2:
                for p in block_preds:
                    runner = p
                    while runner is not idom[block]:
                        self.frontiers[runner].add(block)
                        runner = self.idom[runner]

        self._children: dict[Block, list[Block]] = {b: [] for b in rpo}
        for block in rpo:
            if block is not func.entry:
                self._children[self.idom[block]].append(block)

    def dominates(self, a: Block, b: Block) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        runner = b
        while True:
            if runner is a:
                return True
            parent = self.idom.get(runner)
            if parent is None or parent is runner:
                return runner is a
            runner = parent

    def tree_children(self, block: Block) -> list[Block]:
        return self._children.get(block, [])

    def tree_preorder(self) -> list[Block]:
        order: list[Block] = []
        stack = [self.func.entry]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.tree_children(block)))
        return order


def use_counts(func: Function) -> dict[Value, int]:
    counts: dict[Value, int] = {}
    for instr in func.instructions():
        for op in instr.operands():
            if isinstance(op, Instr):
                counts[op] = counts.get(op, 0) + 1
    return counts


def users_of(func: Function) -> dict[Instr, list[Instr]]:
    users: dict[Instr, list[Instr]] = {}
    for instr in func.instructions():
        for op in instr.operands():
            if isinstance(op, Instr):
                users.setdefault(op, []).append(instr)
    return users
