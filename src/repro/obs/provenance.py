"""Layout provenance: why does a recovered variable look the way it does?

The frame-layout construction in :mod:`repro.core.layout` emits a typed
event for every step that shapes a variable — interval seeding from
traced base pointers, overlap/link merges, undefined-ref attachment,
and static widening — and the corroboration pass records every finding
it raises.  This module re-assembles those ledger events into a
per-variable chain: given a function and a final ``[start, end)``
interval, it selects the events whose intervals overlap it and orders
them into the story ``repro explain`` prints.

The matching rule is byte-range overlap inside the same function: an
event that touched any byte of the final interval is part of how that
interval came to be (merges grow monotonically, so every constituent
interval stays inside the final one).  Findings use their
``[offset, offset + width)`` span; findings without a location are
attached to every variable of the function they name.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["VariableProvenance", "explain_variable", "parse_var_name",
           "render_provenance", "select_variables"]

_VAR_RE = re.compile(r"^sv_([mp])(\d+)$")


def parse_var_name(name: str) -> int:
    """``sv_m84`` -> -84, ``sv_p8`` -> 8 (FrameVariable.name inverse)."""
    m = _VAR_RE.match(name)
    if m is None:
        raise ValueError(f"bad variable name {name!r} "
                         f"(expected sv_mNN or sv_pNN)")
    off = int(m.group(2))
    return -off if m.group(1) == "m" else off


@dataclass
class VariableProvenance:
    """The assembled event chain behind one recovered variable."""

    func: str
    var: str
    interval: tuple[int, int]
    seeds: list[dict] = field(default_factory=list)
    attaches: list[dict] = field(default_factory=list)
    merges: list[dict] = field(default_factory=list)
    widenings: list[dict] = field(default_factory=list)
    findings: list[dict] = field(default_factory=list)

    @property
    def events(self) -> list[dict]:
        """Every chained event in emission order."""
        out = (self.seeds + self.attaches + self.merges
               + self.widenings + self.findings)
        out.sort(key=lambda e: (e.get("pid", 0), e.get("seq", 0)))
        return out


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _event_interval(doc: dict) -> tuple[int, int] | None:
    """The byte range an event touched, per kind."""
    kind = doc.get("kind", "")
    if kind in ("frame.var.seed", "frame.var.attach"):
        iv = doc.get("interval")
        return (iv[0], iv[1]) if iv else None
    if kind == "frame.var.merge":
        into, absorbed = doc.get("into"), doc.get("absorbed")
        if not into or not absorbed:
            return None
        return (min(into[0], absorbed[0]), max(into[1], absorbed[1]))
    if kind == "frame.var.widened":
        region = doc.get("region")
        lo, hi = region if region else (0, 0)
        grew = doc.get("grew")
        if grew:
            lo, hi = min(lo, grew[0]), max(hi, grew[1])
        return (lo, hi)
    if kind in ("corroborate.finding", "sanitize.finding"):
        off, width = doc.get("offset"), doc.get("width")
        if off is None:
            return None          # locationless: match by function only
        return (off, off + (width or 1))
    return None


_BUCKETS = {
    "frame.var.seed": "seeds",
    "frame.var.attach": "attaches",
    "frame.var.merge": "merges",
    "frame.var.widened": "widenings",
    "corroborate.finding": "findings",
    "sanitize.finding": "findings",
}


def explain_variable(events: list[dict], func: str,
                     interval: tuple[int, int],
                     var: str | None = None) -> VariableProvenance:
    """Assemble the provenance chain of ``func``'s variable covering
    ``interval`` from a ledger event list (in emission order)."""
    if var is None:
        sign = "m" if interval[0] < 0 else "p"
        var = f"sv_{sign}{abs(interval[0])}"
    prov = VariableProvenance(func, var, tuple(interval))
    for doc in events:
        bucket = _BUCKETS.get(doc.get("kind", ""))
        if bucket is None or doc.get("func") != func:
            continue
        span = _event_interval(doc)
        if span is None:
            # Locationless finding in this function: chain it — the
            # reader decides whether it matters for this variable.
            if bucket == "findings":
                getattr(prov, bucket).append(doc)
            continue
        if _overlaps(span, prov.interval):
            getattr(prov, bucket).append(doc)
    return prov


def select_variables(layouts: dict, var_spec: str | None):
    """Resolve a CLI ``--var`` spec against recovered layouts.

    ``func:name`` picks one variable, bare ``name`` searches every
    function, bare ``func`` lists the whole frame, and ``None`` selects
    everything.  Yields ``(func, variable)`` pairs; raises
    ``ValueError`` when the spec matches nothing.
    """
    pairs = [(fname, var) for fname, layout in sorted(layouts.items())
             for var in sorted(layout.variables, key=lambda v: v.start)]
    if var_spec is None:
        yield from pairs
        return
    if ":" in var_spec:
        func, name = var_spec.split(":", 1)
        hits = [(f, v) for f, v in pairs if f == func and v.name == name]
    elif _VAR_RE.match(var_spec):
        hits = [(f, v) for f, v in pairs if v.name == var_spec]
    else:
        hits = [(f, v) for f, v in pairs if f == var_spec]
    if not hits:
        known = ", ".join(sorted({f"{f}:{v.name}" for f, v in pairs}))
        raise ValueError(f"--var {var_spec!r} matches no recovered "
                         f"variable (have: {known})")
    yield from hits


def _one_line(doc: dict) -> str:
    kind = doc.get("kind", "?")
    if kind == "frame.var.seed":
        iv, traced = doc.get("interval"), doc.get("traced")
        return (f"seeded by traced ref #{doc.get('ref_id')} at "
                f"sp0{doc.get('sp0_offset'):+d}: bytes "
                f"[{iv[0]}, {iv[1]}) (traced span "
                f"[{traced[0]}, {traced[1]}))")
    if kind == "frame.var.attach":
        iv = doc.get("interval")
        return (f"ref #{doc.get('ref_id')} attached "
                f"({doc.get('method')}) -> [{iv[0]}, {iv[1]})")
    if kind == "frame.var.merge":
        a, b = doc.get("into"), doc.get("absorbed")
        return (f"merged ({doc.get('reason')}): [{a[0]}, {a[1]}) "
                f"absorbed [{b[0]}, {b[1]})")
    if kind == "frame.var.widened":
        region = doc.get("region")
        head = (f"widened to cover [{region[0]}, {region[1]})"
                if doc.get("applied") else
                f"widening to [{region[0]}, {region[1]}) "
                f"skipped (already covered)")
        grew = doc.get("grew")
        if doc.get("applied") and grew:
            head += f" (grew variable at [{grew[0]}, {grew[1]}))"
        reason = doc.get("reason")
        return f"{head}{f' — {reason}' if reason else ''}"
    if kind in ("corroborate.finding", "sanitize.finding"):
        stage = ("corroboration" if kind.startswith("corroborate")
                 else "sanitizer")
        return (f"{stage} {doc.get('severity')} "
                f"[{doc.get('finding')}]: {doc.get('message')}")
    return kind


def render_provenance(prov: VariableProvenance) -> str:
    """Human-readable chain for ``repro explain``."""
    lo, hi = prov.interval
    lines = [f"{prov.func}:{prov.var}  [{lo}, {hi})  "
             f"{hi - lo} bytes"]
    events = prov.events
    if not events:
        lines.append("  (no ledger events — was the ledger enabled "
                     "during the run?)")
    for doc in events:
        lines.append(f"  #{doc.get('seq'):<4d} {_one_line(doc)}")
    return "\n".join(lines)
