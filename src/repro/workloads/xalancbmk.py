"""xalancbmk stand-in: markup document transformation — parse a toy
tag language with a stack of open elements, validate nesting, transform
tag names, and emit a rendered summary via sprintf/strcat string work."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
char document[1024];
char output[2048];
char tag_stack[32][16];
int depth;
int max_depth;
int n_elements;
int n_text;
int errors;

int tag_eq(char *a, char *b) { return strcmp(a, b) == 0; }

void copy_upper(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) {
        int c = src[i] & 255;
        if (c >= 'a' && c <= 'z') c = c - 32;
        dst[i] = (char)c;
    }
    dst[n] = (char)0;
}

int transform(int doc_len) {
    int pos = 0;
    int out = 0;
    depth = 0; max_depth = 0; n_elements = 0; n_text = 0; errors = 0;
    output[0] = (char)0;
    while (pos < doc_len) {
        int c = document[pos] & 255;
        if (c == '<') {
            int closing = 0;
            pos = pos + 1;
            if ((document[pos] & 255) == '/') {
                closing = 1;
                pos = pos + 1;
            }
            char name[16];
            int n = 0;
            while (pos < doc_len && (document[pos] & 255) != '>'
                   && n < 15) {
                name[n] = document[pos];
                n = n + 1;
                pos = pos + 1;
            }
            name[n] = (char)0;
            pos = pos + 1;  /* skip '>' */
            if (closing) {
                if (depth > 0 && tag_eq(tag_stack[depth - 1], name)) {
                    depth = depth - 1;
                    char upper[16];
                    copy_upper(upper, name, n);
                    char piece[32];
                    sprintf(piece, "</%s>", upper);
                    strcat(output, piece);
                } else {
                    errors = errors + 1;
                }
            } else {
                if (depth < 32) {
                    strcpy(tag_stack[depth], name);
                    depth = depth + 1;
                    if (depth > max_depth) max_depth = depth;
                    n_elements = n_elements + 1;
                    char upper[16];
                    copy_upper(upper, name, n);
                    char piece[32];
                    sprintf(piece, "<%s depth=%d>", upper, depth);
                    strcat(output, piece);
                } else {
                    errors = errors + 1;
                }
            }
        } else {
            int start = pos;
            while (pos < doc_len && (document[pos] & 255) != '<')
                pos = pos + 1;
            n_text = n_text + (pos - start);
            strcat(output, "#");
        }
    }
    errors = errors + depth;  /* unclosed elements */
    return out;
}

int main() {
    int total_elems = 0;
    int docs = 0;
    while (1) {
        int n = read_buf(document, 1023);
        if (n <= 0) break;
        document[n] = (char)0;
        transform(n);
        docs = docs + 1;
        total_elems = total_elems + n_elements;
        printf("doc %d: %d elements, depth %d, %d text bytes, "
               "%d errors\n", docs, n_elements, max_depth, n_text,
               errors);
        printf("render: %s\n", output);
    }
    printf("%d documents, %d elements\n", docs, total_elems);
    return 0;
}
"""

_DOCS = (
    b"<html><head><title>abc</title></head>"
    b"<body><p>hello</p><p>more <b>bold</b> text</p></body></html>",
    b"<a><b><c>deep</c></b><b2>x</b2></a><late>oops</wrong>",
    b"<list><item>1</item><item>2</item><item>3</item>"
    b"<item>4</item><item>5</item></list>",
    b"<doc><sec><par>text here</par><par>and more</par></sec>"
    b"<sec><par>final</par></sec></doc>",
    b"<x1><x2><x3><x4><x5>nested</x5></x4></x3></x2></x1>",
)

WORKLOAD = Workload(
    name="xalancbmk",
    source=SOURCE,
    ref_inputs=(_DOCS,),
    description="markup transform: tag stack, validation, string render",
)
