"""Function recovery over the traced CFG (paper §5.1, Nucleus-style).

Function entries are the targets of (direct or indirect) calls, plus the
binary entry point.  Jumps that land on another function's entry are tail
calls.  Blocks reachable from multiple entries are split into functions of
their own using the paper's rule: a block contained in more functions
than any of its predecessors becomes a new entry.  Functions reachable
exclusively through one tail call and never called normally are merged
into their caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import MachineBlock, RecoveredCFG


@dataclass
class RecoveredFunction:
    entry: int
    blocks: dict[int, MachineBlock] = field(default_factory=dict)
    #: Jump sites in this function that are tail calls, with targets.
    tail_calls: dict[int, set[int]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"fn_{self.entry:08x}"


def _reachable(cfg: RecoveredCFG, entry: int,
               entries: set[int]) -> tuple[dict[int, MachineBlock],
                                           dict[int, set[int]]]:
    """Blocks reachable from ``entry`` via jump/fallthrough edges,
    stopping at other entries (tail-call boundaries)."""
    blocks: dict[int, MachineBlock] = {}
    tail_calls: dict[int, set[int]] = {}
    work = [entry]
    while work:
        addr = work.pop()
        if addr in blocks:
            continue
        block = cfg.blocks.get(addr)
        if block is None:
            continue
        blocks[addr] = block
        for succ in block.succs:
            if succ in entries and succ != entry:
                # Jump to another function's entry: a tail call --
                # unless it is the return site after a call instruction.
                if block.terminator.mnemonic in ("jmp", "jcc"):
                    tail_calls.setdefault(block.terminator.addr,
                                          set()).add(succ)
                    continue
            work.append(succ)
    return blocks, tail_calls


def recover_functions(cfg: RecoveredCFG) -> dict[int, RecoveredFunction]:
    """Partition traced blocks into single-entry functions."""
    entries: set[int] = {cfg.entry}
    for targets in cfg.call_targets.values():
        entries.update(targets)

    # Iteratively split shared blocks into new entries (paper's rule).
    for _round in range(64):
        bodies = {e: _reachable(cfg, e, entries)[0] for e in entries}
        containment: dict[int, int] = {}
        for body in bodies.values():
            for addr in body:
                containment[addr] = containment.get(addr, 0) + 1
        preds: dict[int, set[int]] = {}
        for body in bodies.values():
            for addr, block in body.items():
                for succ in block.succs:
                    preds.setdefault(succ, set()).add(addr)
        new_entries: set[int] = set()
        for addr, count in containment.items():
            if addr in entries or count < 2:
                continue
            pred_counts = [containment.get(p, 0)
                           for p in preds.get(addr, ())]
            if not pred_counts or count > max(pred_counts):
                new_entries.add(addr)
        if not new_entries:
            break
        entries |= new_entries

    functions: dict[int, RecoveredFunction] = {}
    for entry in sorted(entries):
        blocks, tail_calls = _reachable(cfg, entry, entries)
        if blocks:
            functions[entry] = RecoveredFunction(entry, blocks,
                                                 tail_calls)
    return functions


def callable_entries(cfg: RecoveredCFG,
                     functions: dict[int, RecoveredFunction]) -> set[int]:
    """Entries that are the target of at least one regular call."""
    called: set[int] = {cfg.entry}
    for targets in cfg.call_targets.values():
        called.update(targets)
    return called & set(functions)
