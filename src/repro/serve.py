"""repro.serve — recompilation as a service.

A long-lived daemon (``python -m repro serve``) that accepts
recompilation jobs over a local Unix socket, runs them through the
store-backed incremental pipeline
(:func:`repro.core.incremental.incremental_recompile`), and accumulates
per-image input sets as named **campaigns** (the BinRec model: every
submission grows the campaign's traced input set, so coverage only ever
improves).

Why a daemon beats N one-shot processes:

* the content-addressed :class:`~repro.store.ArtifactStore` persists
  traces and results across requests (and across daemon restarts);
* the process itself stays warm: the optimizer's cross-stage
  fingerprint memo, the lowering cache, and the shared replay
  :class:`~repro.parallel.ForkPool` all survive between jobs, so an
  input addition re-refines only the functions whose fingerprint
  moved;
* jobs execute one at a time on the scheduler (the in-process caches
  and the fork-pool context are process-global), while each job fans
  its replay/optimizer sweeps out over the shared pool — concurrency
  lives inside the job, ordering between jobs stays deterministic.

Protocol: line-delimited JSON — one request object per line, one
response object per line, over ``AF_UNIX``.  Requests carry an ``op``:

``ping``      liveness probe -> ``{"ok": true, "pid": ...}``
``submit``    run a job: ``image`` (path) or ``image_json`` (inline),
              ``inputs`` (list of runs; items are ints or
              ``{"b": "latin-1 bytes"}``), optional ``campaign``,
              ``options`` (``optimize``/``check``/``static_widen``/
              ``hybrid``), ``output`` (path for the recovered image)
              and ``return_artifact`` (inline the recovered JSON).
``status``    daemon counters + store stats + campaign list
``campaign``  one campaign's summary (``name``)
``shutdown``  stop the daemon (responds first, then exits)

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg,
"kind": ExceptionName}``.  The full schema is documented in DESIGN.md.

Observability: ledger events ``job.submitted`` / ``job.started`` /
``job.finished``, a ``job.execute`` span per job, and the store's
``store.hit`` / ``store.miss`` / ``store.put`` stream — ``repro obs
diff`` over two reports shows exactly what a warm run reused.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from pathlib import Path

from . import obs
from .binary.image import BinaryImage
from .core.incremental import incremental_recompile
from .errors import ServeError
from .opt.manager import memo_stats
from .parallel import ForkPool
from .recompile.lower import lower_cache_stats
from .store import ArtifactStore, decode_runs, encode_runs, image_key

__all__ = ["RecompileServer", "ServeClient", "serve_forever"]

#: Protocol revision, echoed by ``ping`` so clients can detect drift.
PROTOCOL_VERSION = 1

#: Largest accepted request line (a 4 MB image JSON fits comfortably).
MAX_REQUEST_BYTES = 64 * 1024 * 1024


class RecompileServer:
    """The daemon: a threading Unix-socket server plus a job scheduler.

    One instance per socket path.  Connections are handled on threads;
    job execution is serialized on :attr:`_job_lock` (FIFO within the
    OS's lock fairness) because the in-process caches the incremental
    pipeline relies on are process-global.
    """

    def __init__(self, socket_path: str | Path,
                 store: ArtifactStore | str | Path | None = None,
                 jobs: int = 1, opt_jobs: int | None = None):
        self.socket_path = Path(socket_path)
        if isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)
        self.jobs = max(1, int(jobs))
        self.opt_jobs = opt_jobs
        #: Replay fork pool shared across requests (None when serial).
        self.replay_pool = ForkPool(self.jobs) if self.jobs > 1 else None
        self._job_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._job_seq = 0
        self.stats = {"jobs": 0, "served_store": 0,
                      "served_incremental": 0, "served_cold": 0,
                      "errors": 0}
        self._server: socketserver.BaseServer | None = None
        self._shutdown = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Bind the socket and serve until :meth:`shutdown`."""
        if self.socket_path.exists():
            # A stale socket from a crashed daemon: refuse to steal a
            # live one, silently replace a dead one.
            if self._socket_alive():
                raise ServeError(
                    f"another daemon is serving {self.socket_path}")
            self.socket_path.unlink()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                outer._handle_connection(self)

        class Server(socketserver.ThreadingMixIn,
                     socketserver.UnixStreamServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = Server(str(self.socket_path), Handler)
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def _socket_alive(self) -> bool:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(0.5)
            probe.connect(str(self.socket_path))
            probe.close()
            return True
        except OSError:
            return False

    def shutdown(self) -> None:
        """Stop the accept loop (callable from handler threads)."""
        self._shutdown.set()
        server = self._server
        if server is not None:
            threading.Thread(target=server.shutdown,
                             daemon=True).start()

    def close(self) -> None:
        if self.replay_pool is not None:
            self.replay_pool.close()
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    # -- connection handling ---------------------------------------------

    def _handle_connection(self, handler) -> None:
        while True:
            line = handler.rfile.readline(MAX_REQUEST_BYTES)
            if not line:
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServeError("request must be a JSON object")
                response = self.dispatch(request)
            except Exception as exc:  # the daemon must not die
                with self._state_lock:
                    self.stats["errors"] += 1
                response = {"ok": False, "error": str(exc),
                            "kind": type(exc).__name__}
            handler.wfile.write(
                (json.dumps(response, default=repr) + "\n").encode())
            handler.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                self.shutdown()
                return

    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "pid": os.getpid(),
                    "protocol": PROTOCOL_VERSION}
        if op == "status":
            with self._state_lock:
                stats = dict(self.stats)
            return {"ok": True, "op": "status", "jobs": self.jobs,
                    "stats": stats, "store": dict(self.store.stats),
                    "store_root": str(self.store.root),
                    "campaigns": self.store.list_campaigns(),
                    "warm": {"opt": memo_stats(),
                             "lower": lower_cache_stats()}}
        if op == "campaign":
            name = request.get("name")
            campaign = self.store.load_campaign(name) if name else None
            if campaign is None:
                raise ServeError(f"unknown campaign {name!r}")
            return {"ok": True, "op": "campaign",
                    "campaign": campaign.to_dict()}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "submit":
            return self._submit(request)
        raise ServeError(f"unknown op {op!r}")

    # -- jobs ------------------------------------------------------------

    def _load_image(self, request: dict,
                    campaign) -> tuple[BinaryImage, str]:
        if request.get("image_json"):
            image = BinaryImage.from_json(request["image_json"])
        elif request.get("image"):
            image = BinaryImage.from_json(
                Path(request["image"]).read_text())
        elif campaign is not None:
            src = self.store.get("source", campaign.image_key)
            if src is None:
                raise ServeError(
                    f"campaign {campaign.name!r} has no stored image; "
                    f"resubmit with 'image'")
            return BinaryImage.from_json(src), campaign.image_key
        else:
            raise ServeError("submit needs 'image' or 'image_json'")
        key = image_key(image)
        # Persist the source so campaign resubmissions can omit it.
        if not self.store.contains("source", key):
            self.store.put("source", key, image.to_json())
        return image, key

    def _submit(self, request: dict) -> dict:
        with self._state_lock:
            self._job_seq += 1
            job_id = self._job_seq
        runs = decode_runs(request.get("inputs", []))
        campaign_name = request.get("campaign")
        options = request.get("options") or {}
        obs.event("job.submitted", job=job_id,
                  campaign=campaign_name, inputs=len(runs))
        obs.count("serve.jobs.submitted")
        with self._job_lock:
            campaign = (self.store.load_campaign(campaign_name)
                        if campaign_name else None)
            if campaign_name and campaign is None and not runs \
                    and not (request.get("image")
                             or request.get("image_json")):
                raise ServeError(
                    f"new campaign {campaign_name!r} needs an image "
                    f"and at least one input")
            image, img_key = self._load_image(request, campaign)
            if campaign_name:
                if campaign is None:
                    from .store import Campaign
                    campaign = Campaign(name=campaign_name,
                                        image_key=img_key)
                elif campaign.image_key != img_key:
                    raise ServeError(
                        f"campaign {campaign_name!r} is bound to image "
                        f"{campaign.image_key}, got {img_key}")
                added = campaign.add_inputs(runs)
                # Jobs run over the accumulated set: coverage grows
                # monotonically across submissions.
                runs = [list(items) for items in campaign.inputs]
                if not runs:
                    raise ServeError(
                        f"campaign {campaign_name!r} has no inputs")
            if not runs:
                raise ServeError("submit needs at least one input run")
            obs.event("job.started", job=job_id, image=img_key,
                      campaign=campaign_name, inputs=len(runs))
            with obs.span("job.execute", job=job_id,
                          campaign=campaign_name or "",
                          inputs=len(runs)) as sp:
                served = incremental_recompile(
                    image, runs, self.store,
                    optimize=options.get("optimize", True),
                    check=options.get("check"),
                    static_widen=options.get("static_widen"),
                    hybrid=options.get("hybrid", False),
                    jobs=self.jobs, opt_jobs=self.opt_jobs,
                    replay_pool=self.replay_pool,
                    collect_accuracy=options.get(
                        "collect_accuracy", True))
                if obs.enabled():
                    sp.set(**served.stats.to_dict())
            with self._state_lock:
                self.stats["jobs"] += 1
                self.stats[f"served_{served.stats.served}"] += 1
            if campaign_name:
                campaign.jobs += 1
                campaign.coverage = dict(served.coverage)
                self.store.save_campaign(campaign)
            obs.count(f"serve.jobs.{served.stats.served}")
        obs.event("job.finished", job=job_id,
                  **served.stats.to_dict())
        response: dict = {
            "ok": True, "op": "submit", "job": job_id,
            "served": served.stats.served,
            "stats": served.stats.to_dict(),
            "image_key": served.image_key,
            "result_key": served.result_key,
            "fallback": served.fallback,
            "notes": list(served.notes),
            "coverage": dict(served.coverage),
        }
        if campaign_name:
            response["campaign"] = campaign.to_dict()
        if served.accuracy is not None:
            response["accuracy"] = {
                "precision": served.accuracy.precision,
                "recall": served.accuracy.recall,
            }
        if request.get("output"):
            Path(request["output"]).write_text(
                served.recovered.to_json())
            response["output"] = request["output"]
        if request.get("return_artifact"):
            response["artifact"] = served.recovered.to_json()
        return response


class ServeClient:
    """Line-delimited-JSON client for a :class:`RecompileServer`.

    One connection per request keeps the client trivially robust; the
    daemon holds no per-connection state.
    """

    def __init__(self, socket_path: str | Path, timeout: float = 600.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def request(self, op: str, **fields) -> dict:
        doc = {"op": op, **fields}
        try:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(self.timeout)
            conn.connect(self.socket_path)
            conn.sendall((json.dumps(doc) + "\n").encode())
            chunks = []
            while True:
                chunk = conn.recv(1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
            conn.close()
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {exc}") \
                from exc
        if not chunks:
            raise ServeError("daemon closed the connection mid-request")
        response = json.loads(b"".join(chunks))
        if not response.get("ok"):
            raise ServeError(
                f"{response.get('kind', 'error')}: "
                f"{response.get('error', 'request failed')}")
        return response

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def campaign(self, name: str) -> dict:
        return self.request("campaign", name=name)

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def submit(self, image: str | Path | None = None,
               image_json: str | None = None,
               inputs: list[list] | None = None,
               campaign: str | None = None,
               options: dict | None = None,
               output: str | None = None,
               return_artifact: bool = False) -> dict:
        fields: dict = {"inputs": encode_runs(inputs or [])}
        if image is not None:
            fields["image"] = str(image)
        if image_json is not None:
            fields["image_json"] = image_json
        if campaign is not None:
            fields["campaign"] = campaign
        if options:
            fields["options"] = options
        if output is not None:
            fields["output"] = output
        if return_artifact:
            fields["return_artifact"] = True
        return self.request("submit", **fields)


def serve_forever(socket_path: str | Path,
                  store: str | Path | None = None,
                  jobs: int = 1,
                  opt_jobs: int | None = None) -> RecompileServer:
    """Convenience entry: build a server and block serving requests."""
    server = RecompileServer(socket_path, store=store, jobs=jobs,
                             opt_jobs=opt_jobs)
    server.serve_forever()
    return server
