"""Alloca promotion to SSA."""

from repro.ir import (
    Alloca,
    Builder,
    Const,
    Function,
    Load,
    Module,
    Phi,
    Store,
    run_module,
    verify_function,
)
from repro.opt import promotable_allocas, promote_allocas


def build():
    m = Module()
    f = Function("main", ["n"])
    m.add_function(f)
    m.entry_name = "main"
    return m, f, Builder(f)


def test_scalar_promotion_removes_memory_ops():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(41))
    v = b.load(slot)
    b.ret([b.add(v, Const(1))])
    assert promote_allocas(f)
    verify_function(f)
    kinds = [type(i) for i in f.instructions()]
    assert Alloca not in kinds and Load not in kinds and Store not in kinds
    assert run_module(m).exit_code == 42


def test_loop_promotion_inserts_phi():
    m, f, b = build()
    entry = f.add_block("entry")
    head = f.add_block("head")
    body = f.add_block("body")
    done = f.add_block("done")
    b.position(entry)
    i_slot = b.alloca(4, name="i")
    b.store(i_slot, Const(0))
    b.br(head)
    b.position(head)
    iv = b.load(i_slot)
    c = b.icmp("slt", iv, Const(4))
    b.condbr(c, body, done)
    b.position(body)
    b.store(i_slot, b.add(b.load(i_slot), Const(1)))
    b.br(head)
    b.position(done)
    b.ret([b.load(i_slot)])
    assert promote_allocas(f)
    verify_function(f)
    assert any(isinstance(i, Phi) for i in f.instructions())
    assert run_module(m).exit_code == 4


def test_escaping_alloca_not_promoted():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(1))
    b.call_external("free", [slot])  # address escapes
    b.ret([b.load(slot)])
    assert slot not in promotable_allocas(f)


def test_mixed_sizes_not_promoted_when_wider_load():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(0xAB), 1)
    v = b.load(slot, 4)  # wider than the store
    b.ret([v])
    assert slot not in promotable_allocas(f)


def test_narrow_load_of_wide_store_promoted_with_ext():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(0x1234), 4)
    v = b.load(slot, 1)
    b.ret([v])
    before = run_module(m).exit_code
    assert promote_allocas(f)
    verify_function(f)
    assert run_module(m).exit_code == before == 0x34


def test_load_before_store_yields_zero():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    v = b.load(slot)
    b.store(slot, Const(5))
    b.ret([v])
    promote_allocas(f)
    assert run_module(m).exit_code == 0


def test_diamond_control_flow_phi_values():
    m, f, b = build()
    entry = f.add_block("entry")
    then = f.add_block("then")
    els = f.add_block("else")
    join = f.add_block("join")
    b.position(entry)
    slot = b.alloca(4)
    cond = b.icmp("sgt", f.params[0], Const(0))
    b.condbr(cond, then, els)
    b.position(then)
    b.store(slot, Const(10))
    b.br(join)
    b.position(els)
    b.store(slot, Const(20))
    b.br(join)
    b.position(join)
    b.ret([b.load(slot)])
    promote_allocas(f)
    verify_function(f)
    from repro.ir import Interpreter
    assert Interpreter(m).run(args=[1]).exit_code == 10
    assert Interpreter(m).run(args=[0]).exit_code == 20
