/* The motivating case for the static corroboration gate: a 16-element
 * array traced with an input that touches only the first few elements.
 * Dynamic bounds recovery sees three elements; the static interpreter
 * proves the whole array is reachable.
 *
 *   python -m repro compile examples/undertrace.c -o under.img.json
 *   python -m repro check under.img.json --input int:3
 *     -> coverage-gap warning + widening suggestion
 *   python -m repro check under.img.json --input int:3 --widen
 *     -> the gap is gone: the widened layout covers the full array
 *
 * (A path-insensitive uninit-read warning remains either way: on the
 * zero-trip path n <= 0 the array is formally never written.)
 */
int main() {
    int buf[16];
    int i;
    int n;
    n = read_int();
    for (i = 0; i < n; i++) buf[i] = i * 7;
    int s = 0;
    for (i = 0; i < n; i++) s += buf[i];
    printf("s=%d\n", s);
    return 0;
}
