"""Dead store elimination.

Two flavours:

* block-local: a store overwritten by a later store to the same location
  with no intervening reader dies;
* whole-function: stores into never-read, non-escaping allocas die (this
  is what deletes the dead spill slots that symbolization exposes).
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.values import (
    Alloca,
    Call,
    CallExt,
    CallInd,
    Instr,
    Intrinsic,
    Load,
    Store,
)
from .alias import AliasAnalysis
from .analysis import CFG_ANALYSES

#: Dead-store removal deletes stores only; control flow is untouched.
PRESERVES = CFG_ANALYSES


def eliminate_dead_stores(func: Function,
                          module: Module | None = None) -> bool:
    aa = AliasAnalysis(func, module)
    dead: set[Instr] = set()

    # Block-local overwrite detection.
    for block in func.blocks:
        pending: list[Store] = []
        for instr in block.instrs:
            if isinstance(instr, Store):
                for prior in list(pending):
                    if _must_cover(aa, instr, prior):
                        dead.add(prior)
                        pending.remove(prior)
                pending.append(instr)
            elif isinstance(instr, Load):
                pending = [st for st in pending
                           if not aa.may_alias(st.addr, st.size,
                                               instr.addr, instr.size)]
            elif isinstance(instr, (Call, CallInd, CallExt, Intrinsic)):
                # Calls may read anything that escapes; probes may read the
                # traced values too, so be conservative around them.
                pending = [st for st in pending
                           if not aa.clobbered_by_call(st.addr)]

    # Whole-function: stores into never-loaded, non-escaping allocas.
    loads = [i for i in func.instructions() if isinstance(i, Load)]
    entry_allocas = [i for i in func.entry.instrs if isinstance(i, Alloca)]
    for alloca in entry_allocas:
        if alloca in aa.escaped:
            continue
        read = any(aa.may_alias(ld.addr, ld.size, alloca, alloca.size)
                   for ld in loads)
        if read:
            continue
        for instr in func.instructions():
            if isinstance(instr, Store):
                fact = aa.fact_for(instr.addr)
                if fact[0] == "alloca" and fact[1] is alloca:
                    dead.add(instr)

    if not dead:
        return False
    for block in func.blocks:
        block.instrs = [i for i in block.instrs if i not in dead]
    func.invalidate()
    return True


def _must_cover(aa: AliasAnalysis, later: Store, earlier: Store) -> bool:
    """Does ``later`` fully overwrite ``earlier``'s bytes?"""
    fa = aa.fact_for(later.addr)
    fb = aa.fact_for(earlier.addr)
    if fa[0] not in ("alloca", "global", "const") or fa[0] != fb[0] \
            or fa[1] != fb[1] or fa[2] is None or fb[2] is None:
        return later.addr is earlier.addr and later.size >= earlier.size
    return fa[2] <= fb[2] and fa[2] + later.size >= fb[2] + earlier.size
