"""h264ref stand-in: block motion estimation — SAD (sum of absolute
differences) search of 8x8 blocks between two frames, with a diamond
refinement step; nested loops over byte arrays and an abs-heavy inner
kernel."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
char ref_frame[2400];   /* 60 x 40 */
char cur_frame[2400];
int frame_w;
int frame_h;

int pixel(char *frame, int x, int y) {
    if (x < 0) x = 0;
    if (y < 0) y = 0;
    if (x >= frame_w) x = frame_w - 1;
    if (y >= frame_h) y = frame_h - 1;
    return frame[y * frame_w + x] & 255;
}

int sad8(int cx, int cy, int rx, int ry) {
    int total = 0;
    int dy;
    for (dy = 0; dy < 8; dy++) {
        int dx;
        for (dx = 0; dx < 8; dx++) {
            int d = pixel(cur_frame, cx + dx, cy + dy)
                  - pixel(ref_frame, rx + dx, ry + dy);
            total = total + abs(d);
        }
    }
    return total;
}

int search_block(int bx, int by, int *out_mx, int *out_my) {
    int best = sad8(bx, by, bx, by);
    int best_mx = 0; int best_my = 0;
    int my;
    for (my = -4; my <= 4; my = my + 2) {
        int mx;
        for (mx = -4; mx <= 4; mx = mx + 2) {
            int cost = sad8(bx, by, bx + mx, by + my);
            if (cost < best) {
                best = cost; best_mx = mx; best_my = my;
            }
        }
    }
    /* diamond refinement around the coarse winner */
    int step;
    for (step = 1; step <= 1; step++) {
        int dirs[8];
        dirs[0] = 1; dirs[1] = 0; dirs[2] = -1; dirs[3] = 0;
        dirs[4] = 0; dirs[5] = 1; dirs[6] = 0; dirs[7] = -1;
        int k;
        for (k = 0; k < 4; k++) {
            int mx = best_mx + dirs[k * 2] * step;
            int my2 = best_my + dirs[k * 2 + 1] * step;
            int cost = sad8(bx, by, bx + mx, by + my2);
            if (cost < best) {
                best = cost; best_mx = mx; best_my = my2;
            }
        }
    }
    *out_mx = best_mx;
    *out_my = best_my;
    return best;
}

void synthesize_frames(int seed) {
    int s = seed;
    int i;
    for (i = 0; i < frame_w * frame_h; i++) {
        s = (s * 1103515245 + 12345) & 2147483647;
        ref_frame[i] = (char)((s >> 12) & 255);
    }
    /* current frame = reference shifted by (2, 1) plus noise */
    int y;
    for (y = 0; y < frame_h; y++) {
        int x;
        for (x = 0; x < frame_w; x++) {
            int v = pixel(ref_frame, x - 2, y - 1);
            if (((x * 31 + y * 17) & 15) == 0) v = (v + 9) & 255;
            cur_frame[y * frame_w + x] = (char)v;
        }
    }
}

int main() {
    frame_w = read_int();
    frame_h = read_int();
    int seed = read_int();
    synthesize_frames(seed);
    int total_sad = 0;
    int vx = 0; int vy = 0;
    int by;
    for (by = 0; by + 8 <= frame_h; by = by + 8) {
        int bx;
        for (bx = 0; bx + 8 <= frame_w; bx = bx + 8) {
            int mx; int my;
            int cost = search_block(bx, by, &mx, &my);
            total_sad = total_sad + cost;
            vx = vx + mx; vy = vy + my;
            printf("block %d,%d: mv (%d,%d) sad %d\n",
                   bx, by, mx, my, cost);
        }
    }
    printf("total sad %d, net motion (%d,%d)\n", total_sad, vx, vy);
    return 0;
}
"""

WORKLOAD = Workload(
    name="h264ref",
    source=SOURCE,
    ref_inputs=(
        (16, 8, 4242),
    ),
    description="motion estimation: SAD block search + diamond refine",
)
