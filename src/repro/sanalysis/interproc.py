"""Interprocedural corroboration: call-graph summaries, escape
analysis, and EFACT-style external-signature recovery.

The per-function corroboration of :mod:`.corroborate` is blind to the
paper's sharpest soundness hazard: a frame variable whose *address*
leaves its function.  The callee's accesses through that pointer are
parameter-relative, so the caller's single-function abstract
interpretation never sees them, and the dynamic layout only covers what
the traces happened to touch — a callee that walks past the traced
extent splits or truncates an object invisibly.  This module closes
that gap with whole-module machinery (Macaw's reusable-analysis shape,
EFACT's call-site signature recovery; see PAPERS.md):

* **pointer-region interpretation** (:class:`_PInterpreter`) — the
  VSA-lite interval domain of :mod:`.absint` generalized from the
  single ``sp0`` region to one region per *pointer source*: the ``sp``
  parameter, each register parameter, and each incoming stack-argument
  slot (a load from ``sp0 + 4 + 4j`` in the lifted ABI).  Accesses
  through a region produce region-relative footprints;
* **local summaries** (:class:`LocalSummary`) — one pure, per-function
  fact bundle: region footprints, the abstract value stored into every
  exact frame slot (the outgoing-argument evidence), internal and
  external call sites, and regions that escape by being stored or
  returned.  Memoized per :attr:`~repro.ir.module.Function.version` in
  the versioned CFG-analysis cache, so a one-function edit re-computes
  exactly one summary;
* **bottom-up propagation** (:func:`summarize_module`) — a call graph
  over the lifted module (direct calls, plus indirect sites bounded by
  the target's interval against the address table) is condensed into
  SCCs and walked callees-first; inside an SCC the footprint
  translation iterates to a capped fixpoint with interval widening.  A
  callee access at ``arg_j + e`` becomes a caller access at ``b + e``
  when the caller stored ``sp0 + b`` into slot ``j`` — each translated
  access carries the call chain that produced it;
* **escaped-split check** (:func:`check_escapes`) — translated callee
  footprints are diffed against the caller's *dynamic* layout with the
  same clamp rule the per-function pass uses: an escaped access that
  crosses a recovered variable's boundary is an ``escaped-split``
  error naming the exact call chain, paired with a widening suggestion
  so ``REPRO_STATIC_WIDEN=1`` can repair the layout;
* **extern-signature recovery** (:func:`recover_extern_sigs`) — at
  every external call site the argument-slot stores and their abstract
  values independently witness the callee's arity and pointer-ness.
  For functions modeled in :data:`repro.core.extfuncs.EXTERNAL_DB` the
  evidence is cross-checked (confident disagreement is an
  ``extern-divergence`` error); unmodeled names become ``ExtSig``
  candidates (``extern-candidate`` info findings) — the starting point
  for the ROADMAP's auto-synthesized extern stubs.

``REPRO_INTERPROC=0`` disables the whole pass (the driver's escape
hatch).  Nothing here mutates IR beyond stashing findings metadata in
``func.meta`` — recompiled output is byte-identical with the analysis
on or off whenever the gate passes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .. import obs
from ..ir.module import Function, Module
from ..ir.values import (
    BinOp,
    Call,
    CallExt,
    CallInd,
    Const,
    GlobalRef,
    ICmp,
    Instr,
    Load,
    Phi,
    Ret,
    Store,
    Unary,
    Value,
)
from ..opt.analysis import cached_analysis, loop_headers
from .absint import FrameAccessSet, _add, _max, _min
from .corroborate import WideningSuggestion, _clamp_set
from .report import (
    ESCAPED_SPLIT,
    EXTERN_CANDIDATE,
    EXTERN_DIVERGENCE,
    Finding,
)


def _sp0fold():
    """Deferred import: :mod:`repro.core` imports this package from its
    driver, so importing it back at module scope would be a cycle."""
    from ..core import sp0fold
    return sp0fold


def _external_db():
    from ..core.extfuncs import EXTERNAL_DB
    return EXTERNAL_DB


def interproc_enabled() -> bool:
    """The driver's escape hatch: ``REPRO_INTERPROC=0`` disables the
    interprocedural corroboration passes."""
    return os.environ.get("REPRO_INTERPROC", "1") \
        not in ("0", "false", "off", "no")


# -- the region-tagged abstract domain ---------------------------------------

#: Region of the threaded stack pointer (``params[0]``): offsets are
#: sp0-relative, exactly the :mod:`.absint` SP region.
SP_REGION = "sp"

BOT = "bot"
NUM = "num"
PTR = "ptr"
TOP = "top"


@dataclass(frozen=True)
class PVal:
    """An abstract value: region tag + inclusive interval.

    ``region`` is :data:`SP_REGION`, ``("reg", i)`` for register
    parameter ``i``, or ``("sarg", j)`` for the value loaded from
    incoming stack-argument slot ``j``; it is only meaningful for
    ``kind == "ptr"``.
    """

    kind: str
    region: object = None
    lo: int | None = None
    hi: int | None = None

    @staticmethod
    def num(lo: int | None, hi: int | None) -> "PVal":
        return PVal(NUM, None, lo, hi)

    @staticmethod
    def const(value: int) -> "PVal":
        return PVal(NUM, None, value, value)

    @staticmethod
    def ptr(region, lo: int | None, hi: int | None) -> "PVal":
        return PVal(PTR, region, lo, hi)

    @property
    def is_exact(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def __repr__(self) -> str:
        if self.kind in (BOT, TOP):
            return self.kind
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        base = f"{self.region}+" if self.kind == PTR else ""
        return f"{base}[{lo}, {hi}]"


BOT_P = PVal(BOT)
TOP_P = PVal(TOP)
NUM_TOP_P = PVal(NUM, None, None, None)


def pjoin(a: PVal, b: PVal) -> PVal:
    if a.kind == BOT:
        return b
    if b.kind == BOT:
        return a
    if a.kind == TOP or b.kind == TOP:
        return TOP_P
    if a.kind != b.kind or a.region != b.region:
        return TOP_P
    return PVal(a.kind, a.region, _min(a.lo, b.lo), _max(a.hi, b.hi))


def pwiden(old: PVal, new: PVal) -> PVal:
    if old.kind in (BOT, TOP) or new.kind in (BOT, TOP) \
            or old.kind != new.kind or old.region != new.region:
        return pjoin(old, new)
    lo = old.lo
    if new.lo is None or (lo is not None and new.lo < lo):
        lo = None
    hi = old.hi
    if new.hi is None or (hi is not None and new.hi > hi):
        hi = None
    return PVal(new.kind, new.region, lo, hi)


_UNARY_RANGES = {
    "sext8": (-128, 127), "sext16": (-32768, 32767),
    "zext8": (0, 255), "zext16": (0, 65535),
    "trunc8": (0, 255), "trunc16": (0, 65535),
}


def _transfer_binop(instr: BinOp, val) -> PVal:
    a, b = val(instr.lhs), val(instr.rhs)
    if a.kind == BOT or b.kind == BOT:
        return BOT_P
    op = instr.opcode
    if op == "add":
        if a.kind == PTR and b.kind == NUM:
            return PVal(PTR, a.region, _add(a.lo, b.lo), _add(a.hi, b.hi))
        if a.kind == NUM and b.kind == PTR:
            return PVal(PTR, b.region, _add(b.lo, a.lo), _add(b.hi, a.hi))
        if a.kind == NUM and b.kind == NUM:
            return PVal(NUM, None, _add(a.lo, b.lo), _add(a.hi, b.hi))
        return TOP_P
    if op == "sub":
        if a.kind == PTR and b.kind == NUM:
            neg_hi = None if b.lo is None else -b.lo
            neg_lo = None if b.hi is None else -b.hi
            return PVal(PTR, a.region, _add(a.lo, neg_lo),
                        _add(a.hi, neg_hi))
        if a.kind == PTR and b.kind == PTR:
            # Same-region pointer difference is a plain number; mixed
            # regions are meaningless arithmetic.
            return NUM_TOP_P if a.region == b.region else TOP_P
        if a.kind == NUM and b.kind == NUM:
            neg_hi = None if b.lo is None else -b.lo
            neg_lo = None if b.hi is None else -b.hi
            return PVal(NUM, None, _add(a.lo, neg_lo), _add(a.hi, neg_hi))
        return TOP_P
    if op == "mul":
        if a.kind == NUM and b.kind == NUM:
            if a.bounded and b.bounded:
                prods = [a.lo * b.lo, a.lo * b.hi,
                         a.hi * b.lo, a.hi * b.hi]
                return PVal(NUM, None, min(prods), max(prods))
            return NUM_TOP_P
        # A scaled "pointer" was really an integer we mis-tagged at a
        # pristine argument-slot load (indices arrive the same way
        # addresses do); degrade to a number so `base + 4*i` keeps the
        # base's region instead of collapsing to TOP.
        return NUM_TOP_P
    # Masks/shifts on a pointer keep the region, lose the offset.
    if a.kind == PTR:
        return PVal(PTR, a.region, None, None)
    if b.kind == PTR:
        return PVal(PTR, b.region, None, None)
    return NUM_TOP_P


class _PInterpreter:
    """Region-tagged interval interpretation of one lifted function.

    Mirrors :class:`repro.sanalysis.absint._Interpreter` (same rounds,
    same loop-header widening) but seeds *every* parameter as the root
    of its own pointer region and materializes a fresh region for each
    load of a pristine incoming stack-argument slot.
    """

    def __init__(self, func: Function):
        self.func = func
        self.values: dict[Value, PVal] = {}
        self.headers = loop_headers(func)
        #: Incoming arg slots this function itself overwrites lose
        #: their pristine-argument meaning (scratch reuse).
        self.clobbered_slots: set[int] = set()

    def val(self, v: Value) -> PVal:
        if isinstance(v, Const):
            return PVal.const(v.signed)
        if self.func.params:
            if v is self.func.params[0]:
                return PVal.ptr(SP_REGION, 0, 0)
            for i, p in enumerate(self.func.params[1:], start=1):
                if v is p:
                    return PVal.ptr(("reg", i), 0, 0)
        return self.values.get(v, BOT_P)

    def _slot_of(self, fact: PVal) -> int | None:
        """Incoming stack-argument slot index of an exact sp0 address
        (``sp0 + 4 + 4j``; slot 0 sits just above the return address)."""
        if fact.kind != PTR or fact.region != SP_REGION \
                or not fact.is_exact:
            return None
        e = fact.lo
        if e is None or e < 4 or (e - 4) % 4:
            return None
        return (e - 4) // 4

    def _transfer(self, instr: Instr) -> PVal:
        if isinstance(instr, BinOp):
            return _transfer_binop(instr, self.val)
        if isinstance(instr, Phi):
            out = BOT_P
            for op in instr.ops:
                if op is instr:
                    continue
                out = pjoin(out, self.val(op))
            return out
        if isinstance(instr, Unary):
            if instr.opcode == "neg":
                src = self.val(instr.src)
                if src.kind == NUM:
                    neg_hi = None if src.lo is None else -src.lo
                    neg_lo = None if src.hi is None else -src.hi
                    return PVal(NUM, None, neg_lo, neg_hi)
                return TOP_P if src.kind in (PTR, TOP) else BOT_P
            rng = _UNARY_RANGES.get(instr.opcode)
            if rng is not None:
                return PVal(NUM, None, rng[0], rng[1])
            return NUM_TOP_P
        if isinstance(instr, ICmp):
            return PVal(NUM, None, 0, 1)
        if isinstance(instr, Load):
            slot = self._slot_of(self.val(instr.addr))
            if slot is not None and slot not in self.clobbered_slots \
                    and instr.size == 4:
                return PVal.ptr(("sarg", slot), 0, 0)
            return NUM_TOP_P
        if isinstance(instr, CallExt):
            return NUM_TOP_P
        if instr.has_result:
            return NUM_TOP_P
        return BOT_P

    def run(self) -> dict[Value, PVal]:
        for _round in range(16):
            changed = False
            for block in self.func.blocks:
                at_header = block in self.headers
                for instr in block.instrs:
                    if isinstance(instr, Store):
                        slot = self._slot_of(self.val(instr.addr))
                        if slot is not None \
                                and slot not in self.clobbered_slots:
                            self.clobbered_slots.add(slot)
                            changed = True
                        continue
                    new = self._transfer(instr)
                    old = self.values.get(instr, BOT_P)
                    if at_header and isinstance(instr, Phi):
                        new = pwiden(old, new)
                    else:
                        new = pjoin(old, new)
                    if new != old:
                        self.values[instr] = new
                        changed = True
            if not changed:
                return self.values
        for block in self.func.blocks:
            for instr in block.instrs:
                if instr.has_result:
                    new = self._transfer(instr)
                    old = self.values.get(instr, BOT_P)
                    if pjoin(old, new) != old:
                        self.values[instr] = TOP_P
        return self.values


# -- local summaries ---------------------------------------------------------


@dataclass(frozen=True)
class RAccess:
    """One access through a pointer region, region-relative.

    ``hi`` is ``None`` for derived accesses (interval unbounded above);
    ``lo`` falls back to the lowest witnessed offset (0 for a fresh
    argument pointer).
    """

    lo: int
    hi: int | None
    width: int
    kind: str                 # "load" | "store"
    exact: bool = False

    def shifted(self, delta: int) -> "RAccess":
        return RAccess(self.lo + delta,
                       None if self.hi is None else self.hi + delta,
                       self.width, self.kind, self.exact)


@dataclass(frozen=True)
class SlotValue:
    """Joined evidence about the value stored into one exact frame
    slot: its abstract value plus whether any store put a
    global-address constant there (pointer-ness evidence the interval
    domain alone cannot carry)."""

    pval: PVal
    global_addr: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pval.kind == PTR or self.global_addr


@dataclass
class CallSite:
    """One internal call (direct or indirect) as summary input."""

    callees: tuple[str, ...]          # direct: the lifted name
    sp_off: int | None                # exact sp0 offset of args[0]
    reg_args: dict = field(default_factory=dict)   # reg index -> PVal
    indirect: bool = False
    target_interval: tuple | None = None   # indirect: (lo, hi) or None


@dataclass
class ExternSite:
    """One external call with its argument-area evidence."""

    name: str
    base: int | None                  # sp0 offset of argument slot 0
    stack_switched: bool
    declared_args: int | None         # len(args) of the explicit form


@dataclass
class LocalSummary:
    """Pure per-function facts, safe to memoize per mutation epoch."""

    func_name: str
    #: region tag -> region-relative accesses through that region.
    accesses: dict = field(default_factory=dict)
    #: exact sp0 offset -> joined :class:`SlotValue` of stored values.
    slot_values: dict = field(default_factory=dict)
    calls: list = field(default_factory=list)
    externs: list = field(default_factory=list)
    #: non-sp regions whose pointer is stored to memory (escapes to an
    #: unknown consumer) — propagation must widen these to "anything".
    stored_regions: set = field(default_factory=set)
    #: result index -> (region, exact offset) for returned pointers.
    returned: dict = field(default_factory=dict)

    @property
    def ptr_params(self) -> set:
        """Regions this function dereferences — its derived-stack-
        pointer parameters in ABI terms."""
        return {r for r, accs in self.accesses.items()
                if r != SP_REGION and accs}


def local_summary(func: Function) -> LocalSummary:
    """One function's :class:`LocalSummary`, memoized per mutation
    epoch in the versioned CFG-analysis cache."""
    computed = []

    def build(f: Function) -> LocalSummary:
        computed.append(True)
        return _build_local_summary(f)

    out = cached_analysis(func, "interproc.local", build)
    if computed:
        obs.count("sanalysis.summary.computed")
        obs.event("sanalysis.summary", func=func.name,
                  regions=len(out.accesses), calls=len(out.calls),
                  externs=len(out.externs))
    else:
        obs.count("sanalysis.summary.reused")
    return out


def _build_local_summary(func: Function) -> LocalSummary:
    out = LocalSummary(func.name)
    if not _sp0fold().is_lifted_function(func):
        return out
    interp = _PInterpreter(func)
    values = interp.run()

    def val(v: Value) -> PVal:
        if isinstance(v, Const):
            return PVal.const(v.signed)
        if func.params:
            if v is func.params[0]:
                return PVal.ptr(SP_REGION, 0, 0)
            for i, p in enumerate(func.params[1:], start=1):
                if v is p:
                    return PVal.ptr(("reg", i), 0, 0)
        return values.get(v, BOT_P)

    def record_access(fact: PVal, width: int, kind: str) -> None:
        if fact.kind != PTR:
            return
        lo = fact.lo if fact.lo is not None else 0
        if fact.hi is None:
            acc = RAccess(lo, None, width, kind)
        else:
            acc = RAccess(lo, fact.hi + width, width, kind,
                          exact=fact.is_exact)
        out.accesses.setdefault(fact.region, [])
        if acc not in out.accesses[fact.region]:
            out.accesses[fact.region].append(acc)

    def record_slot(off: int, value: Value) -> None:
        pv = val(value)
        glob = isinstance(value, GlobalRef)
        prev = out.slot_values.get(off)
        if prev is None:
            out.slot_values[off] = SlotValue(pv, glob)
        else:
            out.slot_values[off] = SlotValue(
                pjoin(prev.pval, pv), prev.global_addr or glob)

    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Load):
                record_access(val(instr.addr), instr.size, "load")
            elif isinstance(instr, Store):
                fact = val(instr.addr)
                record_access(fact, instr.size, "store")
                vfact = val(instr.value)
                if fact.kind == PTR and fact.region == SP_REGION \
                        and fact.is_exact:
                    record_slot(fact.lo, instr.value)
                elif vfact.kind == PTR and vfact.region != SP_REGION:
                    # A region pointer stored through an address we
                    # cannot pin: it escapes to an unknown consumer.
                    out.stored_regions.add(vfact.region)
            elif isinstance(instr, Call):
                sp_fact = val(instr.args[0]) if instr.args else BOT_P
                site = CallSite(
                    callees=(instr.callee.name,),
                    sp_off=sp_fact.lo if sp_fact.kind == PTR
                    and sp_fact.region == SP_REGION
                    and sp_fact.is_exact else None,
                    reg_args={i: val(a) for i, a in
                              enumerate(instr.args[1:], start=1)})
                out.calls.append(site)
            elif isinstance(instr, CallInd):
                tfact = val(instr.target)
                sp_fact = val(instr.args[0]) if instr.args else BOT_P
                site = CallSite(
                    callees=(),
                    sp_off=sp_fact.lo if sp_fact.kind == PTR
                    and sp_fact.region == SP_REGION
                    and sp_fact.is_exact else None,
                    reg_args={i: val(a) for i, a in
                              enumerate(instr.args[1:], start=1)},
                    indirect=True,
                    target_interval=(tfact.lo, tfact.hi)
                    if tfact.kind == NUM and tfact.bounded else None)
                out.calls.append(site)
            elif isinstance(instr, CallExt):
                if instr.stack_args:
                    sp_fact = val(instr.sp)
                    base = sp_fact.lo if sp_fact.kind == PTR \
                        and sp_fact.region == SP_REGION \
                        and sp_fact.is_exact else None
                    out.externs.append(ExternSite(
                        instr.ext_name, base, True, None))
                else:
                    # Explicit-args form: recover the argument area
                    # from args that are still loads of exact slots.
                    base = None
                    for i, arg in enumerate(instr.args):
                        if not isinstance(arg, Load):
                            continue
                        afact = val(arg.addr)
                        if afact.kind == PTR \
                                and afact.region == SP_REGION \
                                and afact.is_exact:
                            base = afact.lo - 4 * i
                            break
                    out.externs.append(ExternSite(
                        instr.ext_name, base, False, len(instr.args)))
            elif isinstance(instr, Ret):
                for i, op in enumerate(instr.ops):
                    fact = val(op)
                    if fact.kind == PTR and fact.region != SP_REGION \
                            and fact.is_exact:
                        out.returned[i] = (fact.region, fact.lo)
    return out


# -- call graph + SCC condensation -------------------------------------------


def _indirect_candidates(module: Module,
                         interval: tuple | None) -> tuple[str, ...]:
    """Lifted functions an indirect call may reach, bounded by the
    target interval against the address table (unbounded: all)."""
    names = []
    for addr in sorted(module.address_table):
        if interval is not None:
            lo, hi = interval
            if not (lo <= addr <= hi):
                continue
        name = module.address_table[addr]
        if name in module.functions:
            names.append(name)
    return tuple(names)


def build_call_graph(module: Module,
                     locals_: dict[str, LocalSummary]) -> dict[str, tuple]:
    """``caller -> candidate callees`` over the lifted module."""
    graph: dict[str, tuple] = {}
    for name, summary in locals_.items():
        edges: list[str] = []
        for site in summary.calls:
            if site.indirect:
                edges.extend(_indirect_candidates(
                    module, site.target_interval))
            else:
                edges.extend(c for c in site.callees
                             if c in module.functions)
        graph[name] = tuple(dict.fromkeys(edges))
    return graph


def strongly_connected(graph: dict[str, tuple]) -> list[list[str]]:
    """Tarjan SCCs in reverse-topological order (callees before
    callers), iterative to keep deep call chains off the Python
    recursion limit."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(graph.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


# -- bottom-up summary propagation -------------------------------------------

#: Cap on footprint entries per region and on SCC fixpoint rounds;
#: recursion that keeps shifting offsets is widened past these.
_FOOTPRINT_CAP = 64
_SCC_ROUNDS = 8


@dataclass
class FunctionSummary:
    """A function's local facts plus its *effective* footprints:
    region tag -> ``{RAccess: chain}`` where the chain names the call
    path (starting at this function itself) that contributed a
    translated access.  Keying on the access keeps recursive SCCs from
    accumulating one entry per unrolled chain length — the first
    (shortest) chain for an access wins."""

    name: str
    local: LocalSummary
    footprints: dict = field(default_factory=dict)

    def footprint(self, region) -> dict:
        return self.footprints.get(region, {})


def _slot_value(summary: LocalSummary, site: CallSite,
                slot: int) -> SlotValue | None:
    """What the caller put into callee stack-arg slot ``slot`` at this
    site: the store at ``sp_off + 4 + 4*slot`` (args[0] is ``esp1``,
    the callee's sp0; slot 0 sits above the pushed return address)."""
    if site.sp_off is None:
        return None
    return summary.slot_values.get(site.sp_off + 4 + 4 * slot)


def _arg_pval(summary: LocalSummary, site: CallSite, region) -> PVal | None:
    """The abstract value the caller passed for a callee region."""
    if isinstance(region, tuple) and region[0] == "sarg":
        sv = _slot_value(summary, site, region[1])
        return sv.pval if sv is not None else None
    if isinstance(region, tuple) and region[0] == "reg":
        return site.reg_args.get(region[1])
    return None


def _propagate_one(fs: FunctionSummary,
                   summaries: dict[str, "FunctionSummary"]) -> bool:
    """Fold callee footprints into ``fs`` (one round); True if grown."""
    changed = False
    for site in fs.local.calls:
        for callee in site.callees:
            callee_fs = summaries.get(callee)
            if callee_fs is None:
                continue
            for c_region, entries in callee_fs.footprints.items():
                if c_region == SP_REGION:
                    continue   # the sp threading is ABI linkage, not
                               # an escaped variable address
                passed = _arg_pval(fs.local, site, c_region)
                if passed is None or passed.kind != PTR:
                    continue
                region, delta = passed.region, passed.lo
                if region == SP_REGION:
                    continue   # checked at the caller, not propagated
                bucket = fs.footprints.setdefault(region, {})
                for acc, chain in list(entries.items()):
                    if fs.name in chain:
                        # Recursion: widen instead of re-shifting
                        # forever, and keep the chain as-is so the
                        # cycle is not unrolled into ever-longer paths.
                        t = RAccess(min(acc.lo, 0), None, acc.width,
                                    acc.kind)
                        new_chain = chain
                    elif delta is not None and passed.is_exact:
                        t = acc.shifted(delta)
                        new_chain = (fs.name, *chain)
                    else:
                        t = RAccess(acc.lo, None, acc.width, acc.kind)
                        new_chain = (fs.name, *chain)
                    if t not in bucket \
                            and len(bucket) < _FOOTPRINT_CAP:
                        bucket[t] = new_chain
                        changed = True
    return changed


def summarize_module(module: Module) -> dict[str, FunctionSummary]:
    """Bottom-up function summaries over SCCs to fixpoint.

    Local summaries come from the versioned analysis cache (one
    interpretation per mutation epoch); the propagation itself is
    cheap list-folding and recomputes per call.
    """
    lifted = _sp0fold().is_lifted_function
    locals_: dict[str, LocalSummary] = {}
    with obs.span("sanalysis.summaries"):
        for func in module.functions.values():
            if lifted(func):
                locals_[func.name] = local_summary(func)
    graph = build_call_graph(module, locals_)
    summaries: dict[str, FunctionSummary] = {}
    for scc in strongly_connected(graph):
        for name in scc:
            fs = FunctionSummary(name, locals_[name])
            fs.footprints = {
                region: {acc: (name,) for acc in accs}
                for region, accs in locals_[name].accesses.items()}
            summaries[name] = fs
        for _round in range(_SCC_ROUNDS):
            changed = False
            for name in scc:
                if _propagate_one(summaries[name], summaries):
                    changed = True
            if not changed:
                break
    return summaries


# -- the escaped-split check -------------------------------------------------


def _clamped(lo: int, hi: int | None, clamps: list[int]) -> int | None:
    """Concrete upper bound for a translated access: derived extents
    stop at the next independently-evidenced frame offset."""
    if hi is not None:
        return min(hi, 0) if hi > 0 and lo < 0 else hi
    for bound in clamps:
        if bound > lo:
            return bound
    return None


def check_escapes(func_name: str,
                  summary: FunctionSummary,
                  summaries: dict[str, FunctionSummary],
                  layout,
                  access_set: FrameAccessSet,
                  ) -> tuple[list[Finding], list[WideningSuggestion],
                             list[tuple]]:
    """Diff translated callee footprints against the caller's dynamic
    layout.  Returns findings, widening suggestions, and the escaped
    regions ``(start, end, chain)`` for the sanitizer cross-check."""
    findings: list[Finding] = []
    suggestions: list[WideningSuggestion] = []
    escapes: list[tuple] = []
    variables = sorted(layout.variables, key=lambda v: v.start)
    clamps = _clamp_set(access_set, layout)
    seen = set()

    for site in summary.local.calls:
        for callee in site.callees:
            callee_fs = summaries.get(callee)
            if callee_fs is None:
                continue
            for c_region, entries in callee_fs.footprints.items():
                if c_region == SP_REGION:
                    continue
                passed = _arg_pval(summary.local, site, c_region)
                if passed is None or passed.kind != PTR \
                        or passed.region != SP_REGION \
                        or not passed.is_exact:
                    continue
                # Union the translated footprint first: a callee that
                # touches p[0], p[1], ... p[7] with aligned exact
                # accesses never straddles a variable boundary with any
                # *single* access, but the union of its reach does.
                base = passed.lo
                ext_lo = ext_hi = None
                best_chain = None
                derived = False
                kinds: set[str] = set()
                for acc, chain in entries.items():
                    t_lo = base + acc.lo
                    t_hi = None if acc.hi is None else base + acc.hi
                    if t_lo >= 0:
                        continue      # argument/return-address side
                    hi = _clamped(t_lo, t_hi, clamps)
                    if hi is None or hi <= t_lo:
                        continue
                    obs.count("sanalysis.escape.checked")
                    kinds.add(acc.kind)
                    if ext_lo is None or t_lo < ext_lo:
                        ext_lo = t_lo
                    if ext_hi is None or hi > ext_hi:
                        ext_hi = hi
                        best_chain = chain
                        derived = acc.hi is None
                if ext_lo is None:
                    continue
                chain_full = (func_name, *best_chain)
                escapes.append((ext_lo, ext_hi, chain_full))
                overlapping = [v for v in variables
                               if v.start < ext_hi and ext_lo < v.end]
                if any(v.start <= ext_lo and ext_hi <= v.end
                       for v in overlapping):
                    continue          # contained: corroborated
                if not overlapping:
                    continue          # fully untraced region: the
                                      # caller-side gap pass owns it
                key = (ext_lo, ext_hi, chain_full)
                if key in seen:
                    continue
                seen.add(key)
                v = overlapping[0]
                kind = next(iter(kinds)) if len(kinds) == 1 \
                    else "access"
                arrow = " -> ".join(chain_full)
                findings.append(Finding(
                    "error", ESCAPED_SPLIT, func_name,
                    f"&frame[{base}] escapes via {arrow}; the "
                    f"callee may {kind} [{ext_lo}, {ext_hi}) but the "
                    f"dynamic layout bounds the variable at "
                    f"[{v.start}, {v.end})",
                    offset=ext_lo, width=ext_hi - ext_lo,
                    provenance={"pass": "interproc",
                                "chain": list(chain_full),
                                "region": [ext_lo, ext_hi],
                                "variable": [v.start, v.end],
                                "derived": derived}))
                obs.count("sanalysis.escape.findings")
                obs.event("sanalysis.escape", func=func_name,
                          chain=list(chain_full),
                          region=[ext_lo, ext_hi],
                          variable=[v.start, v.end])
                s_start = min([ext_lo] + [ov.start
                                          for ov in overlapping])
                s_end = max([ext_hi] + [ov.end for ov in overlapping])
                suggestion = WideningSuggestion(
                    func_name, s_start, s_end,
                    reason=f"escaped pointer footprint via {arrow}")
                if suggestion not in suggestions:
                    suggestions.append(suggestion)
    return findings, suggestions, escapes


# -- extern-signature recovery -----------------------------------------------


@dataclass
class InferredExtSig:
    """Call-site evidence for one external function, module-wide."""

    name: str
    #: Per-site contiguous argument-slot evidence counts.
    site_counts: list = field(default_factory=list)
    #: Slot indices whose stored value is statically a pointer.
    ptr_args: set = field(default_factory=set)
    #: Slot indices whose stored value is statically a plain number.
    int_args: set = field(default_factory=set)
    sites: int = 0

    @property
    def nargs(self) -> int:
        return min(self.site_counts) if self.site_counts else 0

    @property
    def vararg(self) -> bool:
        return len(set(self.site_counts)) > 1

    def to_candidate(self) -> dict:
        return {"name": self.name, "nargs": self.nargs,
                "vararg": self.vararg,
                "ptr_args": sorted(self.ptr_args),
                "sites": self.sites}


def _global_ranges(module: Module) -> list[tuple[int, int]]:
    ranges = []
    for g in module.globals.values():
        if g.fixed_addr is not None:
            ranges.append((g.fixed_addr, g.fixed_addr + g.size))
    return sorted(ranges)


def _slot_is_pointer(sv: SlotValue,
                     ranges: list[tuple[int, int]]) -> bool | None:
    """True/False when the evidence is conclusive, None when not."""
    if sv.is_pointer:
        return True
    pv = sv.pval
    if pv.kind == NUM and pv.is_exact:
        return any(lo <= pv.lo < hi for lo, hi in ranges)
    return None


def recover_extern_sigs(module: Module,
                        summaries: dict[str, FunctionSummary],
                        ) -> tuple[list[Finding],
                                   dict[str, InferredExtSig]]:
    """EFACT-style signature recovery from call-site evidence.

    The argument area of an external call is witnessed by the stores
    the caller issued into it: contiguous stored slots starting at the
    argument base bound the arity from below, and the stored values'
    abstract kinds witness pointer-ness.  Modeled functions are
    cross-checked against :data:`~repro.core.extfuncs.EXTERNAL_DB`
    (fewer witnessed slots than the model requires, or a conclusive
    non-pointer in a modeled pointer position, is an
    ``extern-divergence`` error); unknown names become ``ExtSig``
    candidates.
    """
    db = _external_db()
    ranges = _global_ranges(module)
    findings: list[Finding] = []
    inferred: dict[str, InferredExtSig] = {}
    seen_div = set()

    for fs in summaries.values():
        summary = fs.local
        for site in summary.externs:
            obs.count("sanalysis.extern.sites")
            sig = inferred.setdefault(site.name,
                                      InferredExtSig(site.name))
            sig.sites += 1
            if site.base is None:
                continue
            count = 0
            while (site.base + 4 * count) in summary.slot_values:
                sv = summary.slot_values[site.base + 4 * count]
                is_ptr = _slot_is_pointer(sv, ranges)
                if is_ptr is True:
                    sig.ptr_args.add(count)
                elif is_ptr is False:
                    sig.int_args.add(count)
                count += 1
            sig.site_counts.append(count)
            model = db.get(site.name)
            if model is None:
                continue
            # -- cross-check against the modeled ground truth --------
            if count < model.nargs:
                key = (site.name, summary.func_name, site.base)
                if key not in seen_div:
                    seen_div.add(key)
                    findings.append(Finding(
                        "error", EXTERN_DIVERGENCE, summary.func_name,
                        f"call to {site.name} witnesses {count} "
                        f"argument slot(s) at sp0{site.base:+d} but "
                        f"the external database models "
                        f"{model.nargs}",
                        offset=site.base, width=4 * model.nargs,
                        provenance={"pass": "interproc",
                                    "extern": site.name,
                                    "witnessed": count,
                                    "modeled": model.nargs}))
                continue
            for constraint in model.constraints:
                for pos in constraint.args:
                    if pos < 0 or pos >= model.nargs:
                        continue
                    sv = summary.slot_values.get(site.base + 4 * pos)
                    if sv is None:
                        continue
                    if _slot_is_pointer(sv, ranges) is False:
                        key = (site.name, summary.func_name,
                               site.base, pos)
                        if key in seen_div:
                            continue
                        seen_div.add(key)
                        findings.append(Finding(
                            "error", EXTERN_DIVERGENCE,
                            summary.func_name,
                            f"call to {site.name} passes a plain "
                            f"number in argument {pos}, which the "
                            f"external database models as a pointer "
                            f"({constraint.kind})",
                            offset=site.base + 4 * pos, width=4,
                            provenance={"pass": "interproc",
                                        "extern": site.name,
                                        "arg": pos,
                                        "constraint": constraint.kind}))

    for name, sig in sorted(inferred.items()):
        if name in db or not sig.site_counts:
            continue
        obs.count("sanalysis.extern.candidates")
        obs.event("sanalysis.extern", extern=name,
                  nargs=sig.nargs, vararg=sig.vararg,
                  ptr_args=sorted(sig.ptr_args), sites=sig.sites)
        findings.append(Finding(
            "info", EXTERN_CANDIDATE, "<module>",
            f"unmodeled external {name}: inferred "
            f"{sig.nargs} argument(s)"
            f"{' (vararg)' if sig.vararg else ''}, pointer args "
            f"{sorted(sig.ptr_args)} from {sig.sites} call site(s)",
            provenance={"pass": "interproc",
                        "candidate": sig.to_candidate()}))
    return findings, inferred


# -- driver entry point ------------------------------------------------------


def interproc_corroborate(module: Module,
                          layouts: dict,
                          accesses: dict[str, FrameAccessSet],
                          ) -> tuple[list[Finding],
                                     list[WideningSuggestion]]:
    """The whole interprocedural pass: summaries, escaped-split
    corroboration against the dynamic layouts, and extern-signature
    recovery.  Stashes each function's escaped regions in
    ``func.meta["interproc_escapes"]`` for the sanitizer's alias
    cross-check."""
    summaries = summarize_module(module)
    findings: list[Finding] = []
    suggestions: list[WideningSuggestion] = []
    for name in sorted(summaries):
        layout = layouts.get(name)
        access_set = accesses.get(name)
        if layout is None or access_set is None:
            continue
        fs, ss, escapes = check_escapes(
            name, summaries[name], summaries, layout, access_set)
        findings.extend(fs)
        suggestions.extend(ss)
        func = module.functions.get(name)
        if func is not None and escapes:
            func.meta["interproc_escapes"] = [
                [lo, hi, list(chain)] for lo, hi, chain in escapes]
    efindings, _inferred = recover_extern_sigs(module, summaries)
    findings.extend(efindings)
    return findings, suggestions
