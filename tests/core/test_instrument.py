"""Instrumentation pass structure: probes inserted, strippable."""

from repro.core.instrument import instrument_module, strip_probes
from repro.core.sp0fold import fold_module_stack_refs
from repro.core.regsave import apply_register_classification, \
    classify_registers
from repro.core.varargs import recover_vararg_calls
from repro.core.driver import _canonicalize
from repro.emu import run_binary, trace_binary
from repro.ir import Interpreter, run_module, verify_module
from repro.ir.values import Intrinsic
from repro.lifting import lift_traces
from tests.conftest import KERNEL_SOURCE, cached_image


def prepared_module():
    image = cached_image(KERNEL_SOURCE)
    traces = trace_binary(image.stripped(), [[]])
    module = lift_traces(traces)
    recover_vararg_calls(module, traces.inputs)
    apply_register_classification(
        module, classify_registers(module, traces.inputs))
    _canonicalize(module)
    fold_module_stack_refs(module)
    return image, traces, module


def probes(module):
    return [i for f in module.functions.values()
            for i in f.instructions()
            if isinstance(i, Intrinsic) and i.intrinsic.startswith("wyt.")]


def test_probe_kinds_present():
    image, traces, module = prepared_module()
    mi = instrument_module(module)
    kinds = {p.intrinsic for p in probes(module)}
    for expected in ("wyt.fnenter", "wyt.fnexit", "wyt.stackref",
                     "wyt.load", "wyt.store", "wyt.callargs",
                     "wyt.callres", "wyt.extcall"):
        assert expected in kinds, expected
    assert mi.functions


def test_probes_do_not_change_behaviour():
    image, traces, module = prepared_module()
    baseline = run_binary(image)
    instrument_module(module)
    verify_module(module)
    seen = []
    result = Interpreter(
        module, [], intrinsic_handler=lambda f, i, a: seen.append(1)
    ).run()
    assert result.stdout == baseline.stdout
    assert seen  # probes actually fired


def test_strip_restores_module():
    image, traces, module = prepared_module()
    before = run_module(module).stdout
    instrument_module(module)
    removed = strip_probes(module)
    assert removed > 0
    assert not probes(module)
    verify_module(module)
    assert run_module(module).stdout == before


def test_ref_ids_unique_across_functions():
    image, traces, module = prepared_module()
    mi = instrument_module(module)
    all_ids = [rid for fi in mi.functions.values() for rid in fi.refs]
    assert len(all_ids) == len(set(all_ids))


def test_callsites_registered():
    image, traces, module = prepared_module()
    mi = instrument_module(module)
    from repro.ir.values import Call
    ncalls = sum(1 for f in module.functions.values()
                 for i in f.instructions()
                 if isinstance(i, Call)
                 and i.callee.name in mi.functions)
    nsites = sum(len(fi.callsites) for fi in mi.functions.values())
    assert nsites >= 1
    assert nsites <= ncalls + 1
