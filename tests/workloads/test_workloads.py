"""Workload suite: every benchmark compiles, runs, and behaves
deterministically across personalities."""

import pytest

from repro.emu import run_binary
from repro.workloads import WORKLOAD_ORDER, WORKLOADS

BUDGET = 6_000_000


def outputs(image, workload):
    return [run_binary(image, items, max_instructions=BUDGET)
            for items in workload.inputs()]


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_runs_and_produces_output(name):
    workload = WORKLOADS[name]
    results = outputs(workload.compile("gcc12", "3"), workload)
    assert all(r.stdout for r in results)


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_output_stable_across_personalities(name):
    workload = WORKLOADS[name]
    reference = outputs(workload.compile("gcc12", "3"), workload)
    for comp, lvl in (("gcc12", "0"), ("gcc44", "3"), ("clang16", "3")):
        other = outputs(workload.compile(comp, lvl), workload)
        for a, b in zip(reference, other, strict=True):
            assert a.stdout == b.stdout, (name, comp, lvl)
            assert a.exit_code == b.exit_code


def test_suite_has_paper_benchmarks():
    assert set(WORKLOAD_ORDER) == {
        "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
        "libquantum", "h264ref", "astar", "xalancbmk"}


def test_descriptions_present():
    for workload in WORKLOADS.values():
        assert workload.description


def test_runs_are_deterministic():
    workload = WORKLOADS["mcf"]
    image = workload.compile("gcc12", "3")
    a = outputs(image, workload)
    b = outputs(image, workload)
    assert [r.stdout for r in a] == [r.stdout for r in b]
    assert [r.cycles for r in a] == [r.cycles for r in b]


def test_ground_truth_shipped_with_every_binary():
    for name in ("gcc", "astar"):
        image = WORKLOADS[name].compile("gcc12", "3")
        assert image.ground_truth
        assert any(o.kind == "var" for g in image.ground_truth
                   for o in g.objects)
