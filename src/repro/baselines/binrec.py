"""The BinRec baseline: lift, optimize, recompile — no symbolization.

This is Table 1's "no symbolize" configuration: the recompiled program
still runs its original stack inside the emulated-stack byte array, which
is exactly what limits the optimizer (paper §2.1).
"""

from __future__ import annotations

from .. import obs
from ..binary.image import BinaryImage
from ..emu.tracer import TraceSet, trace_binary
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..lifting.translator import lift_traces
from ..opt.pipeline import OptOptions, optimize_module
from ..recompile.link import recompile_ir
from ..recompile.lower import LowerOptions


def binrec_lift(traces: TraceSet, optimize: bool = True) -> Module:
    """Lift merged traces and run the standard optimization pipeline."""
    from ..core.driver import module_stats
    observing = obs.enabled()
    with obs.span("stage.lift", pipeline="binrec") as sp:
        module = lift_traces(traces)
        verify_module(module)
        if observing:
            sp.set(ir_before={"functions": 0, "blocks": 0, "instrs": 0},
                   ir_after=module_stats(module), verified=True)
    with obs.span("stage.optimize", pipeline="binrec",
                  enabled=optimize) as sp:
        before = module_stats(module) if observing else None
        if optimize:
            optimize_module(module,
                            OptOptions(level=2, inline=True,
                                       inline_threshold=30, rounds=2))
            verify_module(module)
        if before is not None:
            sp.set(ir_before=before, ir_after=module_stats(module),
                   verified=optimize)
    module.metadata["pipeline"] = "binrec"
    return module


def binrec_recompile(image: BinaryImage,
                     inputs: list[list[int | bytes]],
                     optimize: bool = True,
                     traces: TraceSet | None = None) -> BinaryImage:
    """End-to-end BinRec: trace, lift, optimize, lower, link.

    Pass ``traces`` (a TraceSet of ``image`` over ``inputs``) to reuse
    an existing or cached trace instead of re-executing the binary.
    """
    with obs.span("pipeline.binrec"):
        with obs.span("stage.trace", pipeline="binrec",
                      cached=traces is not None):
            if traces is None:
                traces = trace_binary(image, inputs)
        module = binrec_lift(traces, optimize)
        with obs.span("stage.recompile", pipeline="binrec"):
            recovered = recompile_ir(
                module, LowerOptions(frame_pointer=False),
                metadata={**image.metadata, "pipeline": "binrec"})
    return recovered
