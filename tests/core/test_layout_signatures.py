"""Frame layout coalescing and signature recovery (paper §4.2)."""

from repro.core.instrument import (
    FunctionInstrumentation,
    ModuleInstrumentation,
)
from repro.core.layout import build_frame_layout
from repro.core.runtime import ArgAccess, StackVar, TracingRuntime
from repro.core.signatures import build_signatures
from repro.ir import Function, Module
from repro.ir.values import Call, CallInd, Const, FuncRef


def runtime_with(vars_spec, links=()):
    """vars_spec: {ref_id: (offset, low, high)} with low None = undefined."""
    rt = TracingRuntime()
    refs = {}
    for rid, (off, low, high) in vars_spec.items():
        var = StackVar(rid, "f", off, low, high)
        rt.stack_vars[rid] = var
        refs[rid] = (None, off)
    rt.links |= {frozenset(pair) for pair in links}
    return rt, refs


def test_disjoint_intervals_stay_separate():
    rt, refs = runtime_with({
        0: (-8, 0, 4),
        1: (-16, 0, 4),
    })
    layout = build_frame_layout("f", refs, rt)
    assert [(v.start, v.end) for v in layout.variables] == \
        [(-16, -12), (-8, -4)]


def test_overlapping_intervals_merge():
    # Paper's example: [0;20] from ebp-44 subsumes [0;4] from ebp-36.
    rt, refs = runtime_with({
        0: (-44, 0, 20),
        1: (-36, 0, 4),
    })
    layout = build_frame_layout("f", refs, rt)
    assert len(layout.variables) == 1
    var = layout.variables[0]
    assert (var.start, var.end) == (-44, -24)
    assert layout.ref_to_var[0] is var and layout.ref_to_var[1] is var


def test_adjacent_intervals_do_not_merge():
    rt, refs = runtime_with({
        0: (-16, 0, 8),
        1: (-8, 0, 8),
    })
    layout = build_frame_layout("f", refs, rt)
    assert len(layout.variables) == 2


def test_never_observed_split_matches_paper():
    # If f3 returns 0 in every trace, the array splits in two (paper
    # §4.2): two non-overlapping intervals stay distinct symbols.
    rt, refs = runtime_with({
        0: (-44, 0, 8),     # b[0..1] observed
        1: (-36, 0, 4),     # b[2] via the second ref only
    })
    layout = build_frame_layout("f", refs, rt)
    assert len(layout.variables) == 2


def test_linked_defined_vars_merge():
    rt, refs = runtime_with({
        0: (-44, 0, 8),
        1: (-36, 0, 4),
    }, links=[(0, 1)])
    layout = build_frame_layout("f", refs, rt)
    assert len(layout.variables) == 1
    assert layout.variables[0].start == -44
    assert layout.variables[0].end == -32


def test_linked_undefined_attaches_without_extending():
    # End pointer (Figure 3): never dereferenced, linked via comparison.
    rt, refs = runtime_with({
        0: (-44, 0, 24),
        1: (-20, None, None),
    }, links=[(0, 1)])
    layout = build_frame_layout("f", refs, rt)
    assert len(layout.variables) == 1
    var = layout.variables[0]
    assert (var.start, var.end) == (-44, -20)
    assert layout.ref_to_var[1] is var


def test_unlinked_undefined_positional_attachment():
    rt, refs = runtime_with({
        0: (-44, 0, 24),
        1: (-28, None, None),   # inside [−44, −20)
        2: (-100, None, None),  # nowhere: speculative singleton
    })
    layout = build_frame_layout("f", refs, rt)
    assert layout.ref_to_var[1] is layout.ref_to_var[0]
    lonely = layout.ref_to_var[2]
    assert (lonely.start, lonely.end) == (-100, -96)


def test_positive_offsets_excluded_from_frame():
    rt, refs = runtime_with({
        0: (-8, 0, 4),
        1: (8, 0, 4),   # argument area: not a frame variable
    })
    layout = build_frame_layout("f", refs, rt)
    assert 1 not in layout.ref_to_var
    assert len(layout.variables) == 1


def _module_with_calls():
    m = Module()
    for name in ("a", "b", "t1", "t2"):
        f = Function(name, ["sp"])
        f.orig_entry = 0x1000
        m.add_function(f)
    return m


def test_super_signature_union_and_gap_filling():
    m = _module_with_calls()
    mi = ModuleInstrumentation()
    fa = FunctionInstrumentation(m.functions["a"])
    call1 = Call(FuncRef("t1"), [Const(0)])
    call1.block = None
    call2 = Call(FuncRef("t1"), [Const(0)])
    fa.callsites = {0: call1, 1: call2}
    mi.functions["a"] = fa
    rt = TracingRuntime()
    # Site 0 touched slots 0..1 (8 bytes); site 1 touched slot 2 only.
    rt.arg_accesses[0] = ArgAccess(0, 0, 8, {"t1"})
    rt.arg_accesses[1] = ArgAccess(1, 8, 12, {"t1"})
    plan = build_signatures(rt, mi, m)
    assert plan.stack_args["t1"] == 3        # union, gaps filled
    assert plan.callsite_args[0] == 3
    assert plan.callsite_args[1] == 3


def test_indirect_targets_unified():
    m = _module_with_calls()
    mi = ModuleInstrumentation()
    fa = FunctionInstrumentation(m.functions["a"])
    ind = CallInd(Const(0x1000), [Const(0)])
    fa.callsites = {5: ind}
    mi.functions["a"] = fa
    mi.functions["t1"] = FunctionInstrumentation(m.functions["t1"])
    mi.functions["t2"] = FunctionInstrumentation(m.functions["t2"])
    rt = TracingRuntime()
    rt.arg_accesses[5] = ArgAccess(5, 0, 4, {"t1", "t2"})
    plan = build_signatures(rt, mi, m)
    # Both indirect targets agree on the unified argument count.
    assert plan.stack_args["t1"] == plan.stack_args["t2"] == 1
    assert plan.callsite_args[5] == 1
