"""IR optimizer (the LLVM pass-pipeline analogue)."""

from .alias import AliasAnalysis
from .analysis import (
    Dominators,
    analysis_cache_enabled,
    cached_analysis,
    dominators,
    postorder,
    predecessors,
    reachable,
    reachable_blocks,
    use_counts,
)
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .deadargelim import (
    eliminate_dead_params,
    eliminate_dead_results,
    shrink_signatures,
)
from .dse import eliminate_dead_stores
from .flagfuse import fuse_flags
from .gvn import eliminate_redundant_loads, global_value_numbering
from .inline import (
    inline_call,
    inline_functions,
    inline_functions_tracked,
    inline_would_change,
)
from .manager import (
    PassManager,
    canonicalize_module,
    clear_memo,
    close_opt_pool,
    drop_unused_private_functions,
    memo_enabled,
    memo_stats,
    opt_jobs_default,
    pass_baseline_enabled,
    run_worklist,
)
from .mem2reg import promotable_allocas, promote_allocas
from .pipeline import (
    OptOptions,
    optimize_function,
    optimize_module,
)
from .simplifycfg import remove_unreachable, simplify_cfg

__all__ = [
    "AliasAnalysis", "Dominators", "OptOptions", "PassManager",
    "analysis_cache_enabled", "cached_analysis", "canonicalize_module",
    "clear_memo", "close_opt_pool", "dominators",
    "drop_unused_private_functions", "eliminate_dead_code",
    "eliminate_dead_params", "eliminate_dead_results",
    "eliminate_dead_stores", "eliminate_redundant_loads",
    "fold_constants", "fuse_flags", "global_value_numbering", "inline_call",
    "inline_functions", "inline_functions_tracked", "inline_would_change",
    "memo_enabled", "memo_stats", "opt_jobs_default", "optimize_function",
    "optimize_module", "pass_baseline_enabled",
    "postorder", "predecessors", "promotable_allocas", "promote_allocas",
    "reachable", "reachable_blocks", "remove_unreachable",
    "run_worklist", "shrink_signatures", "simplify_cfg",
    "use_counts",
]
