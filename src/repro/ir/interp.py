"""IR interpreter: executes a module against the shared memory model.

This is the "Execute" box of the paper's Figure 4: every refinement runs
the *lifted IR itself* (instrumented with probes) on the traced inputs.
The interpreter therefore supports two extension points:

* an **intrinsic handler** — receives ``wyt.*`` probe calls inserted by
  :mod:`repro.core.instrument` (the analogue of linking BinRec's
  instrumentation runtime into the lifted program); and
* a **shadow plugin** — observes every executed instruction with its
  operand shadows, used by the register save/argument classification of
  refinement 1 (paper §4.1), where each register carries a symbolic value.

It is also used to validate lifted IR functionally before lowering.

Execution engine: by default each basic block is compiled, on first
entry, into a list of argument-specialized closures (one per
instruction), cached per interpreter instance and keyed on the owning
function's mutation ``version``.  This removes the per-step
``isinstance`` dispatch chain and per-operand re-classification of the
reference engine, which is kept (``compiled=False``, or environment
``REPRO_IR_COMPILED=0``) as the differential baseline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Protocol

from ..binary.image import STACK_TOP
from ..errors import InterpError
from .module import Function, Module
from .values import (
    Alloca,
    BinOp,
    Br,
    Call,
    CallExt,
    CallInd,
    CondBr,
    Const,
    FuncRef,
    GlobalRef,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Param,
    Phi,
    Ret,
    Result,
    Store,
    Switch,
    Unary,
    Unreachable,
    Value,
)
from ..emu.libc import ExitProgram, LibC, ListArgs, StackArgs
from ..emu.memory import make_memory
from ..obs import count as _obs_count, recorder as _obs_recorder

MASK32 = 0xFFFFFFFF

#: Where unpinned globals are placed by the interpreter and the lowerer.
GLOBAL_REGION_BASE = 0x0D000000

#: Pseudo-addresses assigned to address-taken functions with no original
#: binary entry (cc-compiled modules).
FUNC_ADDR_BASE = 0x0E000000


def _signed(v: int) -> int:
    v &= MASK32
    return v - 0x100000000 if v >= 0x80000000 else v


def _binop_fn(op: str, where):
    """Scalar function for a binop opcode (compiled-engine dispatch).

    Semantics mirror :meth:`Interpreter._binop` exactly; ``where`` names
    the owning instruction for division-error messages.
    """
    fn = _BINOP_FNS.get(op)
    if fn is not None:
        return fn
    name = where.block.function.name \
        if where.block is not None and where.block.function else "?"
    if op == "div":
        def div(a, b):
            sb = _signed(b)
            if sb == 0:
                raise InterpError(f"{name}: division by zero")
            return int(_signed(a) / sb) & MASK32
        return div
    if op == "rem":
        def rem(a, b):
            sb = _signed(b)
            if sb == 0:
                raise InterpError(f"{name}: remainder by zero")
            sa = _signed(a)
            return (sa - int(sa / sb) * sb) & MASK32
        return rem
    raise InterpError(f"bad binop {op}")


_BINOP_FNS = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "mul": lambda a, b: (_signed(a) * _signed(b)) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 31)) & MASK32,
    "shr": lambda a, b: (a & MASK32) >> (b & 31),
    "sar": lambda a, b: (_signed(a) >> (b & 31)) & MASK32,
}

_ICMP_FNS = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sle": lambda a, b: 1 if _signed(a) <= _signed(b) else 0,
    "sgt": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
    "sge": lambda a, b: 1 if _signed(a) >= _signed(b) else 0,
    "ult": lambda a, b: 1 if a < b else 0,
    "ule": lambda a, b: 1 if a <= b else 0,
    "ugt": lambda a, b: 1 if a > b else 0,
    "uge": lambda a, b: 1 if a >= b else 0,
}


def _icmp_fn(pred: str):
    fn = _ICMP_FNS.get(pred)
    if fn is None:
        raise InterpError(f"bad icmp predicate {pred}")
    return fn


_UNARY_FNS = {
    "neg": lambda a: (-a) & MASK32,
    "not": lambda a: (~a) & MASK32,
    "sext8": lambda a: ((a & 0xFF) | 0xFFFFFF00) if a & 0x80 else a & 0xFF,
    "sext16": lambda a: ((a & 0xFFFF) | 0xFFFF0000) if a & 0x8000
              else a & 0xFFFF,
    "zext8": lambda a: a & 0xFF,
    "zext16": lambda a: a & 0xFFFF,
    "trunc8": lambda a: a & 0xFF,
    "trunc16": lambda a: a & 0xFFFF,
}


def _unary_fn(op: str):
    fn = _UNARY_FNS.get(op)
    if fn is None:
        raise InterpError(f"bad unary op {op}")
    return fn


class ShadowPlugin(Protocol):
    """Observer interface for shadow-value analyses (refinement 1).

    ``call_enter`` may return replacement shadows for the parameters
    (e.g. fresh register symbols); ``call_exit`` may return translated
    shadows for the returned values, which the interpreter attaches to
    the call's results in the caller frame.
    """

    def call_enter(self, func: Function, frame_id: int, args: list[int],
                   arg_shadows: list) -> list | None: ...

    def call_exit(self, func: Function, frame_id: int,
                  ret_values: list[int],
                  ret_shadows: list) -> list | None: ...

    def on_instr(self, frame_id: int, instr: Instr,
                 operand_shadows: list, result: int | None): ...

    def on_store(self, frame_id: int, instr: Instr, addr: int,
                 value: int, value_shadow) -> None: ...

    def on_load(self, frame_id: int, instr: Instr, addr: int,
                value: int): ...

    def on_callext(self, frame_id: int, instr: Instr,
                   arg_values: list[int], arg_shadows: list) -> None: ...

    def on_indirect_call(self, callee: Function) -> None: ...


IntrinsicHandler = Callable[["Frame", Intrinsic, list[int]], None]


@dataclass
class InterpResult:
    exit_code: int
    stdout: bytes
    steps: int


class Frame:
    """One activation of an IR function."""

    __slots__ = ("function", "frame_id", "values", "shadows", "sp")

    def __init__(self, function: Function, frame_id: int, sp: int):
        self.function = function
        self.frame_id = frame_id
        self.values: dict[Value, object] = {}
        self.shadows: dict[Value, object] = {}
        self.sp = sp  # native stack cursor for allocas


class Interpreter:
    """Executes an IR module. One instance per run."""

    def __init__(self, module: Module,
                 input_items: list[int | bytes] | None = None,
                 intrinsic_handler: IntrinsicHandler | None = None,
                 shadow: ShadowPlugin | None = None,
                 callext_hook=None,
                 max_steps: int = 200_000_000,
                 compiled: bool | None = None):
        self.module = module
        if compiled is None:
            compiled = os.environ.get("REPRO_IR_COMPILED", "1") != "0"
        self.compiled = compiled
        #: Per-block compiled code: block -> (func version, #instrs,
        #: (steps, phi plan, body closures, terminator closure)).
        self._code: dict = {}
        #: Observability: per-function execution counts land in this
        #: plain dict (the shared profile's counts) when a recorder is
        #: active; None keeps the call path branchless beyond one check.
        rec = _obs_recorder()
        self._func_counts: dict | None = \
            rec.registry.profile("ir.func_calls").counts \
            if rec is not None else None
        self.mem = make_memory()
        self.libc = LibC(self.mem, list(input_items or []))
        self.intrinsic_handler = intrinsic_handler
        self.shadow = shadow
        #: Optional hook observing every external call:
        #: hook(frame, instr, sp_or_None, args_or_None).
        self.callext_hook = callext_hook
        self.max_steps = max_steps
        self.steps = 0
        self._next_frame_id = 1
        self._exit_code: int | None = None
        self.global_addrs: dict[str, int] = {}
        self.func_addrs: dict[str, int] = {}
        self._addr_to_func: dict[int, str] = {}
        self._layout_globals()
        self._assign_func_addrs()
        self._write_global_initializers()

    # -- layout -------------------------------------------------------------

    def _layout_globals(self) -> None:
        cursor = GLOBAL_REGION_BASE
        for g in self.module.globals.values():
            if g.fixed_addr is not None:
                addr = g.fixed_addr
            else:
                align = max(g.align, 1)
                cursor = (cursor + align - 1) & ~(align - 1)
                addr = cursor
                cursor += g.size
            self.global_addrs[g.name] = addr

    def _write_global_initializers(self) -> None:
        # Initializers may reference functions/globals symbolically, so
        # this runs after both address spaces are assigned.
        for g in self.module.globals.values():
            data = g.init_bytes(resolve=self._resolve_symbol, pad=False)
            if data:
                self.mem.write_bytes(self.global_addrs[g.name], data)

    def _assign_func_addrs(self) -> None:
        for addr, name in self.module.address_table.items():
            self.func_addrs[name] = addr
            self._addr_to_func[addr] = name
        cursor = FUNC_ADDR_BASE
        for func in self.module.functions.values():
            if func.name not in self.func_addrs:
                self.func_addrs[func.name] = cursor
                self._addr_to_func[cursor] = func.name
                cursor += 16

    def _resolve_symbol(self, sym) -> int:
        name = sym.name if isinstance(sym, (GlobalRef, FuncRef)) else str(sym)
        if name in self.global_addrs:
            return self.global_addrs[name]
        if name in self.func_addrs:
            return self.func_addrs[name]
        # Two-phase: function addresses are assigned after globals, so
        # compute lazily via the address table when needed.
        raise InterpError(f"unresolved symbol {name!r} in initializer")

    # -- entry --------------------------------------------------------------

    def run(self, args: list[int] | None = None) -> InterpResult:
        entry = self.module.entry_function
        call_args = list(args or [])
        if len(call_args) < len(entry.params):
            call_args += [0] * (len(entry.params) - len(call_args))
        try:
            rets = self.call_function(entry, call_args)
            code = rets[0] if rets else 0
        except ExitProgram as exc:
            code = exc.code
        finally:
            if self._func_counts is not None:
                _obs_count("ir.runs")
                _obs_count("ir.steps", self.steps)
        return InterpResult(code & MASK32, bytes(self.libc.stdout),
                            self.steps)

    # -- evaluation ---------------------------------------------------------

    def _eval(self, frame: Frame, v: Value) -> int:
        if isinstance(v, Const):
            return v.value
        if isinstance(v, Instr):
            try:
                return frame.values[v]  # type: ignore[return-value]
            except KeyError:
                raise InterpError(
                    f"{frame.function.name}: use of unevaluated "
                    f"{v!r}") from None
        if isinstance(v, Param):
            return frame.values[v]  # type: ignore[return-value]
        if isinstance(v, GlobalRef):
            return self.global_addrs[v.name]
        if isinstance(v, FuncRef):
            return self.func_addrs[v.name]
        raise InterpError(f"cannot evaluate {v!r}")

    def _shadow_of(self, frame: Frame, v: Value):
        if isinstance(v, (Instr, Param)):
            return frame.shadows.get(v)
        return None

    def call_function(self, func: Function,
                      args: list[int],
                      arg_shadows: list | None = None) -> list[int]:
        values, _shadows = self._call(func, args, arg_shadows,
                                      STACK_TOP)
        return values

    def _call(self, func: Function, args: list[int],
              arg_shadows: list | None, sp: int) -> tuple[list[int],
                                                          list]:
        if self.compiled:
            return self._call_compiled(func, args, arg_shadows, sp)
        return self._call_interp(func, args, arg_shadows, sp)

    def _call_interp(self, func: Function, args: list[int],
                     arg_shadows: list | None, sp: int) -> tuple[list[int],
                                                                 list]:
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name}: called with {len(args)} args, wants "
                f"{len(func.params)}")
        counts = self._func_counts
        if counts is not None:
            counts[func.name] = counts.get(func.name, 0) + 1
        frame = Frame(func, self._next_frame_id, sp)
        self._next_frame_id += 1
        for param, value in zip(func.params, args, strict=False):
            frame.values[param] = value & MASK32
        if self.shadow is not None:
            shadows = list(arg_shadows or [None] * len(args))
            replaced = self.shadow.call_enter(func, frame.frame_id,
                                              list(args), shadows)
            if replaced is not None:
                shadows = replaced
            for param, sh in zip(func.params, shadows, strict=False):
                frame.shadows[param] = sh

        block = func.entry
        prev_block = None
        while True:
            # Phis first, evaluated simultaneously against prev_block.
            phis = block.phis()
            if phis:
                if prev_block is None:
                    raise InterpError(
                        f"{func.name}: phi in entry block {block.name}")
                # Phis execute in parallel: evaluate every incoming value
                # against the pre-transition state before assigning any
                # (swap patterns break under sequential update).
                staged = []
                for phi in phis:
                    incoming = phi.value_for(prev_block)
                    staged.append((phi, self._eval(frame, incoming),
                                   self._shadow_of(frame, incoming)
                                   if self.shadow is not None else None))
                for phi, value, shadow in staged:
                    frame.values[phi] = value
                    if self.shadow is not None:
                        frame.shadows[phi] = shadow

            for instr in block.instrs[len(phis):]:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpError("interpreter step budget exceeded")
                outcome = self._exec(frame, instr)
                if outcome is None:
                    continue
                kind, payload = outcome
                if kind == "ret":
                    values, shadows = payload
                    if self.shadow is not None:
                        translated = self.shadow.call_exit(
                            func, frame.frame_id, values, shadows)
                        if translated is not None:
                            shadows = translated
                    return values, shadows
                # branch
                prev_block, block = block, payload
                break
            else:
                raise InterpError(
                    f"{func.name}/{block.name}: fell off block end")

    # -- compiled engine ----------------------------------------------------

    def _call_compiled(self, func: Function, args: list[int],
                       arg_shadows: list | None,
                       sp: int) -> tuple[list[int], list]:
        """Run one activation through per-block compiled closure lists.

        Observable behaviour (memory, shadows, step counts, errors)
        matches :meth:`_call_interp`; only the dispatch mechanism
        differs.
        """
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name}: called with {len(args)} args, wants "
                f"{len(func.params)}")
        counts = self._func_counts
        if counts is not None:
            counts[func.name] = counts.get(func.name, 0) + 1
        frame = Frame(func, self._next_frame_id, sp)
        self._next_frame_id += 1
        values = frame.values
        for param, value in zip(func.params, args, strict=False):
            values[param] = value & MASK32
        shadow = self.shadow
        if shadow is not None:
            shadows = list(arg_shadows or [None] * len(args))
            replaced = shadow.call_enter(func, frame.frame_id,
                                         list(args), shadows)
            if replaced is not None:
                shadows = replaced
            for param, sh in zip(func.params, shadows, strict=False):
                frame.shadows[param] = sh

        code_for = self._code_for
        max_steps = self.max_steps
        block = func.entry
        prev: object = None
        while True:
            nsteps, phi_plan, body, term = code_for(block)
            if phi_plan is not None:
                if prev is None:
                    raise InterpError(
                        f"{func.name}: phi in entry block {block.name}")
                pid = id(prev)
                # Stage every incoming value before assigning any (phis
                # execute in parallel; swap patterns break otherwise).
                if shadow is None:
                    staged = []
                    for phi, plan in phi_plan:
                        ev = plan.get(pid)
                        if ev is None:
                            raise KeyError("phi has no incoming for "
                                           f"block {prev.name}")
                        staged.append((phi, ev(values)))
                    for phi, value in staged:
                        values[phi] = value
                else:
                    shadow_map = frame.shadows
                    staged = []
                    for phi, plan, splan in phi_plan:
                        ev = plan.get(pid)
                        if ev is None:
                            raise KeyError("phi has no incoming for "
                                           f"block {prev.name}")
                        staged.append((phi, ev(values),
                                       splan[pid](shadow_map)))
                    for phi, value, sh in staged:
                        values[phi] = value
                        shadow_map[phi] = sh
            self.steps += nsteps
            if self.steps > max_steps:
                raise InterpError("interpreter step budget exceeded")
            for op in body:
                op(frame)
            kind, payload = term(frame)
            if kind == "br":
                prev = block
                block = payload
            else:  # ret
                rvalues, rshadows = payload
                if shadow is not None:
                    translated = shadow.call_exit(
                        func, frame.frame_id, rvalues, rshadows)
                    if translated is not None:
                        rshadows = translated
                return rvalues, rshadows

    def _code_for(self, block):
        """Compiled code for ``block``, rebuilt when its function mutates."""
        entry = self._code.get(block)
        func = block.function
        version = func.version if func is not None else -1
        n = len(block.instrs)
        if entry is not None and entry[0] == version and entry[1] == n:
            return entry[2]
        # Cold path: first compile or a version-mismatch invalidation.
        if entry is not None:
            _obs_count("ir.code_cache.invalidations")
        _obs_count("ir.code_cache.compiles")
        code = self._compile_block(block)
        self._code[block] = (version, n, code)
        return code

    def _compile_block(self, block):
        phis = block.phis()
        nphis = len(phis)
        shadow = self.shadow
        phi_plan = None
        if nphis:
            phi_plan = []
            for phi in phis:
                evs = {id(pred): self._ev(value)
                       for pred, value in phi.incomings()}
                if shadow is None:
                    phi_plan.append((phi, evs))
                else:
                    shvs = {id(pred): self._shv(value)
                            for pred, value in phi.incomings()}
                    phi_plan.append((phi, evs, shvs))
        body = []
        term = None
        executed = 0
        for instr in block.instrs[nphis:]:
            executed += 1
            if instr.is_terminator:
                term = self._compile_term(instr)
                break
            body.append(self._compile_body(instr))
        if term is None:
            # Parity with the reference loop: the body still runs (and
            # counts) before the fall-off is reported.
            fname = block.function.name if block.function else "?"
            bname = block.name

            def term(frame):
                raise InterpError(f"{fname}/{bname}: fell off block end")
        return (executed, phi_plan, tuple(body), term)

    # operand evaluation closures ------------------------------------------

    def _ev(self, v: Value):
        """Closure evaluating ``v`` against a frame's value dict.

        Instr/Param operands compile to ``operator.itemgetter`` (a
        C-level dict access); use of an unevaluated value therefore
        surfaces as ``KeyError`` rather than the reference engine's
        ``InterpError`` — acceptable, since both only occur on IR the
        verifier rejects.
        """
        if isinstance(v, Const):
            c = v.value
            return lambda values: c
        if isinstance(v, (Instr, Param)):
            return itemgetter(v)
        if isinstance(v, GlobalRef):
            c = self.global_addrs[v.name]
            return lambda values: c
        if isinstance(v, FuncRef):
            c = self.func_addrs[v.name]
            return lambda values: c
        raise InterpError(f"cannot evaluate {v!r}")

    @staticmethod
    def _shv(v: Value):
        """Closure evaluating ``v``'s shadow against a frame's shadow dict."""
        if isinstance(v, (Instr, Param)):
            return lambda shadows: shadows.get(v)
        return lambda shadows: None

    # per-instruction compilers --------------------------------------------

    def _compile_body(self, i: Instr):
        """Compile a non-terminator into a ``closure(frame) -> None``."""
        sh = self.shadow
        if isinstance(i, BinOp):
            return self._compile_binop(i)
        if isinstance(i, ICmp):
            ea, eb = self._ev(i.lhs), self._ev(i.rhs)
            fn = _icmp_fn(i.pred)
            if sh is None:
                lhs, rhs = i.lhs, i.rhs
                if isinstance(lhs, (Instr, Param)) \
                        and isinstance(rhs, (Instr, Param)):
                    def run(frame):
                        v = frame.values
                        v[i] = fn(v[lhs], v[rhs])
                    return run

                def run(frame):
                    v = frame.values
                    v[i] = fn(ea(v), eb(v))
                return run
            sa, sb = self._shv(i.lhs), self._shv(i.rhs)

            def run(frame):
                v = frame.values
                r = fn(ea(v), eb(v))
                v[i] = r
                shadows = frame.shadows
                shadows[i] = sh.on_instr(frame.frame_id, i,
                                         [sa(shadows), sb(shadows)], r)
            return run
        if isinstance(i, Unary):
            ea = self._ev(i.src)
            fn = _unary_fn(i.opcode)
            if sh is None:
                def run(frame):
                    v = frame.values
                    v[i] = fn(ea(v))
                return run
            sa = self._shv(i.src)

            def run(frame):
                v = frame.values
                r = fn(ea(v))
                v[i] = r
                shadows = frame.shadows
                shadows[i] = sh.on_instr(frame.frame_id, i,
                                         [sa(shadows)], r)
            return run
        if isinstance(i, Load):
            ea = self._ev(i.addr)
            size = i.size
            read = self.mem.read
            if sh is None:
                addr_v = i.addr
                if isinstance(addr_v, (Instr, Param)):
                    def run(frame):
                        v = frame.values
                        v[i] = read(v[addr_v], size)
                    return run

                def run(frame):
                    v = frame.values
                    v[i] = read(ea(v), size)
                return run

            def run(frame):
                v = frame.values
                addr = ea(v)
                value = read(addr, size)
                v[i] = value
                frame.shadows[i] = sh.on_load(frame.frame_id, i,
                                              addr, value)
            return run
        if isinstance(i, Store):
            ea, ev = self._ev(i.addr), self._ev(i.value)
            size = i.size
            write = self.mem.write
            if sh is None:
                def run(frame):
                    v = frame.values
                    write(ea(v), size, ev(v))
                return run
            sv = self._shv(i.value)

            def run(frame):
                v = frame.values
                addr = ea(v)
                value = ev(v)
                write(addr, size, value)
                sh.on_store(frame.frame_id, i, addr, value,
                            sv(frame.shadows))
            return run
        if isinstance(i, Alloca):
            size = i.size
            mask = ~(max(i.align, 1) - 1)
            if sh is None:
                def run(frame):
                    sp = (frame.sp - size) & mask
                    frame.sp = sp
                    frame.values[i] = sp
                return run

            def run(frame):
                sp = (frame.sp - size) & mask
                frame.sp = sp
                frame.values[i] = sp
                frame.shadows[i] = sh.on_instr(frame.frame_id, i, [], sp)
            return run
        if isinstance(i, Call):
            return self._compile_call(i)
        if isinstance(i, CallInd):
            return self._compile_callind(i)
        if isinstance(i, CallExt):
            return self._compile_callext(i)
        if isinstance(i, Result):
            src, idx = i.call, i.index
            if sh is None:
                def run(frame):
                    v = frame.values
                    v[i] = v[src][idx]
                return run

            def run(frame):
                v = frame.values
                v[i] = v[src][idx]
                bundle = frame.shadows.get(src)
                frame.shadows[i] = (bundle[idx]
                                    if isinstance(bundle, list) else None)
            return run
        if isinstance(i, Intrinsic):
            handler = self.intrinsic_handler
            if handler is None:
                return lambda frame: None
            evs = [self._ev(a) for a in i.ops]

            def run(frame):
                v = frame.values
                handler(frame, i, [ev(v) for ev in evs])
            return run
        if isinstance(i, Phi):
            def run(frame):
                raise InterpError("phi executed out of band")
            return run

        def run(frame):
            raise InterpError(f"unimplemented instruction {i!r}")
        return run

    def _compile_binop(self, i: BinOp):
        sh = self.shadow
        opc = i.opcode
        lhs, rhs = i.lhs, i.rhs
        if sh is None:
            # Address arithmetic dominates the mix; its common operand
            # shapes (value op value, value op constant) get fully
            # inlined bodies with direct dict access.
            lslot = isinstance(lhs, (Instr, Param))
            if opc == "add" and lslot:
                if isinstance(rhs, (Instr, Param)):
                    def run(frame):
                        v = frame.values
                        v[i] = (v[lhs] + v[rhs]) & MASK32
                    return run
                if isinstance(rhs, Const):
                    c = rhs.value

                    def run(frame):
                        v = frame.values
                        v[i] = (v[lhs] + c) & MASK32
                    return run
            if opc == "sub" and lslot:
                if isinstance(rhs, (Instr, Param)):
                    def run(frame):
                        v = frame.values
                        v[i] = (v[lhs] - v[rhs]) & MASK32
                    return run
                if isinstance(rhs, Const):
                    c = rhs.value

                    def run(frame):
                        v = frame.values
                        v[i] = (v[lhs] - c) & MASK32
                    return run
            fn = _binop_fn(opc, i)
            ea, eb = self._ev(lhs), self._ev(rhs)
            if lslot and isinstance(rhs, (Instr, Param)):
                def run(frame):
                    v = frame.values
                    v[i] = fn(v[lhs], v[rhs])
                return run

            def run(frame):
                v = frame.values
                v[i] = fn(ea(v), eb(v))
            return run
        fn = _binop_fn(opc, i)
        ea, eb = self._ev(lhs), self._ev(rhs)
        sa, sb = self._shv(lhs), self._shv(rhs)

        def run(frame):
            v = frame.values
            r = fn(ea(v), eb(v))
            v[i] = r
            shadows = frame.shadows
            shadows[i] = sh.on_instr(frame.frame_id, i,
                                     [sa(shadows), sb(shadows)], r)
        return run

    def _compile_call(self, i: Call):
        callee = self.module.functions.get(i.callee.name)
        if callee is None:
            def run(frame):
                raise InterpError("call to unknown function")
            return run
        evs = [self._ev(a) for a in i.args]
        nres = i.nresults
        call = self._call_compiled
        sh = self.shadow
        if sh is None:
            if nres == 1:
                def run(frame):
                    v = frame.values
                    rets, _ = call(callee, [ev(v) for ev in evs], None,
                                   (frame.sp - 32) & ~15)
                    v[i] = rets[0] if rets else 0
            else:
                def run(frame):
                    v = frame.values
                    rets, _ = call(callee, [ev(v) for ev in evs], None,
                                   (frame.sp - 32) & ~15)
                    v[i] = rets
            return run
        shvs = [self._shv(a) for a in i.args]

        def run(frame):
            v = frame.values
            shadows = frame.shadows
            rets, rsh = call(callee, [ev(v) for ev in evs],
                             [s(shadows) for s in shvs],
                             (frame.sp - 32) & ~15)
            if nres == 1:
                v[i] = rets[0] if rets else 0
                shadows[i] = rsh[0] if rsh else None
            else:
                v[i] = rets
                shadows[i] = list(rsh)
        return run

    def _compile_callind(self, i: CallInd):
        et = self._ev(i.target)
        evs = [self._ev(a) for a in i.args]
        nres = i.nresults
        call = self._call_compiled
        addr_to_func = self._addr_to_func
        functions = self.module.functions
        sh = self.shadow
        shvs = [self._shv(a) for a in i.args] if sh is not None else None

        def run(frame):
            v = frame.values
            target = et(v)
            name = addr_to_func.get(target)
            if name is None:
                raise InterpError(
                    f"indirect call to unknown address {target:#x}")
            callee = functions[name]
            if sh is not None:
                sh.on_indirect_call(callee)
            shadows = frame.shadows
            arg_shadows = [s(shadows) for s in shvs] \
                if sh is not None else None
            rets, rsh = call(callee, [ev(v) for ev in evs], arg_shadows,
                             (frame.sp - 32) & ~15)
            if nres == 1:
                v[i] = rets[0] if rets else 0
            else:
                v[i] = rets
            if sh is not None:
                if nres == 1:
                    shadows[i] = rsh[0] if rsh else None
                else:
                    shadows[i] = list(rsh)
        return run

    def _compile_callext(self, i: CallExt):
        libc_call = self.libc.call
        hook = self.callext_hook
        mem = self.mem
        sh = self.shadow
        name = i.ext_name
        if i.stack_args:
            esp = self._ev(i.sp)

            def run(frame):
                sp = esp(frame.values)
                if hook is not None:
                    hook(frame, i, sp, None)
                frame.values[i] = libc_call(name, StackArgs(mem, sp))
                if sh is not None:
                    frame.shadows[i] = None
            return run
        evs = [self._ev(a) for a in i.args]
        shvs = [self._shv(a) for a in i.args] if sh is not None else None

        def run(frame):
            v = frame.values
            values = [ev(v) for ev in evs]
            if sh is not None:
                sh.on_callext(frame.frame_id, i, values,
                              [s(frame.shadows) for s in shvs])
            if hook is not None:
                hook(frame, i, None, values)
            v[i] = libc_call(name, ListArgs(values))
            if sh is not None:
                frame.shadows[i] = None
        return run

    def _compile_term(self, i: Instr):
        """Compile a terminator into ``closure(frame) -> (kind, payload)``."""
        if isinstance(i, Br):
            out = ("br", i.target)
            return lambda frame: out
        if isinstance(i, CondBr):
            taken = ("br", i.if_true)
            fall = ("br", i.if_false)
            cond = i.cond
            if isinstance(cond, (Instr, Param)):
                return lambda frame: taken if frame.values[cond] else fall
            ec = self._ev(cond)
            return lambda frame: taken if ec(frame.values) else fall
        if isinstance(i, Switch):
            ev = self._ev(i.value)
            table = {}
            for case, target in i.cases:
                table.setdefault(case & MASK32, ("br", target))
            default = ("br", i.default)
            return lambda frame: table.get(ev(frame.values), default)
        if isinstance(i, Ret):
            evs = [self._ev(v) for v in i.ops]
            if self.shadow is None:
                def run(frame):
                    v = frame.values
                    return ("ret", ([ev(v) for ev in evs], []))
                return run
            shvs = [self._shv(v) for v in i.ops]

            def run(frame):
                v = frame.values
                shadows = frame.shadows
                return ("ret", ([ev(v) for ev in evs],
                                [s(shadows) for s in shvs]))
            return run
        if isinstance(i, Unreachable):
            fname = i.block.function.name \
                if i.block is not None and i.block.function else "?"
            note = i.note

            def run(frame):
                raise InterpError(
                    f"{fname}: reached untraced path ({note})")
            return run

        def run(frame):
            raise InterpError(f"unimplemented terminator {i!r}")
        return run

    # -- instruction execution ----------------------------------------------

    def _exec(self, frame: Frame, instr: Instr):
        """Execute one instruction.

        Returns None to continue, ("ret", (values, shadows)), or
        ("br", target_block).
        """
        if isinstance(instr, BinOp):
            a = self._eval(frame, instr.lhs)
            b = self._eval(frame, instr.rhs)
            result = self._binop(instr.opcode, a, b, frame.function.name)
            frame.values[instr] = result
            self._notify(frame, instr, [instr.lhs, instr.rhs], result)
            return None
        if isinstance(instr, ICmp):
            a = self._eval(frame, instr.lhs)
            b = self._eval(frame, instr.rhs)
            result = 1 if self._icmp(instr.pred, a, b) else 0
            frame.values[instr] = result
            self._notify(frame, instr, [instr.lhs, instr.rhs], result)
            return None
        if isinstance(instr, Unary):
            a = self._eval(frame, instr.src)
            result = self._unary(instr.opcode, a)
            frame.values[instr] = result
            self._notify(frame, instr, [instr.src], result)
            return None
        if isinstance(instr, Load):
            addr = self._eval(frame, instr.addr)
            value = self.mem.read(addr, instr.size)
            frame.values[instr] = value
            if self.shadow is not None:
                frame.shadows[instr] = self.shadow.on_load(
                    frame.frame_id, instr, addr, value)
            return None
        if isinstance(instr, Store):
            addr = self._eval(frame, instr.addr)
            value = self._eval(frame, instr.value)
            self.mem.write(addr, instr.size, value)
            if self.shadow is not None:
                self.shadow.on_store(frame.frame_id, instr, addr, value,
                                     self._shadow_of(frame, instr.value))
            return None
        if isinstance(instr, Alloca):
            align = max(instr.align, 1)
            frame.sp = (frame.sp - instr.size) & ~(align - 1)
            frame.values[instr] = frame.sp
            self._notify(frame, instr, [], frame.sp)
            return None
        if isinstance(instr, Phi):
            raise InterpError("phi executed out of band")
        if isinstance(instr, Call):
            return self._do_call(frame, instr,
                                 self.module.functions.get(
                                     instr.callee.name),
                                 instr.args)
        if isinstance(instr, CallInd):
            target = self._eval(frame, instr.target)
            name = self._addr_to_func.get(target)
            if name is None:
                raise InterpError(
                    f"indirect call to unknown address {target:#x}")
            return self._do_call(frame, instr, self.module.functions[name],
                                 instr.args)
        if isinstance(instr, CallExt):
            return self._do_callext(frame, instr)
        if isinstance(instr, Result):
            bundle = frame.values[instr.call]
            frame.values[instr] = bundle[instr.index]  # type: ignore
            if self.shadow is not None:
                shadow_bundle = frame.shadows.get(instr.call)
                frame.shadows[instr] = (
                    shadow_bundle[instr.index]
                    if isinstance(shadow_bundle, list) else None)
            return None
        if isinstance(instr, Intrinsic):
            if self.intrinsic_handler is not None:
                args = [self._eval(frame, a) for a in instr.ops]
                self.intrinsic_handler(frame, instr, args)
            return None
        if isinstance(instr, Br):
            return ("br", instr.target)
        if isinstance(instr, CondBr):
            cond = self._eval(frame, instr.cond)
            return ("br", instr.if_true if cond else instr.if_false)
        if isinstance(instr, Switch):
            value = self._eval(frame, instr.value)
            for case, target in instr.cases:
                if (case & MASK32) == value:
                    return ("br", target)
            return ("br", instr.default)
        if isinstance(instr, Ret):
            values = [self._eval(frame, v) for v in instr.ops]
            shadows = [self._shadow_of(frame, v) for v in instr.ops] \
                if self.shadow is not None else []
            return ("ret", (values, shadows))
        if isinstance(instr, Unreachable):
            raise InterpError(
                f"{frame.function.name}: reached untraced path "
                f"({instr.note})")
        raise InterpError(f"unimplemented instruction {instr!r}")

    def _notify(self, frame: Frame, instr: Instr, operands: list[Value],
                result: int | None) -> None:
        if self.shadow is not None:
            op_shadows = [self._shadow_of(frame, op) for op in operands]
            frame.shadows[instr] = self.shadow.on_instr(
                frame.frame_id, instr, op_shadows, result)

    def _do_call(self, frame: Frame, instr, callee: Function | None,
                 arg_values: list[Value]):
        if callee is None:
            raise InterpError("call to unknown function")
        if self.shadow is not None and isinstance(instr, CallInd):
            self.shadow.on_indirect_call(callee)
        args = [self._eval(frame, a) for a in arg_values]
        shadows = [self._shadow_of(frame, a) for a in arg_values] \
            if self.shadow is not None else None
        # The callee's allocas live below this frame's cursor (with a
        # small red zone for alignment).
        rets, ret_shadows = self._call(callee, args, shadows,
                                       (frame.sp - 32) & ~15)
        if instr.nresults == 1:
            frame.values[instr] = rets[0] if rets else 0
        else:
            frame.values[instr] = rets
        if self.shadow is not None:
            if instr.nresults == 1:
                frame.shadows[instr] = ret_shadows[0] if ret_shadows \
                    else None
            else:
                frame.shadows[instr] = list(ret_shadows)
        return None

    def _do_callext(self, frame: Frame, instr: CallExt):
        if instr.stack_args:
            sp = self._eval(frame, instr.sp)
            if self.callext_hook is not None:
                self.callext_hook(frame, instr, sp, None)
            result = self.libc.call(instr.ext_name,
                                    StackArgs(self.mem, sp))
        else:
            values = [self._eval(frame, a) for a in instr.args]
            if self.shadow is not None:
                self.shadow.on_callext(
                    frame.frame_id, instr, values,
                    [self._shadow_of(frame, a) for a in instr.args])
            if self.callext_hook is not None:
                self.callext_hook(frame, instr, None, values)
            result = self.libc.call(instr.ext_name, ListArgs(values))
        frame.values[instr] = result
        if self.shadow is not None:
            frame.shadows[instr] = None
        return None

    # -- scalar ops ----------------------------------------------------------

    def _binop(self, op: str, a: int, b: int, where: str) -> int:
        if op == "add":
            return (a + b) & MASK32
        if op == "sub":
            return (a - b) & MASK32
        if op == "mul":
            return (_signed(a) * _signed(b)) & MASK32
        if op == "div":
            if _signed(b) == 0:
                raise InterpError(f"{where}: division by zero")
            return int(_signed(a) / _signed(b)) & MASK32
        if op == "rem":
            sb = _signed(b)
            if sb == 0:
                raise InterpError(f"{where}: remainder by zero")
            sa = _signed(a)
            return (sa - int(sa / sb) * sb) & MASK32
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b & 31)) & MASK32
        if op == "shr":
            return (a & MASK32) >> (b & 31)
        if op == "sar":
            return (_signed(a) >> (b & 31)) & MASK32
        raise InterpError(f"bad binop {op}")

    @staticmethod
    def _icmp(pred: str, a: int, b: int) -> bool:
        if pred == "eq":
            return a == b
        if pred == "ne":
            return a != b
        sa, sb = _signed(a), _signed(b)
        if pred == "slt":
            return sa < sb
        if pred == "sle":
            return sa <= sb
        if pred == "sgt":
            return sa > sb
        if pred == "sge":
            return sa >= sb
        if pred == "ult":
            return a < b
        if pred == "ule":
            return a <= b
        if pred == "ugt":
            return a > b
        if pred == "uge":
            return a >= b
        raise InterpError(f"bad icmp predicate {pred}")

    @staticmethod
    def _unary(op: str, a: int) -> int:
        if op == "neg":
            return (-a) & MASK32
        if op == "not":
            return (~a) & MASK32
        if op == "sext8":
            v = a & 0xFF
            return (v | 0xFFFFFF00) if v & 0x80 else v
        if op == "sext16":
            v = a & 0xFFFF
            return (v | 0xFFFF0000) if v & 0x8000 else v
        if op == "zext8":
            return a & 0xFF
        if op == "zext16":
            return a & 0xFFFF
        if op == "trunc8":
            return a & 0xFF
        if op == "trunc16":
            return a & 0xFFFF
        raise InterpError(f"bad unary op {op}")


def run_module(module: Module,
               input_items: list[int | bytes] | None = None,
               **kwargs) -> InterpResult:
    """Convenience wrapper mirroring :func:`repro.emu.run_binary`."""
    return Interpreter(module, input_items, **kwargs).run()
