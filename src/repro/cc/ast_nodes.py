"""AST node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ctypes import CType


class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int
    line: int = 0


@dataclass
class StrLit(Node):
    value: bytes
    line: int = 0


@dataclass
class Ident(Node):
    name: str
    line: int = 0


@dataclass
class Unary(Node):
    op: str  # "-" "!" "~" "*" "&" "++" "--"
    operand: Node = None
    line: int = 0


@dataclass
class Postfix(Node):
    op: str  # "++" "--"
    operand: Node = None
    line: int = 0


@dataclass
class Binary(Node):
    op: str
    lhs: Node = None
    rhs: Node = None
    line: int = 0


@dataclass
class Assign(Node):
    op: str  # "=", "+=", ...
    target: Node = None
    value: Node = None
    line: int = 0


@dataclass
class Ternary(Node):
    cond: Node = None
    if_true: Node = None
    if_false: Node = None
    line: int = 0


@dataclass
class Call(Node):
    callee: Node = None
    args: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class Index(Node):
    base: Node = None
    index: Node = None
    line: int = 0


@dataclass
class Member(Node):
    base: Node = None
    name: str = ""
    arrow: bool = False
    line: int = 0


@dataclass
class SizeofExpr(Node):
    operand: Node = None
    line: int = 0


@dataclass
class SizeofType(Node):
    ctype: CType = None
    line: int = 0


@dataclass
class Cast(Node):
    ctype: CType = None
    operand: Node = None
    line: int = 0


# -- statements ---------------------------------------------------------------


@dataclass
class ExprStmt(Node):
    expr: Optional[Node] = None
    line: int = 0


@dataclass
class VarDecl(Node):
    name: str = ""
    ctype: CType = None
    init: Optional[Node | list] = None  # expr, nested list, or StrLit
    static: bool = False
    line: int = 0


@dataclass
class DeclStmt(Node):
    decls: list[VarDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class Block(Node):
    stmts: list[Node] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Node):
    cond: Node = None
    then: Node = None
    otherwise: Optional[Node] = None
    line: int = 0


@dataclass
class While(Node):
    cond: Node = None
    body: Node = None
    line: int = 0


@dataclass
class DoWhile(Node):
    body: Node = None
    cond: Node = None
    line: int = 0


@dataclass
class For(Node):
    init: Optional[Node] = None        # ExprStmt or DeclStmt
    cond: Optional[Node] = None
    step: Optional[Node] = None
    body: Node = None
    line: int = 0


@dataclass
class Return(Node):
    value: Optional[Node] = None
    line: int = 0


@dataclass
class Break(Node):
    line: int = 0


@dataclass
class Continue(Node):
    line: int = 0


@dataclass
class CaseLabel(Node):
    value: Optional[int] = None  # None for default
    line: int = 0


@dataclass
class Switch(Node):
    expr: Node = None
    body: list[Node] = field(default_factory=list)  # stmts + CaseLabels
    line: int = 0


# -- top level ----------------------------------------------------------------


@dataclass
class FuncDef(Node):
    name: str = ""
    ret: CType = None
    params: list[tuple[str, CType]] = field(default_factory=list)
    body: Optional[Block] = None  # None for a prototype
    static: bool = False
    line: int = 0


@dataclass
class TranslationUnit(Node):
    decls: list[Node] = field(default_factory=list)  # FuncDef | VarDecl
    line: int = 0
