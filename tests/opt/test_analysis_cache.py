"""The versioned CFG-analysis cache (ISSUE 3): analyses are shared
within a mutation epoch and recomputed after ``func.invalidate()``."""

from repro import obs
from repro.ir import Builder, Const, Function, Module, verify_function
from repro.opt import (
    dominators,
    predecessors,
    reachable,
    simplify_cfg,
)
from repro.opt import analysis


def diamond():
    m = Module()
    f = Function("main", ["x"])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    join = f.add_block("join")
    b.position(entry)
    cond = b.icmp("eq", f.params[0], Const(0))
    b.condbr(cond, left, right)
    b.position(left)
    b.br(join)
    b.position(right)
    b.br(join)
    b.position(join)
    b.ret([Const(0)])
    verify_function(f)
    return f, (entry, left, right, join)


def test_cached_until_epoch_changes():
    f, (entry, left, right, join) = diamond()
    d1 = dominators(f)
    assert dominators(f) is d1
    assert predecessors(f) is predecessors(f)
    assert reachable(f) is reachable(f)
    assert d1.idom[join] is entry

    f.invalidate()
    d2 = dominators(f)
    assert d2 is not d1
    assert d2.idom[join] is entry


def _new_add():
    from repro.ir.values import BinOp
    return BinOp("add", Const(1), Const(2))


def test_builder_mutations_invalidate_implicitly():
    f, (entry, left, right, join) = diamond()
    p1 = predecessors(f)
    left.insert(0, _new_add())
    assert predecessors(f) is not p1  # Block.insert bumped the version


def test_instruction_count_is_a_safety_net():
    f, (entry, left, right, join) = diamond()
    r1 = reachable(f)
    # Splice without invalidate(): the count guard still catches it.
    left.instrs.insert(0, _new_add())
    assert reachable(f) is not r1


def test_simplifycfg_result_unaffected_by_cache(monkeypatch):
    from repro.ir.printer import function_to_text

    f1, _ = diamond()
    simplify_cfg(f1)
    text_cached = function_to_text(f1)

    monkeypatch.setattr(analysis, "_CACHE_ENABLED", False)
    f2, _ = diamond()
    simplify_cfg(f2)
    assert function_to_text(f2) == text_cached


def test_cache_counters():
    f, _blocks = diamond()
    rec = obs.enable(reset=True)
    try:
        dominators(f)
        dominators(f)
        counters = rec.registry.counters
        assert counters.get("analysis.cache.misses") == 1
        assert counters.get("analysis.cache.hits") == 1
    finally:
        obs.disable()
