"""Instrumentation pass: inserts the ``wyt.*`` probes (paper §4.2.2).

The pass runs on canonicalized lifted IR (vcpu registers already in SSA,
direct stack references annotated by :mod:`repro.core.sp0fold`) and
inserts probe intrinsics that the IR interpreter dispatches to the
:class:`~repro.core.runtime.TracingRuntime`:

========  ==================================================================
probe     inserted at
========  ==================================================================
fnenter   function entry (frame descriptor push, argument info marshal)
fnexit    before every return (return info marshal, frame pop)
callargs  before every internal call (stage argument PointerInfo)
callres   after every internal call (adopt returned PointerInfo)
stackref  after every direct stack reference (base pointer registration)
derive    after add/sub/and with one constant operand
derive2   after add/sub with two non-constant operands
link      after pointer comparisons
copy      on phi edges (predecessor ends)
load      after loads; store before stores
extcall   after external calls (constraint application)
========  ==================================================================

Probes never produce program-visible values, so stripping them after the
analysis restores the exact input IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Block, Function, Module
from ..ir.values import (
    BinOp,
    Call,
    CallExt,
    CallInd,
    Const,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Param,
    Phi,
    Ret,
    Result,
    Store,
    Value,
)
from .sp0fold import is_lifted_function


@dataclass
class FunctionInstrumentation:
    """Bookkeeping produced while instrumenting one function."""

    func: Function
    vids: dict[Value, int] = field(default_factory=dict)
    #: ref_id -> (value, sp0 offset)
    refs: dict[int, tuple[Value, int]] = field(default_factory=dict)
    #: callsite_id -> call instruction
    callsites: dict[int, Instr] = field(default_factory=dict)


@dataclass
class ModuleInstrumentation:
    functions: dict[str, FunctionInstrumentation] \
        = field(default_factory=dict)
    next_ref_id: int = 0
    next_callsite_id: int = 0


def _probe(name: str, args: list[Value], meta: dict) -> Intrinsic:
    return Intrinsic(f"wyt.{name}", args, meta)


class _FunctionInstrumenter:
    def __init__(self, func: Function, module_inst: ModuleInstrumentation):
        self.func = func
        self.mi = module_inst
        self.fi = FunctionInstrumentation(func)
        self._assign_vids()

    def _assign_vids(self) -> None:
        counter = 0
        for param in self.func.params:
            self.fi.vids[param] = counter
            counter += 1
        for instr in self.func.instructions():
            if instr.has_result:
                self.fi.vids[instr] = counter
                counter += 1

    def _vid(self, v: Value) -> int:
        return self.fi.vids.get(v, -1)

    def run(self) -> FunctionInstrumentation:
        refs: dict[Value, int] = self.func.meta.get("stack_refs", {})
        ref_ids: dict[Value, int] = {}
        for value, offset in refs.items():
            ref_ids[value] = self.mi.next_ref_id
            self.fi.refs[self.mi.next_ref_id] = (value, offset)
            self.mi.next_ref_id += 1
        chain = self.func.meta.get("sp0_offsets", {})

        for block in self.func.blocks:
            self._instrument_block(block, refs, ref_ids, chain)
        self._insert_entry_probes(refs, ref_ids)
        self._insert_phi_copies()
        return self.fi

    # -- entry -----------------------------------------------------------------

    def _insert_entry_probes(self, refs, ref_ids) -> None:
        entry = self.func.entry
        probes: list[Intrinsic] = []
        sp0 = self.func.params[0] if self.func.params else Const(0)
        probes.append(_probe("fnenter", [sp0], {
            "func": self.func.name,
            "param_vids": [self._vid(p) for p in self.func.params],
        }))
        for param in self.func.params:
            if param in refs:
                probes.append(_probe("stackref", [param], {
                    "ref_id": ref_ids[param],
                    "offset": refs[param],
                    "vid": self._vid(param),
                    "is_sp0": param is self.func.params[0],
                }))
        # Insert after leading phis (entry has none, but be safe).
        pos = len(entry.phis())
        for probe in reversed(probes):
            probe.block = entry
            entry.instrs.insert(pos, probe)

    # -- per instruction -----------------------------------------------------

    def _instrument_block(self, block: Block, refs, ref_ids,
                          chain) -> None:
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            before, after = self._probes_for(instr, refs, ref_ids, chain)
            for p in before:
                p.block = block
                new_instrs.append(p)
            new_instrs.append(instr)
            for p in after:
                p.block = block
                new_instrs.append(p)
        block.instrs = new_instrs

    def _probes_for(self, instr: Instr, refs, ref_ids, chain):
        before: list[Intrinsic] = []
        after: list[Intrinsic] = []
        if isinstance(instr, Ret):
            before.append(_probe("fnexit", list(instr.ops), {
                "ret_vids": [self._vid(v) for v in instr.ops],
            }))
            return before, after

        if instr in refs:
            after.append(_probe("stackref", [instr], {
                "ref_id": ref_ids[instr],
                "offset": refs[instr],
                "vid": self._vid(instr),
                "is_sp0": False,
            }))
            # A base pointer needs no derive probe for its own chain.
            return before, after

        if isinstance(instr, BinOp) and instr.opcode in ("add", "sub",
                                                         "and", "or"):
            if instr in chain:
                return before, after  # constant-offset chain: static
            lhs_const = isinstance(instr.lhs, Const)
            rhs_const = isinstance(instr.rhs, Const)
            if rhs_const or (lhs_const and instr.opcode in ("add",
                                                            "or")):
                base = instr.lhs if rhs_const else instr.rhs
                const = (instr.rhs if rhs_const else instr.lhs).value
                after.append(_probe("derive", [instr, base], {
                    "op": instr.opcode,
                    "const": const,
                    "result_vid": self._vid(instr),
                    "base_vid": self._vid(base),
                }))
            elif not lhs_const and not rhs_const:
                after.append(_probe(
                    "derive2", [instr, instr.lhs, instr.rhs], {
                        "op": instr.opcode,
                        "result_vid": self._vid(instr),
                        "lhs_vid": self._vid(instr.lhs),
                        "rhs_vid": self._vid(instr.rhs),
                    }))
            return before, after

        if isinstance(instr, ICmp):
            if not isinstance(instr.lhs, Const) \
                    and not isinstance(instr.rhs, Const):
                after.append(_probe("link", [instr.lhs, instr.rhs], {
                    "lhs_vid": self._vid(instr.lhs),
                    "rhs_vid": self._vid(instr.rhs),
                }))
            return before, after

        if isinstance(instr, Load):
            after.append(_probe("load", [instr.addr, instr], {
                "size": instr.size,
                "addr_vid": self._vid(instr.addr),
                "result_vid": self._vid(instr),
            }))
            return before, after

        if isinstance(instr, Store):
            before.append(_probe("store", [instr.addr, instr.value], {
                "size": instr.size,
                "addr_vid": self._vid(instr.addr),
                "value_vid": self._vid(instr.value),
            }))
            return before, after

        if isinstance(instr, (Call, CallInd)):
            callsite_id = self.mi.next_callsite_id
            self.mi.next_callsite_id += 1
            self.fi.callsites[callsite_id] = instr
            args = instr.args
            before.append(_probe("callargs", [], {
                "callsite_id": callsite_id,
                "arg_vids": [self._vid(a) for a in args],
            }))
            # callres: the call's direct value (single result) or its
            # Result extractions carry the returned PointerInfo.
            result_vids = self._result_vids(instr)
            after.append(_probe("callres", [], {
                "result_vids": result_vids,
            }))
            return before, after

        if isinstance(instr, CallExt):
            sig_args = list(instr.args)
            after.append(_probe("extcall", [*sig_args, instr], {
                "name": instr.ext_name,
                "arg_vids": [self._vid(a) for a in sig_args],
                "result_vid": self._vid(instr),
            }))
            return before, after

        return before, after

    def _result_vids(self, call: Instr) -> list[int]:
        if call.nresults == 1:
            return [self._vid(call)]
        block = call.block
        by_index: dict[int, int] = {}
        for instr in block.instrs:
            if isinstance(instr, Result) and instr.call is call:
                by_index[instr.index] = self._vid(instr)
        return [by_index.get(i, -1) for i in range(call.nresults)]

    # -- phi copies -------------------------------------------------------------

    def _insert_phi_copies(self) -> None:
        for block in self.func.blocks:
            phis = block.phis()
            if not phis:
                continue
            for phi in phis:
                for pred, value in phi.incomings():
                    probe = _probe("copy", [], {
                        "dst_vid": self._vid(phi),
                        "src_vid": self._vid(value),
                    })
                    probe.block = pred
                    # Before the terminator (and before other probes that
                    # may already sit there -- order among copies is
                    # irrelevant, they read pre-state vids... which phis
                    # violate for swaps; stage via dedicated two-phase
                    # handling below).
                    pred.instrs.insert(len(pred.instrs) - 1, probe)


def _fixup_phi_copy_order(func: Function) -> None:
    """Make phi-edge copy probes read their sources atomically.

    Copies at a predecessor end read vids that other copies of the same
    edge may overwrite (swap patterns).  Rewrite each run of consecutive
    copy probes into a staged form understood by the runtime: mark them
    with a shared group id; the runtime reads all sources before writing.
    """
    for block in func.blocks:
        run: list[Intrinsic] = []
        for instr in block.instrs:
            if isinstance(instr, Intrinsic) and \
                    instr.intrinsic == "wyt.copy":
                run.append(instr)
            else:
                _mark_group(run)
                run = []
        _mark_group(run)


def _mark_group(run: list[Intrinsic]) -> None:
    if len(run) <= 1:
        return
    for i, probe in enumerate(run):
        probe.meta["group_size"] = len(run)
        probe.meta["group_index"] = i


def instrument_module(module: Module) -> ModuleInstrumentation:
    mi = ModuleInstrumentation()
    for func in module.functions.values():
        if not is_lifted_function(func):
            continue
        fi = _FunctionInstrumenter(func, mi).run()
        _fixup_phi_copy_order(func)
        mi.functions[func.name] = fi
        func.invalidate()  # probes were spliced into instr lists directly
    return mi


def strip_probes(module: Module) -> int:
    """Remove every wyt.* probe; returns the number removed."""
    removed = 0
    for func in module.functions.values():
        func_removed = 0
        for block in func.blocks:
            kept = [i for i in block.instrs
                    if not (isinstance(i, Intrinsic)
                            and i.intrinsic.startswith("wyt."))]
            func_removed += len(block.instrs) - len(kept)
            block.instrs = kept
        if func_removed:
            func.invalidate()
        removed += func_removed
    return removed
