"""Scheduler bench: K concurrent distinct-image campaigns, worker pool
vs the single-lock daemon.

Runs as the seventh ``tools/bench.sh`` pass and lands in
``BENCH_sched.json``.  One scenario, through two real daemons on Unix
sockets sharing nothing:

* **Concurrent distinct images** — K=4 clients submit campaigns for
  four different images at once.  The single-lock daemon serializes
  them; the ``workers=4`` pool runs them concurrently.  Artifacts must
  be byte-identical across the two daemons, and a warm sequential
  resubmission round must be dispatched entirely to each image's
  affine worker (zero steals, 100% affinity hit rate).

The asserted speedup floor scales with the machine: on >= 4 cores the
pool must be >= 2.5x the single-lock daemon; on 2-3 cores >= 1.3x; on a
single-core runner true concurrency is physically unavailable, so the
floor is an overhead bound (>= 0.5x — the pool's fork/IPC cost must not
dominate) and the committed baseline records the measured ratio.
``ncpu`` lands in ``extra_info`` so regressions are compared
like-for-like.
"""

import os
import shutil
import tempfile
import threading
import time

import pytest

from repro import compile_source
from repro.opt import clear_memo
from repro.recompile import clear_lower_cache
from repro.sched import affinity_worker
from repro.serve import RecompileServer, ServeClient
from repro.store import ArtifactStore

pytestmark = pytest.mark.bench

WORKERS = 4

#: Loop-heavy template: tracing dominates the job, which is the honest
#: case for the pool (traces are per-image, so the single-lock daemon
#: cannot amortize them across these distinct images).  Per-variant
#: constants make each image's content key (and functions) distinct.
SOURCE_TMPL = r"""
int churn(int seed) {{
    int acc = seed + {bias};
    int i = 0;
    while (i < 2500) {{
        acc = acc * {mult} + i;
        if (acc > 1000000) acc = acc % 1000003;
        i = i + 1;
    }}
    return acc;
}}
int main() {{
    int v = read_int();
    printf("out=%d\n", churn(v));
    return 0;
}}
"""

VARIANTS = [(31, 1), (37, 2), (41, 3), (43, 5)]

INPUT = [[9]]


class _Daemon:
    def __init__(self, store_root, workers):
        self.sockdir = tempfile.mkdtemp(prefix="repro-bench-")
        sock = os.path.join(self.sockdir, "d.sock")
        self.server = RecompileServer(
            sock, store=ArtifactStore(store_root), workers=workers)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(sock):
            if time.monotonic() > deadline:
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.02)
        self.client = ServeClient(sock, timeout=600)

    def close(self):
        try:
            self.client.shutdown()
        except Exception:
            pass
        self.thread.join(timeout=15)
        self.server.close()
        shutil.rmtree(self.sockdir, ignore_errors=True)


def _submit_concurrently(client, images):
    """All campaigns at once, one thread per image (as K clients
    would); returns responses in image order."""
    results = [None] * len(images)
    errors = []

    def one(i):
        try:
            results[i] = client.submit(
                image_json=images[i].to_json(), inputs=INPUT,
                campaign=f"camp{i}", return_artifact=True)
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(i,), daemon=True)
               for i in range(len(images))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


def test_bench_sched_concurrent_distinct_campaigns(benchmark, tmp_path):
    """K=4 concurrent campaigns: pool vs single lock, byte-identical;
    warm resubmits ride their affine workers."""
    images = [compile_source(SOURCE_TMPL.format(mult=m, bias=b),
                             "gcc12", "3", f"sched{m}")
              for m, b in VARIANTS]
    # Fork the pool before any job runs anywhere, so its workers cannot
    # inherit warmth the serial phase builds in this process.
    pool = _Daemon(tmp_path / "pool-store", workers=WORKERS)
    serial = _Daemon(tmp_path / "serial-store", workers=0)
    clear_memo()
    clear_lower_cache()
    try:
        start = time.perf_counter()
        serial_results = _submit_concurrently(serial.client, images)
        serial_s = time.perf_counter() - start
        assert all(r["served"] == "cold" for r in serial_results)

        start = time.perf_counter()
        pool_results = benchmark.pedantic(
            lambda: _submit_concurrently(pool.client, images),
            rounds=1, iterations=1)
        pool_s = time.perf_counter() - start
        assert all(r["served"] == "cold" for r in pool_results)

        # Byte identity: worker processes and the in-process path must
        # produce the same artifact for the same image + inputs.
        for serial_r, pool_r in zip(serial_results, pool_results,
                                    strict=True):
            assert pool_r["artifact"] == serial_r["artifact"]
            assert pool_r["result_key"] == serial_r["result_key"]

        sched = pool.client.status()["sched"]
        assert sched["stats"]["completed"] == len(images)
        assert (sched["stats"]["affine"] + sched["stats"]["stolen"]
                == sched["stats"]["dispatched"])

        # Warm sequential resubmission: with the pool idle, every job
        # must land on its image's affine worker — zero steals, all
        # result-store hits, same bytes.
        before = sched["stats"]
        for i, image in enumerate(images):
            warm = pool.client.submit(image_json=image.to_json(),
                                      inputs=INPUT, campaign=f"camp{i}",
                                      return_artifact=True)
            assert warm["served"] == "store"
            assert warm["worker"] == affinity_worker(warm["image_key"],
                                                     WORKERS)
            assert warm["artifact"] == pool_results[i]["artifact"]
        after = pool.client.status()["sched"]["stats"]
        assert after["stolen"] == before["stolen"]
        assert after["affine"] - before["affine"] == len(images)
        affinity_rate = 1.0

        ncpu = os.cpu_count() or 1
        floor = 2.5 if ncpu >= 4 else (1.3 if ncpu >= 2 else 0.5)
        speedup = serial_s / pool_s
        benchmark.extra_info["ncpu"] = ncpu
        benchmark.extra_info["images"] = len(images)
        benchmark.extra_info["workers"] = WORKERS
        benchmark.extra_info["serial_seconds"] = serial_s
        benchmark.extra_info["pool_seconds"] = pool_s
        benchmark.extra_info["pool_speedup"] = speedup
        benchmark.extra_info["speedup_floor"] = floor
        benchmark.extra_info["affinity_hit_rate"] = affinity_rate
        assert speedup >= floor, (
            f"pool speedup {speedup:.2f}x < {floor}x on {ncpu} cores "
            f"(serial {serial_s:.2f}s, pool {pool_s:.2f}s)")
    finally:
        serial.close()
        pool.close()
