"""Experiment harness: regenerates every table and figure of the paper's
evaluation (§6) against the workload suite."""

from .ablations import ABLATIONS, AblationReport, run_ablation
from .cache import EvalCache
from .figure6 import Figure6, build_figure6
from .figure7 import ACCURACY_CONFIG, Figure7, build_figure7
from .functionality import FunctionalityMatrix, build_functionality
from .harness import (
    CONFIGS,
    QUICK_WORKLOADS,
    CellResult,
    geomean,
    measure_cell,
    sweep,
)
from .table1 import Table1, build_table1

__all__ = [
    "ABLATIONS", "ACCURACY_CONFIG", "AblationReport", "CONFIGS", "CellResult", "Figure6", "Figure7",
    "EvalCache", "FunctionalityMatrix", "QUICK_WORKLOADS", "Table1",
    "build_figure6",
    "build_figure7", "build_functionality", "build_table1", "geomean",
    "run_ablation",
    "measure_cell", "sweep",
]
