"""Comparison pipelines: BinRec (no symbolization) and SecondWrite
(static heuristic symbolization)."""

from .binrec import binrec_lift, binrec_recompile
from .secondwrite import (
    SecondWriteError,
    SecondWriteResult,
    secondwrite_lift,
    secondwrite_recompile,
    static_cfg,
)

__all__ = [
    "SecondWriteError", "SecondWriteResult", "binrec_lift",
    "binrec_recompile", "secondwrite_lift", "secondwrite_recompile",
    "static_cfg",
]
