"""CPU state: the register file, flags, and condition-code predicates.

Flag semantics follow x86-32 for the subset the ISA exposes (ZF, SF, CF,
OF) so that compiled comparison/branch idioms behave identically under
emulation and after lifting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.registers import GPR32, Reg, read_view, write_view

MASK32 = 0xFFFFFFFF


def signed32(v: int) -> int:
    v &= MASK32
    return v - 0x100000000 if v >= 0x80000000 else v


@dataclass
class Flags:
    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False

    def set_logic(self, result: int) -> None:
        """Flags after and/or/xor/test: CF and OF cleared."""
        result &= MASK32
        self.zf = result == 0
        self.sf = bool(result & 0x80000000)
        self.cf = False
        self.of = False

    def set_add(self, a: int, b: int, result: int) -> None:
        a &= MASK32
        b &= MASK32
        self.zf = (result & MASK32) == 0
        self.sf = bool(result & 0x80000000)
        self.cf = result > MASK32
        self.of = bool((~(a ^ b) & (a ^ result)) & 0x80000000)

    def set_sub(self, a: int, b: int, result: int) -> None:
        a &= MASK32
        b &= MASK32
        self.zf = (result & MASK32) == 0
        self.sf = bool(result & 0x80000000)
        self.cf = a < b
        self.of = bool(((a ^ b) & (a ^ result)) & 0x80000000)

    def condition(self, cc: str) -> bool:
        if cc == "e":
            return self.zf
        if cc == "ne":
            return not self.zf
        if cc == "l":
            return self.sf != self.of
        if cc == "le":
            return self.zf or self.sf != self.of
        if cc == "g":
            return not self.zf and self.sf == self.of
        if cc == "ge":
            return self.sf == self.of
        if cc == "b":
            return self.cf
        if cc == "be":
            return self.cf or self.zf
        if cc == "a":
            return not self.cf and not self.zf
        if cc == "ae":
            return not self.cf
        if cc == "s":
            return self.sf
        if cc == "ns":
            return not self.sf
        raise ValueError(f"unknown condition code {cc!r}")


@dataclass
class CPU:
    """Architectural state: eight 32-bit GPRs, eip, and flags."""

    regs: list[int] = field(default_factory=lambda: [0] * 8)
    eip: int = 0
    flags: Flags = field(default_factory=Flags)

    def get(self, r: Reg) -> int:
        return read_view(self.regs[r.index], r)

    def set(self, r: Reg, value: int) -> None:
        self.regs[r.index] = write_view(self.regs[r.index], r, value)

    def get_name(self, name: str) -> int:
        return self.regs[GPR32.index(name)]

    def set_name(self, name: str, value: int) -> None:
        self.regs[GPR32.index(name)] = value & MASK32

    def snapshot(self) -> dict[str, int]:
        return {name: self.regs[i] for i, name in enumerate(GPR32)}
