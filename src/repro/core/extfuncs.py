"""External function database (paper §5.3).

WYTIWYG cannot lift dynamically linked functions, so it maintains a
database of known externals: their argument counts (used by the lifter to
recover operands of non-variadic calls) and a set of *constraints*
describing their effects on tracked pointers.  The constraint vocabulary
is the paper's:

* ``ObjectSize(ptr, size, count)`` — the object behind argument ``ptr``
  is at least ``size * count`` bytes;
* ``ZeroTerminated(ptr)`` — ``ptr`` points at NUL-terminated data;
* ``Derive(derived, base)`` — the returned/out pointer refers to the same
  object as ``base`` (e.g. ``strtok``);
* ``Clear(ptr, size?)`` — stored stack-pointer metadata inside the object
  is wiped (e.g. ``memset``);
* ``Copy(dst, src, size?)`` — stored metadata is copied between objects
  (e.g. ``memcpy``);
* ``FormatStr(str, valist)`` — printf-style format describing variadic
  arguments.

Argument positions are 0-based; ``RET`` denotes the return value.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Marker for "the return value" in constraint argument positions.
RET = -1


@dataclass(frozen=True)
class Constraint:
    kind: str                  # ObjectSize | ZeroTerminated | Derive | ...
    args: tuple[int, ...]      # argument indices (RET for return value)


@dataclass(frozen=True)
class ExtSig:
    """Signature + pointer-effect constraints of one external function."""

    name: str
    nargs: int
    vararg: bool = False
    constraints: tuple[Constraint, ...] = ()

    @property
    def format_arg(self) -> int | None:
        for c in self.constraints:
            if c.kind == "FormatStr":
                return c.args[0]
        return None


def _sig(name: str, nargs: int, vararg: bool = False,
         constraints: tuple[Constraint, ...] = ()) -> ExtSig:
    return ExtSig(name, nargs, vararg, constraints)


EXTERNAL_DB: dict[str, ExtSig] = {
    sig.name: sig for sig in [
        _sig("printf", 1, vararg=True, constraints=(
            Constraint("ZeroTerminated", (0,)),
            Constraint("FormatStr", (0,)),
        )),
        _sig("sprintf", 2, vararg=True, constraints=(
            Constraint("ZeroTerminated", (1,)),
            Constraint("FormatStr", (1,)),
            Constraint("Clear", (0,)),
        )),
        _sig("puts", 1, constraints=(
            Constraint("ZeroTerminated", (0,)),
        )),
        _sig("putchar", 1),
        _sig("memcpy", 3, constraints=(
            Constraint("ObjectSize", (0, 2)),
            Constraint("ObjectSize", (1, 2)),
            Constraint("Copy", (0, 1, 2)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("memmove", 3, constraints=(
            Constraint("ObjectSize", (0, 2)),
            Constraint("ObjectSize", (1, 2)),
            Constraint("Copy", (0, 1, 2)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("memset", 3, constraints=(
            Constraint("ObjectSize", (0, 2)),
            Constraint("Clear", (0, 2)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("memcmp", 3, constraints=(
            Constraint("ObjectSize", (0, 2)),
            Constraint("ObjectSize", (1, 2)),
        )),
        _sig("strlen", 1, constraints=(
            Constraint("ZeroTerminated", (0,)),
        )),
        _sig("strcpy", 2, constraints=(
            Constraint("ZeroTerminated", (1,)),
            Constraint("Clear", (0,)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("strcmp", 2, constraints=(
            Constraint("ZeroTerminated", (0,)),
            Constraint("ZeroTerminated", (1,)),
        )),
        _sig("strcat", 2, constraints=(
            Constraint("ZeroTerminated", (0,)),
            Constraint("ZeroTerminated", (1,)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("strtok", 2, constraints=(
            Constraint("ZeroTerminated", (1,)),
            Constraint("Derive", (RET, 0)),
        )),
        _sig("atoi", 1, constraints=(
            Constraint("ZeroTerminated", (0,)),
        )),
        _sig("malloc", 1),
        _sig("calloc", 2),
        _sig("free", 1),
        _sig("exit", 1),
        _sig("abs", 1),
        _sig("rand", 0),
        _sig("srand", 1),
        _sig("read_int", 0),
        _sig("read_buf", 2, constraints=(
            Constraint("ObjectSize", (0, 1)),
            Constraint("Clear", (0, 1)),
        )),
    ]
}

#: Variadic externals, whose call sites need the §5.2 refinement.
VARARG_FUNCTIONS = frozenset(
    name for name, sig in EXTERNAL_DB.items() if sig.vararg)
