"""Spot-check the full WYTIWYG pipeline on real workloads.

The complete sweep lives in benchmarks/; these tests pin the invariants
on the two cheapest workloads so plain ``pytest tests/`` still covers the
end-to-end path on realistic programs.
"""

import pytest

from repro.core import wytiwyg_recompile
from repro.emu import run_binary
from repro.workloads import WORKLOADS

CHEAP = ("gcc", "xalancbmk")


@pytest.mark.parametrize("name", CHEAP)
def test_workload_recompiles_faithfully(name):
    workload = WORKLOADS[name]
    image = workload.compile("gcc12", "3")
    result = wytiwyg_recompile(image, workload.inputs())
    assert not result.fallback
    for items in workload.inputs():
        native = run_binary(image, items)
        recovered = run_binary(result.recovered, items,
                               max_instructions=20_000_000)
        assert recovered.stdout == native.stdout
        assert recovered.exit_code == native.exit_code


@pytest.mark.parametrize("name", CHEAP)
def test_workload_accuracy_positive(name):
    workload = WORKLOADS[name]
    image = workload.compile("gcc12", "3")
    result = wytiwyg_recompile(image, workload.inputs())
    assert result.accuracy is not None
    assert result.accuracy.counts["matched"] > 0
    assert result.accuracy.recall > 0.5
