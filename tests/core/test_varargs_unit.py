"""Varargs recovery corner cases."""

from repro.cc import compile_source
from repro.core import recover_vararg_calls
from repro.emu import trace_binary
from repro.ir import run_module
from repro.ir.values import CallExt
from repro.lifting import lift_traces


def lift(src, inputs):
    image = compile_source(src, "gcc12", "0", "t")
    traces = trace_binary(image.stripped(), inputs)
    module = lift_traces(traces)
    return image, traces, module


def printf_arities(module):
    return sorted(len(i.args) for f in module.functions.values()
                  for i in f.instructions()
                  if isinstance(i, CallExt) and i.ext_name == "printf"
                  and not i.stack_args)


def test_same_site_max_args_across_runs():
    # One call site, two different format strings at runtime.
    src = r'''
int main() {
    int k = read_int();
    char *fmt = k ? "%d %d %d\n" : "%d\n";
    printf(fmt, 1, 2, 3);
    return 0;
}
'''
    image, traces, module = lift(src, [[0], [1]])
    recover_vararg_calls(module, traces.inputs)
    assert printf_arities(module) == [4]  # max over observed formats
    for items, expected in (([0], b"1\n"), ([1], b"1 2 3\n")):
        assert run_module(module, items).stdout == expected


def test_sprintf_format_position():
    src = r'''
int main() {
    char buf[32];
    sprintf(buf, "%d-%d", 4, 5);
    puts(buf);
    return 0;
}
'''
    image, traces, module = lift(src, [[]])
    recover_vararg_calls(module, traces.inputs)
    arities = [len(i.args) for f in module.functions.values()
               for i in f.instructions()
               if isinstance(i, CallExt) and i.ext_name == "sprintf"]
    assert arities == [4]
    assert run_module(module).stdout == b"4-5\n"


def test_percent_literal_not_an_argument():
    src = r'''
int main() { printf("100%% of %d\n", 7); return 0; }
'''
    image, traces, module = lift(src, [[]])
    recover_vararg_calls(module, traces.inputs)
    assert printf_arities(module) == [2]
    assert run_module(module).stdout == b"100% of 7\n"
