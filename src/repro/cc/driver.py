"""MiniC compiler driver: source text -> binary image."""

from __future__ import annotations

from ..binary.image import BinaryImage
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..opt.pipeline import optimize_module
from ..recompile.link import compile_ir
from .frontend import lower_to_ir
from .parser import parse
from .personalities import Personality, personality


def compile_to_ir(source: str, name: str = "minic",
                  config: Personality | None = None) -> Module:
    """Parse, lower and optimize MiniC to IR under ``config``.

    Optimization goes through the incremental pass manager
    (:mod:`repro.opt.manager`), so compiling the same corpus repeatedly
    under one personality — the test-suite and sweep pattern — reuses
    fixpoints across modules via the cross-stage fingerprint memo.
    """
    unit = parse(source)
    module = lower_to_ir(unit, name)
    verify_module(module)
    if config is not None and config.opt.level > 0:
        optimize_module(module, config.opt)
        verify_module(module)
    return module


def compile_source(source: str,
                   compiler: str = "gcc12",
                   opt_level: str = "3",
                   name: str = "minic") -> BinaryImage:
    """Compile MiniC source into a binary with the given personality.

    The resulting image carries ground-truth stack layouts in its debug
    section and provenance in its metadata.
    """
    config = personality(compiler, opt_level)
    module = compile_to_ir(source, name, config)
    module.metadata.update({
        "compiler": config.compiler,
        "opt": config.opt_level,
        "program": name,
    })
    return compile_ir(module, config.lower,
                      metadata=dict(module.metadata))
