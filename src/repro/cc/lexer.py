"""Lexer for MiniC, the C subset the workload programs are written in."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError

KEYWORDS = frozenset({
    "int", "char", "short", "void", "struct", "if", "else", "while", "for",
    "do", "return", "break", "continue", "sizeof", "switch", "case",
    "default", "unsigned", "extern", "static", "const",
})

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


@dataclass(frozen=True)
class Token:
    kind: str   # "ident" | "keyword" | "int" | "char" | "string" | "op" | "eof"
    text: str
    value: int | bytes | None
    line: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}>"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line))
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(source[start:i], 16)
            else:
                while i < n and source[i].isdigit():
                    i += 1
                value = int(source[start:i])
            tokens.append(Token("int", source[start:i], value, line))
            continue
        if ch == "'":
            i += 1
            if i < n and source[i] == "\\":
                esc = source[i + 1]
                if esc not in _ESCAPES:
                    raise CompileError(f"bad escape '\\{esc}'", line)
                value = _ESCAPES[esc]
                i += 2
            else:
                value = ord(source[i])
                i += 1
            if i >= n or source[i] != "'":
                raise CompileError("unterminated char literal", line)
            i += 1
            tokens.append(Token("char", f"'{value}'", value, line))
            continue
        if ch == '"':
            i += 1
            out = bytearray()
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    esc = source[i + 1]
                    if esc not in _ESCAPES:
                        raise CompileError(f"bad escape '\\{esc}'", line)
                    out.append(_ESCAPES[esc])
                    i += 2
                else:
                    out.append(ord(source[i]))
                    i += 1
            if i >= n:
                raise CompileError("unterminated string literal", line)
            i += 1
            tokens.append(Token("string", "", bytes(out), line))
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens
