"""Module-level lowering and linking (repro.recompile.link).

Covers the paths the per-function lowering tests don't: address-table
resolution for indirect calls, duplicate- and missing-symbol link
errors, global-initializer validation, and recompiled text placement.
"""

import pytest

from repro.emu import run_binary
from repro.errors import AsmError, LowerError
from repro.ir import Builder, Function, GlobalRef, GlobalVar, Module
from repro.ir.values import Const
from repro.recompile import LowerOptions, clear_lower_cache, compile_ir
from repro.recompile.link import RECOMP_TEXT_BASE, lower_module, recompile_ir
from repro.recompile.lower import RESOLVER_NAME


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_lower_cache()
    yield
    clear_lower_cache()


def _indirect_module():
    m = Module()
    target = Function("target", [])
    b = Builder(target)
    b.position(target.add_block("entry"))
    b.ret([Const(5)])
    target.orig_entry = 0x1234
    m.add_function(target)
    m.address_table[0x1234] = "target"

    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    call = b.call_indirect(Const(0x1234), [])
    b.ret([call])
    m.add_function(main)
    m.entry_name = "main"
    return m


def _returning(value) -> Module:
    m = Module()
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([value])
    return m


# -- address-table resolution -------------------------------------------------


def test_indirect_call_resolves_through_address_table():
    module = _indirect_module()
    program = lower_module(module)
    assert any(f.name == RESOLVER_NAME for f in program.functions)
    assert run_binary(compile_ir(module)).exit_code == 5


def test_resolver_traps_on_address_outside_table():
    module = _indirect_module()
    func = module.functions["main"]
    call = next(i for i in func.instructions()
                if type(i).__name__ == "CallInd")
    call.ops[0] = Const(0xDEAD)
    func.invalidate()
    result = run_binary(compile_ir(module))
    # build_resolver's dispatcher halts with trap_code - 1 so an
    # untable'd target is distinguishable from an untraced-path trap.
    assert result.exit_code == LowerOptions().trap_code - 1


def test_no_resolver_emitted_without_indirect_calls():
    module = _returning(Const(0))
    module.address_table[0x1000] = "main"
    program = lower_module(module)
    assert not any(f.name == RESOLVER_NAME for f in program.functions)


# -- symbol errors ------------------------------------------------------------


def test_duplicate_symbol_between_global_and_function():
    module = _returning(Const(0))
    module.add_global(GlobalVar("main", 4))
    with pytest.raises(AsmError, match="duplicate"):
        compile_ir(module)


def test_missing_symbol_in_code_is_a_link_error():
    module = _returning(Const(0))
    b = Builder(module.functions["main"])
    b.position(module.functions["main"].entry)
    module.functions["main"].entry.instrs.pop()  # drop the ret
    b.ret([b.load(GlobalRef("nowhere"))])
    module.functions["main"].invalidate()
    with pytest.raises(AsmError, match="undefined label 'nowhere'"):
        compile_ir(module)


def test_missing_symbol_in_data_is_a_link_error():
    module = _returning(Const(0))
    module.add_global(GlobalVar("table", 4, [GlobalRef("nowhere")]))
    with pytest.raises(AsmError, match="undefined label 'nowhere'"):
        compile_ir(module)


# -- global initializers ------------------------------------------------------


def test_initializer_overflow_is_a_lower_error():
    module = _returning(Const(0))
    module.add_global(GlobalVar("g", 4, [1, 2]))
    with pytest.raises(LowerError, match="overflows"):
        compile_ir(module)


def test_bad_initializer_cell_is_a_lower_error():
    module = _returning(Const(0))
    module.add_global(GlobalVar("g", 8, ["not-a-word"]))
    with pytest.raises(LowerError, match="bad initializer cell"):
        compile_ir(module)


def test_word_initializer_pads_to_size():
    module = _returning(Const(0))
    module.add_global(GlobalVar("g", 16, [7]))
    item = next(d for d in lower_module(module).data if d.name == "g")
    assert item.payload == [7, 0, 0, 0]


# -- recompiled placement -----------------------------------------------------


def test_recompile_ir_places_text_clear_of_original():
    module = _returning(Const(3))
    image = recompile_ir(module)
    assert image.text.base == RECOMP_TEXT_BASE
    assert run_binary(image).exit_code == 3
