"""Regenerates Figure 7: stack-layout recovery accuracy (paper §6.3).

Expected shape: matched dominates everywhere, with benchmark-dependent
oversized/undersized/missed tails; overall precision and recall in the
~90% band (paper: 94.4% / 87.6%)."""

import pytest

from repro.evaluation import build_figure7

from .conftest import selected_workloads

_NAMES = selected_workloads()


@pytest.fixture(scope="module")
def figure7():
    fig = build_figure7(_NAMES)
    rendered = fig.render()
    print("\n=== Figure 7 (stack object accuracy) ===")
    print(rendered)
    from .test_table1 import _save
    _save("figure7.txt", rendered)
    return fig


def test_print_figure7(benchmark, figure7):
    assert figure7.precision > 0.6
    assert figure7.recall > 0.6
    for name in _NAMES:
        ratios = figure7.ratios(name)
        assert ratios["matched"] >= 0.5, (name, ratios)
    benchmark(lambda: figure7.ratios(_NAMES[0]))


def test_accuracy_metrics(benchmark, figure7):
    benchmark.extra_info["precision"] = figure7.precision
    benchmark.extra_info["recall"] = figure7.recall
    benchmark(lambda: (figure7.precision, figure7.recall))
