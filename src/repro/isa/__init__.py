"""The repro 32-bit instruction set architecture.

Public surface: register views (:class:`Reg` and the ``EAX``-style
singletons), instruction/operand construction (:func:`ins`, :func:`jcc`,
:class:`Imm`, :class:`Mem`, :class:`Label`, :class:`ImportRef`), the
two-pass :func:`assemble`, and the :class:`Disassembler`.
"""

from .assembler import AsmFunction, AsmItem, AsmProgram, DataItem, assemble
from .disassembler import Disassembler
from .instructions import (
    CONDITION_CODES,
    MNEMONICS,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Operand,
    ins,
    jcc,
    setcc,
)
from .registers import (
    AH,
    AL,
    ALLOCATABLE,
    AX,
    CALLEE_SAVED,
    CALLER_SAVED,
    CL,
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    GPR32,
    Reg,
    read_view,
    reg,
    write_view,
)

__all__ = [
    "AH", "AL", "ALLOCATABLE", "AX", "CALLEE_SAVED", "CALLER_SAVED", "CL",
    "CONDITION_CODES", "Disassembler", "EAX", "EBP", "EBX", "ECX", "EDI",
    "EDX", "ESI", "ESP", "GPR32", "Imm", "ImportRef", "Instruction", "Label",
    "Mem", "MNEMONICS", "Operand", "Reg", "AsmFunction", "AsmItem",
    "AsmProgram", "DataItem", "assemble", "ins", "jcc", "read_view", "reg",
    "setcc", "write_view",
]
