"""Textual rendering of IR modules (debugging and golden tests)."""

from __future__ import annotations

from .module import Function, Module


def function_to_text(func: Function) -> str:
    func.renumber()
    params = ", ".join(f"%{p.name}" for p in func.params)
    header = f"func @{func.name}({params}) -> {func.nresults}"
    if func.orig_entry is not None:
        header += f"  ; orig {func.orig_entry:#x}"
    lines = [header + " {"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instrs:
            lines.append(f"  {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def module_to_text(module: Module) -> str:
    lines = [f"; module {module.name}"]
    for g in module.globals.values():
        pin = f" @ {g.fixed_addr:#x}" if g.fixed_addr is not None else ""
        lines.append(f"global @{g.name} [{g.size} bytes]{pin}")
    for func in module.functions.values():
        lines.append("")
        lines.append(function_to_text(func))
    return "\n".join(lines) + "\n"
