"""IR interpreter semantics."""

import pytest

from repro.errors import InterpError
from repro.ir import (
    Builder,
    Const,
    FuncRef,
    Function,
    GlobalRef,
    GlobalVar,
    Interpreter,
    Module,
    run_module,
)


def simple_module():
    m = Module()
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    return m, f, Builder(f)


def test_arithmetic_and_exit_code():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    v = b.binop("mul", Const(6), Const(7))
    b.ret([v])
    assert run_module(m).exit_code == 42


def test_signed_division_truncates_toward_zero():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    q = b.binop("div", Const(-7), Const(2))
    r = b.binop("rem", Const(-7), Const(2))
    s = b.binop("mul", q, r)  # (-3) * (-1) = 3
    b.ret([s])
    assert run_module(m).exit_code == 3


def test_division_by_zero_raises():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    q = b.binop("div", Const(1), Const(0))
    b.ret([q])
    with pytest.raises(InterpError):
        run_module(m)


def test_loop_with_phi():
    m, f, b = simple_module()
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    phi = b.phi([])
    total = b.phi([])
    phi.add_incoming(entry, Const(0))
    total.add_incoming(entry, Const(0))
    nxt = b.add(phi, Const(1))
    ntotal = b.add(total, phi)
    phi.add_incoming(loop, nxt)
    total.add_incoming(loop, ntotal)
    cond = b.icmp("slt", nxt, Const(5))
    b.condbr(cond, loop, done)
    b.position(done)
    b.ret([total])  # 0+1+2+3 = ... phi values before increment
    assert run_module(m).exit_code == 0 + 1 + 2 + 3


def test_memory_and_globals():
    m, f, b = simple_module()
    m.add_global(GlobalVar("g", 8, b"\x2a\x00\x00\x00"))
    b.position(f.add_block("entry"))
    v = b.load(GlobalRef("g"))
    b.store(b.add(GlobalRef("g"), Const(4)), v)
    v2 = b.load(b.add(GlobalRef("g"), Const(4)))
    b.ret([v2])
    assert run_module(m).exit_code == 42


def test_fixed_address_global():
    m, f, b = simple_module()
    m.add_global(GlobalVar("pinned", 4, b"\x07\x00\x00\x00",
                           fixed_addr=0x5000))
    b.position(f.add_block("entry"))
    v = b.load(Const(0x5000))
    b.ret([v])
    assert run_module(m).exit_code == 7


def test_alloca_frames_do_not_overlap_across_calls():
    m = Module()
    leaf = Function("leaf", [])
    b = Builder(leaf)
    b.position(leaf.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(99))
    b.ret([Const(0)])
    m.add_function(leaf)

    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    slot = b.alloca(4)
    b.store(slot, Const(7))
    b.call("leaf", [])
    v = b.load(slot)
    b.ret([v])
    m.add_function(main)
    m.entry_name = "main"
    assert run_module(m).exit_code == 7


def test_multi_result_calls():
    m = Module()
    pair = Function("pair", ["x"])
    pair.nresults = 2
    b = Builder(pair)
    b.position(pair.add_block("entry"))
    b.ret([b.add(pair.params[0], Const(1)),
           b.add(pair.params[0], Const(2))])
    m.add_function(pair)

    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    call = b.call("pair", [Const(10)], nresults=2)
    r0 = b.result(call, 0)
    r1 = b.result(call, 1)
    b.ret([b.binop("mul", r0, r1)])
    m.add_function(main)
    m.entry_name = "main"
    assert run_module(m).exit_code == 11 * 12


def test_indirect_call_through_address_table():
    m = Module()
    target = Function("target", [])
    b = Builder(target)
    b.position(target.add_block("entry"))
    b.ret([Const(5)])
    target.orig_entry = 0x1234
    m.add_function(target)
    m.address_table[0x1234] = "target"

    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    call = b.call_indirect(Const(0x1234), [])
    b.ret([call])
    m.add_function(main)
    m.entry_name = "main"
    assert run_module(m).exit_code == 5


def test_indirect_call_unknown_address_raises():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    call = b.call_indirect(Const(0xDEAD), [])
    b.ret([call])
    with pytest.raises(InterpError):
        run_module(m)


def test_unreachable_raises():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    b.unreachable("test")
    with pytest.raises(InterpError):
        run_module(m)


def test_switch_dispatch():
    m, f, b = simple_module()
    entry = f.add_block("entry")
    c1 = f.add_block("c1")
    c2 = f.add_block("c2")
    dflt = f.add_block("dflt")
    b.position(entry)
    b.switch(Const(7), [(5, c1), (7, c2)], dflt)
    for block, code in ((c1, 1), (c2, 2), (dflt, 0)):
        b.position(block)
        b.ret([Const(code)])
    assert run_module(m).exit_code == 2


def test_external_call_and_exit():
    m, f, b = simple_module()
    m.add_global(GlobalVar("fmt", 4, b"%d\x00"))
    b.position(f.add_block("entry"))
    b.call_external("printf", [GlobalRef("fmt"), Const(11)])
    b.call_external("exit", [Const(4)])
    b.ret([Const(0)])
    result = run_module(m)
    assert result.stdout == b"11" and result.exit_code == 4


def test_step_budget():
    m, f, b = simple_module()
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    b.br(loop)
    with pytest.raises(InterpError):
        Interpreter(m, max_steps=500).run()


def test_unary_extensions():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    v = b.unary("sext8", Const(0x80))
    w = b.unary("zext8", v)
    b.ret([b.binop("sub", b.unary("not", w), v)])
    # not(0x80)=0xFFFFFF7F ; sext8(0x80)=0xFFFFFF80; diff = -1 mod 2^32
    assert run_module(m).exit_code == 0xFFFFFFFF
