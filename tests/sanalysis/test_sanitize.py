"""Unit tests for the IR sanitizer lints (symbolized IR)."""

from repro.ir import Builder, Const, Function
from repro.opt.alias import AliasAnalysis
from repro.sanalysis import sanitize_function
from repro.sanalysis.sanitize import _alloca_roots, _check_escapes


def fresh(name="f", params=()):
    f = Function(name, list(params))
    b = Builder(f)
    b.position(f.add_block("entry"))
    return f, b


def kinds(findings):
    return {(f.severity, f.kind) for f in findings}


# -- uninit-read -------------------------------------------------------------


def test_store_then_load_is_clean():
    f, b = fresh()
    a = b.alloca(4, 4, "x")
    b.store(a, Const(1), 4)
    v = b.load(a, 4)
    b.ret([v])
    assert sanitize_function(f) == []


def test_load_before_store_warns():
    f, b = fresh()
    a = b.alloca(4, 4, "x")
    v = b.load(a, 4)
    b.store(a, Const(1), 4)
    b.ret([v])
    assert ("warning", "uninit-read") in kinds(sanitize_function(f))


def test_partial_initialization_warns_on_wider_load():
    f, b = fresh()
    a = b.alloca(8, 4, "pair")
    b.store(a, Const(1), 4)      # only [0, 4) initialized
    wide = b.add(a, Const(4))
    v = b.load(wide, 4)          # [4, 8) never stored
    b.ret([v])
    assert ("warning", "uninit-read") in kinds(sanitize_function(f))


def test_join_requires_init_on_all_paths():
    f, b = fresh(params=("c",))
    a = None
    entry = f.entry
    then = f.add_block("then")
    els = f.add_block("els")
    out = f.add_block("out")
    b.position(entry)
    a = b.alloca(4, 4, "x")
    b.condbr(f.params[0], then, els)
    b.position(then)
    b.store(a, Const(1), 4)
    b.br(out)
    b.position(els)
    b.br(out)                     # no store on this path
    b.position(out)
    v = b.load(a, 4)
    b.ret([v])
    assert ("warning", "uninit-read") in kinds(sanitize_function(f))


def test_init_on_both_paths_is_clean():
    f, b = fresh(params=("c",))
    entry = f.entry
    then = f.add_block("then")
    els = f.add_block("els")
    out = f.add_block("out")
    b.position(entry)
    a = b.alloca(4, 4, "x")
    b.condbr(f.params[0], then, els)
    b.position(then)
    b.store(a, Const(1), 4)
    b.br(out)
    b.position(els)
    b.store(a, Const(2), 4)
    b.br(out)
    b.position(out)
    v = b.load(a, 4)
    b.ret([v])
    assert sanitize_function(f) == []


def test_variable_offset_store_initializes_whole_alloca():
    f, b = fresh(params=("i",))
    a = b.alloca(16, 4, "arr")
    slot = b.add(a, f.params[0])
    b.store(slot, Const(0), 4)
    v = b.load(a, 4)
    b.ret([v])
    assert not [x for x in sanitize_function(f)
                if x.kind == "uninit-read"]


# -- oob-access --------------------------------------------------------------


def test_constant_offset_past_end_is_error():
    f, b = fresh()
    a = b.alloca(8, 4, "x")
    b.store(a, Const(1), 4)
    past = b.add(a, Const(8))
    v = b.load(past, 4)
    b.ret([v])
    assert ("error", "oob-access") in kinds(sanitize_function(f))


def test_negative_offset_is_error():
    f, b = fresh()
    a = b.alloca(8, 4, "x")
    before = b.sub(a, Const(4))
    b.store(before, Const(1), 4)
    b.ret([Const(0)])
    assert ("error", "oob-access") in kinds(sanitize_function(f))


def test_in_bounds_tail_access_is_clean():
    f, b = fresh()
    a = b.alloca(8, 4, "x")
    b.store(a, Const(1), 4)
    tail = b.add(a, Const(4))
    b.store(tail, Const(2), 4)
    v = b.load(tail, 4)
    b.ret([v])
    assert sanitize_function(f) == []


# -- escapes -----------------------------------------------------------------


def test_escaping_address_is_reported_info():
    f, b = fresh()
    a = b.alloca(4, 4, "x")
    b.store(a, Const(1), 4)
    b.call_external("puts", [a])
    b.ret([Const(0)])
    findings = sanitize_function(f)
    assert ("info", "escaped-frame-pointer") in kinds(findings)
    # Alias analysis agrees the alloca escapes: no divergence error.
    assert "alias-divergence" not in {x.kind for x in findings}


def test_stored_address_escapes():
    f, b = fresh()
    a = b.alloca(4, 4, "x")
    cell = b.alloca(4, 4, "cell")
    b.store(a, Const(1), 4)
    b.store(cell, a, 4)           # the *address* of x stored as a value
    b.ret([Const(0)])
    findings = sanitize_function(f)
    assert ("info", "escaped-frame-pointer") in kinds(findings)


def test_alias_divergence_flagged_when_alias_misses_escape():
    f, b = fresh()
    a = b.alloca(4, 4, "x")
    b.store(a, Const(1), 4)
    b.call_external("puts", [a])
    b.ret([Const(0)])
    aa = AliasAnalysis(f)
    aa.escaped.discard(a)         # simulate an unsound alias result
    findings = _check_escapes(f, aa, _alloca_roots(f))
    assert ("error", "alias-divergence") in kinds(findings)


def test_function_without_allocas_is_skipped():
    f, b = fresh(params=("x",))
    b.ret([f.params[0]])
    assert sanitize_function(f) == []


# -- interprocedural escape cross-check --------------------------------------


def test_interproc_escape_vs_private_alloca_diverges():
    # The interproc summaries proved [-32, -8) escapes via a callee,
    # but nothing in the symbolized body passes the address anywhere:
    # alias analysis calls the alloca private, which is exactly the
    # divergence the cross-check must surface.
    f, b = fresh()
    a = b.alloca(12, 4, "sv_m32")
    b.store(a, Const(1), 4)
    v = b.load(a, 4)
    b.ret([v])
    f.meta["interproc_escapes"] = [[-32, -8, ["main", "fill"]]]
    findings = sanitize_function(f)
    assert ("error", "alias-divergence") in kinds(findings)
    div = next(x for x in findings if x.kind == "alias-divergence")
    assert div.provenance["chain"] == ["main", "fill"]
    assert "main -> fill" in div.message
    assert a.var_name in div.message


def test_interproc_escape_agreeing_with_alias_is_clean():
    f, b = fresh()
    a = b.alloca(12, 4, "sv_m32")
    b.store(a, Const(1), 4)
    b.call_external("use", [a])   # alias analysis sees the escape too
    b.ret([Const(0)])
    f.meta["interproc_escapes"] = [[-32, -8, ["main", "fill"]]]
    findings = sanitize_function(f)
    assert "alias-divergence" not in {x.kind for x in findings}


def test_interproc_escape_outside_every_alloca_is_ignored():
    f, b = fresh()
    a = b.alloca(12, 4, "sv_m32")
    b.store(a, Const(1), 4)
    v = b.load(a, 4)
    b.ret([v])
    f.meta["interproc_escapes"] = [[-100, -80, ["main", "fill"]]]
    findings = sanitize_function(f)
    assert "alias-divergence" not in {x.kind for x in findings}


def test_unnamed_alloca_is_not_matched_by_region():
    # Only sv_m/sv_p-named allocas have a known frame offset; others
    # cannot be correlated with sp0-relative escape regions.
    f, b = fresh()
    a = b.alloca(12, 4, "tmp")
    b.store(a, Const(1), 4)
    v = b.load(a, 4)
    b.ret([v])
    f.meta["interproc_escapes"] = [[-32, -8, ["main", "fill"]]]
    findings = sanitize_function(f)
    assert "alias-divergence" not in {x.kind for x in findings}
