"""Constant folding and algebraic simplification (instcombine-lite).

Works on one function at a time, iterating local rewrites to a fixed
point.  Lifted code is full of foldable address arithmetic (the
``sp0 - 4 - 64 - 4`` chains of paper §4.1), so this pass does a lot of
the canonicalization work that refinement lifting relies on.
"""

from __future__ import annotations

from ..ir.module import Function
from ..ir.values import BinOp, Const, ICmp, Instr, Unary, Value
from .analysis import CFG_ANALYSES

#: Folding replaces and rewrites pure instructions in place; terminators
#: and the block list are never touched, so cached CFG analyses survive.
PRESERVES = CFG_ANALYSES

MASK32 = 0xFFFFFFFF


def _signed(v: int) -> int:
    v &= MASK32
    return v - 0x100000000 if v >= 0x80000000 else v


def fold_binop(op: str, a: int, b: int) -> int | None:
    if op == "add":
        return (a + b) & MASK32
    if op == "sub":
        return (a - b) & MASK32
    if op == "mul":
        return (_signed(a) * _signed(b)) & MASK32
    if op == "div":
        if _signed(b) == 0:
            return None
        return int(_signed(a) / _signed(b)) & MASK32
    if op == "rem":
        sb = _signed(b)
        if sb == 0:
            return None
        sa = _signed(a)
        return (sa - int(sa / sb) * sb) & MASK32
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 31)) & MASK32
    if op == "shr":
        return (a & MASK32) >> (b & 31)
    if op == "sar":
        return (_signed(a) >> (b & 31)) & MASK32
    return None


def fold_icmp(pred: str, a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    table = {
        "eq": a == b, "ne": a != b,
        "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
        "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
    }
    return 1 if table[pred] else 0


def fold_unary(op: str, a: int) -> int:
    if op == "neg":
        return (-a) & MASK32
    if op == "not":
        return (~a) & MASK32
    if op in ("zext8", "trunc8"):
        return a & 0xFF
    if op in ("zext16", "trunc16"):
        return a & 0xFFFF
    if op == "sext8":
        v = a & 0xFF
        return (v | 0xFFFFFF00) if v & 0x80 else v
    if op == "sext16":
        v = a & 0xFFFF
        return (v | 0xFFFF0000) if v & 0x8000 else v
    raise ValueError(op)


_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})

#: Sentinel: the instruction was rewritten in place (no replacement value),
#: but the pass should run another round.
MUTATED = object()


def _simplify(instr: Instr) -> Value | object | None:
    """Return a replacement value for ``instr``, MUTATED, or None."""
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            folded = fold_binop(instr.opcode, lhs.value, rhs.value)
            if folded is not None:
                return Const(folded)
        # Canonicalize constants to the right for commutative ops.
        if instr.opcode in _COMMUTATIVE and isinstance(lhs, Const) \
                and not isinstance(rhs, Const):
            instr.ops = [rhs, lhs]
            lhs, rhs = instr.lhs, instr.rhs
        if isinstance(rhs, Const):
            c = rhs.value
            op = instr.opcode
            if c == 0 and op in ("add", "sub", "or", "xor", "shl", "shr",
                                 "sar"):
                return lhs
            if c == 0 and op in ("mul", "and"):
                return Const(0)
            if c == 1 and op == "mul":
                return lhs
            if c == MASK32 and op == "and":
                return lhs
            # Reassociate (x op c1) op c2 -> x op (c1 op c2) for add/sub
            # chains, the shape sp0-folding produces.
            if op in ("add", "sub") and isinstance(lhs, BinOp) \
                    and lhs.opcode in ("add", "sub") \
                    and isinstance(lhs.rhs, Const):
                inner_c = lhs.rhs.value if lhs.opcode == "add" \
                    else (-lhs.rhs.value) & MASK32
                outer_c = c if op == "add" else (-c) & MASK32
                total = (inner_c + outer_c) & MASK32
                instr.ops = [lhs.lhs, Const(total)]
                # Normalize to a single add.
                instr.opcode = "add"
                return MUTATED
            # sub x, c -> add x, -c (canonical form for later passes)
            if op == "sub":
                instr.opcode = "add"
                instr.ops = [lhs, Const((-c) & MASK32)]
                return MUTATED
        if instr.opcode == "sub" and lhs is rhs:
            return Const(0)
        if instr.opcode == "xor" and lhs is rhs:
            return Const(0)
        return None
    if isinstance(instr, ICmp):
        if isinstance(instr.lhs, Const) and isinstance(instr.rhs, Const):
            return Const(fold_icmp(instr.pred, instr.lhs.value,
                                   instr.rhs.value))
        if instr.lhs is instr.rhs:
            return Const(fold_icmp(instr.pred, 0, 0))
        return None
    if isinstance(instr, Unary):
        if isinstance(instr.src, Const):
            return Const(fold_unary(instr.opcode, instr.src.value))
        # zext8(zext8 x) etc.
        if isinstance(instr.src, Unary) and instr.src.opcode == instr.opcode:
            return instr.src
        return None
    return None


def fold_constants(func: Function) -> bool:
    """Iterate local simplifications to a fixed point."""
    changed = False
    while True:
        replacements: dict[Instr, Value] = {}
        mutated = False
        for block in func.blocks:
            for instr in block.instrs:
                new = _simplify(instr)
                if new is MUTATED:
                    mutated = True
                elif new is not None and new is not instr:
                    replacements[instr] = new
        if mutated:
            # In-place rewrites (reassociation, sub->add) change operands
            # and opcodes without going through the replacement sweep, so
            # the version-keyed caches must be told explicitly.
            func.invalidate()
        if not replacements:
            if mutated:
                changed = True
                continue
            return changed
        changed = True
        # Resolve chains (a -> b -> const).
        def resolve(v: Value) -> Value:
            seen = set()
            while isinstance(v, Instr) and v in replacements:
                if id(v) in seen:
                    break
                seen.add(id(v))
                v = replacements[v]
            return v

        for block in func.blocks:
            block.instrs = [i for i in block.instrs
                            if i not in replacements]
            for instr in block.instrs:
                instr.ops = [resolve(op) for op in instr.ops]
        func.invalidate()
