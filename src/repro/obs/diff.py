"""Run-report diffing and the perf-regression gate.

Two comparison engines over the observability artifacts:

* :func:`diff_reports` — structural diff of two obs report documents
  (:func:`repro.obs.export` output): spans that appeared/disappeared,
  counter deltas, gauge changes, and timer/histogram mean ratios with a
  noise threshold so sub-millisecond jitter does not read as a change.
  ``python -m repro obs diff a.json b.json`` renders it.
* :func:`regress` — compares a fresh pytest-benchmark pass against a
  committed baseline (the ``BENCH_*.json`` trajectory): per benchmark,
  the fresh mean must stay within ``tolerance`` × the baseline mean.
  ``python -m repro obs regress --baseline ... --fresh ...`` exits
  nonzero past tolerance, which is what the CI ``bench-regress`` job
  gates on.

Both consume plain dicts, tolerate schema v1 documents (pre-percentile
histograms), and return plain dicts so callers can JSON them.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .report import iter_spans

__all__ = ["diff_reports", "load_benchmarks", "regress", "render_diff",
           "render_regress"]


def _span_counts(doc: dict) -> Counter:
    return Counter(s.get("name", "") for s in iter_spans(doc))


def _dict_diff(a: dict, b: dict) -> dict:
    added = {k: b[k] for k in sorted(set(b) - set(a))}
    removed = {k: a[k] for k in sorted(set(a) - set(b))}
    changed = {k: {"a": a[k], "b": b[k], "delta": b[k] - a[k]}
               for k in sorted(set(a) & set(b)) if a[k] != b[k]}
    return {"added": added, "removed": removed, "changed": changed}


def _timer_diff(a: dict, b: dict, ratio_threshold: float,
                min_seconds: float) -> dict:
    out: dict = {"added": sorted(set(b) - set(a)),
                 "removed": sorted(set(a) - set(b)),
                 "changed": {}}
    for name in sorted(set(a) & set(b)):
        a_mean = a[name].get("mean", 0.0)
        b_mean = b[name].get("mean", 0.0)
        if max(a_mean, b_mean) < min_seconds:
            continue          # below the noise floor
        ratio = b_mean / a_mean if a_mean else float("inf")
        if abs(ratio - 1.0) < ratio_threshold:
            continue
        out["changed"][name] = {
            "a_mean": a_mean, "b_mean": b_mean, "ratio": ratio,
            "a_p95": a[name].get("p95"), "b_p95": b[name].get("p95"),
        }
    return out


def diff_reports(a: dict, b: dict, *, ratio_threshold: float = 0.2,
                 min_seconds: float = 1e-3) -> dict:
    """Structural diff of two obs report documents (a -> b).

    Timer/histogram entries below ``min_seconds`` mean wall time, or
    whose mean ratio moved less than ``ratio_threshold``, are treated
    as noise and omitted from ``changed``.
    """
    a_spans, b_spans = _span_counts(a), _span_counts(b)
    a_metrics = a.get("metrics", {})
    b_metrics = b.get("metrics", {})
    return {
        "spans": {
            "added": {n: c for n, c in sorted((b_spans - a_spans)
                                              .items())},
            "removed": {n: c for n, c in sorted((a_spans - b_spans)
                                                .items())},
        },
        "counters": _dict_diff(a_metrics.get("counters", {}),
                               b_metrics.get("counters", {})),
        "gauges": _dict_diff(a_metrics.get("gauges", {}),
                             b_metrics.get("gauges", {})),
        "timers": _timer_diff(a_metrics.get("timers", {}),
                              b_metrics.get("timers", {}),
                              ratio_threshold, min_seconds),
        "histograms": _timer_diff(a_metrics.get("histograms", {}),
                                  b_metrics.get("histograms", {}),
                                  ratio_threshold, min_seconds),
    }


def render_diff(diff: dict) -> str:
    """Human-readable rendering of a :func:`diff_reports` result."""
    lines = ["=== obs report diff (a -> b) ==="]
    spans = diff.get("spans", {})
    for verb in ("added", "removed"):
        for name, n in spans.get(verb, {}).items():
            lines.append(f"span {verb:<8} {name}  x{n}")
    counters = diff.get("counters", {})
    for name, value in counters.get("added", {}).items():
        lines.append(f"counter added    {name} = {value:,}")
    for name, value in counters.get("removed", {}).items():
        lines.append(f"counter removed  {name} (was {value:,})")
    for name, row in counters.get("changed", {}).items():
        lines.append(f"counter changed  {name}  {row['a']:,} -> "
                     f"{row['b']:,}  ({row['delta']:+,})")
    for name, row in diff.get("gauges", {}).get("changed", {}).items():
        lines.append(f"gauge changed    {name}  {row['a']} -> "
                     f"{row['b']}")
    for family in ("timers", "histograms"):
        rows = diff.get(family, {})
        for name in rows.get("added", []):
            lines.append(f"{family[:-1]} added    {name}")
        for name in rows.get("removed", []):
            lines.append(f"{family[:-1]} removed  {name}")
        for name, row in rows.get("changed", {}).items():
            lines.append(
                f"{family[:-1]} changed  {name}  mean "
                f"{row['a_mean'] * 1e3:.3f} -> "
                f"{row['b_mean'] * 1e3:.3f} ms  "
                f"({row['ratio']:.2f}x)")
    if len(lines) == 1:
        lines.append("(no differences above thresholds)")
    return "\n".join(lines)


# -- bench regression gate ---------------------------------------------------


def load_benchmarks(paths) -> dict[str, dict]:
    """Fold one or more pytest-benchmark JSON files into a
    ``name -> {mean, median, extra_info, source}`` map.  A benchmark
    name appearing in several files keeps the last occurrence."""
    out: dict[str, dict] = {}
    for path in paths:
        doc = json.loads(Path(path).read_text())
        for bench in doc.get("benchmarks", []):
            stats = bench.get("stats", {})
            out[bench["name"]] = {
                "mean": stats.get("mean", 0.0),
                "median": stats.get("median", 0.0),
                "extra_info": bench.get("extra_info", {}),
                "source": str(path),
            }
    return out


def regress(baseline: dict[str, dict], fresh: dict[str, dict],
            tolerance: float = 1.5) -> dict:
    """Compare a fresh benchmark pass against the committed baseline.

    A benchmark regresses when ``fresh_mean > tolerance *
    baseline_mean``.  Benchmarks present on only one side are reported
    (a vanished benchmark means the gate silently lost coverage) but do
    not fail the gate by themselves; an empty intersection does —
    comparing nothing must not pass.
    """
    rows: dict[str, dict] = {}
    regressions: list[str] = []
    for name in sorted(set(baseline) & set(fresh)):
        base_mean = baseline[name]["mean"]
        fresh_mean = fresh[name]["mean"]
        ratio = fresh_mean / base_mean if base_mean else float("inf")
        failed = ratio > tolerance
        rows[name] = {"baseline_mean": base_mean,
                      "fresh_mean": fresh_mean, "ratio": ratio,
                      "regressed": failed}
        if failed:
            regressions.append(name)
    missing = sorted(set(baseline) - set(fresh))
    extra = sorted(set(fresh) - set(baseline))
    return {
        "tolerance": tolerance,
        "compared": rows,
        "regressions": regressions,
        "missing_from_fresh": missing,
        "new_in_fresh": extra,
        "ok": bool(rows) and not regressions,
    }


def render_regress(result: dict) -> str:
    """Human-readable rendering of a :func:`regress` result."""
    lines = [f"=== bench regression gate (tolerance "
             f"{result['tolerance']:.2f}x) ==="]
    rows = result.get("compared", {})
    if rows:
        width = max(len(n) for n in rows)
        for name, row in rows.items():
            verdict = "REGRESSED" if row["regressed"] else "ok"
            lines.append(
                f"{name:<{width}}  {row['baseline_mean'] * 1e3:>9.2f} ->"
                f" {row['fresh_mean'] * 1e3:>9.2f} ms  "
                f"({row['ratio']:.2f}x)  {verdict}")
    else:
        lines.append("no benchmarks in common — gate fails")
    for name in result.get("missing_from_fresh", []):
        lines.append(f"warning: baseline bench {name} missing from "
                     f"the fresh pass")
    for name in result.get("new_in_fresh", []):
        lines.append(f"note: fresh bench {name} has no baseline yet")
    lines.append("PASS" if result.get("ok") else "FAIL")
    return "\n".join(lines)
