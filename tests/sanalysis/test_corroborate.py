"""Unit tests for the static-vs-dynamic layout corroboration pass."""

from repro.core.layout import FrameLayout, FrameVariable, apply_widenings
from repro.sanalysis import StaticAccess, corroborate_function
from repro.sanalysis.absint import FrameAccessSet
from repro.sanalysis.corroborate import _regions, _subtract


def access_set(accesses, func="fn_1000"):
    aset = FrameAccessSet(func)
    for a in accesses:
        aset.add(a)
    return aset


def layout_with(spans, func="fn_1000"):
    layout = FrameLayout(func)
    layout.variables = [FrameVariable(s, e) for s, e in spans]
    return layout


def exact(lo, width=4, kind="load"):
    return StaticAccess(lo, lo + width, width, kind, exact=True)


def derived(anchor, width=4, kind="load"):
    return StaticAccess(anchor, None, width, kind, derived=True)


# -- interval subtraction ----------------------------------------------------


def test_subtract_middle_and_edges():
    assert _subtract(-16, 0, [(-12, -8)]) == [(-16, -12), (-8, 0)]
    assert _subtract(-16, 0, [(-16, -8)]) == [(-8, 0)]
    assert _subtract(-16, 0, [(-16, 0)]) == []
    assert _subtract(-16, 0, []) == [(-16, 0)]


# -- unsound splits ----------------------------------------------------------


def test_contained_access_is_corroborated():
    findings, suggestions = corroborate_function(
        access_set([exact(-8)]), layout_with([(-8, -4)]))
    assert findings == [] and suggestions == []


def test_straddling_access_is_unsound_split():
    # Static 4-byte load at -6 crosses the boundary between the two
    # recovered variables: splitting there would cut one object in two.
    findings, _ = corroborate_function(
        access_set([exact(-6)]), layout_with([(-12, -4), (-4, 0)]))
    kinds = {(f.severity, f.kind) for f in findings}
    assert ("error", "unsound-split") in kinds


def test_straddles_deduplicate():
    # The same access repeated (one per loop unroll, say) reports once
    # per straddled variable, not once per occurrence.
    findings, _ = corroborate_function(
        access_set([exact(-6, kind="load"), exact(-6, kind="load")]),
        layout_with([(-4, 0)]))
    splits = [f for f in findings if f.kind == "unsound-split"]
    assert len(splits) == 1


# -- coverage gaps -----------------------------------------------------------


def test_derived_access_clamped_reports_gap():
    # Derived access anchored at -64; next static evidence at -16 clamps
    # the extent; the traced variable only covers [-64, -52).
    findings, suggestions = corroborate_function(
        access_set([derived(-64), exact(-16)]),
        layout_with([(-64, -52), (-16, -12)]))
    gaps = [f for f in findings if f.kind == "coverage-gap"]
    assert len(gaps) == 1
    assert gaps[0].severity == "warning"
    assert gaps[0].offset == -52 and gaps[0].width == 36
    assert suggestions and suggestions[0].start == -64
    assert suggestions[0].end == -16


def test_fully_covered_frame_has_no_gap():
    findings, suggestions = corroborate_function(
        access_set([derived(-64), exact(-16)]),
        layout_with([(-64, -16), (-16, -12)]))
    assert findings == [] and suggestions == []


def test_positive_offsets_are_argument_side():
    # Accesses at/above sp0 (retaddr, stack args) are not frame bytes.
    findings, suggestions = corroborate_function(
        access_set([exact(0), exact(8)]), layout_with([]))
    assert findings == [] and suggestions == []


# -- widening ----------------------------------------------------------------


class Suggestion:
    def __init__(self, func, start, end):
        self.func, self.start, self.end = func, start, end


def test_apply_widenings_grows_and_merges():
    layouts = {"f": layout_with([(-64, -52), (-48, -40)], "f")}
    rows = apply_widenings(layouts, [Suggestion("f", -64, -16)])
    assert rows == [{"func": "f", "start": -64, "end": -16,
                     "applied": True, "reason": ""}]
    assert [(v.start, v.end) for v in layouts["f"].variables] \
        == [(-64, -16)]


def test_apply_widenings_skips_covered_region():
    layouts = {"f": layout_with([(-64, -16)], "f")}
    rows = apply_widenings(layouts, [Suggestion("f", -60, -20)])
    assert rows[0]["applied"] is False
    assert [(v.start, v.end) for v in layouts["f"].variables] \
        == [(-64, -16)]


def test_apply_widenings_creates_variable_when_none_overlaps():
    layouts = {"f": layout_with([(-8, -4)], "f")}
    apply_widenings(layouts, [Suggestion("f", -32, -16)])
    assert [(v.start, v.end) for v in layouts["f"].variables] \
        == [(-32, -16), (-8, -4)]


def test_apply_widenings_ignores_unknown_function():
    layouts = {"f": layout_with([(-8, -4)], "f")}
    rows = apply_widenings(layouts, [Suggestion("ghost", -32, -16)])
    assert rows[0]["applied"] is False


def test_subtract_boundary_cases():
    # Covered intervals entirely below the region, or only touching its
    # lower edge, remove nothing.
    assert _subtract(-16, 0, [(-32, -24)]) == [(-16, 0)]
    assert _subtract(-16, 0, [(-20, -16)]) == [(-16, 0)]
    # A covered interval crossing the upper bound is clipped to it.
    assert _subtract(-16, 0, [(-8, 8)]) == [(-16, -8)]
    # Swallowed entirely.
    assert _subtract(-16, 0, [(-32, 16)]) == []
    # Empty region.
    assert _subtract(-8, -8, []) == []
    # An interval behind the cursor (overlapped by its predecessor)
    # must not resurrect already-consumed bytes.
    assert _subtract(-16, 0, [(-16, -12), (-14, -10), (-4, 0)]) == \
        [(-10, -4)]


# -- region concretization ---------------------------------------------------


def test_regions_skips_argument_side():
    assert _regions(access_set([exact(4)]), layout_with([])) == []


def test_regions_clips_exact_access_at_frame_top():
    # A 4-byte access at -2 reaches into the return-address side; the
    # frame-side region stops at 0.
    regions = _regions(access_set([exact(-2)]), layout_with([]))
    assert [(lo, hi) for lo, hi, _ in regions] == [(-2, 0)]


def test_regions_clamps_derived_to_nearest_evidence():
    # The derived access at -24 extends to the *nearest* independent
    # offset above it — the recovered variable start at -16 — not all
    # the way to the exact slot at -8.
    regions = _regions(access_set([exact(-8), derived(-24)]),
                       layout_with([(-16, -12)]))
    assert (-24, -16) in {(lo, hi) for lo, hi, _ in regions}


def test_regions_derived_without_neighbour_clamps_at_zero():
    regions = _regions(access_set([derived(-24)]), layout_with([]))
    assert [(lo, hi) for lo, hi, _ in regions] == [(-24, 0)]
