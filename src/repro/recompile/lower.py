"""Lowering: repro IR -> repro machine code.

One backend serves two masters, exactly like LLVM does in the paper's
world:

* the MiniC compiler personalities lower their optimized IR through it to
  produce the *input binaries* (recording ground-truth stack layouts into
  the debug section on the way); and
* the recompiler lowers lifted/refined IR through it to produce the
  *recovered binaries* whose runtime Table 1 and Figure 6 measure.

Design notes:

* block-local linear-scan register allocation; values live across blocks
  or across calls sit in frame slots (eax/edx are reserved scratch);
* cdecl-style calls: arguments pushed right-to-left, caller cleanup;
* multi-result calls (lifted register-file signatures) return results in
  the fixed sequence eax, ecx, edx, ebx, esi, edi, ebp — result registers
  are exempt from the callee-saved contract;
* loads/stores fold single-use address arithmetic into ``[ebp-20]`` /
  ``[esp+12+eax]`` style operands — producing exactly the direct stack
  reference idiom WYTIWYG's refinements must untangle;
* variadic external calls lifted without recovered prototypes use *stack
  switching* (paper §5.2): esp is pointed at the emulated stack argument
  area for the duration of the call.

Lowering a function is a pure transform of ``(function content, backend
options, module lowering context)`` — the Macaw-style discipline that
keeps the backend per-function-parallel and cacheable — so
:func:`lower_function` memoizes its output in a fingerprint-keyed LRU:

* key: ``(``:func:`~repro.replay.fingerprint.function_fingerprint```,
  LowerOptions, lowering context)`` where the context digests the
  module facts a lowerer can observe (address-table dispatch, global
  layout);
* invalidation mirrors :mod:`repro.opt.analysis`'s versioned contract:
  a content change is a *new key* — the stale entry for the same
  ``(name, options, context)`` slot is evicted and counted as
  ``lower.cache.invalidations``;
* :meth:`FunctionLowerer._split_phi_edges` mutates the IR in place, so
  a cold lower that grew the function stores its entry under both the
  pre-split and post-split fingerprints — the next ``compile_ir`` over
  the *same* (now split) module object still hits;
* cached :class:`AsmFunction` / :class:`DataItem` objects are shared
  across programs — safe because :func:`repro.isa.assembler.assemble`
  fully recomputes every address and size on each run.

``REPRO_LOWER_CACHE=0`` disables the cache;
``lower.cache.{hits,misses,invalidations}`` count its behaviour.  A
warm ``compile_ir`` after a one-function edit re-lowers exactly that
function (``benchmarks/test_lower.py`` holds it to that).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from .. import obs
from ..binary.image import FrameGroundTruth, StackObject
from ..errors import LowerError
from ..ir.module import Block, Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Br,
    Call,
    CallExt,
    CallInd,
    CondBr,
    Const,
    FuncRef,
    GlobalRef,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Param,
    Phi,
    Ret,
    Result,
    Store,
    Switch,
    Unary,
    Unreachable,
    Value,
)
from ..isa import (
    AsmFunction,
    DataItem,
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    Imm,
    ImportRef,
    Label,
    Mem,
    Reg,
    ins,
    jcc,
    setcc,
)
from ..isa.registers import CL

#: Registers used to return multiple results (lifted signatures).
RESULT_REGS = (EAX, ECX, EDX, EBX, ESI, EDI, EBP)

_CC_FOR_PRED = {
    "eq": "e", "ne": "ne", "slt": "l", "sle": "le", "sgt": "g",
    "sge": "ge", "ult": "b", "ule": "be", "ugt": "a", "uge": "ae",
}

_NEGATE_CC = {
    "e": "ne", "ne": "e", "l": "ge", "le": "g", "g": "le", "ge": "l",
    "b": "ae", "be": "a", "a": "be", "ae": "b", "s": "ns", "ns": "s",
}

_REG_BY_NAME = {"eax": EAX, "ecx": ECX, "edx": EDX, "ebx": EBX,
                "esp": ESP, "ebp": EBP, "esi": ESI, "edi": EDI}

#: Name of the module global used by stack switching.
STACK_SWITCH_SAVE = "__stack_switch_save"

#: Name of the generated original-address-to-new-address resolver.
RESOLVER_NAME = "__resolve_addr"


def build_resolver(address_table: dict[int, str],
                   trap_code: int = 198) -> AsmFunction:
    """Generate the indirect-call dispatcher for a lifted module.

    Custom convention: original code address in eax on entry, recompiled
    entry address in eax on return; flags clobbered.
    """
    asm = AsmFunction(RESOLVER_NAME)
    entries = sorted(address_table.items())
    for i, (orig, _name) in enumerate(entries):
        asm.emit(ins("cmp", EAX, Imm(orig)))
        asm.emit(jcc("e", Label(f"{RESOLVER_NAME}.{i}")))
    asm.emit(ins("mov", EAX, Imm(trap_code),
                 comment="indirect target not in address table"))
    asm.emit(ins("hlt"))
    for i, (_orig, name) in enumerate(entries):
        asm.label(f"{RESOLVER_NAME}.{i}")
        asm.emit(ins("mov", EAX, Label(name)))
        asm.emit(ins("ret"))
    return asm


@dataclass(frozen=True)
class LowerOptions:
    """Backend configuration (what compiler personalities tweak)."""

    frame_pointer: bool = True
    #: Registers available for block-local values (beyond eax/edx scratch).
    pool: tuple[str, ...] = ("ecx", "ebx", "esi", "edi")
    jump_tables: bool = True
    #: Fold add-chains into addressing modes (legacy compilers keep the
    #: arithmetic explicit and only use direct [frame+disp] operands).
    fold_chains: bool = True
    #: Run the redundant-move peephole (legacy compilers did not).
    peephole: bool = True
    #: Promote loop-carried phis into dedicated callee-saved registers.
    promote_phis: bool = True
    #: Exit code used when a recompiled binary reaches an untraced path.
    trap_code: int = 199


# -- fingerprint-keyed lowering cache -----------------------------------

def _function_fingerprint(func: Function) -> str:
    """Deferred alias for
    :func:`repro.replay.fingerprint.function_fingerprint` (an eager
    import of :mod:`repro.replay` would cycle through the engine)."""
    from ..replay.fingerprint import function_fingerprint
    globals()["_function_fingerprint"] = function_fingerprint
    return function_fingerprint(func)


def lower_cache_enabled() -> bool:
    """``REPRO_LOWER_CACHE=0`` disables the lowering cache."""
    return os.environ.get("REPRO_LOWER_CACHE", "1") not in ("0", "false",
                                                            "off")


#: (function fingerprint, LowerOptions, lowering context) ->
#: (AsmFunction, data items, ground truth).  Every entry is the complete
#: output of one cold :meth:`FunctionLowerer.lower`.
_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_CACHE_MAX = 4096

#: (function name, LowerOptions, lowering context) -> (fingerprint at
#: last cold lower, keys holding its entry).  Lets a content change be
#: *diagnosed* as an invalidation (stale entry evicted and counted)
#: rather than just accreting a new key.
_LAST: dict[tuple, tuple] = {}


def clear_lower_cache() -> None:
    """Drop all cached lowering output (tests and benches)."""
    _CACHE.clear()
    _LAST.clear()


def lower_cache_stats() -> dict:
    """Size of the in-process lowering cache — the warmth a long-lived
    server has accumulated (reported by ``repro submit --status``)."""
    return {"entries": len(_CACHE), "functions": len(_LAST)}


def _lower_context(module: Module) -> tuple:
    """The module-level facts a :class:`FunctionLowerer` can observe:
    whether indirect calls dispatch through the resolver, and the
    global-variable layout epoch.  Part of every cache key, mirroring
    ``opt/analysis.py``'s versioned-epoch invalidation contract."""
    return (bool(module.address_table),
            tuple(sorted((name, g.size, g.align, g.fixed_addr,
                          g.writable)
                         for name, g in module.globals.items())))


def lower_function(func: Function, module: Module,
                   options: LowerOptions) -> tuple:
    """Lower one function, memoized by content fingerprint.

    Returns ``(AsmFunction, data items tuple, ground truth)``.  On a
    hit the IR is not touched at all; on a miss the cold lower runs and
    its output is cached — under the post-phi-split fingerprint as well
    when edge splitting grew the function, so re-lowering the same
    mutated module object still hits.
    """
    if not lower_cache_enabled():
        lowerer = FunctionLowerer(func, module, options)
        asm = lowerer.lower()
        return asm, tuple(lowerer.data_items), lowerer.ground_truth
    ctx = _lower_context(module)
    fp = _function_fingerprint(func)
    key = (fp, options, ctx)
    entry = _CACHE.get(key)
    if entry is not None:
        _CACHE.move_to_end(key)
        obs.count("lower.cache.hits")
        obs.event("cache.hit", cache="lower", function=func.name)
        return entry
    obs.count("lower.cache.misses")
    obs.event("cache.miss", cache="lower", function=func.name)
    slot = (func.name, options, ctx)
    prev = _LAST.get(slot)
    if prev is not None and fp not in prev[1]:
        obs.count("lower.cache.invalidations")
        obs.event("cache.invalidation", cache="lower",
                  function=func.name)
        for stale in prev[1]:
            _CACHE.pop((stale, options, ctx), None)
    nblocks = len(func.blocks)
    lowerer = FunctionLowerer(func, module, options)
    asm = lowerer.lower()
    entry = (asm, tuple(lowerer.data_items), lowerer.ground_truth)
    fps = [fp]
    if len(func.blocks) != nblocks:
        fps.append(_function_fingerprint(func))
    for f in fps:
        _CACHE[(f, options, ctx)] = entry
        _CACHE.move_to_end((f, options, ctx))
    _LAST[slot] = (fp, tuple(fps))
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)
    return entry


@dataclass
class _Location:
    kind: str           # "reg" | "slot"
    reg: Reg | None = None
    offset: int = 0


@dataclass
class _FoldedAddr:
    """A load/store address folded into one addressing-mode operand.

    Invariant maintained by the matcher: at most one of base/index needs
    materialization, so ``edx`` suffices as address scratch and ``eax``
    stays free for the value path.
    """

    base: Value | None
    index: Value | None
    disp: int
    label: Label | None = None


class FunctionLowerer:
    """Lowers one IR function to assembly items."""

    def __init__(self, func: Function, module: Module,
                 options: LowerOptions):
        self.func = func
        self.module = module
        self.options = options
        self.asm = AsmFunction(func.name)
        self.pool = [_REG_BY_NAME[r] for r in options.pool]
        self.locs: dict[Value, _Location] = {}
        self.alloca_offsets: dict[Alloca, int] = {}
        self.frame_size = 0
        self.used_callee_saved: set[str] = set()
        self.push_depth = 0
        self.folded: dict[Instr, _FoldedAddr] = {}
        self.dead: set[Instr] = set()
        self.fused_icmps: set[ICmp] = set()
        self.data_items: list[DataItem] = []
        self.ground_truth: FrameGroundTruth | None = None
        self._table_counter = 0
        self._save_slots: dict[str, int] = {}
        self._slot_cursor = 0
        #: Result registers of this function are exempt from preservation.
        self._result_reg_names = {r.name for r
                                  in RESULT_REGS[:func.nresults]} \
            if func.nresults > 1 else set()

    # ------------------------------------------------------------------ utils

    def _block_label(self, block: Block) -> str:
        return f"{self.func.name}.{block.name}"

    def emit(self, instr) -> None:
        self.asm.emit(instr)
        if instr.mnemonic == "push":
            self.push_depth += 4
        elif instr.mnemonic == "pop":
            self.push_depth -= 4
        elif instr.mnemonic in ("add", "sub") \
                and instr.operands and instr.operands[0] == ESP \
                and isinstance(instr.operands[1], Imm):
            delta = instr.operands[1].value
            self.push_depth += -delta if instr.mnemonic == "add" else delta

    def _slot_mem(self, offset: int, size: int = 4) -> Mem:
        if self.options.frame_pointer:
            return Mem(EBP, disp=offset - self.frame_size, size=size)
        return Mem(ESP, disp=offset + self.push_depth, size=size)

    def _arg_mem(self, index: int) -> Mem:
        if self.options.frame_pointer:
            return Mem(EBP, disp=8 + 4 * index)
        return Mem(ESP, disp=self.frame_size + 4 + 4 * index
                   + self.push_depth)

    def _sp0_offset(self, frame_offset: int) -> int:
        if self.options.frame_pointer:
            return frame_offset - self.frame_size - 4
        return frame_offset - self.frame_size

    @property
    def frame_reg(self) -> Reg:
        return EBP if self.options.frame_pointer else ESP

    # ------------------------------------------------------------- analyses

    def _use_counts(self) -> dict[Value, int]:
        counts: dict[Value, int] = {}
        for instr in self.func.instructions():
            for op in instr.operands():
                if isinstance(op, Instr):
                    counts[op] = counts.get(op, 0) + 1
        return counts

    def _collect_fused_icmps(self) -> None:
        counts = self._use_counts()
        for block in self.func.blocks:
            term = block.instrs[-1] if block.instrs else None
            if isinstance(term, CondBr) and isinstance(term.cond, ICmp):
                cond = term.cond
                if counts.get(cond, 0) == 1 and cond.block is block:
                    self.fused_icmps.add(cond)
                    self.dead.add(cond)

    def _fold_addresses(self) -> None:
        counts = self._use_counts()
        for instr in self.func.instructions():
            if not isinstance(instr, (Load, Store)):
                continue
            matched = self._match_addr(instr.ops[0], counts,
                                       allow_index=True)
            if matched is not None and self._needs_two_scratch(matched):
                matched = self._match_addr(instr.ops[0], counts,
                                           allow_index=False)
            if matched is None:
                continue
            folded, consumed = matched
            self.folded[instr] = folded
            self.dead.update(consumed)

    @staticmethod
    def _needs_two_scratch(matched) -> bool:
        folded, _consumed = matched
        base_generic = folded.base is not None and \
            not isinstance(folded.base, Alloca)
        return base_generic and folded.index is not None

    def _match_addr(self, addr: Value, counts: dict[Value, int],
                    allow_index: bool):
        """Try to express ``addr`` as base + index + disp (+label).

        Returns (folded, consumed_nodes) or None. Does not mutate state.
        """
        disp = 0
        index: Value | None = None
        node = addr
        consumed: list[Instr] = []
        peel_budget = 6 if self.options.fold_chains else 0
        for _ in range(peel_budget):
            if isinstance(node, BinOp) and node.opcode == "add" \
                    and counts.get(node, 0) == 1 \
                    and node not in self.dead:
                if isinstance(node.rhs, Const):
                    disp += node.rhs.signed
                    consumed.append(node)
                    node = node.lhs
                    continue
                if allow_index and index is None \
                        and not isinstance(node.lhs, Const):
                    index = node.rhs
                    consumed.append(node)
                    node = node.lhs
                    continue
            break
        if isinstance(node, Alloca):
            return _FoldedAddr(node, index, disp), consumed
        if isinstance(node, GlobalRef):
            return (_FoldedAddr(None, index, 0,
                                label=Label(node.name, disp)), consumed)
        if isinstance(node, Const):
            return _FoldedAddr(None, index, disp + node.signed), consumed
        if not consumed and index is None:
            return None  # nothing folded: use the value's location
        return _FoldedAddr(node, index, disp), consumed

    def _clobbers_ebp(self) -> bool:
        """Does this function (or its calls) overwrite ebp as data?"""
        if self.options.frame_pointer:
            return False
        if self.func.nresults >= 7:
            return True
        for instr in self.func.instructions():
            if isinstance(instr, (Call, CallInd)) and instr.nresults >= 7:
                return True
        return False

    def _assign_frame(self) -> None:
        offset = 0
        save_candidates = [r.name for r in self.pool
                           if r.name in ("ebx", "esi", "edi")]
        if self._clobbers_ebp():
            save_candidates.append("ebp")
        for name in save_candidates:
            self._save_slots[name] = offset
            offset += 4
        self._alloca_start = offset
        for alloca in self.func.instructions():
            if not isinstance(alloca, Alloca):
                continue
            align = max(alloca.align, 4)
            offset = (offset + align - 1) & ~(align - 1)
            self.alloca_offsets[alloca] = offset
            offset += max(alloca.size, 1)
        offset = (offset + 3) & ~3
        self._alloca_end = offset
        self._slot_cursor = offset

    def _new_slot(self) -> int:
        slot = self._slot_cursor
        self._slot_cursor += 4
        return slot

    def _allocate_registers(self) -> None:
        cross: set[Instr] = set()
        multi_calls: set[Instr] = set()
        has_internal_calls = False
        phis: list[Phi] = []
        use_counts: dict[Instr, int] = {}
        for block in self.func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    cross.add(instr)
                    phis.append(instr)
                    # Phi operands are consumed on the incoming *edge*:
                    # a value defined anywhere but that predecessor must
                    # survive across blocks.
                    for pred, value in instr.incomings():
                        if isinstance(value, Instr):
                            use_counts[value] = \
                                use_counts.get(value, 0) + 1
                            if value.block is not pred:
                                cross.add(value)
                    continue
                if isinstance(instr, (Call, CallInd)):
                    has_internal_calls = True
                    if instr.nresults > 1:
                        multi_calls.add(instr)
                for op in instr.operands():
                    if isinstance(op, Instr):
                        use_counts[op] = use_counts.get(op, 0) + 1
                        if op.block is not block:
                            cross.add(op)
                # Address folding peels chains that may span blocks; the
                # surviving leaves are consumed at the memory op itself.
                folded = self.folded.get(instr)
                if folded is not None:
                    for leaf in (folded.base, folded.index):
                        if isinstance(leaf, Instr) \
                                and leaf.block is not block:
                            cross.add(leaf)

        # Loop-carried values (phis) get dedicated callee-saved
        # registers: those survive internal single-result calls (callees
        # preserve them) and external calls (which only clobber eax).
        # Multi-result callees return *in* these registers, so calls with
        # more results shrink the candidate set -- unsymbolized lifted
        # code gets no promotion, symbolized code gets it back, and the
        # legacy pool only ever offers ebx.
        max_nresults = 1
        for block in self.func.blocks:
            for instr in block.instrs:
                if isinstance(instr, (Call, CallInd)):
                    max_nresults = max(max_nresults, instr.nresults)
        clobbered = {r.name for r in RESULT_REGS[:max_nresults]}
        dedicated: dict[Reg, Phi] = {}
        if phis and self.options.promote_phis:
            candidates = [r for r in self.pool
                          if r.name in ("ebx", "esi", "edi")
                          and r.name not in clobbered]
            for phi in sorted(phis, key=lambda p: -use_counts.get(p, 0)):
                if not candidates:
                    break
                reg = candidates.pop()
                dedicated[reg] = phi
                self.locs[phi] = _Location("reg", reg=reg)
                self.used_callee_saved.add(reg.name)
        block_pool = [r for r in self.pool if r not in dedicated]

        for block in self.func.blocks:
            last_use: dict[Instr, int] = {}
            call_positions: list[int] = []
            for idx, instr in enumerate(block.instrs):
                # Only internal calls clobber the pool; external calls
                # preserve everything except eax/edx scratch.
                if isinstance(instr, (Call, CallInd)):
                    call_positions.append(idx)
                for op in instr.operands():
                    if isinstance(op, Instr):
                        last_use[op] = idx
                folded = self.folded.get(instr)
                if folded is not None:
                    for leaf in (folded.base, folded.index):
                        if isinstance(leaf, Instr):
                            last_use[leaf] = idx
                if instr.is_terminator:
                    # Successor phis consume their incoming values at
                    # this block's end (the edge copies emitted before
                    # the branch).
                    for succ in instr.successors():
                        for phi in succ.phis():
                            for pred, value in phi.incomings():
                                if pred is block and \
                                        isinstance(value, Instr):
                                    last_use[value] = idx

            free = list(block_pool)
            active: list[tuple[int, Reg]] = []  # (end, reg)
            for idx, instr in enumerate(block.instrs):
                if instr in self.dead or instr in self.locs \
                        or not instr.has_result \
                        or isinstance(instr, (Alloca, Intrinsic)):
                    continue
                if instr in cross or isinstance(instr, Phi) \
                        or (isinstance(instr, Result)
                            and instr.call in multi_calls):
                    self.locs[instr] = _Location(
                        "slot", offset=self._new_slot())
                    continue
                end = last_use.get(instr)
                if end is None:
                    self.locs[instr] = _Location(
                        "slot", offset=self._new_slot())
                    continue
                if any(idx < c < end for c in call_positions):
                    self.locs[instr] = _Location(
                        "slot", offset=self._new_slot())
                    continue
                # Expire intervals that ended at or before this point.
                still_active = []
                for e, r in active:
                    if e <= idx:
                        free.append(r)
                    else:
                        still_active.append((e, r))
                active = still_active
                if free:
                    reg = free.pop(0)
                    active.append((end, reg))
                    self.locs[instr] = _Location("reg", reg=reg)
                    if reg.name in ("ebx", "esi", "edi"):
                        self.used_callee_saved.add(reg.name)
                else:
                    self.locs[instr] = _Location(
                        "slot", offset=self._new_slot())

        if self._clobbers_ebp() and self.func.nresults < 7:
            # ebp trashed by a multi-result callee; preserve it for our
            # own caller.
            self.used_callee_saved.add("ebp")
        self.frame_size = (self._slot_cursor + 15) & ~15

    # ------------------------------------------------------- operand access

    def _operand(self, v: Value, scratch: Reg) -> Reg | Imm | Mem | Label:
        if isinstance(v, Const):
            return Imm(v.signed)
        if isinstance(v, (GlobalRef, FuncRef)):
            return Label(v.name)
        if isinstance(v, Param):
            return self._arg_mem(v.index)
        if isinstance(v, Alloca):
            off = self.alloca_offsets[v]
            self.emit(ins("lea", scratch, self._slot_mem(off),
                          comment=f"&{v.var_name or 'alloca'}"))
            return scratch
        loc = self.locs.get(v)
        if loc is None:
            raise LowerError(f"{self.func.name}: no location for {v!r}")
        if loc.kind == "reg":
            return loc.reg
        return self._slot_mem(loc.offset)

    def _to_reg(self, v: Value, scratch: Reg) -> Reg:
        op = self._operand(v, scratch)
        if isinstance(op, Reg):
            return op
        self.emit(ins("mov", scratch, op))
        return scratch

    def _store_result(self, instr: Instr, src: Reg) -> None:
        loc = self.locs.get(instr)
        if loc is None:
            return
        if loc.kind == "reg":
            if loc.reg != src:
                self.emit(ins("mov", loc.reg, src))
        else:
            self.emit(ins("mov", self._slot_mem(loc.offset), src))

    def _mem_operand(self, instr: Instr, size: int) -> Mem:
        """Addressing-mode operand for a load/store; uses edx only."""
        folded = self.folded.get(instr)
        if folded is None:
            reg = self._to_reg(instr.ops[0], EDX)
            return Mem(reg, disp=0, size=size)
        disp = folded.disp
        label = folded.label
        base_reg: Reg | None = None
        index_reg: Reg | None = None
        if isinstance(folded.base, Alloca):
            base_reg = self.frame_reg
            base_off = self.alloca_offsets[folded.base]
            if self.options.frame_pointer:
                disp += base_off - self.frame_size
            else:
                disp += base_off + self.push_depth
        elif folded.base is not None:
            base_reg = self._to_reg(folded.base, EDX)
        if folded.index is not None:
            op = self._operand(folded.index, EDX)
            if isinstance(op, Reg):
                index_reg = op
            elif isinstance(op, Imm):
                disp += op.value
            else:
                if base_reg is EDX:
                    raise LowerError("address fold needs two scratch regs")
                self.emit(ins("mov", EDX, op))
                index_reg = EDX
        if label is not None:
            return Mem(base_reg, index_reg, 1,
                       Label(label.name, label.addend + disp), size)
        return Mem(base_reg, index_reg, 1, disp, size)

    # ------------------------------------------------------------- emission

    def lower(self) -> AsmFunction:
        self._split_phi_edges()
        self._collect_fused_icmps()
        self._fold_addresses()
        self._assign_frame()
        self._allocate_registers()
        self._emit_prologue()
        for bi, block in enumerate(self.func.blocks):
            if bi != 0:
                self.asm.label(self._block_label(block))
            self.push_depth = 0  # blocks begin with a balanced stack
            next_block = self.func.blocks[bi + 1] \
                if bi + 1 < len(self.func.blocks) else None
            for instr in block.instrs:
                if instr in self.dead:
                    continue
                self._emit_instr(block, instr, next_block)
        if self.options.peephole:
            self._peephole()
        self._record_ground_truth()
        return self.asm

    def _peephole(self) -> None:
        """Drop redundant move pairs the templates produce.

        ``mov A, B`` immediately followed by ``mov B, A`` leaves both
        locations equal after the first instruction, so the second is
        dead; ``mov A, A`` is dead outright.  Moves never touch flags and
        adjacency guarantees no esp adjustment in between, so the rewrite
        is safe for both register and frame-slot operands.
        """
        out: list = []
        for item in self.asm.items:
            if isinstance(item, str):
                out.append(item)
                continue
            if item.mnemonic == "mov" and len(item.operands) == 2:
                dst, src = item.operands
                if dst == src:
                    continue
                prev = out[-1] if out and not isinstance(out[-1], str) \
                    else None
                if prev is not None and prev.mnemonic == "mov" \
                        and len(prev.operands) == 2 \
                        and prev.operands[0] == src \
                        and prev.operands[1] == dst:
                    continue
            out.append(item)
        self.asm.items = out

    def _split_phi_edges(self) -> None:
        """Insert blocks on edges from multi-successor blocks into blocks
        with phis, so phi copies can be placed on the edge."""
        work = True
        while work:
            work = False
            for block in list(self.func.blocks):
                term = block.terminator
                succs = term.successors()
                if len(succs) <= 1:
                    continue
                for succ in succs:
                    if not succ.phis():
                        continue
                    split = self.func.add_block(
                        f"{block.name}.to.{succ.name}",
                        index=self.func.blocks.index(block) + 1)
                    br = Br(succ)
                    br.block = split
                    split.instrs.append(br)
                    self._retarget(term, succ, split)
                    for phi in succ.phis():
                        phi.blocks = [split if b is block else b
                                      for b in phi.blocks]
                    work = True
                    break
                if work:
                    break

    @staticmethod
    def _retarget(term: Instr, old: Block, new: Block) -> None:
        if isinstance(term, CondBr):
            if term.if_true is old:
                term.if_true = new
            if term.if_false is old:
                term.if_false = new
        elif isinstance(term, Switch):
            term.cases = [(v, new if b is old else b)
                          for v, b in term.cases]
            if term.default is old:
                term.default = new
        elif isinstance(term, Br) and term.target is old:
            term.target = new

    def _preserved_regs(self) -> list[str]:
        return sorted(name for name in self.used_callee_saved
                      if name not in self._result_reg_names)

    def _emit_prologue(self) -> None:
        if self.options.frame_pointer:
            self.emit(ins("push", EBP, comment="sav ebp"))
            self.emit(ins("mov", EBP, ESP))
        if self.frame_size:
            self.emit(ins("sub", ESP, Imm(self.frame_size)))
        self.push_depth = 0
        for name in self._preserved_regs():
            self.emit(ins("mov", self._slot_mem(self._save_slots[name]),
                          _REG_BY_NAME[name], comment=f"save {name}"))

    def _emit_epilogue(self) -> None:
        for name in self._preserved_regs():
            self.emit(ins("mov", _REG_BY_NAME[name],
                          self._slot_mem(self._save_slots[name]),
                          comment=f"restore {name}"))
        if self.options.frame_pointer:
            self.emit(ins("leave"))
        elif self.frame_size:
            self.emit(ins("add", ESP, Imm(self.frame_size)))
        self.emit(ins("ret"))

    def _emit_phi_copies(self, block: Block, succ: Block) -> None:
        phis = succ.phis()
        if not phis:
            return
        # Push all incoming values, then pop into the phi slots in reverse:
        # clobber-free even for swap patterns.
        for phi in phis:
            op = self._operand(phi.value_for(block), EAX)
            if isinstance(op, Label):
                self.emit(ins("mov", EAX, op))
                op = EAX
            self.emit(ins("push", op))
        for phi in reversed(phis):
            loc = self.locs[phi]
            if loc.kind == "reg":
                self.emit(ins("pop", loc.reg))
            else:
                self.emit(ins("pop", self._slot_mem(loc.offset)))

    def _emit_instr(self, block: Block, instr: Instr,
                    next_block: Block | None) -> None:
        if isinstance(instr, (Phi, Alloca, Result)):
            return
        if isinstance(instr, Intrinsic):
            raise LowerError("instrumentation probe reached lowering; "
                             "strip probes before recompiling")
        if isinstance(instr, BinOp):
            self._emit_binop(instr)
        elif isinstance(instr, Unary):
            self._emit_unary(instr)
        elif isinstance(instr, ICmp):
            self._emit_icmp_value(instr)
        elif isinstance(instr, Load):
            mem = self._mem_operand(instr, instr.size)
            if instr.size == 4:
                self.emit(ins("mov", EAX, mem))
            else:
                self.emit(ins("movzx", EAX, mem))
            self._store_result(instr, EAX)
        elif isinstance(instr, Store):
            self._emit_store(instr)
        elif isinstance(instr, (Call, CallInd)):
            self._emit_call(instr)
        elif isinstance(instr, CallExt):
            self._emit_callext(instr)
        elif isinstance(instr, Br):
            self._emit_phi_copies(block, instr.target)
            if instr.target is not next_block:
                self.emit(ins("jmp",
                              Label(self._block_label(instr.target))))
        elif isinstance(instr, CondBr):
            self._assert_no_phi_succs(instr)
            self._emit_condbr(instr, next_block)
        elif isinstance(instr, Switch):
            self._assert_no_phi_succs(instr)
            self._emit_switch(instr)
        elif isinstance(instr, Ret):
            self._emit_ret(instr)
        elif isinstance(instr, Unreachable):
            self.emit(ins("mov", EAX, Imm(self.options.trap_code),
                          comment=f"trap: {instr.note}"))
            self.emit(ins("hlt"))
        else:
            raise LowerError(f"cannot lower {instr!r}")

    def _assert_no_phi_succs(self, term: Instr) -> None:
        for succ in term.successors():
            if succ.phis():
                raise LowerError(
                    f"{self.func.name}: multi-way edge into phi block "
                    f"{succ.name} survived edge splitting")

    # -------------------------------------------------------------- arithmetic

    def _emit_binop(self, instr: BinOp) -> None:
        op = instr.opcode
        if op in ("div", "rem"):
            self._emit_div(instr)
            return
        if op in ("shl", "shr", "sar") and not isinstance(instr.rhs,
                                                          Const):
            self._emit_var_shift(instr)
            return
        lhs_op = self._operand(instr.lhs, EAX)
        if lhs_op is not EAX:
            self.emit(ins("mov", EAX, lhs_op))
        rhs_op = self._operand(instr.rhs, EDX)
        if isinstance(rhs_op, Label):
            self.emit(ins("mov", EDX, rhs_op))
            rhs_op = EDX
        mnemonic = {"add": "add", "sub": "sub", "and": "and", "or": "or",
                    "xor": "xor", "mul": "imul", "shl": "shl",
                    "shr": "shr", "sar": "sar"}[op]
        self.emit(ins(mnemonic, EAX, rhs_op))
        self._store_result(instr, EAX)

    def _emit_div(self, instr: BinOp) -> None:
        lhs_op = self._operand(instr.lhs, EAX)
        if lhs_op is not EAX:
            self.emit(ins("mov", EAX, lhs_op))
        rhs_op = self._operand(instr.rhs, EDX)
        self.emit(ins("push", rhs_op))  # park divisor: idiv needs edx:eax
        self.emit(ins("cdq"))
        self.emit(ins("idiv", Mem(ESP, disp=0)))
        self.emit(ins("add", ESP, Imm(4)))
        self._store_result(instr, EAX if instr.opcode == "div" else EDX)

    def _emit_var_shift(self, instr: BinOp) -> None:
        lhs_op = self._operand(instr.lhs, EAX)
        if lhs_op is not EAX:
            self.emit(ins("mov", EAX, lhs_op))
        count_op = self._operand(instr.rhs, EDX)
        if count_op is not EDX:
            self.emit(ins("mov", EDX, count_op))
        self.emit(ins("push", ECX))
        self.emit(ins("mov", ECX, EDX))
        self.emit(ins(instr.opcode, EAX, CL))
        self.emit(ins("pop", ECX))
        self._store_result(instr, EAX)

    def _emit_unary(self, instr: Unary) -> None:
        op = instr.opcode
        src_op = self._operand(instr.src, EAX)
        if src_op is not EAX:
            self.emit(ins("mov", EAX, src_op))
        if op in ("neg", "not"):
            self.emit(ins(op, EAX))
        elif op == "sext8":
            self.emit(ins("movsx", EAX, Reg(0, 1)))
        elif op == "sext16":
            self.emit(ins("movsx", EAX, Reg(0, 2)))
        elif op in ("zext8", "trunc8"):
            self.emit(ins("movzx", EAX, Reg(0, 1)))
        elif op in ("zext16", "trunc16"):
            self.emit(ins("movzx", EAX, Reg(0, 2)))
        else:
            raise LowerError(f"cannot lower unary {op}")
        self._store_result(instr, EAX)

    def _emit_store(self, instr: Store) -> None:
        # Address first (uses edx only), then the value path (eax).
        mem = self._mem_operand(instr, instr.size)
        value_op = self._operand(instr.value, EAX)
        if isinstance(value_op, Label):
            self.emit(ins("mov", EAX, value_op))
            value_op = EAX
        if isinstance(value_op, Mem):
            self.emit(ins("mov", EAX, value_op))
            value_op = EAX
        if instr.size < 4:
            if isinstance(value_op, Imm):
                value_op = Imm(value_op.value
                               & ((1 << (8 * instr.size)) - 1))
            else:
                if value_op is not EAX:
                    self.emit(ins("mov", EAX, value_op))
                value_op = Reg(0, instr.size)  # al / ax
        self.emit(ins("mov", mem, value_op))

    def _emit_cmp(self, icmp: ICmp) -> str:
        lhs_op = self._operand(icmp.lhs, EAX)
        if isinstance(lhs_op, (Imm, Label)):
            self.emit(ins("mov", EAX, lhs_op))
            lhs_op = EAX
        rhs_op = self._operand(icmp.rhs, EDX)
        if isinstance(rhs_op, Label):
            self.emit(ins("mov", EDX, rhs_op))
            rhs_op = EDX
        if isinstance(lhs_op, Mem) and isinstance(rhs_op, Mem):
            self.emit(ins("mov", EAX, lhs_op))
            lhs_op = EAX
        self.emit(ins("cmp", lhs_op, rhs_op))
        return _CC_FOR_PRED[icmp.pred]

    def _emit_icmp_value(self, instr: ICmp) -> None:
        cc = self._emit_cmp(instr)
        self.emit(ins("mov", EDX, Imm(0)))
        self.emit(setcc(cc, Reg(2, 1)))  # dl
        self._store_result(instr, EDX)

    # ------------------------------------------------------------ control flow

    def _emit_condbr(self, instr: CondBr,
                     next_block: Block | None) -> None:
        if isinstance(instr.cond, ICmp) and instr.cond in self.fused_icmps:
            cc = self._emit_cmp(instr.cond)
        else:
            cond_op = self._operand(instr.cond, EAX)
            if isinstance(cond_op, (Imm, Label)):
                self.emit(ins("mov", EAX, cond_op))
                cond_op = EAX
            self.emit(ins("cmp", cond_op, Imm(0)))
            cc = "ne"
        true_label = Label(self._block_label(instr.if_true))
        false_label = Label(self._block_label(instr.if_false))
        if instr.if_false is next_block:
            self.emit(jcc(cc, true_label))
        elif instr.if_true is next_block:
            self.emit(jcc(_NEGATE_CC[cc], false_label))
        else:
            self.emit(jcc(cc, true_label))
            self.emit(ins("jmp", false_label))

    def _emit_switch(self, instr: Switch) -> None:
        value_reg = self._to_reg(instr.value, EAX)
        cases = sorted(instr.cases, key=lambda c: c[0] & 0xFFFFFFFF)
        default_label = Label(self._block_label(instr.default))
        values = [v & 0xFFFFFFFF for v, _ in cases]
        dense = (len(cases) >= 4
                 and values[-1] - values[0] < 3 * len(cases) + 8)
        if self.options.jump_tables and dense:
            lo, hi = values[0], values[-1]
            if value_reg is not EAX:
                self.emit(ins("mov", EAX, value_reg))
            if lo:
                self.emit(ins("sub", EAX, Imm(lo)))
            self.emit(ins("cmp", EAX, Imm(hi - lo)))
            self.emit(jcc("a", default_label))
            table_name = f"{self.func.name}.jt{self._table_counter}"
            self._table_counter += 1
            targets = {v - lo: Label(self._block_label(b))
                       for v, b in cases}
            words = [targets.get(i, default_label)
                     for i in range(hi - lo + 1)]
            self.data_items.append(
                DataItem(table_name, words, writable=False))
            self.emit(ins("jmp", Mem(None, EAX, 4, Label(table_name))))
            return
        for v, target in cases:
            self.emit(ins("cmp", value_reg, Imm(v)))
            self.emit(jcc("e", Label(self._block_label(target))))
        self.emit(ins("jmp", default_label))

    def _emit_ret(self, instr: Ret) -> None:
        values = instr.ops
        if len(values) > len(RESULT_REGS):
            raise LowerError(
                f"{self.func.name}: {len(values)} results exceed the "
                f"register return convention")
        if len(values) == 1:
            op = self._operand(values[0], EAX)
            if op is not EAX:
                self.emit(ins("mov", EAX, op))
        elif values:
            for v in values:
                op = self._operand(v, EAX)
                if isinstance(op, Label):
                    self.emit(ins("mov", EAX, op))
                    op = EAX
                self.emit(ins("push", op))
            for i in reversed(range(len(values))):
                self.emit(ins("pop", RESULT_REGS[i]))
        self._emit_epilogue()

    # ----------------------------------------------------------------- calls

    def _push_args(self, args: list[Value]) -> int:
        for v in reversed(args):
            op = self._operand(v, EAX)
            if isinstance(op, Label):
                self.emit(ins("mov", EAX, op))
                op = EAX
            self.emit(ins("push", op))
        return 4 * len(args)

    def _emit_call(self, instr) -> None:
        nbytes = self._push_args(instr.args)
        if isinstance(instr, Call):
            self.emit(ins("call", Label(instr.callee.name)))
        else:
            target_op = self._operand(instr.target, EAX)
            if not (isinstance(target_op, Reg) and target_op is EAX):
                self.emit(ins("mov", EAX, target_op))
            if self.module.address_table:
                # Lifted code holds *original* code addresses; translate
                # them to recompiled entry points (BinRec-style dispatch).
                self.emit(ins("call", Label(RESOLVER_NAME),
                              comment="translate orig address"))
            self.emit(ins("call", EAX))
        if instr.nresults > 1:
            self._spread_results(instr)
        if nbytes:
            self.emit(ins("add", ESP, Imm(nbytes)))
        if instr.nresults == 1:
            self._store_result(instr, EAX)

    def _spread_results(self, call: Instr) -> None:
        block = call.block
        for instr in block.instrs:
            if isinstance(instr, Result) and instr.call is call:
                loc = self.locs.get(instr)
                if loc is None:
                    continue
                if loc.kind != "slot":
                    raise LowerError(
                        "multi-call results must be slot-assigned")
                self.emit(ins("mov", self._slot_mem(loc.offset),
                              RESULT_REGS[instr.index]))

    def _emit_callext(self, instr: CallExt) -> None:
        if instr.stack_args:
            sp_op = self._operand(instr.sp, EAX)
            if sp_op is not EAX:
                self.emit(ins("mov", EAX, sp_op))
            save = Mem(None, disp=Label(STACK_SWITCH_SAVE))
            self.emit(ins("mov", save, ESP, comment="stack switch out"))
            self.emit(ins("mov", ESP, EAX))
            self.emit(ins("call", ImportRef(instr.ext_name)))
            self.emit(ins("mov", ESP, save, comment="stack switch back"))
            self.push_depth = 0  # esp restored exactly
            self._store_result(instr, EAX)
            return
        nbytes = self._push_args(instr.args)
        self.emit(ins("call", ImportRef(instr.ext_name)))
        if nbytes:
            self.emit(ins("add", ESP, Imm(nbytes)))
        self._store_result(instr, EAX)

    # ------------------------------------------------------------ ground truth

    def _record_ground_truth(self) -> None:
        objects = []
        for alloca, offset in self.alloca_offsets.items():
            objects.append(StackObject(
                alloca.var_name or "tmp",
                self._sp0_offset(offset),
                max(alloca.size, 1),
                kind="var" if alloca.var_name else "spill"))
        for name in self._preserved_regs():
            objects.append(StackObject(
                f"save.{name}", self._sp0_offset(self._save_slots[name]),
                4, kind="saved_reg"))
        for off in range(self._alloca_end, self._slot_cursor, 4):
            objects.append(StackObject(
                f"slot.{off}", self._sp0_offset(off), 4, kind="spill"))
        self.ground_truth = FrameGroundTruth(
            self.func.name, 0, self.frame_size, objects)
