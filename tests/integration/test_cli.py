"""The ``python -m repro`` command-line interface."""

import sys

import pytest

from repro.__main__ import main

SOURCE = r"""
int main() {
    int n = read_int();
    printf("double=%d\n", n * 2);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return path


def test_compile_run_roundtrip(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    assert main(["compile", str(source_file), "-o", str(image)]) == 0
    assert main(["run", str(image), "--input", "int:21"]) == 0
    out = capsys.readouterr().out
    assert "double=42" in out
    assert "[exit 0" in out


def test_recompile_wytiwyg(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    assert main(["recompile", str(image), "-o", str(recovered),
                 "--input", "int:5"]) == 0
    assert main(["run", str(recovered), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "double=10" in out


def test_recompile_binrec(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["recompile", str(image), "-o", str(recovered),
          "--pipeline", "binrec", "--input", "int:5"])
    main(["run", str(recovered), "--input", "int:5"])
    assert "double=10" in capsys.readouterr().out


def test_layout_command(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image),
          "--compiler", "gcc44"])
    assert main(["layout", str(image), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "fn_" in out and "bytes" in out


def test_multiple_input_runs(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["run", str(image), "--input", "int:1", "/", "int:2"])
    out = capsys.readouterr().out
    assert "double=2" in out and "double=4" in out


def test_bad_input_spec_rejected(source_file, tmp_path):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    with pytest.raises(SystemExit):
        main(["run", str(image), "--input", "float:1"])
