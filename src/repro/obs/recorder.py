"""Observability state: the process-wide recorder and fast accessors.

The default state is *disabled*: :data:`_RECORDER` is ``None`` and every
helper below returns immediately after one module-global read, so
instrumentation sites in hot code cost nothing measurable.  Activation
is explicit (:func:`enable`) or environmental (``REPRO_OBS=1`` at
import; ``REPRO_OBS=0``/unset keeps the no-op path).

Hot loops go one step further: they fetch the recorder once (via
:func:`recorder`) when a run starts and pick an instrumented code path
only if it is non-``None``, keeping the disabled path byte-identical to
the uninstrumented engine.
"""

from __future__ import annotations

import os

from . import events as _events
from .metrics import MetricsRegistry
from .spans import NULL_SPAN, Span

__all__ = ["Recorder", "count", "disable", "enable", "enabled", "gauge",
           "observe", "recorder", "span", "timed"]


class Recorder:
    """Collects spans, metrics, and profiles for one process."""

    __slots__ = ("registry", "spans", "foreign_spans", "_stack")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        #: Finished root spans, in completion order.
        self.spans: list[Span] = []
        #: Serialized span trees merged in from worker processes.
        self.foreign_spans: list[dict] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs) -> Span:
        return Span(name, attrs, self)

    def profile(self, name: str):
        return self.registry.profile(name)

    # -- span lifecycle (called by Span.__enter__/__exit__) -----------------

    def _span_started(self, span: Span) -> None:
        self._stack.append(span)
        led = _events.ledger()
        if led is not None and span.name.startswith(_LEDGER_SPANS):
            led.emit("stage.start", name=span.name, attrs=span.attrs)

    def _span_finished(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:       # exited out of order; tolerate it
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            self.spans.append(span)
        led = _events.ledger()
        if led is not None and span.name.startswith(_LEDGER_SPANS):
            led.emit("stage.finish", name=span.name,
                     seconds=span.seconds, attrs=span.attrs)


#: Span families mirrored into the event ledger as ``stage.start`` /
#: ``stage.finish`` events.  Deliberately coarse: per-function spans
#: (``sanalysis.function``, ...) stay out of the ledger to bound its
#: volume; the pipeline layers emit finer-grained typed events instead.
_LEDGER_SPANS = ("stage.", "pipeline.")

_RECORDER: Recorder | None = None


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OBS")
    return value not in (None, "", "0", "false", "off")


def enabled() -> bool:
    return _RECORDER is not None


def recorder() -> Recorder | None:
    """The active recorder, or None when observability is disabled."""
    return _RECORDER


def enable(reset: bool = False) -> Recorder:
    """Activate observability; with ``reset`` discard prior data."""
    global _RECORDER
    if _RECORDER is None or reset:
        _RECORDER = Recorder()
    return _RECORDER


def disable() -> None:
    global _RECORDER
    _RECORDER = None


# -- module-level no-op-when-disabled helpers -------------------------------


def span(name: str, **attrs):
    """A context-managed span, or the inert NULL_SPAN when disabled."""
    rec = _RECORDER
    if rec is None:
        return NULL_SPAN
    return rec.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    rec = _RECORDER
    if rec is not None:
        counters = rec.registry.counters
        counters[name] = counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.registry.gauges[name] = value


def observe(name: str, value: float) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.registry.observe(name, value)


class _NullTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


def timed(name: str):
    """Context manager adding elapsed seconds to a timer (no-op when
    disabled)."""
    rec = _RECORDER
    if rec is None:
        return _NULL_TIMER
    return rec.registry.time(name)


if _env_enabled():
    enable()
