"""Incremental worklist pass manager.

The LLVM-new-pass-manager analogue for this IR: instead of re-running a
fixed schedule on every function of every module at every pipeline
stage, the manager tracks what is already done and skips it.

Three layers of change tracking, cheapest first:

1. **Module snapshot** — after a run in which every function reached
   fixpoint and inlining had nothing left to do, the manager records
   ``(name, version)`` for every function.  A later call over an
   unchanged module returns immediately (the common shape when a
   refinement stage turned out to be a no-op).
2. **Version skip** — a function whose
   :attr:`~repro.ir.module.Function.version` is unchanged since it last
   reached fixpoint under the same schedule is skipped without looking
   at its body.
3. **Cross-stage memo** — keyed on ``(schedule, module context,``
   :func:`~repro.replay.fingerprint.function_fingerprint```)``: a
   *fresh object* (a deep copy, a re-lift, another module) whose content
   matches a known fixpoint is skipped too.  Only fixpoints enter the
   memo — a function that was still changing when the round budget ran
   out is never memoized.  The module context folds in the global-
   variable layout because alias-driven passes consult it.

Each pass is registered with a **preserved-analyses declaration**
(``PRESERVES`` in its module): when a pass reports a change, the
declared analyses are migrated across the mutation epoch by
:func:`repro.opt.analysis.retain_analyses` instead of being recomputed.

After :func:`~repro.opt.inline.inline_functions` the manager re-enqueues
**only the callers that actually received inlined code** (plus any
function that had not yet reached fixpoint) — the legacy schedule
re-optimized the whole module.

``REPRO_PASS_BASELINE=1`` restores the legacy fixed schedule
(:mod:`repro.opt.pipeline` keeps it verbatim); the worklist engine's
output is byte-identical to it, which ``tests/opt/test_pass_manager.py``
asserts differentially.  ``REPRO_OPT_MEMO=0`` disables only the
cross-stage memo (layers 1–2 still apply), e.g. for cold-path benches.

Observability: per-pass timers/counters keep the legacy
``opt.pass.<name>`` naming, with the two CFG-simplification slots split
as ``simplifycfg.entry`` / ``simplifycfg.exit``; the manager itself
reports ``opt.manager.skipped`` (functions not re-optimized) and
``opt.manager.requeued`` (functions re-enqueued after inlining).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from weakref import WeakKeyDictionary

from .. import obs
from ..ir.module import Function, Module
from ..obs import recorder as _obs_recorder
from . import (
    constfold,
    dce,
    dse,
    flagfuse,
    gvn,
    inline,
    mem2reg,
    simplifycfg,
)
from .analysis import current_epoch, retain_analyses


def function_fingerprint(func: Function) -> str:
    """Deferred alias for
    :func:`repro.replay.fingerprint.function_fingerprint` — importing
    :mod:`repro.replay` eagerly would close an import cycle through
    the replay engine's runtime dependencies."""
    from ..replay.fingerprint import function_fingerprint as fp
    globals()["function_fingerprint"] = fp
    return fp(func)


def pass_baseline_enabled() -> bool:
    """``REPRO_PASS_BASELINE=1`` restores the legacy fixed schedule."""
    return os.environ.get("REPRO_PASS_BASELINE", "") not in ("", "0")


def memo_enabled() -> bool:
    """``REPRO_OPT_MEMO=0`` disables the cross-stage fingerprint memo."""
    return os.environ.get("REPRO_OPT_MEMO", "1") not in ("0", "false",
                                                         "off")


class FunctionPass:
    """A named per-function pass with its preserved-analyses contract."""

    __slots__ = ("name", "run", "preserves")

    def __init__(self, name: str, run, preserves: frozenset):
        self.name = name
        self.run = run
        self.preserves = preserves

    def __repr__(self) -> str:
        return f"<pass {self.name}>"


def build_function_pipeline(opts, module: Module) -> list[FunctionPass]:
    """The standard per-round schedule (mirrors the legacy
    ``pipeline._function_passes``), with the two ``simplifycfg`` slots
    distinguished for per-pass accounting."""
    passes = [
        FunctionPass("simplifycfg.entry", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
        FunctionPass("mem2reg", mem2reg.promote_allocas,
                     mem2reg.PRESERVES),
        FunctionPass("constfold", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("flagfuse", flagfuse.fuse_flags,
                     flagfuse.PRESERVES),
    ]
    if opts.gvn:
        passes.append(FunctionPass("gvn", gvn.global_value_numbering,
                                   gvn.PRESERVES))
    if opts.load_elim:
        passes.append(FunctionPass(
            "loadelim",
            lambda f: gvn.eliminate_redundant_loads(f, module),
            gvn.PRESERVES))
    if opts.dse:
        passes.append(FunctionPass(
            "dse", lambda f: dse.eliminate_dead_stores(f, module),
            dse.PRESERVES))
    passes.append(FunctionPass("dce", dce.eliminate_dead_code,
                               dce.PRESERVES))
    passes.append(FunctionPass("simplifycfg.exit",
                               simplifycfg.simplify_cfg,
                               simplifycfg.PRESERVES))
    return passes


def build_canonicalize_pipeline(module: Module) -> list[FunctionPass]:
    """The driver's canonicalization schedule (one round, in order)."""
    return [
        FunctionPass("simplifycfg.entry", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
        FunctionPass("mem2reg", mem2reg.promote_allocas,
                     mem2reg.PRESERVES),
        FunctionPass("constfold", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("flagfuse", flagfuse.fuse_flags,
                     flagfuse.PRESERVES),
        FunctionPass("constfold.late", constfold.fold_constants,
                     constfold.PRESERVES),
        FunctionPass("gvn", gvn.global_value_numbering, gvn.PRESERVES),
        FunctionPass("dce", dce.eliminate_dead_code, dce.PRESERVES),
        FunctionPass("simplifycfg.exit", simplifycfg.simplify_cfg,
                     simplifycfg.PRESERVES),
    ]


# -- change-tracking state ----------------------------------------------

#: Cross-stage memo of known fixpoints:
#: ((schedule key, module context), function fingerprint) -> True.
#: Bounded LRU; entries are only ever *fixpoints*, so a hit is a proof
#: that running the schedule again would change nothing.
_MEMO: "OrderedDict[tuple, bool]" = OrderedDict()
_MEMO_MAX = 4096

#: func -> {(schedule key, module context) -> version at last fixpoint}.
_FIXPOINT: "WeakKeyDictionary[Function, dict]" = WeakKeyDictionary()

#: module -> {(schedule key, module context) -> (name, version) snapshot
#: taken after a fully-converged run (fixpoint everywhere, no inlining
#: left)}.
_MODULE_STATE: "WeakKeyDictionary[Module, dict]" = WeakKeyDictionary()


def clear_memo() -> None:
    """Drop all cross-call change-tracking state (tests and benches)."""
    _MEMO.clear()
    _FIXPOINT.clear()
    _MODULE_STATE.clear()


def _memo_get(key: tuple) -> bool:
    hit = _MEMO.get(key, False)
    if hit:
        _MEMO.move_to_end(key)
    return hit


def _memo_add(key: tuple) -> None:
    _MEMO[key] = True
    _MEMO.move_to_end(key)
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)


def _module_context(module: Module) -> tuple:
    """The module-level facts a per-function schedule can observe:
    global-variable layout (alias analysis reads sizes and pinned
    addresses).  Part of every memo key."""
    return tuple(sorted(
        (name, g.size, g.align, g.fixed_addr, g.writable)
        for name, g in module.globals.items()))


_SKIPPED, _FIXED, _UNRESOLVED = range(3)


class PassManager:
    """Run a pass schedule over a module as an incremental worklist."""

    def __init__(self, module: Module, passes: list[FunctionPass],
                 schedule_key: tuple, rounds: int,
                 inline_threshold: int | None = None):
        self.module = module
        self.passes = passes
        self.rounds = max(rounds, 1)
        #: None disables the inline stage entirely.
        self.inline_threshold = inline_threshold
        self._token = (schedule_key, _module_context(module))
        self._rec = _obs_recorder()
        self._memo_on = memo_enabled()
        #: Names still short of fixpoint after their last visit.
        self.unresolved: set[str] = set()
        #: True when the inline stage reported changed callers.
        self.inlined = False

    # -- module-level fast path -----------------------------------------

    def _snapshot(self) -> tuple:
        return tuple((name, f.version)
                     for name, f in self.module.functions.items())

    def module_at_fixpoint(self) -> bool:
        """True when a prior fully-converged run of this schedule left
        the module exactly as it is now."""
        state = _MODULE_STATE.get(self.module)
        return state is not None and \
            state.get(self._token) == self._snapshot()

    def record_module_fixpoint(self) -> None:
        """Snapshot the module if this run converged completely: every
        function at fixpoint and (when inlining is on) no admissible
        inline candidate left.  Callers invoke this after any module
        passes that run outside the manager (function dropping)."""
        if self.unresolved:
            return
        if self.inline_threshold is not None and inline.inline_would_change(
                self.module, max_callee_size=self.inline_threshold):
            return
        _MODULE_STATE.setdefault(self.module, {})[self._token] = \
            self._snapshot()

    # -- worklist --------------------------------------------------------

    def run(self) -> None:
        module = self.module
        if self.module_at_fixpoint():
            obs.count("opt.manager.skipped", len(module.functions))
            return
        for func in list(module.functions.values()):
            if self._optimize(func) is _UNRESOLVED:
                self.unresolved.add(func.name)
        if self.inline_threshold is None:
            return
        changed = self._run_inline()
        if not changed:
            return
        self.inlined = True
        # Only callers that received code (their bodies are new) and
        # functions that never reached fixpoint can react to another
        # round; everything else is provably a no-op.
        targets = [f for name, f in module.functions.items()
                   if name in changed or name in self.unresolved]
        obs.count("opt.manager.requeued", len(targets))
        self.unresolved.clear()
        for func in targets:
            if self._optimize(func) is _UNRESOLVED:
                self.unresolved.add(func.name)

    def _optimize(self, func: Function) -> int:
        token = self._token
        versions = _FIXPOINT.get(func)
        if versions is not None and versions.get(token) == func.version:
            obs.count("opt.manager.skipped")
            return _SKIPPED
        entry_fp = None
        if self._memo_on:
            entry_fp = function_fingerprint(func)
            if _memo_get((token, entry_fp)):
                self._record_fixpoint(func)
                obs.count("opt.manager.skipped")
                obs.count("opt.manager.memo_hits")
                return _SKIPPED
        changed_any = False
        fixed = False
        for _ in range(self.rounds):
            changed = False
            for p in self.passes:
                changed |= self._run_pass(p, func)
            if not changed:
                fixed = True
                break
            changed_any = True
        if not fixed:
            return _UNRESOLVED
        self._record_fixpoint(func)
        if self._memo_on:
            fp = function_fingerprint(func) if changed_any else entry_fp
            _memo_add((token, fp))
        return _FIXED

    def _record_fixpoint(self, func: Function) -> None:
        versions = _FIXPOINT.get(func)
        if versions is None:
            versions = _FIXPOINT[func] = {}
        versions[self._token] = func.version

    # -- pass execution --------------------------------------------------

    def _run_pass(self, p: FunctionPass, func: Function) -> bool:
        prior = current_epoch(func) if p.preserves else None
        rec = self._rec
        if rec is None:
            changed = p.run(func)
        else:
            registry = rec.registry
            before = _ninstrs(func)
            start = time.perf_counter()
            changed = p.run(func)
            registry.timer(f"opt.pass.{p.name}").add(
                time.perf_counter() - start)
            registry.count(f"opt.pass.{p.name}.runs")
            delta = before - _ninstrs(func)
            if delta:
                registry.count(f"opt.pass.{p.name}.instrs_removed",
                               delta)
        if changed and prior is not None:
            retain_analyses(func, p.preserves, prior)
        return changed

    def _run_inline(self) -> set[str]:
        module = self.module
        rec = self._rec
        if rec is None:
            return inline.inline_functions_tracked(
                module, max_callee_size=self.inline_threshold)
        registry = rec.registry
        before = sum(_ninstrs(f) for f in module.functions.values())
        start = time.perf_counter()
        changed = inline.inline_functions_tracked(
            module, max_callee_size=self.inline_threshold)
        registry.timer("opt.pass.inline").add(
            time.perf_counter() - start)
        registry.count("opt.pass.inline.runs")
        delta = before - sum(_ninstrs(f)
                             for f in module.functions.values())
        if delta:
            registry.count("opt.pass.inline.instrs_removed", delta)
        return changed


def _ninstrs(func: Function) -> int:
    return sum(len(b.instrs) for b in func.blocks)


# -- entry points --------------------------------------------------------

def run_worklist(module: Module, opts) -> None:
    """Worklist-optimize ``module`` under ``opts`` (an
    :class:`~repro.opt.pipeline.OptOptions`); the incremental
    counterpart of the legacy ``optimize_module`` schedule, including
    the final unused-function sweep."""
    manager = PassManager(
        module, build_function_pipeline(opts, module),
        ("opt", opts), opts.rounds,
        inline_threshold=opts.inline_threshold if opts.inline else None)
    manager.run()
    drop_unused_private_functions(module)
    manager.record_module_fixpoint()


def canonicalize_module(module: Module) -> None:
    """The driver's canonicalization stage (SSA-ify vcpu registers,
    fold address arithmetic) as a managed one-round schedule, so
    re-canonicalizing an unchanged function after a no-op refinement
    stage costs one version check.  ``REPRO_PASS_BASELINE=1`` restores
    the legacy per-function loop."""
    if pass_baseline_enabled():
        for func in module.functions.values():
            simplifycfg.simplify_cfg(func)
            mem2reg.promote_allocas(func)
            constfold.fold_constants(func)
            flagfuse.fuse_flags(func)
            constfold.fold_constants(func)
            gvn.global_value_numbering(func)
            dce.eliminate_dead_code(func)
            simplifycfg.simplify_cfg(func)
        return
    PassManager(module, build_canonicalize_pipeline(module),
                ("canonicalize",), rounds=1).run()


def drop_unused_private_functions(module: Module) -> None:
    """Remove functions unreachable from the module's roots
    (post-inlining).

    Roots are the entry function, every address-table target, and every
    function named by a global initializer; reachability is *transitive*
    over call/operand references from live functions only, so
    mutually-recursive dead functions — which keep each other alive
    under a flat all-references scan — are dropped together.
    """
    roots: set[str] = set()
    if module.entry_name in module.functions:
        roots.add(module.entry_name)
    roots.update(name for name in module.address_table.values()
                 if name in module.functions)
    for g in module.globals.values():
        if isinstance(g.init, list):
            for word in g.init:
                name = getattr(word, "name", None)
                if isinstance(name, str) and name in module.functions:
                    roots.add(name)
    live: set[str] = set()
    work = list(roots)
    while work:
        name = work.pop()
        if name in live:
            continue
        live.add(name)
        for instr in module.functions[name].instructions():
            for op in instr.operands():
                ref = getattr(op, "name", None)
                if isinstance(ref, str) and ref not in live \
                        and ref in module.functions:
                    work.append(ref)
    module.functions = {name: f for name, f in module.functions.items()
                        if name in live}
