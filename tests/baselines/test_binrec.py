"""BinRec baseline: functional, unsymbolized, slower than WYTIWYG."""

from repro.baselines import binrec_recompile
from repro.emu import run_binary
from repro.lifting import EMUSTACK_NAME
from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE, cached_image


def test_binrec_preserves_functionality():
    for comp, lvl in (("gcc12", "3"), ("gcc44", "3"), ("gcc12", "0")):
        image = cached_image(FEATURE_SOURCE, comp, lvl)
        native = run_binary(image)
        recovered = run_binary(binrec_recompile(image.stripped(), [[]]))
        assert recovered.stdout == native.stdout
        assert recovered.exit_code == native.exit_code


def test_binrec_keeps_emulated_stack():
    image = cached_image(KERNEL_SOURCE)
    from repro.baselines.binrec import binrec_lift
    from repro.emu import trace_binary
    module = binrec_lift(trace_binary(image.stripped(), [[]]))
    assert EMUSTACK_NAME in module.globals
    assert module.metadata["pipeline"] == "binrec"


def test_binrec_slower_than_native():
    image = cached_image(KERNEL_SOURCE)
    native = run_binary(image)
    recovered = run_binary(binrec_recompile(image.stripped(), [[]]))
    assert recovered.cycles > native.cycles


def test_binrec_recompiled_text_is_relocated():
    from repro.recompile import RECOMP_TEXT_BASE
    image = cached_image(KERNEL_SOURCE)
    recovered = binrec_recompile(image.stripped(), [[]])
    assert recovered.text.base == RECOMP_TEXT_BASE
    # Original data stays pinned at its original address.
    assert any(s.base == image.data_sections[0].base
               for s in recovered.data_sections)
