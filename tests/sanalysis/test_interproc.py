"""Unit tests for the interprocedural summary/escape/extern machinery."""

import pytest

from repro import obs
from repro.core.layout import FrameLayout, FrameVariable
from repro.ir import Builder, Const, Function, GlobalVar, Module
from repro.sanalysis import analyze_function
from repro.sanalysis.interproc import (
    BOT_P,
    NUM_TOP_P,
    TOP_P,
    PVal,
    RAccess,
    build_call_graph,
    check_escapes,
    interproc_corroborate,
    interproc_enabled,
    local_summary,
    pjoin,
    pwiden,
    recover_extern_sigs,
    strongly_connected,
    summarize_module,
)

REG_ORDER = ["eax", "ecx", "edx", "ebx", "ebp", "esi", "edi"]


def lifted_function(name="fn_1000", entry=0x1000):
    f = Function(name, ["sp", *REG_ORDER], nresults=7)
    f.orig_entry = entry
    return f


def module_with(*funcs):
    module = Module("m")
    for i, f in enumerate(funcs):
        module.add_function(f)
        module.address_table[f.orig_entry] = f.name
    return module


def lifted_call(b, f, callee, sp_delta, stores):
    """Emit the lifted calling idiom: esp1 = sp0 - sp_delta, argument
    stores at esp1 + 4 + 4j, then the threaded call."""
    sp0 = f.params[0]
    esp1 = b.sub(sp0, Const(sp_delta))
    for j, value in stores:
        slot = b.add(esp1, Const(4 + 4 * j))
        b.store(slot, value)
    return b.call(callee, [esp1] + list(f.params[1:]), nresults=7)


# -- domain algebra ----------------------------------------------------------


def test_pjoin_bot_identity_and_top_dominates():
    v = PVal.ptr("sp", -8, -8)
    assert pjoin(BOT_P, v) == v
    assert pjoin(v, BOT_P) == v
    assert pjoin(TOP_P, v) == TOP_P


def test_pjoin_mixed_regions_is_top():
    a = PVal.ptr(("sarg", 0), 0, 0)
    b = PVal.ptr(("sarg", 1), 0, 0)
    assert pjoin(a, b) == TOP_P
    assert pjoin(a, PVal.const(4)) == TOP_P


def test_pjoin_same_region_takes_hull():
    assert pjoin(PVal.ptr("sp", -16, -12), PVal.ptr("sp", -8, -4)) \
        == PVal.ptr("sp", -16, -4)


def test_pwiden_growing_bound_to_infinity():
    old = PVal.ptr(("sarg", 0), 0, 0)
    grown = PVal.ptr(("sarg", 0), 0, 4)
    assert pwiden(old, grown) == PVal.ptr(("sarg", 0), 0, None)


# -- the region-tagged interpreter ------------------------------------------


def run_interp(f):
    from repro.sanalysis.interproc import _PInterpreter
    return _PInterpreter(f).run()


def test_incoming_slot_load_is_fresh_region():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    slot = b.add(f.params[0], Const(4))
    p = b.load(slot)
    deref = b.load(p)
    b.ret([deref] + [Const(0)] * 6)
    values = run_interp(f)
    assert values[p] == PVal.ptr(("sarg", 0), 0, 0)


def test_clobbered_slot_is_not_a_region():
    # The function overwrites its own incoming slot before (in abstract
    # round order) the load: scratch reuse, not a pristine argument.
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    slot = b.add(f.params[0], Const(4))
    b.store(slot, Const(7))
    p = b.load(slot)
    b.ret([p] + [Const(0)] * 6)
    values = run_interp(f)
    assert values[p] == NUM_TOP_P


def test_scaled_region_value_degrades_to_number():
    # An integer argument loads exactly like a pointer argument; the
    # moment it is scaled it must degrade to a number so base + 4*i
    # keeps the base's region.
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    p = b.load(b.add(f.params[0], Const(4)))
    i = b.load(b.add(f.params[0], Const(8)))
    scaled = b.mul(i, Const(4))
    addr = b.add(p, scaled)
    b.store(addr, Const(1))
    b.ret([Const(0)] * 7)
    values = run_interp(f)
    assert values[scaled].kind == "num"
    assert values[addr].region == ("sarg", 0)
    summary = local_summary(f)
    accs = summary.accesses[("sarg", 0)]
    assert any(a.hi is None and a.kind == "store" for a in accs)


# -- local summaries ---------------------------------------------------------


def test_summary_records_slot_values_and_call_sites():
    callee = lifted_function("fn_2000", 0x2000)
    cb = Builder(callee)
    cb.position(callee.add_block("entry"))
    cb.ret([Const(0)] * 7)

    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    buf = b.sub(f.params[0], Const(32))
    lifted_call(b, f, "fn_2000", 48, [(0, buf), (1, Const(5))])
    b.ret([Const(0)] * 7)

    summary = local_summary(f)
    assert len(summary.calls) == 1
    site = summary.calls[0]
    assert site.callees == ("fn_2000",)
    assert site.sp_off == -48
    assert summary.slot_values[-44].pval == PVal.ptr("sp", -32, -32)
    assert summary.slot_values[-40].pval == PVal.const(5)


def test_summary_is_memoized_per_version():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([Const(0)] * 7)
    obs.enable(reset=True)
    try:
        first = local_summary(f)
        assert local_summary(f) is first
        f.invalidate()
        assert local_summary(f) is not first
        doc = obs.export(obs.recorder())
        counters = doc["metrics"]["counters"]
        assert counters["sanalysis.summary.computed"] == 2
        assert counters["sanalysis.summary.reused"] == 1
    finally:
        obs.disable()


def test_stored_region_pointer_marks_escape_to_unknown():
    f = lifted_function()
    b = Builder(f)
    b.position(f.add_block("entry"))
    p = b.load(b.add(f.params[0], Const(4)))
    q = b.load(b.add(f.params[0], Const(8)))
    b.store(q, p)   # *q = p: p's region leaks somewhere unpinnable
    b.ret([Const(0)] * 7)
    summary = local_summary(f)
    assert ("sarg", 0) in summary.stored_regions


# -- call graph / SCC condensation ------------------------------------------


def test_call_graph_and_reverse_topo_sccs():
    a, bfn, c = (lifted_function(f"fn_{i}", i)
                 for i in (0x10, 0x20, 0x30))
    for callee_name, f in (("fn_32", a), ("fn_48", bfn), (None, c)):
        bb = Builder(f)
        bb.position(f.add_block("entry"))
        if callee_name:
            lifted_call(bb, f, callee_name, 16, [])
        bb.ret([Const(0)] * 7)
    module = module_with(a, bfn, c)
    locals_ = {f.name: local_summary(f) for f in (a, bfn, c)}
    graph = build_call_graph(module, locals_)
    assert graph["fn_16"] == ("fn_32",)
    assert graph["fn_32"] == ("fn_48",)
    sccs = strongly_connected(graph)
    order = [scc[0] for scc in sccs]
    # Reverse-topological: the leaf comes before its callers.
    assert order.index("fn_48") < order.index("fn_32") \
        < order.index("fn_16")


def test_recursion_forms_one_scc_and_converges():
    f = lifted_function("fn_16", 0x10)
    b = Builder(f)
    b.position(f.add_block("entry"))
    p = b.load(b.add(f.params[0], Const(4)))
    b.store(p, Const(1))
    lifted_call(b, f, "fn_16", 24, [(0, p)])
    b.ret([Const(0)] * 7)
    module = module_with(f)
    summaries = summarize_module(module)
    sccs = strongly_connected(
        build_call_graph(module, {"fn_16": summaries["fn_16"].local}))
    assert sccs == [["fn_16"]]
    # The recursive footprint converged to a widened entry, not one
    # entry per unrolled call depth.
    foot = summaries["fn_16"].footprint(("sarg", 0))
    assert len(foot) <= 3
    assert any(a.hi is None for a in foot)


def test_indirect_call_bounded_by_address_table():
    target_a = lifted_function("fn_4096", 0x1000)
    target_b = lifted_function("fn_8192", 0x2000)
    for t in (target_a, target_b):
        tb = Builder(t)
        tb.position(t.add_block("entry"))
        tb.ret([Const(0)] * 7)
    caller = lifted_function("fn_16", 0x10)
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    esp1 = b.sub(caller.params[0], Const(16))
    b.call_indirect(Const(0x1000), [esp1] + list(caller.params[1:]),
                    nresults=7)
    b.ret([Const(0)] * 7)
    module = module_with(target_a, target_b, caller)
    locals_ = {f.name: local_summary(f)
               for f in (target_a, target_b, caller)}
    graph = build_call_graph(module, locals_)
    # The constant target bounds the candidates to the one entry whose
    # address falls inside the interval.
    assert graph["fn_16"] == ("fn_4096",)


# -- footprint translation + the escaped-split check -------------------------


def escape_pair(write_hi=32, sp_delta=48, buf_off=-32):
    """Caller passes sp0+buf_off into a callee that stores
    [0, write_hi) through the pointer; returns (module, caller name)."""
    callee = lifted_function("fn_2000", 0x2000)
    cb = Builder(callee)
    cb.position(callee.add_block("entry"))
    p = cb.load(cb.add(callee.params[0], Const(4)))
    for off in range(0, write_hi, 4):
        cb.store(cb.add(p, Const(off)), Const(off))
    cb.ret([Const(0)] * 7)

    caller = lifted_function()
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    buf = b.sub(caller.params[0], Const(-buf_off))
    lifted_call(b, caller, "fn_2000", sp_delta, [(0, buf)])
    b.ret([Const(0)] * 7)
    return module_with(caller, callee), caller.name


def test_translated_footprint_flags_split_variable():
    module, caller = escape_pair(write_hi=32)
    layout = FrameLayout(caller)
    layout.variables = [FrameVariable(-32, -20)]   # traced 12 of 32
    summaries = summarize_module(module)
    findings, suggestions, escapes = check_escapes(
        caller, summaries[caller], summaries, layout,
        analyze_function(module.functions[caller]))
    assert [f.kind for f in findings] == ["escaped-split"]
    finding = findings[0]
    assert finding.severity == "error"
    assert finding.provenance["chain"] == [caller, "fn_2000"]
    assert "fn_2000" in finding.message
    assert suggestions and suggestions[0].start == -32
    assert suggestions[0].end == 0
    assert escapes and escapes[0][:2] == (-32, 0)


def test_contained_footprint_is_clean():
    module, caller = escape_pair(write_hi=32)
    layout = FrameLayout(caller)
    layout.variables = [FrameVariable(-32, 0)]     # full extent traced
    summaries = summarize_module(module)
    findings, _suggestions, escapes = check_escapes(
        caller, summaries[caller], summaries, layout,
        analyze_function(module.functions[caller]))
    assert findings == []
    assert escapes                    # still recorded for the sanitizer


def test_two_level_chain_is_propagated():
    # A -> B -> C: B forwards its pointer argument to C, C dereferences.
    c = lifted_function("fn_3000", 0x3000)
    cb = Builder(c)
    cb.position(c.add_block("entry"))
    p = cb.load(cb.add(c.params[0], Const(4)))
    for off in (0, 4, 8, 12):
        cb.store(cb.add(p, Const(off)), Const(off))
    cb.ret([Const(0)] * 7)

    mid = lifted_function("fn_2000", 0x2000)
    mb = Builder(mid)
    mb.position(mid.add_block("entry"))
    q = mb.load(mb.add(mid.params[0], Const(4)))
    lifted_call(mb, mid, "fn_3000", 32, [(0, q)])
    mb.ret([Const(0)] * 7)

    top = lifted_function()
    tb = Builder(top)
    tb.position(top.add_block("entry"))
    buf = tb.sub(top.params[0], Const(16))
    lifted_call(tb, top, "fn_2000", 40, [(0, buf)])
    tb.ret([Const(0)] * 7)

    module = module_with(top, mid, c)
    layout = FrameLayout(top.name)
    layout.variables = [FrameVariable(-16, -8)]    # 8 of 16 traced
    summaries = summarize_module(module)
    findings, _s, _e = check_escapes(
        top.name, summaries[top.name], summaries, layout,
        analyze_function(top))
    assert any(f.provenance["chain"] ==
               [top.name, "fn_2000", "fn_3000"] for f in findings)


def test_interproc_corroborate_stashes_escape_meta():
    module, caller = escape_pair(write_hi=16)
    layouts = {caller: FrameLayout(caller)}
    layouts[caller].variables = [FrameVariable(-32, -16)]
    accesses = {name: analyze_function(f)
                for name, f in module.functions.items()}
    findings, _ = interproc_corroborate(module, layouts, accesses)
    meta = module.functions[caller].meta.get("interproc_escapes")
    assert meta and meta[0][0] == -32
    assert meta[0][2] == [caller, "fn_2000"]


# -- extern-signature recovery -----------------------------------------------


def extern_caller(name, ext, stores, sp_delta=32):
    f = lifted_function(name, 0x1000)
    b = Builder(f)
    b.position(f.add_block("entry"))
    esp1 = b.sub(f.params[0], Const(sp_delta))
    for j, value in stores:
        b.store(b.add(esp1, Const(4 * j)), value)
    b.call_external(ext, [], sp=esp1)
    b.ret([Const(0)] * 7)
    return f


def test_extern_agreement_with_modeled_db_is_clean():
    # puts(char*): one pointer argument, witnessed by the stack store
    # of a global's address at the argument base.
    from repro.ir.values import GlobalRef
    f = extern_caller("fn_2000", "puts", [(0, GlobalRef("msg"))])
    module = module_with(f)
    module.add_global(GlobalVar("msg", 16, fixed_addr=0x4000))
    summaries = summarize_module(module)
    findings, inferred = recover_extern_sigs(module, summaries)
    assert [f_.kind for f_ in findings] == []
    assert inferred["puts"].nargs == 1
    assert inferred["puts"].ptr_args == {0}


def test_extern_underwitnessed_args_is_divergence():
    # memcpy is modeled with 3 args; witnessing only one slot at the
    # call site is confident disagreement.
    f = extern_caller("fn_1000", "memcpy", [(0, Const(5))])
    module = module_with(f)
    summaries = summarize_module(module)
    findings, _ = recover_extern_sigs(module, summaries)
    assert [f_.kind for f_ in findings] == ["extern-divergence"]
    assert findings[0].severity == "error"
    assert "memcpy" in findings[0].message


def test_extern_number_in_pointer_position_is_divergence():
    # puts' single argument is modeled as a pointer; an exact small
    # integer outside every global is conclusively not one.
    f = extern_caller("fn_1000", "puts", [(0, Const(7))])
    module = module_with(f)
    module.add_global(GlobalVar("msg", 16, fixed_addr=0x4000))
    summaries = summarize_module(module)
    findings, _ = recover_extern_sigs(module, summaries)
    assert [f_.kind for f_ in findings] == ["extern-divergence"]
    assert findings[0].provenance["arg"] == 0


def test_unmodeled_extern_becomes_candidate():
    from repro.ir.values import GlobalRef
    f1 = extern_caller("fn_1000", "mystery",
                       [(0, GlobalRef("msg")), (1, Const(2))])
    f2 = extern_caller("fn_2000", "mystery",
                       [(0, GlobalRef("msg")), (1, Const(3)),
                        (2, Const(4))])
    f2.orig_entry = 0x2000
    module = module_with(f1, f2)
    module.add_global(GlobalVar("msg", 16, fixed_addr=0x4000))
    summaries = summarize_module(module)
    findings, inferred = recover_extern_sigs(module, summaries)
    kinds = [f_.kind for f_ in findings]
    assert kinds == ["extern-candidate"]
    assert findings[0].severity == "info"
    sig = inferred["mystery"]
    assert sig.nargs == 2 and sig.vararg
    assert 0 in sig.ptr_args and 1 in sig.int_args
    assert sig.sites == 2


# -- env gate ----------------------------------------------------------------


def test_interproc_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_INTERPROC", raising=False)
    assert interproc_enabled()
    monkeypatch.setenv("REPRO_INTERPROC", "0")
    assert not interproc_enabled()
    monkeypatch.setenv("REPRO_INTERPROC", "1")
    assert interproc_enabled()


def test_finding_kind_registry_accepts_new_kinds():
    from repro.sanalysis.report import Finding
    for kind in ("escaped-split", "extern-divergence",
                 "extern-candidate"):
        sev = "info" if kind == "extern-candidate" else "error"
        Finding(sev, kind, "fn", "msg")
    with pytest.raises(ValueError):
        Finding("error", "not-a-kind", "fn", "msg")
