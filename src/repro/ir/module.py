"""Module, function, block and global containers of the repro IR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import IRError
from .values import Instr, Param, Phi


@dataclass
class GlobalVar:
    """A module-level datum.

    ``init`` may be raw bytes or a list of 32-bit words (ints or
    :class:`~repro.ir.values.FuncRef`-style names resolved at lowering).
    ``fixed_addr`` pins the global at an absolute address — lifted modules
    use this to keep original data sections where the binary had them.
    """

    name: str
    size: int
    init: bytes | list = b""
    align: int = 4
    fixed_addr: int | None = None
    writable: bool = True

    def init_bytes(self, resolve=None, pad: bool = True) -> bytes:
        """Materialize the initializer as bytes.

        With ``pad`` the result is zero-extended to ``size``; callers
        whose memory is already zero-initialized pass ``pad=False`` to
        avoid materializing megabytes of zeros (e.g. the emulated
        stack).
        """
        if isinstance(self.init, bytes):
            data = self.init
        else:
            out = bytearray()
            for word in self.init:
                if isinstance(word, int):
                    out += (word & 0xFFFFFFFF).to_bytes(4, "little")
                elif resolve is not None:
                    out += (resolve(word) & 0xFFFFFFFF).to_bytes(4, "little")
                else:
                    raise IRError(
                        f"global {self.name} has symbolic initializer")
            data = bytes(out)
        if len(data) > self.size:
            raise IRError(f"global {self.name} initializer too large")
        if not pad:
            return data
        return data + b"\x00" * (self.size - len(data))


class Block:
    """A basic block: a straight-line instruction list ending in a
    terminator."""

    def __init__(self, name: str):
        self.name = name
        self.instrs: list[Instr] = []
        self.function: "Function | None" = None

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise IRError(f"block {self.name} lacks a terminator")
        return self.instrs[-1]

    @property
    def is_terminated(self) -> bool:
        return bool(self.instrs) and self.instrs[-1].is_terminator

    def successors(self) -> list["Block"]:
        return self.terminator.successors()

    def append(self, instr: Instr) -> Instr:
        if self.is_terminated:
            raise IRError(f"appending past terminator in {self.name}")
        instr.block = self
        self.instrs.append(instr)
        if self.function is not None:
            self.function.version += 1
        return instr

    def insert(self, index: int, instr: Instr) -> Instr:
        instr.block = self
        self.instrs.insert(index, instr)
        if self.function is not None:
            self.function.version += 1
        return instr

    def phis(self) -> list[Phi]:
        out = []
        for instr in self.instrs:
            if not isinstance(instr, Phi):
                break
            out.append(instr)
        return out

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instrs)} instrs>"


class Function:
    """An IR function.

    ``nresults`` is the number of values its ``ret`` instructions carry —
    lifted functions return several (the live registers) until the
    refinements shrink them.
    """

    def __init__(self, name: str, param_names: list[str],
                 nresults: int = 1):
        self.name = name
        self.params = [Param(p, i) for i, p in enumerate(param_names)]
        self.nresults = nresults
        self.blocks: list[Block] = []
        #: Original binary address of the function entry (lifted modules).
        self.orig_entry: int | None = None
        #: Free-form analysis annotations (refinements stash results here).
        self.meta: dict = {}
        #: Mutation counter consulted by the interpreter's per-block
        #: compiled-code cache and the versioned CFG-analysis cache
        #: (:mod:`repro.opt.analysis`).  Bumped by :meth:`Block.append` /
        #: :meth:`Block.insert`; passes that splice ``block.instrs``
        #: directly, rewrite terminators in place, or edit
        #: :attr:`blocks` must call :meth:`invalidate`.
        self.version = 0

    def invalidate(self) -> None:
        """Signal a mutation made behind the builder API.

        Contract: call this after *any* change to this function's block
        list, instruction lists, or terminator targets that bypasses
        :meth:`Block.append`/:meth:`Block.insert`.  Cached analyses
        (dominators, predecessors, reachability) and the interpreter's
        compiled-block cache key on :attr:`version` and serve stale
        results to mutations that skip it.
        """
        self.version += 1

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str, index: int | None = None) -> Block:
        block = Block(name)
        block.function = self
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        return block

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def predecessors(self) -> dict[Block, list[Block]]:
        preds: dict[Block, list[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            if block.is_terminated:
                for succ in block.successors():
                    preds[succ].append(block)
        return preds

    def renumber(self) -> None:
        """Assign printable names (%0, %1, ...) to all instructions."""
        counter = 0
        for instr in self.instructions():
            if instr.has_result:
                instr.name = str(counter)
                counter += 1
            else:
                instr.name = None

    def __repr__(self) -> str:
        return f"<function {self.name}/{len(self.params)}>"


class Module:
    """A whole IR program."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVar] = {}
        #: Map from original binary code address to lifted function name;
        #: resolves indirect calls/jumps in lifted programs.
        self.address_table: dict[int, str] = {}
        #: Name of the program entry function.
        self.entry_name: str = "_start"
        #: Provenance (compiler/config or lifting pipeline description).
        self.metadata: dict[str, str] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def add_global(self, g: GlobalVar) -> GlobalVar:
        if g.name in self.globals:
            raise IRError(f"duplicate global {g.name}")
        self.globals[g.name] = g
        return g

    @property
    def entry_function(self) -> Function:
        try:
            return self.functions[self.entry_name]
        except KeyError:
            raise IRError(f"no entry function {self.entry_name!r}") from None

    def __repr__(self) -> str:
        return (f"<module {self.name}: {len(self.functions)} funcs, "
                f"{len(self.globals)} globals>")
