"""Optimizer benches: incremental worklist pass manager against the
legacy fixed schedule (``REPRO_PASS_BASELINE=1``).

Runs as the fourth ``tools/bench.sh`` pass and lands in
``BENCH_opt.json``: ``extra_info`` records both wall times, the
speedup, and the manager's skip/requeue accounting so a CI job can diff
a run against a saved baseline.

The workload mirrors the recompile driver's duplicated-stage shape:
canonicalize + optimize runs once cold, then repeatedly over the same
module — exactly what the pipeline does when refinement stages between
optimizer invocations turn out to be no-ops.  The legacy schedule pays
a full no-change sweep (every pass over every function, plus the inline
scan) per stage; the manager pays one version comparison per function.
Outputs must stay byte-identical, as printed IR and as recompiled
binaries.
"""

import os
import time

import pytest

from repro import obs
from repro.cc.driver import compile_to_ir
from repro.ir.printer import module_to_text
from repro.opt import (
    OptOptions,
    canonicalize_module,
    clear_memo,
    optimize_module,
)
from repro.recompile.link import compile_ir

pytestmark = pytest.mark.bench

SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int mix(int seed, int rounds) {
    int acc = seed;
    for (int i = 0; i < rounds; i++) {
        acc = acc * 31 + i;
        if (acc > 1000000) acc = acc % 1000003;
    }
    return acc;
}
int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}
int scale(int *a, int n, int k) {
    for (int i = 0; i < n; i++) a[i] = a[i] * k;
    return n;
}
int dot(int *a, int *b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i] * b[i];
    return s;
}
int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}
int main() {
    int arr[8];
    int brr[8];
    for (int i = 0; i < 8; i++) { arr[i] = i * 3; brr[i] = i + 1; }
    int acc = mix(5, 40) + fib(9) + sum(arr, 8) + dot(arr, brr, 8);
    acc += scale(arr, 8, 2) + clamp(acc, 0, 1000);
    return acc % 97;
}
"""

#: One cold stage plus seven re-runs: the pipeline's canonicalize and
#: optimize entry points hit the same module once per refinement stage.
STAGES = 8
OPTS = OptOptions.o3()


def _run_stages(baseline: bool):
    """(wall time of STAGES canonicalize+optimize invocations over one
    module, final printed IR, the module)."""
    if baseline:
        os.environ["REPRO_PASS_BASELINE"] = "1"
    else:
        os.environ.pop("REPRO_PASS_BASELINE", None)
        clear_memo()
    try:
        module = compile_to_ir(SOURCE, name="opt_bench", config=None)
        start = time.perf_counter()
        for _ in range(STAGES):
            canonicalize_module(module)
            optimize_module(module, OPTS)
        elapsed = time.perf_counter() - start
        return elapsed, module_to_text(module), module
    finally:
        os.environ.pop("REPRO_PASS_BASELINE", None)


def _best_of(n: int, baseline: bool):
    best = None
    for _ in range(n):
        result = _run_stages(baseline)
        if best is None or result[0] < best[0]:
            best = result
    return best


def test_bench_worklist_speedup(benchmark):
    """Manager vs legacy schedule on the duplicated-stage workload; the
    outputs must be byte-identical and the win >= 1.3x."""
    _run_stages(True)  # warm both code paths once
    _run_stages(False)

    baseline_s, baseline_text, baseline_module = _best_of(3, True)

    obs.enable(reset=True)
    try:
        manager_s, manager_text, manager_module = benchmark.pedantic(
            lambda: _best_of(3, False), rounds=1, iterations=1)
        counters = dict(obs.recorder().registry.counters)
    finally:
        obs.disable()

    assert manager_text == baseline_text
    assert compile_ir(manager_module).to_json() == \
        compile_ir(baseline_module).to_json()

    skipped = counters.get("opt.manager.skipped", 0)
    requeued = counters.get("opt.manager.requeued", 0)
    nfuncs = len(manager_module.functions)
    # 2 schedules x STAGES, minus the one cold visit per schedule.
    revisits = nfuncs * 2 * (STAGES - 1)
    assert skipped >= revisits, (
        f"manager skipped only {skipped} of {revisits} warm visits")

    speedup = baseline_s / manager_s
    benchmark.extra_info["baseline_seconds"] = baseline_s
    benchmark.extra_info["manager_seconds"] = manager_s
    benchmark.extra_info["speedup_vs_baseline"] = speedup
    benchmark.extra_info["stages"] = STAGES
    benchmark.extra_info["functions"] = nfuncs
    benchmark.extra_info["skipped"] = skipped
    benchmark.extra_info["skip_rate"] = skipped / max(
        skipped + counters.get("opt.pass.simplifycfg.entry.runs", 0), 1)
    benchmark.extra_info["requeued"] = requeued
    assert speedup >= 1.3, (
        f"pass-manager speedup {speedup:.2f}x < 1.3x "
        f"(baseline {baseline_s*1e3:.1f}ms, manager {manager_s*1e3:.1f}ms)")
