"""Dynamic CFG recovery from merged execution traces.

Only instructions that actually executed are decoded and lifted — the
BinRec discipline.  Conditional directions that were never traced become
trap ("unreachable") edges; executing one in the recompiled binary is the
coverage failure mode the paper discusses in §7.2, fixed by incremental
re-lifting with more inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binary.image import BinaryImage
from ..emu.tracer import TraceSet
from ..errors import LiftError
from ..isa.disassembler import Disassembler
from ..isa.instructions import Instruction


@dataclass
class MachineBlock:
    """A traced basic block: consecutive executed instructions."""

    start: int
    instrs: list[Instruction] = field(default_factory=list)
    #: Traced intra-procedural successors (addresses).
    succs: list[int] = field(default_factory=list)
    #: True if the block's terminator had an untraced direction.
    has_untraced_edge: bool = False

    @property
    def end(self) -> int:
        last = self.instrs[-1]
        return last.addr + last.size

    @property
    def terminator(self) -> Instruction:
        return self.instrs[-1]


@dataclass
class RecoveredCFG:
    """The merged interprocedural CFG of the traced program."""

    image: BinaryImage
    blocks: dict[int, MachineBlock] = field(default_factory=dict)
    #: Direct + indirect call edges: call-site address -> target set.
    call_targets: dict[int, set[int]] = field(default_factory=dict)
    #: Observed indirect jump targets: jump-site address -> target set.
    jump_targets: dict[int, set[int]] = field(default_factory=dict)
    entry: int = 0
    #: Instruction addresses added by static coverage extension (empty
    #: without ``static_extend``); blocks rooted here carry no dynamic
    #: evidence, which downstream analyses report as provenance.
    static_addrs: set[int] = field(default_factory=set)

    def block_at(self, addr: int) -> MachineBlock:
        try:
            return self.blocks[addr]
        except KeyError:
            raise LiftError(f"no traced block at {addr:#x}") from None


_BLOCK_ENDERS = frozenset({"jmp", "jcc", "ret", "hlt"})


def recover_cfg(traces: TraceSet,
                static_extend: bool = False) -> RecoveredCFG:
    """Build basic blocks and edges from the merged trace set.

    With ``static_extend`` (the paper's §7.2 hybrid direction), untraced
    conditional-branch directions and direct jump/call targets are grown
    by *static* disassembly, so inputs that stray slightly off the traced
    paths no longer trap.  Statically-added code contributes no dynamic
    bounds, so its stack references fall back to the conservative
    attachment rules during symbolization.
    """
    image = traces.image
    disasm = Disassembler(image)
    executed = set(traces.executed)
    if image.entry not in executed:
        raise LiftError("entry point never executed in traces")

    # Instruction-level successor map from the trace events.
    jump_edges: dict[int, set[int]] = {}
    call_edges: dict[int, set[int]] = {}
    leaders: set[int] = {image.entry}
    for t in traces.transfers:
        if t.kind in ("jump", "fallthrough"):
            jump_edges.setdefault(t.src, set()).add(t.dst)
            leaders.add(t.dst)
        elif t.kind == "call":
            call_edges.setdefault(t.src, set()).add(t.dst)
            leaders.add(t.dst)
            instr = disasm.at(t.src)
            leaders.add(t.src + instr.size)  # return site
        elif t.kind == "ret":
            leaders.add(t.dst)
        elif t.kind == "import":
            leaders.add(t.dst)

    static_addrs: set[int] = set()
    if static_extend:
        static_addrs = _extend_statically(image, disasm, executed,
                                          leaders, jump_edges,
                                          call_edges)

    # Split on leaders: walk each leader forward through executed code.
    cfg = RecoveredCFG(image, entry=image.entry,
                       static_addrs=static_addrs)
    for leader in sorted(leaders):
        if leader not in executed or leader in cfg.blocks:
            continue
        block = MachineBlock(leader)
        addr = leader
        while True:
            instr = disasm.at(addr)
            block.instrs.append(instr)
            nxt = addr + instr.size
            if instr.mnemonic in _BLOCK_ENDERS:
                break
            if instr.mnemonic == "call":
                # Calls end blocks; the return site starts a new one.
                break
            if nxt in leaders:
                break
            if nxt not in executed:
                # Trace stopped mid-flow (e.g. exit inside an import).
                break
            addr = nxt
        cfg.blocks[leader] = block

    # Successor edges.
    for block in cfg.blocks.values():
        term = block.terminator
        addr = term.addr
        if term.mnemonic == "jmp":
            targets = sorted(jump_edges.get(addr, ()))
            block.succs = targets
            if len(targets) > 1 or _is_indirect(term):
                cfg.jump_targets[addr] = set(targets)
        elif term.mnemonic == "jcc":
            taken = sorted(jump_edges.get(addr, ()))
            block.succs = taken
            if len(taken) < 2:
                block.has_untraced_edge = True
        elif term.mnemonic == "call":
            from ..isa.instructions import ImportRef
            if isinstance(term.operands[0], ImportRef):
                ret_site = addr + term.size
                block.succs = [ret_site] if ret_site in cfg.blocks else []
            else:
                cfg.call_targets[addr] = set(call_edges.get(addr, ()))
                ret_site = addr + term.size
                block.succs = [ret_site] if ret_site in cfg.blocks else []
        elif term.mnemonic in ("ret", "hlt"):
            block.succs = []
        else:
            # Fallthrough into the next leader.
            nxt = block.end
            block.succs = [nxt] if nxt in cfg.blocks else []
    return cfg


def _is_indirect(instr: Instruction) -> bool:
    from ..isa.instructions import Imm
    return not isinstance(instr.operands[0], Imm)


def _extend_statically(image, disasm: Disassembler, executed: set[int],
                       leaders: set[int], jump_edges: dict,
                       call_edges: dict) -> set[int]:
    """Grow coverage along statically decodable, untraced paths.

    Starting from the untraced sides of traced conditional branches,
    decode forward; direct branch/call targets join the worklist.
    Indirect control flow stops growth (its targets stay
    trace-only, keeping the dynamic discipline where statics cannot
    help).  Returns the set of instruction addresses it added.
    """
    from ..isa.instructions import Imm, ImportRef

    added: set[int] = set()
    work: list[int] = []

    def want(addr: int) -> None:
        if image.text.contains(addr) and addr not in executed:
            work.append(addr)

    for addr in list(executed):
        instr = disasm.at(addr)
        if instr.mnemonic == "jcc":
            target = instr.operands[0].value
            fall = addr + instr.size
            # Complete the traced branch with its untraced direction.
            jump_edges.setdefault(addr, set()).update(
                t for t in (target, fall) if image.text.contains(t))
            leaders.update(t for t in (target, fall)
                           if image.text.contains(t))
            want(target)
            want(fall)
        elif instr.mnemonic == "jmp" and isinstance(instr.operands[0],
                                                    Imm):
            want(instr.operands[0].value)

    budget = 20000
    while work and budget > 0:
        addr = work.pop()
        if addr in executed or not image.text.contains(addr):
            continue
        leaders.add(addr)
        while image.text.contains(addr) and addr not in executed \
                and budget > 0:
            budget -= 1
            instr = disasm.at(addr)
            executed.add(addr)
            added.add(addr)
            nxt = addr + instr.size
            if instr.mnemonic == "jcc":
                target = instr.operands[0].value
                jump_edges.setdefault(addr, set()).update({target, nxt})
                leaders.update({target, nxt})
                want(target)
                want(nxt)
                break
            if instr.mnemonic == "jmp":
                op = instr.operands[0]
                if isinstance(op, Imm):
                    jump_edges.setdefault(addr, set()).add(op.value)
                    leaders.add(op.value)
                    want(op.value)
                break
            if instr.mnemonic == "call":
                op = instr.operands[0]
                if isinstance(op, Imm):
                    call_edges.setdefault(addr, set()).add(op.value)
                    leaders.update({op.value, nxt})
                    want(op.value)
                    want(nxt)
                elif isinstance(op, ImportRef):
                    leaders.add(nxt)
                    want(nxt)
                else:
                    break  # indirect call: stop static growth here
                break
            if instr.mnemonic in ("ret", "hlt"):
                break
            if nxt in leaders:
                want(nxt)
                break
            addr = nxt
    return added
