"""Native backend: lowering repro IR to machine code and linking."""

from .link import RECOMP_TEXT_BASE, compile_ir, lower_module, recompile_ir
from .lower import (
    RESULT_REGS,
    STACK_SWITCH_SAVE,
    FunctionLowerer,
    LowerOptions,
    clear_lower_cache,
    lower_cache_enabled,
    lower_cache_stats,
    lower_function,
)

__all__ = [
    "FunctionLowerer", "LowerOptions", "RECOMP_TEXT_BASE", "RESULT_REGS",
    "STACK_SWITCH_SAVE", "clear_lower_cache", "compile_ir",
    "lower_cache_enabled", "lower_cache_stats", "lower_function",
    "lower_module",
    "recompile_ir",
]
