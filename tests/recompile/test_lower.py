"""The native backend: conventions, addressing, ground truth."""

import pytest

from repro.errors import LowerError
from repro.ir import Builder, Const, Function, GlobalRef, GlobalVar, \
    Module
from repro.isa import Disassembler
from repro.emu import run_binary
from repro.recompile import LowerOptions, compile_ir


def module_returning(build_body, params=(), nresults=1):
    m = Module()
    f = Function("main", list(params))
    f.nresults = nresults
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    build_body(b, f)
    return m


def test_simple_lowering_runs():
    m = module_returning(lambda b, f: b.ret(
        [b.binop("mul", Const(6), Const(7))]))
    image = compile_ir(m)
    assert run_binary(image).exit_code == 42


def test_alloca_becomes_direct_frame_access():
    def body(b, f):
        slot = b.alloca(4, name="x")
        b.store(slot, Const(9))
        b.ret([b.load(slot)])
    image = compile_ir(module_returning(body))
    listing = Disassembler(image).listing()
    assert run_binary(image).exit_code == 9
    # The local is accessed as a direct [frame+disp] operand, not via a
    # materialized address.
    assert "[ebp" in listing or "[esp" in listing


def test_division_and_remainder():
    def body(b, f):
        q = b.binop("div", Const(-29), Const(4))
        r = b.binop("rem", Const(-29), Const(4))
        b.ret([b.binop("mul", q, r)])  # (-7) * (-1)
    image = compile_ir(module_returning(body))
    assert run_binary(image).exit_code == 7


def test_variable_shift():
    def body(b, f):
        n = b.add(Const(0), Const(3))
        v = b.binop("shl", Const(5), b.add(n, Const(1)))
        b.ret([v])
    image = compile_ir(module_returning(body))
    assert run_binary(image).exit_code == 80


def test_multi_result_function_round_trip():
    m = Module()
    pair = Function("pair", ["sp", "x"])
    pair.nresults = 2
    b = Builder(pair)
    b.position(pair.add_block("entry"))
    b.ret([b.add(pair.params[1], Const(1)),
           b.add(pair.params[1], Const(2))])
    m.add_function(pair)
    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    call = b.call("pair", [Const(0), Const(10)], nresults=2)
    r0 = b.result(call, 0)
    r1 = b.result(call, 1)
    b.ret([b.binop("mul", r0, r1)])
    m.add_function(main)
    m.entry_name = "main"
    image = compile_ir(m, LowerOptions(frame_pointer=False))
    assert run_binary(image).exit_code == 132


def test_seven_results_require_no_frame_pointer():
    m = Module()
    f = Function("f", ["sp"])
    f.nresults = 7
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([Const(i) for i in range(7)])
    m.add_function(f)
    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    call = b.call("f", [Const(0)], nresults=7)
    results = [b.result(call, i) for i in range(7)]
    total = results[0]
    for r in results[1:]:
        total = b.add(total, r)
    b.ret([total])
    m.add_function(main)
    m.entry_name = "main"
    with pytest.raises(LowerError):
        compile_ir(m, LowerOptions(frame_pointer=True))
    image = compile_ir(m, LowerOptions(frame_pointer=False))
    assert run_binary(image).exit_code == sum(range(7))


def test_stack_switching_external_call():
    # A CallExt with stack args must point esp at the argument area.
    m = Module()
    m.add_global(GlobalVar("area", 16, b""))
    m.add_global(GlobalVar("fmt", 8, b"n=%d!\x00"))
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.store(GlobalRef("area"), GlobalRef("fmt"))
    b.store(b.add(GlobalRef("area"), Const(4)), Const(55))
    b.call_external("printf", [], sp=GlobalRef("area"))
    b.ret([Const(0)])
    image = compile_ir(m, LowerOptions(frame_pointer=False))
    result = run_binary(image)
    assert result.stdout == b"n=55!"


def test_ground_truth_records_allocas():
    def body(b, f):
        b.alloca(24, name="buf")
        b.alloca(4, name="x")
        b.ret([Const(0)])
    m = module_returning(body)
    image = compile_ir(m)
    gt = next(g for g in image.ground_truth if g.func_name == "main")
    named = {o.name: o for o in gt.objects}
    assert named["buf"].size == 24
    assert named["x"].size == 4
    assert all(o.offset < 0 for o in gt.objects)


def test_phi_swap_pattern_lowered_correctly():
    # Swapping loop-carried values exercises the parallel phi copies.
    m = Module()
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    a = b.phi([])
    c = b.phi([])
    i = b.phi([])
    a.add_incoming(entry, Const(1))
    c.add_incoming(entry, Const(2))
    i.add_incoming(entry, Const(0))
    nxt = b.add(i, Const(1))
    a.add_incoming(loop, c)   # swap
    c.add_incoming(loop, a)
    i.add_incoming(loop, nxt)
    cond = b.icmp("slt", nxt, Const(5))
    b.condbr(cond, loop, done)
    b.position(done)
    b.ret([b.add(b.binop("mul", a, Const(10)), c)])
    from repro.ir import run_module
    expected = run_module(m).exit_code  # IR semantics as the oracle
    image = compile_ir(m, LowerOptions(frame_pointer=False))
    assert run_binary(image).exit_code == expected == 12


def test_peephole_removes_redundant_moves():
    def body(b, f):
        v = b.add(Const(1), Const(2))
        w = b.add(v, v)
        b.ret([w])
    with_peep = compile_ir(module_returning(body))
    def body2(b, f):
        v = b.add(Const(1), Const(2))
        w = b.add(v, v)
        b.ret([w])
    without = compile_ir(module_returning(body2),
                         LowerOptions(peephole=False))
    assert len(with_peep.text.data) <= len(without.text.data)


def test_fold_chains_option_changes_code():
    def body(b, f):
        slot = b.alloca(64, name="arr")
        addr = b.add(slot, Const(12))
        b.store(addr, Const(5))
        b.ret([b.load(b.add(slot, Const(12)))])
    folded = compile_ir(module_returning(body))
    def body2(b, f):
        slot = b.alloca(64, name="arr")
        addr = b.add(slot, Const(12))
        b.store(addr, Const(5))
        b.ret([b.load(b.add(slot, Const(12)))])
    unfolded = compile_ir(module_returning(body2),
                          LowerOptions(fold_chains=False))
    assert run_binary(folded).exit_code == 5
    assert run_binary(unfolded).exit_code == 5
    assert len(folded.text.data) < len(unfolded.text.data)
