"""Register file definition for the repro 32-bit ISA.

The ISA mirrors the x86-32 general purpose register file, including the
16-bit and 8-bit sub-register views that the paper's "false derive"
discussion (Section 4.2.3) depends on: writing ``al`` or ``ax`` must leave
the upper bits of ``eax`` intact.
"""

from __future__ import annotations

from dataclasses import dataclass

# Canonical 32-bit register names, in x86 encoding order.
GPR32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
GPR16 = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di")
GPR8_LOW = ("al", "cl", "dl", "bl")
GPR8_HIGH = ("ah", "ch", "dh", "bh")

#: Registers usable for allocation by compilers (esp is the stack pointer).
ALLOCATABLE = ("eax", "ecx", "edx", "ebx", "esi", "edi")

#: Registers that the repro calling conventions treat as callee-saved.
CALLEE_SAVED = ("ebx", "esi", "edi", "ebp")

#: Registers that are caller-saved (clobbered by calls).
CALLER_SAVED = ("eax", "ecx", "edx")

FLAG_NAMES = ("zf", "sf", "cf", "of")


@dataclass(frozen=True)
class Reg:
    """A view of a general-purpose register.

    ``index`` is the x86 encoding index of the full 32-bit register.
    ``width`` is the view width in bytes (1, 2 or 4) and ``high8`` selects
    the ``ah``-style high-byte view when ``width == 1``.
    """

    index: int
    width: int = 4
    high8: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < 8:
            raise ValueError(f"bad register index {self.index}")
        if self.width not in (1, 2, 4):
            raise ValueError(f"bad register width {self.width}")
        if self.high8 and (self.width != 1 or self.index >= 4):
            raise ValueError("high-byte views exist only for a/c/d/b")
        if self.width == 1 and self.index >= 4 and not self.high8:
            raise ValueError("8-bit low views exist only for a/c/d/b")

    @property
    def name(self) -> str:
        if self.width == 4:
            return GPR32[self.index]
        if self.width == 2:
            return GPR16[self.index]
        if self.high8:
            return GPR8_HIGH[self.index]
        return GPR8_LOW[self.index]

    @property
    def full(self) -> "Reg":
        """The containing 32-bit register."""
        return Reg(self.index)

    def __repr__(self) -> str:
        return f"%{self.name}"


def _build_name_table() -> dict[str, Reg]:
    table: dict[str, Reg] = {}
    for i, name in enumerate(GPR32):
        table[name] = Reg(i, 4)
    for i, name in enumerate(GPR16):
        table[name] = Reg(i, 2)
    for i, name in enumerate(GPR8_LOW):
        table[name] = Reg(i, 1)
    for i, name in enumerate(GPR8_HIGH):
        table[name] = Reg(i, 1, high8=True)
    return table


_BY_NAME = _build_name_table()


def reg(name: str) -> Reg:
    """Look up a register view by its assembly name (e.g. ``"eax"``)."""
    try:
        return _BY_NAME[name.lower().lstrip("%")]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None


# Convenience singletons used pervasively by the compiler and lifter.
EAX = reg("eax")
ECX = reg("ecx")
EDX = reg("edx")
EBX = reg("ebx")
ESP = reg("esp")
EBP = reg("ebp")
ESI = reg("esi")
EDI = reg("edi")
AL = reg("al")
AX = reg("ax")
AH = reg("ah")
CL = reg("cl")


def read_view(value32: int, r: Reg) -> int:
    """Extract the value of register view ``r`` from a full 32-bit value."""
    if r.width == 4:
        return value32 & 0xFFFFFFFF
    if r.width == 2:
        return value32 & 0xFFFF
    if r.high8:
        return (value32 >> 8) & 0xFF
    return value32 & 0xFF


def write_view(value32: int, r: Reg, new: int) -> int:
    """Merge a write to view ``r`` into the full 32-bit register value.

    Partial writes leave unrelated bits untouched, matching x86-32 (this is
    what creates the paper's false-derive hazard).
    """
    if r.width == 4:
        return new & 0xFFFFFFFF
    if r.width == 2:
        return (value32 & 0xFFFF0000) | (new & 0xFFFF)
    if r.high8:
        return (value32 & 0xFFFF00FF) | ((new & 0xFF) << 8)
    return (value32 & 0xFFFFFF00) | (new & 0xFF)
