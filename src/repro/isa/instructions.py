"""Instruction and operand model for the repro 32-bit ISA.

The instruction set is a compact subset of x86-32 that keeps every
behaviour the paper's analyses depend on: ``esp``/``ebp`` stack discipline
(push/pop/call/ret/leave), base+index*scale+disp addressing, partial
register writes, flag-driven conditional branches, and indirect control
flow (jump tables, function pointers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registers import Reg

# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Imm:
    """An immediate operand. Values are stored as signed 32-bit ints."""

    value: int

    def __repr__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Label:
    """A symbolic code/data reference, resolved to an address at link time.

    ``addend`` supports ``symbol + constant`` references (e.g. a direct
    access to the third element of a global array).
    """

    name: str
    addend: int = 0

    def __repr__(self) -> str:
        if self.addend:
            return f"{self.name}+{self.addend}"
        return self.name


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]`` of ``size`` bytes.

    Before assembly the displacement may be a :class:`Label` (a global
    symbol); the assembler resolves it to an absolute address.
    """

    base: Reg | None = None
    index: Reg | None = None
    scale: int = 1
    disp: "int | Label" = 0
    size: int = 4

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")
        if self.size not in (1, 2, 4):
            raise ValueError(f"bad access size {self.size}")
        if self.base is not None and self.base.width != 4:
            raise ValueError("memory base must be a 32-bit register")
        if self.index is not None and self.index.width != 4:
            raise ValueError("memory index must be a 32-bit register")

    def __repr__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        addr = "+".join(parts) if parts else ""
        if isinstance(self.disp, Label):
            addr = f"{addr}+{self.disp.name}" if parts else self.disp.name
        elif self.disp or not parts:
            sign = "+" if self.disp >= 0 and parts else ""
            addr = f"{addr}{sign}{self.disp}" if parts else f"{self.disp:#x}"
        return f"{{{self.size}}}[{addr}]"


@dataclass(frozen=True)
class ImportRef:
    """A reference to an external (dynamically linked) function by name."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


Operand = Reg | Imm | Mem | Label | ImportRef

# ---------------------------------------------------------------------------
# Instruction set
# ---------------------------------------------------------------------------

#: Condition codes shared by Jcc and SETcc. Mapping to flag predicates lives
#: in the emulator (:mod:`repro.emu.cpu`).
CONDITION_CODES = (
    "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns",
)

#: All mnemonics understood by the assembler, emulator and lifter.
MNEMONICS = (
    "mov", "movzx", "movsx", "lea",
    "push", "pop",
    "add", "sub", "and", "or", "xor", "neg", "not",
    "imul", "cdq", "idiv",
    "shl", "shr", "sar",
    "inc", "dec",
    "cmp", "test",
    "jmp", "jcc", "call", "ret", "leave",
    "setcc",
    "nop", "hlt",
)

_ARITH_FLAGS = {"add", "sub", "and", "or", "xor", "neg", "imul",
                "shl", "shr", "sar", "inc", "dec", "cmp", "test"}


@dataclass
class Instruction:
    """A single decoded/assembled machine instruction.

    ``addr`` and ``size`` are filled in by the assembler/disassembler; they
    are ``None`` for instructions that have not been placed yet.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    cc: str | None = None
    addr: int | None = None
    size: int | None = None
    #: Free-form annotation used by compilers for debugging listings.
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.mnemonic not in MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        if self.mnemonic in ("jcc", "setcc"):
            if self.cc not in CONDITION_CODES:
                raise ValueError(f"bad condition code {self.cc!r}")
        elif self.cc is not None:
            raise ValueError(f"{self.mnemonic} takes no condition code")

    @property
    def writes_flags(self) -> bool:
        return self.mnemonic in _ARITH_FLAGS

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in ("jmp", "jcc", "call", "ret", "hlt")

    @property
    def name(self) -> str:
        """Display mnemonic, with the condition code folded in."""
        if self.mnemonic == "jcc":
            return f"j{self.cc}"
        if self.mnemonic == "setcc":
            return f"set{self.cc}"
        return self.mnemonic

    def __repr__(self) -> str:
        ops = ", ".join(repr(o) for o in self.operands)
        loc = f"{self.addr:#x}: " if self.addr is not None else ""
        note = f"  # {self.comment}" if self.comment else ""
        return f"{loc}{self.name} {ops}".rstrip() + note


# Convenience constructors keep compiler/lifter code terse and readable.

def ins(mnemonic: str, *operands: Operand, cc: str | None = None,
        comment: str = "") -> Instruction:
    """Build an :class:`Instruction` (shorthand used across the codebase)."""
    return Instruction(mnemonic, tuple(operands), cc=cc, comment=comment)


def jcc(cc: str, target: Operand) -> Instruction:
    return Instruction("jcc", (target,), cc=cc)


def setcc(cc: str, dst: Reg) -> Instruction:
    return Instruction("setcc", (dst,), cc=cc)
