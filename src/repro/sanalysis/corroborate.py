"""Layout corroboration: static frame accesses vs dynamic layouts.

The dynamic layout (:mod:`repro.core.layout`) is exact for what the
traces touched and silent about everything else.  This pass diffs it
against the statically-provable access set of :mod:`.absint`:

* a static access that *straddles* a recovered variable boundary means
  the optimizer could split one object in two — ``unsound-split``, an
  error that must gate recompilation;
* a statically reachable byte region the trace never touched is a
  ``coverage-gap`` — a warning, paired with a widening suggestion that
  :func:`repro.core.layout.apply_widenings` can apply under
  ``REPRO_STATIC_WIDEN=1`` (growing a variable never invalidates traced
  behaviour; it only trades optimization precision for soundness).

Derived accesses (stack-walks whose extent the interpreter could not
bound) are clamped against the nearest statically-known frame slot
above their anchor before the diff, so an under-traced ``int buf[16]``
whose single trace touched 3 elements still surfaces the remaining 52
bytes as a gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .absint import FrameAccessSet, StaticAccess

if TYPE_CHECKING:
    from ..core.layout import FrameLayout
from .report import COVERAGE_GAP, UNSOUND_SPLIT, Finding


@dataclass(frozen=True)
class WideningSuggestion:
    """Grow the frame variables overlapping ``[start, end)`` to cover
    the whole region (or create one if none overlaps)."""

    func: str
    start: int
    end: int
    reason: str = ""

    def to_dict(self) -> dict:
        return {"func": self.func, "start": self.start, "end": self.end,
                "reason": self.reason}


def _clamp_set(access_set: FrameAccessSet,
               layout: FrameLayout) -> list[int]:
    """Frame offsets with independent evidence: static slots, derived
    anchors, and recovered variable starts.  Derived accesses extend
    from their anchor up to (exclusive) the next such offset."""
    bounds = {0}
    bounds.update(o for o in access_set.known_offsets if o < 0)
    bounds.update(v.start for v in layout.variables if v.start < 0)
    return sorted(bounds)


def _regions(access_set: FrameAccessSet,
             layout: FrameLayout) -> list[tuple[int, int, StaticAccess]]:
    """Concrete ``[lo, hi)`` byte regions for every frame-side access,
    with derived extents clamped to the neighbouring known slot."""
    clamps = _clamp_set(access_set, layout)
    regions = []
    for access in access_set.accesses:
        if access.lo >= 0:
            continue          # argument/return-address side
        if access.derived:
            hi = next(b for b in clamps if b > access.lo)
        else:
            hi = min(access.hi, 0)
        if hi > access.lo:
            regions.append((access.lo, hi, access))
    return regions


def _subtract(lo: int, hi: int,
              covered: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """``[lo, hi)`` minus the (sorted, disjoint) covered intervals."""
    out = []
    cursor = lo
    for c_lo, c_hi in covered:
        if c_hi <= cursor:
            continue
        if c_lo >= hi:
            break
        if c_lo > cursor:
            out.append((cursor, min(c_lo, hi)))
        cursor = max(cursor, c_hi)
        if cursor >= hi:
            break
    if cursor < hi:
        out.append((cursor, hi))
    return out


def corroborate_function(
        access_set: FrameAccessSet, layout: FrameLayout,
) -> tuple[list[Finding], list[WideningSuggestion]]:
    """Diff one function's static access set against its dynamic
    layout; returns findings plus widening suggestions for the gaps."""
    findings: list[Finding] = []
    suggestions: list[WideningSuggestion] = []
    variables = sorted(layout.variables, key=lambda v: v.start)
    covered = [(v.start, v.end) for v in variables if v.start < 0]

    # -- unsound splits: exact accesses crossing a variable boundary.
    seen_splits = set()
    for access in access_set.accesses:
        if not access.exact or access.lo >= 0:
            continue
        lo, hi = access.lo, access.lo + access.width
        for var in variables:
            if not (var.start < hi and lo < var.end):
                continue
            if var.start <= lo and hi <= var.end:
                continue      # contained: corroborated
            key = (lo, access.width, var.start, var.end)
            if key in seen_splits:
                continue
            seen_splits.add(key)
            findings.append(Finding(
                "error", UNSOUND_SPLIT, access_set.func_name,
                f"static {access.kind} [{lo}, {hi}) straddles recovered "
                f"variable [{var.start}, {var.end})",
                offset=lo, width=access.width,
                provenance={"pass": "corroborate",
                            "access": [lo, hi],
                            "variable": [var.start, var.end],
                            "path": access.provenance}))

    # -- coverage gaps: static bytes outside every recovered variable.
    seen_gaps = set()
    for lo, hi, access in _regions(access_set, layout):
        for g_lo, g_hi in _subtract(lo, hi, covered):
            if (g_lo, g_hi) in seen_gaps:
                continue
            seen_gaps.add((g_lo, g_hi))
            overlapping = [v for v in variables
                           if v.start < hi and lo < v.end]
            s_start = min([lo] + [v.start for v in overlapping])
            s_end = max([hi] + [v.end for v in overlapping])
            findings.append(Finding(
                "warning", COVERAGE_GAP, access_set.func_name,
                f"statically reachable {access.kind} may touch "
                f"[{g_lo}, {g_hi}) which no traced variable covers "
                f"(suggest widening to [{s_start}, {s_end}))",
                offset=g_lo, width=g_hi - g_lo,
                provenance={"pass": "corroborate",
                            "region": [lo, hi],
                            "derived": access.derived,
                            "path": access.provenance,
                            "suggestion": [s_start, s_end]}))
            suggestion = WideningSuggestion(
                access_set.func_name, s_start, s_end,
                reason=f"static {access.kind} region [{lo}, {hi})")
            if suggestion not in suggestions:
                suggestions.append(suggestion)
    return findings, suggestions


def corroborate_layouts(
        accesses: dict[str, FrameAccessSet],
        layouts: dict[str, FrameLayout],
) -> tuple[list[Finding], list[WideningSuggestion]]:
    """Corroborate every function with both a static access set and a
    dynamic layout."""
    findings: list[Finding] = []
    suggestions: list[WideningSuggestion] = []
    for name, access_set in sorted(accesses.items()):
        layout = layouts.get(name)
        if layout is None:
            continue
        fs, ss = corroborate_function(access_set, layout)
        findings.extend(fs)
        suggestions.extend(ss)
    return findings, suggestions
