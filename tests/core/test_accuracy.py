"""Figure 7 classification logic."""

from repro.binary.image import BinaryImage, FrameGroundTruth, Section, \
    StackObject
from repro.core.accuracy import evaluate_accuracy
from repro.core.layout import FrameLayout, FrameVariable


def image_with_truth(objects):
    return BinaryImage(
        text=Section(".text", 0x1000, b"\x00"),
        entry=0x1000,
        ground_truth=[FrameGroundTruth("f", 0x1000, 64, objects)],
    )


def layout_with(spans):
    layout = FrameLayout("fn_00001000")
    layout.variables = [FrameVariable(s, e) for s, e in spans]
    return {"fn_00001000": layout}


def classify(objects, spans):
    image = image_with_truth(objects)
    report = evaluate_accuracy(image, layout_with(spans))
    return report


def test_exact_match():
    r = classify([StackObject("x", -8, 4)], [(-8, -4)])
    assert r.counts["matched"] == 1
    assert r.precision == 1.0 and r.recall == 1.0


def test_oversized():
    r = classify([StackObject("x", -8, 4)], [(-12, -4)])
    assert r.counts["oversized"] == 1
    assert r.recall == 0.0


def test_undersized():
    r = classify([StackObject("arr", -16, 12)], [(-16, -8)])
    assert r.counts["undersized"] == 1


def test_missed():
    r = classify([StackObject("x", -8, 4)], [(-32, -28)])
    assert r.counts["missed"] == 1


def test_saved_regs_not_counted():
    r = classify([StackObject("save.ebx", -4, 4, kind="saved_reg"),
                  StackObject("x", -12, 4)], [(-12, -8)])
    assert r.total_objects == 1
    assert r.counts["matched"] == 1


def test_untraced_functions_skipped():
    image = image_with_truth([StackObject("x", -8, 4)])
    image.ground_truth.append(
        FrameGroundTruth("ghost", 0x9999, 8, [StackObject("y", -4, 4)]))
    report = evaluate_accuracy(image, layout_with([(-8, -4)]))
    assert report.total_objects == 1


def test_precision_counts_recovered_variables():
    # Two recovered vars, one matches one truth object.
    r = classify([StackObject("x", -8, 4)], [(-8, -4), (-20, -16)])
    assert r.precision == 0.5
    assert r.recall == 1.0


def test_merge():
    a = classify([StackObject("x", -8, 4)], [(-8, -4)])
    b = classify([StackObject("y", -8, 4)], [(-16, -4)])
    a.merge(b)
    assert a.total_objects == 2
    assert a.counts["matched"] == 1 and a.counts["oversized"] == 1


def test_empty_ground_truth_frame():
    # A frame with no objects contributes nothing — and recall must not
    # divide by zero.
    r = classify([], [(-8, -4)])
    assert r.total_objects == 0
    assert r.recall == 0.0
    assert r.total_recovered == 1
    assert r.precision == 0.0
    assert all(v == 0.0 for v in r.ratios().values())


def test_zero_recovered_variables():
    # Nothing recovered: every object is missed, precision defined as 0.
    r = classify([StackObject("x", -8, 4), StackObject("y", -16, 8)], [])
    assert r.counts["missed"] == 2
    assert r.precision == 0.0 and r.recall == 0.0


def test_empty_report_has_no_zero_division():
    r = classify([], [])
    assert r.precision == 0.0 and r.recall == 0.0
    assert r.ratios() == {c: 0.0 for c in r.counts}


def test_exact_boundary_adjacency_is_missed():
    # A variable ending exactly where the object starts (and one
    # starting exactly where it ends) shares no byte with it.
    r = classify([StackObject("x", -8, 4)], [(-12, -8), (-4, 0)])
    assert r.counts["missed"] == 1


def test_exact_match_beats_covering_variable():
    # When one recovered variable matches exactly and another merely
    # covers, the object counts as matched, not oversized.
    r = classify([StackObject("x", -8, 4)], [(-8, -4), (-16, 0)])
    assert r.counts["matched"] == 1
    assert r.counts["oversized"] == 0
