"""IR optimizer (the LLVM pass-pipeline analogue)."""

from .alias import AliasAnalysis
from .analysis import (
    Dominators,
    analysis_cache_enabled,
    cached_analysis,
    dominators,
    postorder,
    predecessors,
    reachable,
    reachable_blocks,
    use_counts,
)
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .deadargelim import (
    eliminate_dead_params,
    eliminate_dead_results,
    shrink_signatures,
)
from .dse import eliminate_dead_stores
from .flagfuse import fuse_flags
from .gvn import eliminate_redundant_loads, global_value_numbering
from .inline import inline_call, inline_functions
from .mem2reg import promotable_allocas, promote_allocas
from .pipeline import (
    OptOptions,
    drop_unused_private_functions,
    optimize_function,
    optimize_module,
)
from .simplifycfg import remove_unreachable, simplify_cfg

__all__ = [
    "AliasAnalysis", "Dominators", "OptOptions",
    "analysis_cache_enabled", "cached_analysis", "dominators",
    "drop_unused_private_functions", "eliminate_dead_code",
    "eliminate_dead_params", "eliminate_dead_results",
    "eliminate_dead_stores", "eliminate_redundant_loads",
    "fold_constants", "fuse_flags", "global_value_numbering", "inline_call",
    "inline_functions", "optimize_function", "optimize_module",
    "postorder", "predecessors", "promotable_allocas", "promote_allocas",
    "reachable", "reachable_blocks", "remove_unreachable",
    "shrink_signatures", "simplify_cfg",
    "use_counts",
]
