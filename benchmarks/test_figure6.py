"""Regenerates Figure 6: runtimes normalized to the GCC 12.2 -O3 native
baseline (paper §6.2).

Expected shape: the WYTIWYG-recompiled series sit near 1.0 regardless of
which toolchain produced the input, while the native series spread out
(legacy and -O0 inputs above 1.0)."""

import pytest

from repro.evaluation import build_figure6

from .conftest import selected_workloads

_NAMES = selected_workloads()


@pytest.fixture(scope="module")
def figure6():
    fig = build_figure6(_NAMES)
    rendered = fig.render()
    print("\n=== Figure 6 (normalized to gcc12 -O3 native) ===")
    print(rendered)
    from .test_table1 import _save
    _save("figure6.txt", rendered)
    return fig


def test_print_figure6(benchmark, figure6):
    means = figure6.geomeans()
    # Recompiled binaries approach the modern baseline from every input.
    for label, mean in means.items():
        if "wytiwyg" in label:
            assert mean < 1.35, (label, mean)
    # Input spread: legacy/unoptimized inputs are slower than the
    # baseline they are normalized against.
    assert means["gcc44-O3 native"] > 1.0
    assert means["gcc12-O0 native"] > 1.0
    benchmark(lambda: figure6.geomeans())


def test_recompiled_series_tighter_than_native(benchmark, figure6):
    natives = [figure6.geomeans()[k] for k in figure6.series
               if k.endswith("native")]
    recompiled = [figure6.geomeans()[k] for k in figure6.series
                  if k.endswith("wytiwyg")]
    spread_native = max(natives) - min(natives)
    spread_rec = max(recompiled) - min(recompiled)
    benchmark.extra_info["native_spread"] = spread_native
    benchmark.extra_info["recompiled_spread"] = spread_rec
    assert spread_rec < spread_native
    benchmark(lambda: figure6.geomeans())
