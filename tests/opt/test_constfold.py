"""Constant folding and algebraic simplification."""

from repro.ir import BinOp, Builder, Const, Function, run_module, \
    Module, Unary
from repro.opt import fold_constants


def build(make_body):
    m = Module()
    f = Function("main", ["x"])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    b.position(f.add_block("entry"))
    make_body(b, f)
    return m, f


def instrs(f):
    return [i for i in f.instructions()]


def test_folds_constant_tree():
    m, f = build(lambda b, f: b.ret(
        [b.add(b.binop("mul", Const(6), Const(7)), Const(0))]))
    fold_constants(f)
    assert len(instrs(f)) == 1  # just the ret
    assert f.entry.instrs[0].ops == [Const(42)]


def test_identity_simplifications():
    def body(b, f):
        x = f.params[0]
        v = b.add(x, Const(0))
        w = b.binop("mul", v, Const(1))
        z = b.binop("xor", w, w)
        b.ret([z])
    m, f = build(body)
    fold_constants(f)
    assert f.entry.instrs[-1].ops == [Const(0)]


def test_sub_canonicalized_to_add():
    def body(b, f):
        v = b.sub(f.params[0], Const(5))
        b.ret([v])
    m, f = build(body)
    fold_constants(f)
    op = f.entry.instrs[0]
    assert op.opcode == "add" and op.rhs == Const((-5) & 0xFFFFFFFF)


def test_add_chain_reassociation():
    def body(b, f):
        v = b.add(f.params[0], Const(3))
        w = b.add(v, Const(4))
        u = b.sub(w, Const(2))
        b.ret([u])
    m, f = build(body)
    fold_constants(f)
    final = f.entry.instrs[-1].ops[0]
    assert isinstance(final, BinOp)
    assert final.opcode == "add" and final.rhs == Const(5)
    assert final.lhs is f.params[0]


def test_icmp_folding():
    m, f = build(lambda b, f: b.ret([b.icmp("slt", Const(-1), Const(1))]))
    fold_constants(f)
    assert f.entry.instrs[0].ops == [Const(1)]


def test_icmp_same_operand():
    def body(b, f):
        v = b.icmp("sle", f.params[0], f.params[0])
        b.ret([v])
    m, f = build(body)
    fold_constants(f)
    assert f.entry.instrs[0].ops == [Const(1)]


def test_unary_folding():
    m, f = build(lambda b, f: b.ret([b.unary("sext8", Const(0xFF))]))
    fold_constants(f)
    assert f.entry.instrs[0].ops == [Const(0xFFFFFFFF)]


def test_division_by_zero_not_folded():
    def body(b, f):
        v = b.binop("div", Const(1), Const(0))
        b.ret([v])
    m, f = build(body)
    fold_constants(f)
    assert any(isinstance(i, BinOp) for i in instrs(f))  # kept


def test_semantics_preserved_on_random_exprs():
    import random
    rng = random.Random(7)
    for _ in range(25):
        ops = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"]
        consts = [rng.randrange(-100, 100) for _ in range(4)]

        def body(b, f):
            v = Const(consts[0])
            for c in consts[1:]:
                v = b.binop(rng.choice(ops), v, Const(c))
            b.ret([v])
        m, f = build(body)
        before = run_module(m).exit_code
        fold_constants(f)
        after = run_module(m).exit_code
        assert before == after
