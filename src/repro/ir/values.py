"""Core value and instruction classes of the repro compiler IR.

The IR is a small LLVM-flavoured SSA IR:

* values are 32-bit integers (pointers are integers, as on the machine);
  narrower widths exist only at memory boundaries (sized loads/stores) and
  via explicit extension/truncation ops — mirroring how 32-bit x86 code
  actually behaves, which matters for the paper's false-derive discussion;
* functions may return **multiple values**, which is how lifted functions
  thread the virtual register file through calls before the refinements
  shrink their signatures;
* ``Intrinsic`` instructions carry the WYTIWYG instrumentation probes
  (``wyt.derive`` and friends, paper §4.2.2); the interpreter dispatches
  them to a registered runtime, like BinRec's instrumentation library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from .module import Block


class Value:
    """Anything that can appear as an instruction operand."""


@dataclass(frozen=True)
class Const(Value):
    """A 32-bit integer constant (stored as unsigned)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & 0xFFFFFFFF)

    @property
    def signed(self) -> int:
        return self.value - 0x100000000 if self.value >= 0x80000000 \
            else self.value

    def __repr__(self) -> str:
        return str(self.signed)


@dataclass(frozen=True)
class GlobalRef(Value):
    """The address of a module global."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class FuncRef(Value):
    """A direct reference to a function (call target or address-taken)."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


class Param(Value):
    """A function parameter."""

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index

    def __repr__(self) -> str:
        return f"%{self.name}"


class Instr(Value):
    """Base class of all IR instructions.

    ``ops`` holds operand values; subclasses expose named accessors.
    ``name`` is a printing hint assigned by the function's numberer.
    """

    opcode: str = "?"
    has_result: bool = True
    is_terminator: bool = False

    def __init__(self, ops: list[Value]):
        self.ops: list[Value] = list(ops)
        self.block: "Block | None" = None
        self.name: str | None = None

    def operands(self) -> Iterator[Value]:
        return iter(self.ops)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.ops = [new if op is old else op for op in self.ops]

    def rewrite_operands(self, mapping: dict[Value, Value]) -> None:
        self.ops = [mapping.get(op, op) for op in self.ops]

    def _label(self) -> str:
        return f"%{self.name}" if self.name else f"%<{id(self):x}>"

    def __repr__(self) -> str:
        result = f"{self._label()} = " if self.has_result else ""
        ops = ", ".join(_short(op) for op in self.ops)
        return f"{result}{self.opcode} {ops}".rstrip()


def _short(v: Value) -> str:
    if isinstance(v, Instr):
        return v._label()
    return repr(v)


BINOPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
          "shl", "shr", "sar")

UNOPS = ("neg", "not", "sext8", "sext16", "zext8", "zext16",
         "trunc8", "trunc16")

ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge",
              "ult", "ule", "ugt", "uge")


class BinOp(Instr):
    def __init__(self, op: str, lhs: Value, rhs: Value):
        if op not in BINOPS:
            raise ValueError(f"bad binop {op!r}")
        super().__init__([lhs, rhs])
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.ops[0]

    @property
    def rhs(self) -> Value:
        return self.ops[1]


class Unary(Instr):
    def __init__(self, op: str, src: Value):
        if op not in UNOPS:
            raise ValueError(f"bad unary op {op!r}")
        super().__init__([src])
        self.opcode = op

    @property
    def src(self) -> Value:
        return self.ops[0]


class ICmp(Instr):
    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value):
        if pred not in ICMP_PREDS:
            raise ValueError(f"bad icmp predicate {pred!r}")
        super().__init__([lhs, rhs])
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.ops[0]

    @property
    def rhs(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return (f"{self._label()} = icmp {self.pred} "
                f"{_short(self.ops[0])}, {_short(self.ops[1])}")


class Load(Instr):
    opcode = "load"

    def __init__(self, addr: Value, size: int = 4):
        if size not in (1, 2, 4):
            raise ValueError(f"bad load size {size}")
        super().__init__([addr])
        self.size = size

    @property
    def addr(self) -> Value:
        return self.ops[0]

    def __repr__(self) -> str:
        return f"{self._label()} = load.{self.size} {_short(self.ops[0])}"


class Store(Instr):
    opcode = "store"
    has_result = False

    def __init__(self, addr: Value, value: Value, size: int = 4):
        if size not in (1, 2, 4):
            raise ValueError(f"bad store size {size}")
        super().__init__([addr, value])
        self.size = size

    @property
    def addr(self) -> Value:
        return self.ops[0]

    @property
    def value(self) -> Value:
        return self.ops[1]

    def __repr__(self) -> str:
        return (f"store.{self.size} {_short(self.ops[0])}, "
                f"{_short(self.ops[1])}")


class Alloca(Instr):
    """A native stack allocation of ``size`` bytes; yields its address."""

    opcode = "alloca"

    def __init__(self, size: int, align: int = 4, var_name: str = ""):
        super().__init__([])
        self.size = size
        self.align = align
        self.var_name = var_name

    def __repr__(self) -> str:
        tag = f" ; {self.var_name}" if self.var_name else ""
        return f"{self._label()} = alloca {self.size}, align {self.align}" \
            + tag


class Call(Instr):
    """Direct call. May produce multiple results (see :class:`Result`)."""

    opcode = "call"

    def __init__(self, callee: FuncRef, args: list[Value],
                 nresults: int = 1):
        super().__init__([callee, *args])
        self.nresults = nresults

    @property
    def callee(self) -> FuncRef:
        callee = self.ops[0]
        assert isinstance(callee, FuncRef)
        return callee

    @property
    def args(self) -> list[Value]:
        return self.ops[1:]

    def __repr__(self) -> str:
        args = ", ".join(_short(a) for a in self.ops[1:])
        res = f"{self._label()} = " if self.nresults else ""
        return f"{res}call {self.ops[0]!r}({args}) -> {self.nresults}"


class CallInd(Instr):
    """Indirect call through a runtime code address.

    Resolution goes through the module's address table (original entry
    address -> lifted function), the same mechanism BinRec uses for
    indirect control flow in lifted programs.
    """

    opcode = "callind"

    def __init__(self, target: Value, args: list[Value], nresults: int = 1):
        super().__init__([target, *args])
        self.nresults = nresults

    @property
    def target(self) -> Value:
        return self.ops[0]

    @property
    def args(self) -> list[Value]:
        return self.ops[1:]

    def __repr__(self) -> str:
        args = ", ".join(_short(a) for a in self.ops[1:])
        return (f"{self._label()} = callind {_short(self.ops[0])}({args}) "
                f"-> {self.nresults}")


class CallExt(Instr):
    """Call to an external (libc) function.

    Before varargs recovery, lifted variadic calls use *stack switching*
    (paper §5.2): ``sp`` points at the argument area in the emulated stack
    and ``args`` is empty.  After recovery (and always for recompiled
    MiniC code), arguments are explicit and ``sp`` is ``None``.
    """

    opcode = "callext"

    def __init__(self, name: str, args: list[Value],
                 sp: Value | None = None):
        ops = list(args) if sp is None else [sp, *args]
        super().__init__(ops)
        self.ext_name = name
        self.stack_args = sp is not None

    @property
    def sp(self) -> Value | None:
        return self.ops[0] if self.stack_args else None

    @property
    def args(self) -> list[Value]:
        return self.ops[1:] if self.stack_args else list(self.ops)

    def __repr__(self) -> str:
        if self.stack_args:
            return (f"{self._label()} = callext @{self.ext_name} "
                    f"[stack {_short(self.ops[0])}]")
        args = ", ".join(_short(a) for a in self.ops)
        return f"{self._label()} = callext @{self.ext_name}({args})"


class Result(Instr):
    """Extracts result ``index`` of a multi-result call."""

    opcode = "result"

    def __init__(self, call: Instr, index: int):
        super().__init__([call])
        self.index = index

    @property
    def call(self) -> Instr:
        call = self.ops[0]
        assert isinstance(call, Instr)
        return call

    def __repr__(self) -> str:
        return f"{self._label()} = result {_short(self.ops[0])}[{self.index}]"


class Phi(Instr):
    opcode = "phi"

    def __init__(self, incomings: list[tuple["Block", Value]]):
        super().__init__([v for _b, v in incomings])
        self.blocks: list["Block"] = [b for b, _v in incomings]

    def incomings(self) -> list[tuple["Block", Value]]:
        return list(zip(self.blocks, self.ops, strict=True))

    def add_incoming(self, block: "Block", value: Value) -> None:
        self.blocks.append(block)
        self.ops.append(value)

    def value_for(self, block: "Block") -> Value:
        for b, v in zip(self.blocks, self.ops, strict=True):
            if b is block:
                return v
        raise KeyError(f"phi has no incoming for block {block.name}")

    def remove_incoming(self, block: "Block") -> None:
        pairs = [(b, v) for b, v in zip(self.blocks, self.ops,
                                        strict=True)
                 if b is not block]
        self.blocks = [b for b, _ in pairs]
        self.ops = [v for _, v in pairs]

    def __repr__(self) -> str:
        parts = ", ".join(f"[{b.name}: {_short(v)}]"
                          for b, v in zip(self.blocks, self.ops,
                                          strict=True))
        return f"{self._label()} = phi {parts}"


class Intrinsic(Instr):
    """An instrumentation probe (e.g. ``wyt.derive``); see paper §4.2.2.

    Probes never produce a value used by the program and are removed
    wholesale after an analysis round, so they cannot perturb semantics.
    """

    opcode = "intrinsic"
    has_result = False

    def __init__(self, name: str, args: list[Value],
                 meta: dict | None = None):
        super().__init__(args)
        self.intrinsic = name
        self.meta = dict(meta or {})

    def __repr__(self) -> str:
        args = ", ".join(_short(a) for a in self.ops)
        return f"{self.intrinsic}({args})"


# -- terminators ------------------------------------------------------------


class Br(Instr):
    opcode = "br"
    has_result = False
    is_terminator = True

    def __init__(self, target: "Block"):
        super().__init__([])
        self.target = target

    def successors(self) -> list["Block"]:
        return [self.target]

    def __repr__(self) -> str:
        return f"br {self.target.name}"


class CondBr(Instr):
    opcode = "condbr"
    has_result = False
    is_terminator = True

    def __init__(self, cond: Value, if_true: "Block", if_false: "Block"):
        super().__init__([cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.ops[0]

    def successors(self) -> list["Block"]:
        return [self.if_true, self.if_false]

    def __repr__(self) -> str:
        return (f"condbr {_short(self.ops[0])}, {self.if_true.name}, "
                f"{self.if_false.name}")


class Switch(Instr):
    """Multi-way branch on a value (lifted jump tables, indirect jumps)."""

    opcode = "switch"
    has_result = False
    is_terminator = True

    def __init__(self, value: Value, cases: list[tuple[int, "Block"]],
                 default: "Block"):
        super().__init__([value])
        self.cases = list(cases)
        self.default = default

    @property
    def value(self) -> Value:
        return self.ops[0]

    def successors(self) -> list["Block"]:
        seen: list["Block"] = []
        for _v, b in self.cases:
            if b not in seen:
                seen.append(b)
        if self.default not in seen:
            seen.append(self.default)
        return seen

    def __repr__(self) -> str:
        cases = ", ".join(f"{v:#x}: {b.name}" for v, b in self.cases)
        return (f"switch {_short(self.ops[0])} [{cases}] "
                f"default {self.default.name}")


class Ret(Instr):
    opcode = "ret"
    has_result = False
    is_terminator = True

    def __init__(self, values: list[Value]):
        super().__init__(values)

    def successors(self) -> list["Block"]:
        return []

    def __repr__(self) -> str:
        return "ret " + ", ".join(_short(v) for v in self.ops)


class Unreachable(Instr):
    """An untraced path: executing it is a lifting-coverage failure."""

    opcode = "unreachable"
    has_result = False
    is_terminator = True

    def __init__(self, note: str = ""):
        super().__init__([])
        self.note = note

    def successors(self) -> list["Block"]:
        return []

    def __repr__(self) -> str:
        return f"unreachable ; {self.note}" if self.note else "unreachable"
