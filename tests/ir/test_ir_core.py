"""IR containers: blocks, functions, modules, values."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BinOp,
    Block,
    Br,
    Builder,
    Const,
    Function,
    GlobalVar,
    Module,
    Phi,
    Ret,
)


def test_const_normalization():
    assert Const(-1).value == 0xFFFFFFFF
    assert Const(-1).signed == -1
    assert Const(5) == Const(5)


def test_block_terminator_discipline():
    f = Function("f", [])
    b = f.add_block("entry")
    with pytest.raises(IRError):
        _ = b.terminator
    b.append(Ret([Const(0)]))
    assert b.is_terminated
    with pytest.raises(IRError):
        b.append(Ret([Const(1)]))


def test_function_renumber():
    f = Function("f", ["x"])
    builder = Builder(f)
    builder.position(f.add_block("entry"))
    a = builder.add(f.params[0], Const(1))
    builder.store(a, Const(0))
    b = builder.add(a, Const(2))
    builder.ret([b])
    f.renumber()
    assert a.name == "0" and b.name == "1"


def test_predecessors():
    f = Function("f", [])
    builder = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    builder.position(e)
    builder.condbr(Const(1), t, t)
    builder.position(t)
    builder.ret([Const(0)])
    preds = f.predecessors()
    # A condbr with both edges to the same block contributes one entry
    # per edge.
    assert preds[t] == [e, e]
    assert preds[e] == []


def test_module_duplicate_names_rejected():
    m = Module()
    m.add_function(Function("f", []))
    with pytest.raises(IRError):
        m.add_function(Function("f", []))
    m.add_global(GlobalVar("g", 4))
    with pytest.raises(IRError):
        m.add_global(GlobalVar("g", 4))


def test_global_init_bytes_padding():
    g = GlobalVar("g", 8, b"ab")
    assert g.init_bytes() == b"ab\x00\x00\x00\x00\x00\x00"
    assert g.init_bytes(pad=False) == b"ab"
    with pytest.raises(IRError):
        GlobalVar("g", 1, b"toolong").init_bytes()


def test_global_word_initializer():
    g = GlobalVar("g", 8, [1, 2])
    assert g.init_bytes() == b"\x01\x00\x00\x00\x02\x00\x00\x00"


def test_phi_incoming_management():
    f = Function("f", [])
    a = f.add_block("a")
    b = f.add_block("b")
    phi = Phi([(a, Const(1)), (b, Const(2))])
    assert phi.value_for(a) == Const(1)
    phi.remove_incoming(a)
    assert phi.blocks == [b]
    with pytest.raises(KeyError):
        phi.value_for(a)


def test_operand_rewriting():
    x = BinOp("add", Const(1), Const(2))
    y = BinOp("mul", x, x)
    y.replace_operand(x, Const(3))
    assert y.ops == [Const(3), Const(3)]
