"""Static-analysis benches: warm reuse of the interprocedural summary
cache across repeated corroboration runs.

Runs as the eighth ``tools/bench.sh`` pass and lands in
``BENCH_sanalysis.json``.  The scenario mirrors the serve daemon's
steady state: the same lifted module is re-corroborated after every
incremental trace addition, but only the functions a refinement
actually touched changed — so per-function local summaries (the
expensive abstract-interpretation leg) must come from the
version-keyed cache, and a one-function edit must recompute exactly
that function's summary while every other function is reused.
"""

import time

import pytest

from repro import obs
from repro.ir import Builder, Const, Function, Module
from repro.ir.values import BinOp
from repro.sanalysis.interproc import summarize_module

pytestmark = pytest.mark.bench

REG_ORDER = ["eax", "ecx", "edx", "ebx", "ebp", "esi", "edi"]

#: Wide enough that a one-function edit keeps the reuse rate above
#: 95%, and that the cold abstract-interpretation sweep has real work.
N_WORKERS = 24
#: Straight-line frame traffic per worker; the region-tagged
#: interpreter walks every instruction each round until convergence.
N_SLOTS = 48


def _lifted_function(name, entry):
    f = Function(name, ["sp", *REG_ORDER], nresults=7)
    f.orig_entry = entry
    return f


def _leaf(name, entry):
    """A callee dereferencing a pointer argument: its footprint keeps
    the bottom-up propagation leg honest in every measured run."""
    f = _lifted_function(name, entry)
    b = Builder(f)
    b.position(f.add_block("entry"))
    p = b.load(b.add(f.params[0], Const(4)))
    for j in range(8):
        b.store(b.add(p, Const(4 * j)), Const(j))
    b.ret([Const(0)] * 7)
    return f


def _worker(name, entry, leaf):
    """Local frame traffic plus a call passing a frame pointer."""
    f = _lifted_function(name, entry)
    b = Builder(f)
    b.position(f.add_block("entry"))
    sp0 = f.params[0]
    acc = Const(0)
    for j in range(N_SLOTS):
        slot = b.add(sp0, Const(-4 * (j + 1)))
        b.store(slot, acc)
        acc = b.add(b.load(slot), Const(j))
    esp1 = b.sub(sp0, Const(4 * (N_SLOTS + 4)))
    buf = b.add(sp0, Const(-4 * N_SLOTS))
    b.store(b.add(esp1, Const(4)), buf)
    b.call(leaf, [esp1] + list(f.params[1:]), nresults=7)
    b.ret([acc] + [Const(0)] * 6)
    return f


def _build_module():
    module = Module("sanalysis_bench")
    leaf = _leaf("fn_9000", 0x9000)
    funcs = [leaf]
    root = _lifted_function("fn_8000", 0x8000)
    rb = Builder(root)
    rb.position(root.add_block("entry"))
    for i in range(N_WORKERS):
        worker = _worker(f"fn_{0x1000 + i:x}", 0x1000 + i, leaf)
        funcs.append(worker)
        esp1 = rb.sub(root.params[0], Const(64))
        rb.call(worker, [esp1] + list(root.params[1:]), nresults=7)
    rb.ret([Const(0)] * 7)
    funcs.append(root)
    for f in funcs:
        module.add_function(f)
        module.address_table[f.orig_entry] = f.name
    return module


def _summary_counters():
    counters = dict(obs.recorder().registry.counters)
    return {k.rsplit(".", 1)[-1]: v for k, v in counters.items()
            if k.startswith("sanalysis.summary.")}


def test_bench_summary_cache_warm_reuse(benchmark):
    """Cold vs warm summarize_module; a one-function edit recomputes
    exactly one local summary."""
    module = _build_module()
    nfuncs = len(module.functions)

    obs.enable(reset=True)
    try:
        start = time.perf_counter()
        cold_summaries = summarize_module(module)
        cold_s = time.perf_counter() - start
        cold = _summary_counters()

        obs.enable(reset=True)
        start = time.perf_counter()
        warm_summaries = benchmark.pedantic(
            lambda: summarize_module(module), rounds=1, iterations=1)
        warm_s = time.perf_counter() - start
        for _ in range(2):
            start = time.perf_counter()
            summarize_module(module)
            warm_s = min(warm_s, time.perf_counter() - start)
        warm = _summary_counters()

        # One-function edit: only the edited function recomputes.
        victim = module.functions["fn_1003"]
        victim.entry.insert(0, BinOp("add", Const(1), Const(2)))
        victim.invalidate()
        obs.enable(reset=True)
        start = time.perf_counter()
        edited_summaries = summarize_module(module)
        edit_s = time.perf_counter() - start
        edited = _summary_counters()
    finally:
        obs.disable()

    # The caches never change the answer.
    assert set(cold_summaries) == set(warm_summaries) \
        == set(edited_summaries)
    for name, fs in cold_summaries.items():
        assert warm_summaries[name].footprints == fs.footprints

    assert cold.get("computed") == nfuncs
    assert cold.get("reused", 0) == 0
    assert warm.get("computed", 0) == 0
    assert warm.get("reused") == 3 * nfuncs    # three warm sweeps
    assert edited.get("computed") == 1, (
        f"one-function edit recomputed {edited.get('computed')} "
        f"summaries")
    assert edited.get("reused") == nfuncs - 1
    reuse_rate = edited["reused"] / nfuncs

    speedup = cold_s / warm_s
    benchmark.extra_info["functions"] = nfuncs
    benchmark.extra_info["cold_seconds"] = cold_s
    benchmark.extra_info["warm_seconds"] = warm_s
    benchmark.extra_info["warm_speedup"] = speedup
    benchmark.extra_info["edit_seconds"] = edit_s
    benchmark.extra_info["recomputed_after_edit"] = edited["computed"]
    benchmark.extra_info["edit_reuse_rate"] = reuse_rate
    assert reuse_rate >= 0.95, f"reuse rate {reuse_rate:.0%} < 95%"
    # Warm runs still pay the (unmemoized) bottom-up propagation, so
    # the ceiling is the local-summary share of the sweep.
    assert speedup >= 2.0, (
        f"warm summary speedup {speedup:.2f}x < 2.0x "
        f"(cold {cold_s*1e3:.1f}ms, warm {warm_s*1e3:.1f}ms)")
