"""Module-level lowering and linking: IR module -> runnable binary."""

from __future__ import annotations

from ..binary.image import TEXT_BASE, BinaryImage
from ..errors import LowerError
from ..ir.module import GlobalVar, Module
from ..ir.values import CallExt, CallInd, FuncRef, GlobalRef
from ..isa import AsmProgram, DataItem, Label, assemble
from .lower import (
    RESOLVER_NAME,
    STACK_SWITCH_SAVE,
    LowerOptions,
    build_resolver,
    lower_function,
)

#: Recompiled binaries are placed clear of the original image so pinned
#: original data sections can stay at their original addresses.
RECOMP_TEXT_BASE = 0x09000000


def _global_payload(g: GlobalVar):
    if isinstance(g.init, bytes):
        if g.fixed_addr is not None:
            return g.init  # pinned: no layout padding needed
        return g.init + b"\x00" * (g.size - len(g.init))
    words: list = []
    for word in g.init:
        if isinstance(word, int):
            words.append(word)
        elif isinstance(word, (GlobalRef, FuncRef)):
            words.append(Label(word.name))
        else:
            raise LowerError(f"bad initializer cell in global {g.name}")
    missing = g.size - 4 * len(words)
    if missing < 0:
        raise LowerError(f"global {g.name} initializer overflows size")
    words.extend([0] * ((missing + 3) // 4))
    return words


def lower_module(module: Module,
                 options: LowerOptions | None = None,
                 text_base: int = TEXT_BASE) -> AsmProgram:
    """Lower every function and global of ``module`` to an AsmProgram."""
    opts = options or LowerOptions()
    program = AsmProgram(entry=module.entry_name, text_base=text_base,
                         metadata=dict(module.metadata))

    imports: list[str] = []
    uses_stack_switching = False
    uses_indirect_calls = False
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, CallExt):
                if instr.ext_name not in imports:
                    imports.append(instr.ext_name)
                if instr.stack_args:
                    uses_stack_switching = True
            elif isinstance(instr, CallInd):
                uses_indirect_calls = True
        if func.nresults >= 7 and opts.frame_pointer:
            raise LowerError(
                f"{func.name}: 7-result functions require "
                f"frame_pointer=False (ebp carries a result)")
    program.imports = imports

    for func in module.functions.values():
        # Fingerprint-memoized: a warm compile touches only functions
        # whose IR content actually changed (see lower.lower_function).
        asm, data_items, ground_truth = lower_function(func, module,
                                                       opts)
        program.functions.append(asm)
        program.data.extend(data_items)
        if ground_truth is not None:
            program.ground_truth.append(ground_truth)

    for g in module.globals.values():
        program.data.append(DataItem(
            g.name, _global_payload(g), align=max(g.align, 1),
            writable=g.writable, fixed_addr=g.fixed_addr))
    if uses_stack_switching:
        program.data.append(DataItem(STACK_SWITCH_SAVE, b"\x00" * 4))
    if uses_indirect_calls and module.address_table:
        program.functions.append(build_resolver(module.address_table,
                                                opts.trap_code - 1))
    return program


def compile_ir(module: Module,
               options: LowerOptions | None = None,
               text_base: int = TEXT_BASE,
               metadata: dict[str, str] | None = None) -> BinaryImage:
    """Lower, assemble and link ``module`` into a binary image."""
    program = lower_module(module, options, text_base)
    if metadata:
        program.metadata.update(metadata)
    return assemble(program)


def recompile_ir(module: Module,
                 options: LowerOptions | None = None,
                 metadata: dict[str, str] | None = None) -> BinaryImage:
    """Recompile a lifted module (text placed clear of the original
    image; lifted modules never use a frame pointer so ebp can carry
    results)."""
    opts = options or LowerOptions(frame_pointer=False)
    return compile_ir(module, opts, RECOMP_TEXT_BASE, metadata)
