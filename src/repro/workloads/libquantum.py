"""libquantum stand-in: quantum register simulation with fixed-point
amplitudes — Hadamard-like and controlled-NOT gates as bit-indexed array
transforms, plus a measurement/normalization sweep."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
int amp_re[1024];
int amp_im[1024];
int n_qubits;
int n_states;

void init_register(int qubits) {
    n_qubits = qubits;
    n_states = 1 << qubits;
    int i;
    for (i = 0; i < n_states; i++) { amp_re[i] = 0; amp_im[i] = 0; }
    amp_re[0] = 4096;  /* |0..0> with fixed-point 1.0 = 4096 */
}

void hadamard(int target) {
    int mask = 1 << target;
    int i;
    for (i = 0; i < n_states; i++) {
        if (i & mask) continue;
        int j = i | mask;
        int are = amp_re[i]; int aim = amp_im[i];
        int bre = amp_re[j]; int bim = amp_im[j];
        /* 1/sqrt2 ~ 2896/4096 */
        amp_re[i] = (are + bre) * 2896 / 4096;
        amp_im[i] = (aim + bim) * 2896 / 4096;
        amp_re[j] = (are - bre) * 2896 / 4096;
        amp_im[j] = (aim - bim) * 2896 / 4096;
    }
}

void cnot(int control, int target) {
    int cmask = 1 << control;
    int tmask = 1 << target;
    int i;
    for (i = 0; i < n_states; i++) {
        if ((i & cmask) && !(i & tmask)) {
            int j = i | tmask;
            int tre = amp_re[i]; int tim = amp_im[i];
            amp_re[i] = amp_re[j]; amp_im[i] = amp_im[j];
            amp_re[j] = tre; amp_im[j] = tim;
        }
    }
}

void phase_flip(int target) {
    int mask = 1 << target;
    int i;
    for (i = 0; i < n_states; i++) {
        if (i & mask) {
            amp_re[i] = -amp_re[i];
            amp_im[i] = -amp_im[i];
        }
    }
}

int total_probability() {
    int total = 0;
    int i;
    for (i = 0; i < n_states; i++) {
        total = total + (amp_re[i] * amp_re[i]
                         + amp_im[i] * amp_im[i]) / 4096;
    }
    return total;
}

int dominant_state() {
    int best = 0;
    int besti = 0;
    int i;
    for (i = 0; i < n_states; i++) {
        int p = amp_re[i] * amp_re[i] + amp_im[i] * amp_im[i];
        if (p > best) { best = p; besti = i; }
    }
    return besti;
}

int main() {
    int qubits = read_int();
    int rounds = read_int();
    init_register(qubits);
    int r;
    for (r = 0; r < rounds; r++) {
        int q;
        for (q = 0; q < n_qubits; q++) hadamard(q);
        for (q = 0; q + 1 < n_qubits; q++) cnot(q, q + 1);
        phase_flip(r % n_qubits);
        printf("round %d: norm %d dominant %d\n",
               r, total_probability(), dominant_state());
    }
    printf("final norm %d\n", total_probability());
    return 0;
}
"""

WORKLOAD = Workload(
    name="libquantum",
    source=SOURCE,
    ref_inputs=(
        (6, 4),
    ),
    description="quantum register simulation: gate transforms over "
                "amplitude arrays",
)
