"""The structured event ledger: an append-only JSONL flight recorder.

The metrics registry (:mod:`.metrics`) answers "how much / how long";
the ledger answers "what happened, in what order, and why".  Every
pipeline layer emits typed events — stage boundaries, trace merges,
frame-variable construction steps, corroboration findings, cache hits
and invalidations, pool lifecycle, validation verdicts — and the ledger
records them durably enough that a later run (or the ``repro explain``
provenance query) can reconstruct *why* a recovered fact looks the way
it does.

Design:

* **append-only JSONL** — one event per line, schema-versioned
  (:data:`LEDGER_SCHEMA_VERSION`); a reader skips lines whose ``v`` it
  does not understand instead of failing, so old ledgers stay readable
  across schema bumps (compatibility rules in DESIGN.md);
* **typed kinds** — :data:`EVENT_KINDS` is the registry; ``emit``
  rejects unknown kinds so producers and consumers cannot drift apart
  silently;
* **process-safe** — file-backed ledgers write each line with a single
  ``os.write`` on an ``O_APPEND`` descriptor, which POSIX keeps atomic
  for writes below ``PIPE_BUF``: forked sweep workers (replay pool,
  optimizer pool, evaluation sweep) inherit the descriptor and append
  concurrently without interleaving lines.  A per-process ``pid`` field
  plus a per-process ``seq`` counter give every event a stable identity
  and a total order per writer (file order gives the global
  interleaving);
* **in-memory mode** — ``enable_ledger()`` without a path keeps events
  in a list (the ``repro explain`` path: run the pipeline, then query).
  Worker processes cannot share that list, so their in-memory events
  ride home on the existing obs worker payloads
  (:func:`repro.obs.export_payload` / :func:`~repro.obs.merge_payload`)
  and workers call :func:`fork_begin` to drop the parent events they
  inherited over ``fork``;
* **zero overhead when disabled** — :func:`event` is one module-global
  read when no ledger is active, mirroring the recorder's no-op path.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = [
    "EVENT_KINDS",
    "LEDGER_SCHEMA_VERSION",
    "EventLedger",
    "disable_ledger",
    "enable_ledger",
    "event",
    "fork_begin",
    "ledger",
    "read_events",
]

LEDGER_SCHEMA_VERSION = 1

#: The typed event registry.  Emitting an unknown kind raises — the
#: ledger is an interface between pipeline layers and later readers,
#: and silent drift would corrupt provenance queries.
EVENT_KINDS = frozenset({
    # run / stage lifecycle (stage.* emitted by the recorder span hook)
    "run.start", "run.finish",
    "stage.start", "stage.finish",
    # lifting
    "lift.function",
    # replay / tracing
    "trace.merged",
    "validate.verdict",
    # frame-layout construction (core/layout.py)
    "frame.var.seed",
    "frame.var.merge",
    "frame.var.attach",
    "frame.var.widened",
    # static corroboration / sanitizer
    "corroborate.finding",
    "sanitize.finding",
    # interprocedural summaries / escape analysis / extern recovery
    "sanalysis.summary",
    "sanalysis.escape",
    "sanalysis.extern",
    # caches
    "cache.hit",
    "cache.miss",
    "cache.invalidation",
    # artifact store (repro.store)
    "store.hit",
    "store.miss",
    "store.put",
    "store.evicted",
    # serve jobs (repro.serve)
    "job.submitted",
    "job.started",
    "job.finished",
    "job.timeout",
    # job scheduler (repro.sched)
    "sched.dispatch",
    "sched.steal",
    "sched.reject",
    # optimizer manager
    "opt.memo_hit",
    "opt.skip",
    "opt.requeue",
    # process pools
    "pool.spawn",
    "pool.reuse",
})


def _jsonable(value):
    """Best-effort conversion to JSON-serializable structure."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class EventLedger:
    """One process-tree's event stream, file-backed or in-memory."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        #: In-memory events (only populated when ``path`` is None).
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._fd: int | None = None
        if self.path is not None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns the event dict as recorded."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        with self._lock:
            self._seq += 1
            doc = {"v": LEDGER_SCHEMA_VERSION, "seq": self._seq,
                   "pid": os.getpid(), "kind": kind}
            for key, value in fields.items():
                doc[key] = _jsonable(value)
            if self._fd is not None:
                line = json.dumps(doc, separators=(",", ":")) + "\n"
                os.write(self._fd, line.encode())
            else:
                self.events.append(doc)
        return doc

    def absorb(self, events: list[dict]) -> None:
        """Fold a worker's shipped events in, preserving their fields
        (``pid``/``seq`` identify the original writer)."""
        with self._lock:
            if self._fd is not None:
                for doc in events:
                    line = json.dumps(doc, separators=(",", ":")) + "\n"
                    os.write(self._fd, line.encode())
            else:
                self.events.extend(events)

    def drain(self) -> list[dict]:
        """Remove and return the in-memory events (worker hand-off)."""
        with self._lock:
            out, self.events = self.events, []
        return out

    def close(self) -> None:
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                os.close(fd)
            except OSError:
                pass

    def __del__(self):  # best-effort; owners should close() explicitly
        try:
            self.close()
        except Exception:
            pass


_LEDGER: EventLedger | None = None


def ledger() -> EventLedger | None:
    """The active ledger, or None when event recording is disabled."""
    return _LEDGER


def enable_ledger(path: str | Path | None = None) -> EventLedger:
    """Activate the event ledger (file-backed when ``path`` is given,
    in-memory otherwise), replacing any active one."""
    global _LEDGER
    if _LEDGER is not None:
        _LEDGER.close()
    _LEDGER = EventLedger(path)
    return _LEDGER


def disable_ledger() -> None:
    global _LEDGER
    if _LEDGER is not None:
        _LEDGER.close()
    _LEDGER = None


def event(kind: str, **fields) -> None:
    """Emit one ledger event; a single global read when disabled."""
    led = _LEDGER
    if led is not None:
        led.emit(kind, **fields)


def fork_begin() -> None:
    """Called by pool workers at task start: drop in-memory events
    inherited from the parent over ``fork`` so they are not shipped
    back (and double-counted) in this worker's payload.  File-backed
    ledgers keep the inherited descriptor — appends are atomic."""
    led = _LEDGER
    if led is not None and led.path is None:
        led.drain()


def export_events() -> list[dict] | None:
    """The in-memory events to ship in a worker payload, or None when
    nothing needs shipping (disabled, or file-backed — those events
    already landed in the shared file)."""
    led = _LEDGER
    if led is None or led.path is not None or not led.events:
        return None
    return led.drain()


def merge_events(events: list[dict] | None) -> None:
    """Fold a worker payload's events into the active ledger."""
    led = _LEDGER
    if led is not None and events:
        led.absorb(events)


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL ledger file.  Blank lines are skipped; events from
    a newer schema than this reader understands are skipped rather than
    fatal (forward compatibility); a torn final line (a crashed writer)
    raises ``ValueError`` like any other corrupt line."""
    events = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("v", 0) > LEDGER_SCHEMA_VERSION:
            continue
        events.append(doc)
    return events


if os.environ.get("REPRO_LEDGER"):
    enable_ledger(os.environ["REPRO_LEDGER"])
