"""The repro compiler-level IR (the LLVM IR analogue)."""

from .builder import Builder
from .interp import (
    FUNC_ADDR_BASE,
    GLOBAL_REGION_BASE,
    Frame,
    InterpResult,
    Interpreter,
    run_module,
)
from .module import Block, Function, GlobalVar, Module
from .printer import function_to_text, module_to_text
from .values import (
    BINOPS,
    ICMP_PREDS,
    UNOPS,
    Alloca,
    BinOp,
    Br,
    Call,
    CallExt,
    CallInd,
    CondBr,
    Const,
    FuncRef,
    GlobalRef,
    ICmp,
    Instr,
    Intrinsic,
    Load,
    Param,
    Phi,
    Ret,
    Result,
    Store,
    Switch,
    Unary,
    Unreachable,
    Value,
)
from .verifier import verify_function, verify_module

__all__ = [
    "Alloca", "BINOPS", "BinOp", "Block", "Br", "Builder", "Call",
    "CallExt", "CallInd", "CondBr", "Const", "FUNC_ADDR_BASE", "Frame",
    "FuncRef", "Function", "GLOBAL_REGION_BASE", "GlobalRef", "GlobalVar",
    "ICMP_PREDS", "ICmp", "Instr", "InterpResult", "Interpreter",
    "Intrinsic", "Load", "Module", "Param", "Phi", "Ret", "Result", "Store",
    "Switch", "UNOPS", "Unary", "Unreachable", "Value", "function_to_text",
    "module_to_text", "run_module", "verify_function", "verify_module",
]
