"""Binary lifting: trace-driven CFG recovery, function recovery, and
machine-to-IR translation (the BinRec/RevGen analogue)."""

from .cfg import MachineBlock, RecoveredCFG, recover_cfg
from .function_recovery import (
    RecoveredFunction,
    callable_entries,
    recover_functions,
)
from .translator import (
    EMUSTACK_BASE,
    EMUSTACK_NAME,
    EMUSTACK_SIZE,
    FLAG_ORDER,
    REG_ORDER,
    FunctionTranslator,
    lift_binary,
    lift_traces,
)

__all__ = [
    "EMUSTACK_BASE", "EMUSTACK_NAME", "EMUSTACK_SIZE", "FLAG_ORDER",
    "FunctionTranslator", "MachineBlock", "REG_ORDER", "RecoveredCFG",
    "RecoveredFunction", "callable_entries", "lift_binary", "lift_traces",
    "recover_cfg", "recover_functions",
]
