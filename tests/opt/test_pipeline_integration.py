"""Pipeline-level optimizer invariants."""

from repro.cc import compile_to_ir, personality
from repro.ir import run_module, verify_module
from repro.opt import OptOptions, optimize_module
from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE


def test_optimization_levels_preserve_semantics():
    reference = None
    for level in ("0", "3"):
        module = compile_to_ir(KERNEL_SOURCE, "k",
                               personality("gcc12", level))
        result = run_module(module)
        if reference is None:
            reference = (result.stdout, result.exit_code)
        assert (result.stdout, result.exit_code) == reference


def test_optimize_is_idempotent_on_behaviour():
    module = compile_to_ir(FEATURE_SOURCE, "f", personality("gcc12", "0"))
    before = run_module(module).stdout
    optimize_module(module, OptOptions.o3())
    verify_module(module)
    mid = run_module(module).stdout
    optimize_module(module, OptOptions.o3())
    verify_module(module)
    after = run_module(module).stdout
    assert before == mid == after


def test_optimization_reduces_instruction_count():
    module = compile_to_ir(FEATURE_SOURCE, "f", personality("gcc12", "0"))
    count = lambda: sum(len(b.instrs) for f in module.functions.values()
                        for b in f.blocks)
    before = count()
    optimize_module(module, OptOptions.o3())
    assert count() < before


def test_dead_private_functions_dropped():
    src = """
int unused_helper(int x) { return x * 2; }
int main() { printf("%d\\n", 5); return 0; }
"""
    module = compile_to_ir(src, "t", personality("gcc12", "3"))
    assert "unused_helper" not in module.functions


def test_o0_produces_no_phis():
    module = compile_to_ir(KERNEL_SOURCE, "k", personality("gcc12", "0"))
    from repro.ir import Phi
    assert not any(isinstance(i, Phi)
                   for f in module.functions.values()
                   for i in f.instructions())
