"""Function signature recovery from call-site argument accesses
(paper §4.2.5-§4.2.6).

Each call site records the interval of the argument area its callee
touched.  Per function, the *super signature* is the union over its call
sites (gaps filled).  Functions reachable from the same indirect call
site must agree on their stack-argument count, so indirect-callee groups
are unified to their maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Module
from ..ir.values import Call, CallInd
from .instrument import ModuleInstrumentation
from .runtime import TracingRuntime


@dataclass
class SignaturePlan:
    #: Recovered stack-argument slot count per lifted function.
    stack_args: dict[str, int] = field(default_factory=dict)
    #: Stack-argument slots each call site must pass (callsite_id keys).
    callsite_args: dict[int, int] = field(default_factory=dict)


def build_signatures(runtime: TracingRuntime,
                     mi: ModuleInstrumentation,
                     module: Module) -> SignaturePlan:
    plan = SignaturePlan()

    # Raw per-function argument extents from observed accesses.
    raw: dict[str, int] = {name: 0 for name in mi.functions}
    for access in runtime.arg_accesses.values():
        if access.high is None:
            continue
        nslots = (access.high + 3) // 4
        for callee in access.callees:
            raw[callee] = max(raw.get(callee, 0), nslots)

    # Indirect call sites force their callee sets to a common signature.
    groups: dict[str, str] = {}

    def find(name: str) -> str:
        groups.setdefault(name, name)
        while groups[name] != name:
            groups[name] = groups[groups[name]]
            name = groups[name]
        return name

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            groups[ra] = rb

    for fi in mi.functions.values():
        for callsite_id, instr in fi.callsites.items():
            if not isinstance(instr, CallInd):
                continue
            access = runtime.arg_accesses.get(callsite_id)
            callees = sorted(access.callees) if access is not None else []
            for a, b in zip(callees, callees[1:], strict=False):
                union(a, b)

    final: dict[str, int] = {}
    for name, count in raw.items():
        root = find(name)
        final[root] = max(final.get(root, 0), count)
    for name in raw:
        plan.stack_args[name] = final[find(name)]

    # Call sites pass exactly what their callee group expects.
    for fi in mi.functions.values():
        for callsite_id, instr in fi.callsites.items():
            access = runtime.arg_accesses.get(callsite_id)
            callees = access.callees if access is not None else set()
            if isinstance(instr, Call):
                callee = instr.callee.name
                plan.callsite_args[callsite_id] = \
                    plan.stack_args.get(callee, 0)
            elif callees:
                any_callee = next(iter(callees))
                plan.callsite_args[callsite_id] = \
                    plan.stack_args.get(any_callee, 0)
            else:
                plan.callsite_args[callsite_id] = 0
    return plan
