"""The replay engine: dedup, fingerprint-gated validation, merge
determinism, and parallel/serial equivalence (ISSUE 3 tentpole)."""

import pytest

from repro import obs
from repro.core.driver import wytiwyg_lift, wytiwyg_recompile
from repro.core.runtime import ArgAccess, StackVar, TracingRuntime
from repro.emu import trace_binary
from repro.errors import SymbolizeError
from repro.ir.printer import module_to_text
from repro.ir.values import BinOp, CallExt, Const
from repro.lifting import lift_traces
from repro.replay import ReplayEngine, module_fingerprint
from tests.conftest import KERNEL_SOURCE, cached_image

#: Exit-code workload (no printf): the varargs stage is a no-op, so its
#: validation sweep must be fingerprint-skipped.
EXIT_SOURCE = r"""
int mix(int a, int b) {
    int acc = a;
    for (int i = 0; i < b; i++) acc = acc * 31 + i;
    return acc;
}
int main() {
    int n = read_int();
    int seed = read_int();
    return mix(seed, n * 10) % 97;
}
"""

INPUTS = [[5, 1], [6, 2], [7, 3], [8, 4], [5, 1], [6, 2]]


def _traced(source=EXIT_SOURCE, inputs=INPUTS):
    image = cached_image(source)
    traces = trace_binary(image.stripped(), inputs)
    return image, traces


# -- TracingRuntime.merge -----------------------------------------------------


def _var(ref_id, **kw):
    return StackVar(ref_id=ref_id, func_name="f", sp0_offset=-8, **kw)


def test_merge_widens_bounds_commutatively():
    a = TracingRuntime()
    b = TracingRuntime()
    a.stack_vars[1] = _var(1, low=-4, high=4, align=4)
    b.stack_vars[1] = _var(1, low=-8, high=0, align=8)
    b.stack_vars[2] = _var(2, low=0, high=4)

    ab = TracingRuntime().merge(a).merge(b)
    ba = TracingRuntime().merge(b).merge(a)
    for merged in (ab, ba):
        assert (merged.stack_vars[1].low,
                merged.stack_vars[1].high) == (-8, 4)
        assert merged.stack_vars[1].align == 8
        assert (merged.stack_vars[2].low,
                merged.stack_vars[2].high) == (0, 4)


def test_merge_arg_access_does_not_fabricate_walked():
    # A merged span wider than one word must NOT set `walked` -- that
    # flag records *how* the area was accessed, not its extent.
    a = TracingRuntime()
    b = TracingRuntime()
    a.arg_accesses[7] = ArgAccess(callsite_id=7, low=0, high=4,
                                  callees={"f"})
    b.arg_accesses[7] = ArgAccess(callsite_id=7, low=4, high=8,
                                  callees={"g"})
    merged = TracingRuntime().merge(a).merge(b)
    access = merged.arg_accesses[7]
    assert (access.low, access.high) == (0, 8)
    assert access.callees == {"f", "g"}
    assert not access.walked

    b.arg_accesses[7].walked = True
    assert TracingRuntime().merge(a).merge(b).arg_accesses[7].walked


def test_merge_links_union_and_insertion_order():
    a = TracingRuntime()
    b = TracingRuntime()
    a.links.add(frozenset({1, 2}))
    b.links.add(frozenset({2, 3}))
    a.stack_vars[1] = _var(1)
    b.stack_vars[3] = _var(3)
    b.stack_vars[1] = _var(1)
    merged = TracingRuntime().merge(a).merge(b)
    assert merged.links == {frozenset({1, 2}), frozenset({2, 3})}
    # First-touch order is preserved: var 1 came from the first input.
    assert list(merged.stack_vars) == [1, 3]


# -- fingerprint --------------------------------------------------------------


def test_fingerprint_stable_and_mutation_sensitive():
    _image, traces = _traced()
    module = lift_traces(traces)
    fp1 = module_fingerprint(module)
    assert fp1 == module_fingerprint(module)

    func = next(iter(module.functions.values()))
    term = func.entry.instrs.pop()
    func.entry.append(term)  # version bumped, content identical
    assert module_fingerprint(module) == fp1

    func.entry.insert(0, BinOp("add", Const(1), Const(2)))
    assert module_fingerprint(module) != fp1


# -- dedup + validation skipping ----------------------------------------------


def test_engine_dedups_traced_inputs():
    _image, traces = _traced()
    engine = ReplayEngine(traces, jobs=1)
    assert len(engine.unique) == 4
    assert engine.deduped == 2
    # Traced order, first occurrences.
    assert engine.unique == [0, 1, 2, 3]
    assert engine.unique_inputs == INPUTS[:4]


def test_validation_skipped_until_module_mutates():
    _image, traces = _traced()
    module = lift_traces(traces)
    rec = obs.enable(reset=True)
    try:
        engine = ReplayEngine(traces, jobs=1)
        engine.mark_valid(module)
        assert engine.validate(module, "noop stage") == "skipped"
        counters = rec.registry.counters
        assert counters.get("replay.validations_skipped") == 1
        assert counters.get("replay.runs", 0) == 0

        # A real (harmless) mutation must force a full re-validation.
        func = next(iter(module.functions.values()))
        func.entry.insert(0, BinOp("add", Const(1), Const(2)))
        assert engine.validate(module, "mutated stage") == "ok"
        assert counters.get("replay.runs") == len(engine.unique)
    finally:
        obs.disable()


def test_validation_failure_names_diverging_input():
    _image, traces = _traced()
    module = lift_traces(traces)
    engine = ReplayEngine(traces, jobs=1)
    # Break the program: force exit(123); the traced exit codes are
    # mix(...) % 97 truncations that never equal 123.
    mutated = False
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, CallExt) and instr.ext_name == "exit":
                instr.ops = [Const(123)]
                instr.stack_args = False
                mutated = True
        func.invalidate()
    assert mutated
    with pytest.raises(SymbolizeError) as err:
        engine.validate(module, "broken stage")
    assert "broken stage" in str(err.value)
    assert "traced input #" in str(err.value)


def test_interpreter_error_is_counted_and_noted():
    _image, traces = _traced()
    module = lift_traces(traces)
    engine = ReplayEngine(traces, jobs=1)
    # Dangling operand: the exit call consumes an instruction that never
    # executes, so every replay dies with an interpreter error.
    dangling = BinOp("add", Const(1), Const(2))
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, CallExt) and instr.ext_name == "exit":
                instr.ops = [dangling]
                instr.stack_args = False
        func.invalidate()
    rec = obs.enable(reset=True)
    try:
        with pytest.raises(SymbolizeError) as err:
            engine.validate(module, "crashing stage")
        assert rec.registry.counters.get(
            "validate.interpreter_errors") == 1
        assert any("interpreter error" in n for n in engine.notes)
        assert "diverged" in str(err.value)
    finally:
        obs.disable()


# -- parallel/serial equivalence ----------------------------------------------


def _recompile(image, inputs, traces, **kw):
    result = wytiwyg_recompile(image, inputs, traces=traces,
                               allow_fallback=False, **kw)
    layouts = {
        name: [(v.name, v.start, v.end, v.align)
               for v in layout.variables]
        for name, layout in result.layouts.items()
    }
    return result, layouts


def test_jobs4_byte_identical_to_serial():
    image, traces = _traced()
    serial, serial_layouts = _recompile(image, INPUTS, traces, jobs=1)
    par, par_layouts = _recompile(image, INPUTS, traces, jobs=4)
    assert par.recovered.to_json() == serial.recovered.to_json()
    assert par_layouts == serial_layouts
    assert par.fallback == serial.fallback == False
    if serial.accuracy is not None:
        assert par.accuracy.precision == serial.accuracy.precision
        assert par.accuracy.recall == serial.accuracy.recall


def test_analysis_cache_off_is_byte_identical(monkeypatch):
    from repro.opt import analysis

    image, traces = _traced()
    cached, cached_layouts = _recompile(image, INPUTS, traces, jobs=1)
    monkeypatch.setattr(analysis, "_CACHE_ENABLED", False)
    plain, plain_layouts = _recompile(image, INPUTS, traces, jobs=1)
    assert plain.recovered.to_json() == cached.recovered.to_json()
    assert plain_layouts == cached_layouts


def test_run_instrumented_parallel_merges_deterministically():
    image = cached_image(KERNEL_SOURCE)
    m1, layouts1, _, _ = wytiwyg_lift(
        trace_binary(image.stripped(), [[], []]), jobs=1)
    m4, layouts4, _, _ = wytiwyg_lift(
        trace_binary(image.stripped(), [[], []]), jobs=4)
    assert module_to_text(m1) == module_to_text(m4)
    assert {n: [(v.start, v.end) for v in lo.variables]
            for n, lo in layouts1.items()} == \
           {n: [(v.start, v.end) for v in lo.variables]
            for n, lo in layouts4.items()}


# -- fork-pool reuse across stages --------------------------------------------


def test_pool_reused_across_sweeps_over_unchanged_module():
    """Consecutive parallel sweeps over the same module content share
    one set of forked workers instead of spawning a pool per stage."""
    _image, traces = _traced()
    module = lift_traces(traces)
    rec = obs.enable(reset=True)
    try:
        engine = ReplayEngine(traces, jobs=2)
        try:
            engine.run_instrumented(module)
            engine.run_instrumented(module)
            counters = rec.registry.counters
            assert counters.get("parallel.pool.spawns") == 1
            assert counters.get("parallel.pool.reuses", 0) >= 1
        finally:
            engine.close()
    finally:
        obs.disable()


def test_pool_respawns_when_module_mutates():
    _image, traces = _traced()
    module = lift_traces(traces)
    rec = obs.enable(reset=True)
    try:
        engine = ReplayEngine(traces, jobs=2)
        try:
            engine.run_instrumented(module)
            func = next(iter(module.functions.values()))
            func.entry.insert(0, BinOp("add", Const(1), Const(2)))
            engine.run_instrumented(module)
            assert rec.registry.counters.get(
                "parallel.pool.spawns") == 2
        finally:
            engine.close()
    finally:
        obs.disable()
