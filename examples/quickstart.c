/* A small, fully-traceable program: every frame byte the code can
 * reach is exercised by any single input, so the static check passes
 * even under --strict.
 *
 *   python -m repro compile examples/quickstart.c -o quick.img.json
 *   python -m repro check quick.img.json --input int:5 --strict
 */
int scale(int x) { return x * 3 + 1; }
int main() {
    int n = read_int();
    int a = scale(n);
    int b = scale(a);
    printf("a=%d b=%d\n", a, b);
    return 0;
}
