"""Regenerates the §6.1 functionality result: every benchmark lifts and
recompiles with behaviour preserved in every configuration (WYTIWYG and
BinRec); SecondWrite works where its static model suffices."""

import pytest

from repro.evaluation import build_functionality

from .conftest import selected_workloads

_NAMES = selected_workloads()


@pytest.fixture(scope="module")
def matrix():
    m = build_functionality(_NAMES)
    rendered = m.render()
    print("\n=== Functionality (§6.1) ===")
    print(rendered)
    from .test_table1 import _save
    _save("functionality.txt", rendered)
    return m


def test_wytiwyg_all_pass(benchmark, matrix):
    assert matrix.all_pass("wytiwyg")
    benchmark(lambda: matrix.all_pass("wytiwyg"))


def test_binrec_all_pass(benchmark, matrix):
    assert matrix.all_pass("binrec")
    benchmark(lambda: matrix.all_pass("binrec"))


def test_secondwrite_partial(benchmark, matrix):
    supported = [v["secondwrite"] for v in matrix.cells.values()
                 if v["secondwrite"] is not None]
    unsupported = sum(1 for v in matrix.cells.values()
                      if v["secondwrite"] is None)
    benchmark.extra_info["sw_supported_cells"] = len(supported)
    benchmark.extra_info["sw_unsupported_cells"] = unsupported
    # Where the static pipeline runs at all, it must be correct.
    assert all(supported)
    benchmark(lambda: matrix.all_pass("wytiwyg"))
