"""VSA-lite abstract interpretation of sp0-relative stack offsets.

Runs over the lifted, canonicalized, *pre-symbolization* IR (the same
module state :mod:`repro.core.sp0fold` annotates) and computes, for each
lifted function, the set of frame accesses that are statically provable:
every load/store whose address is ``sp0 + d`` for an abstract offset
``d``.

The abstract domain is a two-level interval lattice (Macaw-style
value-set analysis, cut down to the single region that matters here):

* ``BOT`` — unreached;
* ``NUM [lo, hi]`` — a plain number in the interval (``None`` bounds
  mean +/- infinity);
* ``SP [lo, hi]`` — ``sp0 + d`` with ``d`` in the interval;
* ``TOP`` — unknown provenance (could be stack-derived or not).

Join is interval union per region; joining ``NUM`` with ``SP`` gives
``TOP``.  At loop headers (cached :func:`repro.opt.analysis.
loop_headers`) phi joins are *widened*: any bound that grew between
iterates jumps to infinity, so the fixed point terminates in a constant
number of rounds regardless of loop shape.

Accesses whose abstract offset is a single constant are **exact**;
bounded intervals give a **region**; stack-derived addresses with an
unbounded interval (array walks whose index flows through memory) are
**derived** — they keep the constant *anchor* of the base pointer they
were built from, and the corroboration pass clamps their extent against
the neighbouring statically-known frame slots.

Per-function results are memoized in the versioned CFG-analysis cache
(:func:`repro.opt.analysis.cached_analysis`), so repeated consumers
(corroboration, the ``check`` CLI, evaluation sweeps) pay for one
interpretation per mutation epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Function
from ..ir.values import (
    BinOp,
    CallExt,
    Const,
    ICmp,
    Instr,
    Load,
    Phi,
    Store,
    Unary,
    Value,
)
from ..opt.analysis import cached_analysis, loop_headers


def _sp0fold():
    """Deferred import: :mod:`repro.core` imports this package from its
    driver, so importing it back at module scope would be a cycle."""
    from ..core import sp0fold
    return sp0fold

# -- the abstract domain ----------------------------------------------------

BOT = "bot"
NUM = "num"
SP = "sp"
TOP = "top"


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: a region tag plus an interval.

    ``lo``/``hi`` are inclusive signed bounds; ``None`` means the bound
    is infinite on that side.  ``BOT``/``TOP`` carry no interval.
    """

    kind: str
    lo: int | None = None
    hi: int | None = None

    # -- constructors -------------------------------------------------------

    @staticmethod
    def num(lo: int | None, hi: int | None) -> "AbsVal":
        return AbsVal(NUM, lo, hi)

    @staticmethod
    def const(value: int) -> "AbsVal":
        return AbsVal(NUM, value, value)

    @staticmethod
    def sp(lo: int | None, hi: int | None) -> "AbsVal":
        return AbsVal(SP, lo, hi)

    # -- predicates ---------------------------------------------------------

    @property
    def is_exact_sp(self) -> bool:
        return self.kind == SP and self.lo is not None \
            and self.lo == self.hi

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def __repr__(self) -> str:
        if self.kind in (BOT, TOP):
            return self.kind
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        base = "sp0+" if self.kind == SP else ""
        return f"{base}[{lo}, {hi}]"


BOT_V = AbsVal(BOT)
TOP_V = AbsVal(TOP)
NUM_TOP = AbsVal(NUM, None, None)


def _min(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return min(a, b)


def _max(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return max(a, b)


def _add(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.kind == BOT:
        return b
    if b.kind == BOT:
        return a
    if a.kind == TOP or b.kind == TOP:
        return TOP_V
    if a.kind != b.kind:
        return TOP_V
    return AbsVal(a.kind, _min(a.lo, b.lo), _max(a.hi, b.hi))


def widen(old: AbsVal, new: AbsVal) -> AbsVal:
    """Jump any growing bound to infinity (classic interval widening)."""
    if old.kind in (BOT, TOP) or new.kind in (BOT, TOP) \
            or old.kind != new.kind:
        return join(old, new)
    lo = old.lo
    if new.lo is None or (lo is not None and new.lo < lo):
        lo = None
    hi = old.hi
    if new.hi is None or (hi is not None and new.hi > hi):
        hi = None
    return AbsVal(new.kind, lo, hi)


# -- transfer functions -----------------------------------------------------

_UNARY_RANGES = {
    "sext8": (-128, 127), "sext16": (-32768, 32767),
    "zext8": (0, 255), "zext16": (0, 65535),
    "trunc8": (0, 255), "trunc16": (0, 65535),
}


def _transfer_binop(instr: BinOp, val) -> AbsVal:
    a, b = val(instr.lhs), val(instr.rhs)
    if a.kind == BOT or b.kind == BOT:
        return BOT_V
    op = instr.opcode
    if op == "add":
        if a.kind == SP and b.kind == NUM:
            return AbsVal(SP, _add(a.lo, b.lo), _add(a.hi, b.hi))
        if a.kind == NUM and b.kind == SP:
            return AbsVal(SP, _add(b.lo, a.lo), _add(b.hi, a.hi))
        if a.kind == NUM and b.kind == NUM:
            return AbsVal(NUM, _add(a.lo, b.lo), _add(a.hi, b.hi))
        return TOP_V
    if op == "sub":
        if a.kind == SP and b.kind == NUM:
            neg_hi = None if b.lo is None else -b.lo
            neg_lo = None if b.hi is None else -b.hi
            return AbsVal(SP, _add(a.lo, neg_lo), _add(a.hi, neg_hi))
        if a.kind == SP and b.kind == SP:
            # Frame-pointer difference: a plain (unknown) number.
            return NUM_TOP
        if a.kind == NUM and b.kind == NUM:
            neg_hi = None if b.lo is None else -b.lo
            neg_lo = None if b.hi is None else -b.hi
            return AbsVal(NUM, _add(a.lo, neg_lo), _add(a.hi, neg_hi))
        return TOP_V
    if op == "mul":
        if a.kind == NUM and b.kind == NUM:
            if a.bounded and b.bounded:
                prods = [a.lo * b.lo, a.lo * b.hi,
                         a.hi * b.lo, a.hi * b.hi]
                return AbsVal(NUM, min(prods), max(prods))
            return NUM_TOP
        return TOP_V
    # and/or/xor/shifts/div/rem on stack pointers lose the offset but
    # not the region (alignment masks stay frame-relative); on numbers
    # they stay numbers.
    if a.kind == SP or b.kind == SP:
        return AbsVal(SP, None, None)
    return NUM_TOP


class _Interpreter:
    def __init__(self, func: Function):
        self.func = func
        self.values: dict[Value, AbsVal] = {}
        self.headers = loop_headers(func)

    def val(self, v: Value) -> AbsVal:
        if isinstance(v, Const):
            return AbsVal.const(v.signed)
        if self.func.params and v is self.func.params[0]:
            return AbsVal.sp(0, 0)
        return self.values.get(v, BOT_V)

    def _transfer(self, instr: Instr) -> AbsVal:
        if isinstance(instr, BinOp):
            return _transfer_binop(instr, self.val)
        if isinstance(instr, Phi):
            out = BOT_V
            for op in instr.ops:
                if op is instr:
                    continue
                out = join(out, self.val(op))
            return out
        if isinstance(instr, Unary):
            if instr.opcode == "neg":
                src = self.val(instr.src)
                if src.kind == NUM:
                    neg_hi = None if src.lo is None else -src.lo
                    neg_lo = None if src.hi is None else -src.hi
                    return AbsVal(NUM, neg_lo, neg_hi)
                return TOP_V if src.kind in (SP, TOP) else BOT_V
            rng = _UNARY_RANGES.get(instr.opcode)
            if rng is not None:
                return AbsVal(NUM, rng[0], rng[1])
            return NUM_TOP
        if isinstance(instr, ICmp):
            return AbsVal(NUM, 0, 1)
        if isinstance(instr, (Load, CallExt)):
            # Loaded (or externally produced) words are plain numbers;
            # adding one to a stack pointer keeps the SP region with an
            # unknown offset, which is exactly the derived-access shape.
            return NUM_TOP
        if instr.has_result:
            return NUM_TOP
        return BOT_V

    def run(self) -> dict[Value, AbsVal]:
        # One pass assigns in program order; further rounds only matter
        # for back edges (phi at loop heads), where widening bounds the
        # iterate count.
        for _round in range(16):
            changed = False
            for block in self.func.blocks:
                at_header = block in self.headers
                for instr in block.instrs:
                    new = self._transfer(instr)
                    old = self.values.get(instr, BOT_V)
                    if at_header and isinstance(instr, Phi):
                        new = widen(old, new)
                    else:
                        new = join(old, new)
                    if new != old:
                        self.values[instr] = new
                        changed = True
            if not changed:
                return self.values
        # Anything still unstable degrades to TOP.
        for block in self.func.blocks:
            for instr in block.instrs:
                if instr.has_result:
                    new = self._transfer(instr)
                    old = self.values.get(instr, BOT_V)
                    if join(old, new) != old:
                        self.values[instr] = TOP_V
        return self.values


# -- frame accesses ---------------------------------------------------------


@dataclass(frozen=True)
class StaticAccess:
    """One statically-provable frame access, sp0-relative.

    ``[lo, hi)`` is the byte region the access may touch; ``hi`` is
    ``None`` for derived accesses, whose extent is unknown until the
    corroboration pass clamps it against neighbouring frame slots.
    """

    lo: int
    hi: int | None
    width: int
    kind: str                 # "load" | "store"
    exact: bool = False       # single constant offset
    derived: bool = False     # anchored base, unknown extent
    provenance: str = "traced"   # "traced" | "static-extension"

    def region(self) -> tuple[int, int | None]:
        return (self.lo, self.hi)


@dataclass
class FrameAccessSet:
    """All statically-provable frame accesses of one function."""

    func_name: str
    accesses: list[StaticAccess] = field(default_factory=list)
    #: Exact constant sp0 offsets with static evidence (access offsets
    #: and derived-access anchors); the corroboration clamp rule.
    known_offsets: set[int] = field(default_factory=set)
    #: Lowest sp0 offset any access may touch (the static frame floor).
    frame_low: int | None = None

    def add(self, access: StaticAccess) -> None:
        self.accesses.append(access)
        self.known_offsets.add(access.lo)
        if self.frame_low is None or access.lo < self.frame_low:
            self.frame_low = access.lo


def _find_anchor(addr: Value, offsets: dict[Value, int]) -> int | None:
    """The constant sp0 offset of the nearest chain ancestor of
    ``addr`` — the base pointer a derived access was built from."""
    seen: set[int] = set()
    work: list[Value] = [addr]
    for _ in range(256):
        if not work:
            return None
        v = work.pop(0)
        if id(v) in seen:
            continue
        seen.add(id(v))
        if v in offsets:
            return offsets[v]
        if isinstance(v, Instr):
            work.extend(op for op in v.operands()
                        if isinstance(op, Instr) or op in offsets)
    return None


def analyze_function(func: Function) -> FrameAccessSet:
    """Static frame accesses of one lifted function, memoized per
    mutation epoch in the versioned CFG-analysis cache."""
    return cached_analysis(func, "sanalysis.accesses", _analyze)


def _analyze(func: Function) -> FrameAccessSet:
    out = FrameAccessSet(func.name)
    if not _sp0fold().is_lifted_function(func):
        return out
    values = _Interpreter(func).run()
    offsets = func.meta.get("sp0_offsets")
    if offsets is None:
        offsets = _sp0fold().compute_sp0_offsets(func)
    static_blocks: set[str] = set(func.meta.get("static_blocks", ()))

    for block in func.blocks:
        provenance = "static-extension" if block.name in static_blocks \
            else "traced"
        for instr in block.instrs:
            if isinstance(instr, Load):
                addr, width, kind = instr.addr, instr.size, "load"
            elif isinstance(instr, Store):
                addr, width, kind = instr.addr, instr.size, "store"
            else:
                continue
            fact = values.get(addr, BOT_V)
            if isinstance(addr, Const):
                fact = AbsVal.const(addr.signed)
            elif func.params and addr is func.params[0]:
                fact = AbsVal.sp(0, 0)
            if fact.kind != SP:
                continue
            if fact.is_exact_sp:
                out.add(StaticAccess(fact.lo, fact.lo + width, width,
                                     kind, exact=True,
                                     provenance=provenance))
            elif fact.bounded:
                out.add(StaticAccess(fact.lo, fact.hi + width, width,
                                     kind, provenance=provenance))
            else:
                anchor = _find_anchor(addr, offsets)
                if anchor is None:
                    continue
                out.add(StaticAccess(anchor, None, width, kind,
                                     derived=True,
                                     provenance=provenance))
    out.accesses.sort(key=lambda a: (a.lo, a.width, a.kind))
    return out


def analyze_module(module) -> dict[str, FrameAccessSet]:
    """Frame-access sets for every lifted function in the module."""
    lifted = _sp0fold().is_lifted_function
    return {func.name: analyze_function(func)
            for func in module.functions.values()
            if lifted(func)}
