"""EvalCache behavior: round trips, misses, and corrupt entries."""

import logging

from repro import obs
from repro.evaluation.cache import EvalCache


def test_round_trip_and_miss_counters(tmp_path):
    cache = EvalCache(tmp_path)
    obs.enable(reset=True)
    try:
        assert cache.get("traces", "absent") is None
        cache.put("traces", "k", {"payload": 42})
        assert cache.get("traces", "k") == {"payload": 42}
        counters = obs.recorder().registry.counters
    finally:
        obs.disable()
    assert counters == {"evalcache.miss": 1, "evalcache.hit": 1}


def test_corrupt_entry_recomputes_with_warning(tmp_path, caplog):
    cache = EvalCache(tmp_path)
    cache.put("traces", "k", {"payload": 42})
    path = cache._path("traces", "k")
    path.write_bytes(b"\x80\x04 definitely not a pickle")

    obs.enable(reset=True)
    try:
        with caplog.at_level(logging.WARNING,
                             logger="repro.evaluation.cache"):
            assert cache.get("traces", "k") is None
        counters = dict(obs.recorder().registry.counters)
    finally:
        obs.disable()

    assert counters.get("evalcache.corrupt") == 1
    assert "evalcache.hit" not in counters
    messages = [r.getMessage() for r in caplog.records]
    assert any("corrupt eval-cache entry" in m and "kind=traces" in m
               and "key=k" in m for m in messages)

    # memo falls through to recompute and repairs the entry.
    assert cache.memo("traces", "k", lambda: {"payload": 7}) \
        == {"payload": 7}
    assert cache.get("traces", "k") == {"payload": 7}


def test_key_tracks_content(feature_image, kernel_image):
    a = EvalCache.key(feature_image, [[]], "traces")
    assert a == EvalCache.key(feature_image, [[]], "traces")
    assert a != EvalCache.key(feature_image, [[]], "binrec")
    assert a != EvalCache.key(feature_image, [[1]], "traces")
    assert a != EvalCache.key(kernel_image, [[]], "traces")
