"""The job scheduler: affinity, stealing, backpressure, timeouts,
crash recovery, drain semantics.  Probe jobs (a no-pipeline scheduler
op) keep these fast; the real-pipeline path is covered by
tests/serve/test_serve.py and benchmarks/test_sched.py."""

import threading
import time

import pytest

from repro import obs
from repro.errors import SchedError, SchedRejected
from repro.sched import JobScheduler, affinity_worker


@pytest.fixture(autouse=True)
def _obs_off():
    yield
    obs.disable_ledger()
    obs.disable()


def probe(image_key="00000000", sleep=0.0):
    return {"op": "probe", "image_key": image_key, "sleep": sleep}


@pytest.fixture
def sched(tmp_path):
    scheduler = JobScheduler(2, store_root=tmp_path / "store")
    scheduler.start()
    yield scheduler
    scheduler.close(drain=False)


def _submit_async(scheduler, spec):
    box = {}

    def run():
        try:
            box["result"] = scheduler.submit(spec)
        except Exception as exc:
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    box["thread"] = thread
    return box


def _wait(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


def _busy(scheduler, idx):
    return scheduler.snapshot()["per_worker"][idx]["busy"]


# -- affinity ------------------------------------------------------------

def test_affinity_is_deterministic_and_in_range():
    keys = [f"{i:08x}deadbeef" for i in range(50)]
    for workers in (1, 2, 3, 7):
        placed = [affinity_worker(k, workers) for k in keys]
        assert placed == [affinity_worker(k, workers) for k in keys]
        assert all(0 <= w < workers for w in placed)
    # With enough keys every worker gets traffic.
    assert len(set(affinity_worker(k, 4) for k in keys)) == 4


def test_affinity_tolerates_non_hex_keys():
    assert 0 <= affinity_worker("not-hex-at-all", 3) < 3
    assert affinity_worker("", 2) in (0, 1)
    assert affinity_worker("anything", 1) == 0


# -- dispatch ------------------------------------------------------------

def test_probe_jobs_land_on_their_affine_worker(sched):
    for key in ("00000000", "00000001", "00000002", "00000003"):
        result = sched.submit(probe(image_key=key))
        assert result["ok"]
        assert result["served"] == "probe"
        assert result["worker"] == affinity_worker(key, 2)
    stats = sched.snapshot()["stats"]
    assert stats["dispatched"] == 4
    assert stats["affine"] == 4
    assert stats["stolen"] == 0
    per_worker = sched.snapshot()["per_worker"]
    assert [w["jobs"] for w in per_worker] == [2, 2]
    assert per_worker[0]["last_image"] == "00000002"


def test_idle_worker_steals_from_a_busy_affine_worker(sched):
    # Occupy worker 0, then submit another worker-0-affine job: the
    # idle worker 1 must take it instead of queueing behind.
    blocker = _submit_async(sched, probe(image_key="00000000", sleep=1.5))
    _wait(lambda: _busy(sched, 0), message="worker 0 busy")
    stolen = sched.submit(probe(image_key="00000000"))
    assert stolen["worker"] == 1
    assert sched.snapshot()["stats"]["stolen"] == 1
    blocker["thread"].join(timeout=10)
    assert blocker["result"]["worker"] == 0


# -- backpressure --------------------------------------------------------

def test_full_queue_rejects_with_retry_hint(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store",
                             max_depth=1)
    scheduler.start()
    try:
        running = _submit_async(scheduler, probe(sleep=2.0))
        _wait(lambda: _busy(scheduler, 0), message="worker busy")
        queued = _submit_async(scheduler, probe(sleep=0.0))
        _wait(lambda: scheduler.depth() == 1, message="one job queued")
        with pytest.raises(SchedRejected) as info:
            scheduler.submit(probe())
        assert info.value.retry_after > 0
        assert "queue full" in str(info.value)
        assert scheduler.snapshot()["stats"]["rejected"] == 1
        running["thread"].join(timeout=10)
        queued["thread"].join(timeout=10)
        assert queued["result"]["ok"]
    finally:
        scheduler.close(drain=False)


# -- timeout and crash recovery ------------------------------------------

def test_job_timeout_fails_job_and_respawns_worker(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store",
                             job_timeout=0.3)
    scheduler.start()
    led = obs.enable_ledger()
    try:
        result = scheduler.submit(probe(sleep=30.0))
        assert result["ok"] is False
        assert result["kind"] == "JobTimeout"
        assert "wall-clock limit" in result["error"]
        stats = scheduler.snapshot()["stats"]
        assert stats["timeouts"] == 1
        assert stats["respawns"] == 1
        assert any(e["kind"] == "job.timeout" for e in led.events)
        # The slot is freed and its fresh worker serves again.
        again = scheduler.submit(probe())
        assert again["ok"]
    finally:
        scheduler.close(drain=False)


def test_worker_crash_fails_job_and_respawns(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store")
    scheduler.start()
    try:
        running = _submit_async(scheduler, probe(sleep=30.0))
        _wait(lambda: _busy(scheduler, 0), message="worker busy")
        scheduler._slots[0].proc.kill()
        running["thread"].join(timeout=10)
        result = running["result"]
        assert result["ok"] is False
        assert result["kind"] == "WorkerDied"
        assert scheduler.snapshot()["stats"]["respawns"] == 1
        assert scheduler.submit(probe())["ok"]
    finally:
        scheduler.close(drain=False)


# -- lifecycle -----------------------------------------------------------

def test_submit_before_start_and_after_close_raise(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store")
    with pytest.raises(SchedError, match="not started"):
        scheduler.submit(probe())
    scheduler.start()
    assert scheduler.submit(probe())["ok"]
    scheduler.close()
    with pytest.raises(SchedError, match="shutting down"):
        scheduler.submit(probe())


def test_drain_close_completes_queued_jobs(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store")
    scheduler.start()
    boxes = [_submit_async(scheduler, probe(sleep=0.2))
             for _ in range(3)]
    scheduler.close(drain=True)
    for box in boxes:
        box["thread"].join(timeout=10)
        assert box["result"]["ok"], box
    assert scheduler.snapshot()["stats"]["completed"] == 3


def test_nondrain_close_fails_queued_jobs(tmp_path):
    scheduler = JobScheduler(1, store_root=tmp_path / "store")
    scheduler.start()
    running = _submit_async(scheduler, probe(sleep=30.0))
    _wait(lambda: _busy(scheduler, 0), message="worker busy")
    queued = _submit_async(scheduler, probe())
    _wait(lambda: scheduler.depth() == 1, message="one job queued")
    scheduler.close(drain=False)
    for box in (running, queued):
        box["thread"].join(timeout=10)
        assert box["result"]["ok"] is False
        assert box["result"]["kind"] == "SchedError"


# -- observability -------------------------------------------------------

def test_worker_obs_payload_merges_into_parent(sched, tmp_path):
    obs.enable(reset=True)
    obs.enable_ledger()
    result = sched.submit(probe(image_key="00000001"))
    assert result["ok"]
    rec = obs.recorder()
    # The worker's span tree (worker.job) shipped home in the payload.
    assert any(s.get("name") == "worker.job" for s in rec.foreign_spans)
    assert rec.registry.gauges["sched.queue_depth"] == 0
    assert rec.registry.counters["sched.dispatch"] == 1
