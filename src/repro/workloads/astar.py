"""astar stand-in: A* grid pathfinding with a binary-heap open list and
node structs — struct arrays, heap sift loops, and Manhattan heuristics."""

from __future__ import annotations

from .base import Workload

SOURCE = r"""
struct node { int x; int y; int g; int f; };

int grid[400];          /* 20 x 20: 0 free, 1 wall */
int gscore[400];
int closed[400];
struct node heap[512];
int heap_size;
int width;
int height;

void heap_push(int x, int y, int g, int f) {
    int i = heap_size;
    heap_size = heap_size + 1;
    heap[i].x = x; heap[i].y = y; heap[i].g = g; heap[i].f = f;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap[parent].f <= heap[i].f) break;
        struct node tmp = heap[parent];
        heap[parent] = heap[i];
        heap[i] = tmp;
        i = parent;
    }
}

void heap_pop(struct node *out) {
    *out = heap[0];
    heap_size = heap_size - 1;
    heap[0] = heap[heap_size];
    int i = 0;
    while (1) {
        int left = i * 2 + 1;
        int right = i * 2 + 2;
        int smallest = i;
        if (left < heap_size && heap[left].f < heap[smallest].f)
            smallest = left;
        if (right < heap_size && heap[right].f < heap[smallest].f)
            smallest = right;
        if (smallest == i) break;
        struct node tmp = heap[smallest];
        heap[smallest] = heap[i];
        heap[i] = tmp;
        i = smallest;
    }
}

int manhattan(int x, int y, int tx, int ty) {
    return abs(tx - x) + abs(ty - y);
}

void build_maze(int seed) {
    int s = seed;
    int i;
    for (i = 0; i < width * height; i++) {
        s = (s * 1103515245 + 12345) & 2147483647;
        grid[i] = ((s >> 13) % 10) < 3 ? 1 : 0;
        gscore[i] = 1000000;
        closed[i] = 0;
    }
    grid[0] = 0;
    grid[width * height - 1] = 0;
}

int astar_search(int tx, int ty) {
    int dx[4]; int dy[4];
    dx[0] = 1; dx[1] = -1; dx[2] = 0; dx[3] = 0;
    dy[0] = 0; dy[1] = 0; dy[2] = 1; dy[3] = -1;
    heap_size = 0;
    gscore[0] = 0;
    heap_push(0, 0, 0, manhattan(0, 0, tx, ty));
    int expanded = 0;
    while (heap_size > 0) {
        struct node cur;
        heap_pop(&cur);
        int idx = cur.y * width + cur.x;
        if (closed[idx]) continue;
        closed[idx] = 1;
        expanded = expanded + 1;
        if (cur.x == tx && cur.y == ty) {
            printf("found: cost %d after %d expansions\n",
                   cur.g, expanded);
            return cur.g;
        }
        int k;
        for (k = 0; k < 4; k++) {
            int nx = cur.x + dx[k];
            int ny = cur.y + dy[k];
            if (nx < 0 || ny < 0 || nx >= width || ny >= height)
                continue;
            int nidx = ny * width + nx;
            if (grid[nidx] || closed[nidx]) continue;
            int ng = cur.g + 1;
            if (ng < gscore[nidx]) {
                gscore[nidx] = ng;
                heap_push(nx, ny, ng, ng + manhattan(nx, ny, tx, ty));
            }
        }
    }
    printf("unreachable after %d expansions\n", expanded);
    return -1;
}

int main() {
    width = read_int();
    height = read_int();
    int seed = read_int();
    int queries = read_int();
    int total = 0;
    int q;
    for (q = 0; q < queries; q++) {
        build_maze(seed + q * 7);
        int cost = astar_search(width - 1, height - 1);
        total = total + (cost < 0 ? 0 : cost);
    }
    printf("total path cost %d over %d queries\n", total, queries);
    return 0;
}
"""

WORKLOAD = Workload(
    name="astar",
    source=SOURCE,
    ref_inputs=(
        (14, 14, 31337, 4),
    ),
    description="A* pathfinding: binary heap open list, struct nodes",
)
