"""Measurement harness shared by every experiment.

One *cell* = (workload, input-binary configuration).  For each cell the
harness produces the runtimes of:

* the input binary itself (``native``);
* the BinRec recompilation, no symbolization (``binrec``);
* the WYTIWYG recompilation (``wytiwyg``), plus layout accuracy;
* the SecondWrite static recompilation (``secondwrite``), which may fail.

Runtimes are cycle counts under the shared cost model, summed over the
workload's ref inputs — the relative quantities Table 1 and Figure 6
report.  Results are cached on disk (delete ``.eval_cache`` after code
changes to re-measure).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .. import obs
from ..baselines.binrec import binrec_recompile
from ..baselines.secondwrite import SecondWriteError, \
    secondwrite_recompile
from ..core.driver import wytiwyg_recompile
from ..emu.machine import run_binary
from ..emu.tracer import trace_binary
from ..errors import ReproError
from ..workloads import WORKLOADS, Workload
from .cache import EvalCache

#: The input-binary configurations of Table 1, in column order.
CONFIGS = (
    ("gcc12", "3"),
    ("gcc12", "0"),
    ("clang16", "3"),
    ("gcc44", "3"),
)

#: A reduced sweep for quick runs (tests, smoke benchmarks).
QUICK_WORKLOADS = ("gcc", "mcf", "hmmer", "xalancbmk")


@dataclass
class CellResult:
    """All measurements for one (workload, config) cell."""

    workload: str
    compiler: str
    opt_level: str
    native_cycles: int = 0
    binrec_cycles: int | None = None
    binrec_match: bool = False
    wytiwyg_cycles: int | None = None
    wytiwyg_match: bool = False
    wytiwyg_fallback: bool = False
    secondwrite_cycles: int | None = None
    secondwrite_match: bool = False
    secondwrite_error: str = ""
    accuracy_counts: dict = field(default_factory=dict)
    accuracy_recovered: int = 0

    @property
    def binrec_ratio(self) -> float | None:
        if self.binrec_cycles is None or not self.native_cycles:
            return None
        return self.binrec_cycles / self.native_cycles

    @property
    def wytiwyg_ratio(self) -> float | None:
        if self.wytiwyg_cycles is None or not self.native_cycles:
            return None
        return self.wytiwyg_cycles / self.native_cycles

    @property
    def secondwrite_ratio(self) -> float | None:
        if self.secondwrite_cycles is None or not self.native_cycles:
            return None
        return self.secondwrite_cycles / self.native_cycles


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_EVAL_CACHE", ".eval_cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cell_key(workload: Workload, compiler: str, opt_level: str) -> str:
    h = hashlib.sha256()
    h.update(workload.source.encode())
    h.update(repr(workload.ref_inputs).encode())
    h.update(f"{compiler}-{opt_level}".encode())
    return f"{workload.name}-{compiler}-O{opt_level}-{h.hexdigest()[:12]}"


def _total_cycles(image, inputs, budget: int = 60_000_000) -> int:
    return sum(run_binary(image, items, max_instructions=budget).cycles
               for items in inputs)


def _outputs_match(image_a, image_b, inputs,
                   budget: int = 60_000_000) -> bool:
    for items in inputs:
        a = run_binary(image_a, items, max_instructions=budget)
        b = run_binary(image_b, items, max_instructions=budget)
        if a.stdout != b.stdout or a.exit_code != b.exit_code:
            return False
    return True


def measure_cell(workload: Workload, compiler: str, opt_level: str,
                 use_cache: bool = True,
                 include_secondwrite: bool = True,
                 replay_jobs: int = 1,
                 opt_jobs: int | None = None) -> CellResult:
    """Measure one Table-1 cell (with on-disk caching).

    With observability enabled, the cell runs inside an ``eval.cell``
    span, its wall time lands in the ``eval.cell_seconds`` timer, and
    the per-cell JSON cache reports ``eval.cell_cache.hit``/``.miss``.

    ``replay_jobs`` fans the WYTIWYG pipeline's validation and bounds
    replay out over worker processes (see ``repro.replay``), and
    ``opt_jobs`` does the same for the optimizer's per-function visits;
    the result is byte-identical to the serial default.  Both compose
    with the cell-level ``sweep(jobs=N)`` pool — keep the product
    within the core count.
    """
    with obs.span("eval.cell", workload=workload.name,
                  compiler=compiler, opt_level=opt_level) as cell_span, \
            obs.timed("eval.cell_seconds"):
        result = _measure_cell(workload, compiler, opt_level, use_cache,
                               include_secondwrite, cell_span,
                               replay_jobs, opt_jobs)
    return result


def _measure_cell(workload: Workload, compiler: str, opt_level: str,
                  use_cache: bool, include_secondwrite: bool,
                  cell_span, replay_jobs: int = 1,
                  opt_jobs: int | None = None) -> CellResult:
    cache_file = _cache_dir() / (_cell_key(workload, compiler,
                                           opt_level) + ".json")
    if use_cache:
        if cache_file.exists():
            doc = json.loads(cache_file.read_text())
            obs.count("eval.cell_cache.hit")
            cell_span.set(cached=True)
            return CellResult(**doc)
        obs.count("eval.cell_cache.miss")

    image = workload.compile(compiler, opt_level)
    inputs = workload.inputs()
    result = CellResult(workload.name, compiler, opt_level)
    result.native_cycles = _total_cycles(image, inputs)
    stripped = image.stripped()

    # Artifact cache: traces and recompiled binaries are content-keyed,
    # so both pipelines share one trace of the stripped binary and a
    # re-run after an unrelated change skips the lifts entirely.
    ecache = EvalCache() if use_cache else None

    def traced(img):
        if ecache is None:
            return trace_binary(img, inputs)
        return ecache.memo("traces", ecache.key(img, inputs, "traces"),
                           lambda: trace_binary(img, inputs))

    # BinRec: lifted, optimized, not symbolized.
    if ecache is None:
        binrec = binrec_recompile(stripped, inputs,
                                  traces=traced(stripped))
    else:
        binrec = ecache.memo(
            "binrec", ecache.key(stripped, inputs, "binrec"),
            lambda: binrec_recompile(stripped, inputs,
                                     traces=traced(stripped)))
    result.binrec_cycles = _total_cycles(binrec, inputs)
    result.binrec_match = _outputs_match(image, binrec, inputs)

    # WYTIWYG: full refinement lifting (ground truth read only by the
    # accuracy evaluation, never by the pipeline).
    if ecache is None:
        wyt = wytiwyg_recompile(image, inputs, traces=traced(image),
                                jobs=replay_jobs, opt_jobs=opt_jobs)
    else:
        wyt = ecache.memo(
            "wytiwyg", ecache.key(image, inputs, "wytiwyg"),
            lambda: wytiwyg_recompile(image, inputs,
                                      traces=traced(image),
                                      jobs=replay_jobs,
                                      opt_jobs=opt_jobs))
    result.wytiwyg_cycles = _total_cycles(wyt.recovered, inputs)
    result.wytiwyg_match = _outputs_match(image, wyt.recovered, inputs)
    result.wytiwyg_fallback = wyt.fallback
    if wyt.accuracy is not None:
        result.accuracy_counts = dict(wyt.accuracy.counts)
        result.accuracy_recovered = wyt.accuracy.total_recovered

    if include_secondwrite:
        try:
            sw = secondwrite_recompile(stripped)
            result.secondwrite_cycles = _total_cycles(sw.recovered,
                                                      inputs)
            result.secondwrite_match = _outputs_match(
                image, sw.recovered, inputs)
        except (SecondWriteError, ReproError) as exc:
            result.secondwrite_error = str(exc)
        except Exception as exc:  # recompiled binary misbehaved
            result.secondwrite_error = f"{type(exc).__name__}: {exc}"

    if use_cache:
        tmp = cache_file.with_name(f".{cache_file.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(asdict(result)))
        tmp.replace(cache_file)  # atomic: parallel workers share the dir
    return result


def _measure_cell_task(task):
    """Worker entry point for the parallel sweep (picklable by name).

    When the parent sweeps with observability on, the worker activates
    its own recorder and ships the serialized registry (and span trees)
    back alongside the result so the parent can merge them.
    """
    name, compiler, opt_level, use_cache, include_secondwrite, \
        observe, replay_jobs, opt_jobs = task
    if observe:
        # Reset per task: pool workers are reused, and a forked worker
        # also inherits the parent's pre-fork data — either would be
        # double-counted when the parent merges this task's payload.
        obs.enable(reset=True)
    obs.fork_begin()
    result = measure_cell(WORKLOADS[name], compiler, opt_level,
                          use_cache, include_secondwrite,
                          replay_jobs=replay_jobs, opt_jobs=opt_jobs)
    payload = obs.export_payload() if observe else None
    return (name, compiler, opt_level), result, payload


def sweep(workload_names: tuple[str, ...] | None = None,
          configs=CONFIGS, use_cache: bool = True,
          include_secondwrite: bool = True,
          progress=None,
          jobs: int = 1,
          replay_jobs: int = 1,
          opt_jobs: int | None = None
          ) -> dict[tuple[str, str, str], CellResult]:
    """Measure a grid of cells; returns {(workload, compiler, opt): ...}.

    With ``jobs > 1`` cells are fanned out over a process pool — every
    cell is independent, and the on-disk caches use atomic writes, so
    workers never conflict.  ``progress`` then reports cells as they
    *complete* rather than as they start.  When observability is active
    in the parent, each worker records with its own registry and the
    parent merges every worker's metrics and spans on completion, so
    ``obs.export`` aggregates the whole sweep.

    ``replay_jobs`` and ``opt_jobs`` are forwarded to every cell (see
    ``measure_cell``); they parallelize *within* the WYTIWYG pipeline
    and compose with the cell-level pool.
    """
    names = workload_names or tuple(WORKLOADS)
    tasks = [(name, compiler, opt_level)
             for name in names for compiler, opt_level in configs]
    out: dict[tuple[str, str, str], CellResult] = {}
    if jobs > 1 and len(tasks) > 1:
        observe = obs.enabled()
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_measure_cell_task,
                            (*task, use_cache, include_secondwrite,
                             observe, replay_jobs, opt_jobs))
                for task in tasks]
            for future in as_completed(futures):
                key, result, payload = future.result()
                obs.merge_payload(payload)
                if progress is not None:
                    progress(*key)
                out[key] = result
        return out
    for name, compiler, opt_level in tasks:
        if progress is not None:
            progress(name, compiler, opt_level)
        out[(name, compiler, opt_level)] = measure_cell(
            WORKLOADS[name], compiler, opt_level, use_cache,
            include_secondwrite, replay_jobs=replay_jobs,
            opt_jobs=opt_jobs)
    return out


def geomean(values) -> float:
    values = [v for v in values if v]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
