"""Pass manager and standard optimization pipelines.

``optimize_module`` is the LLVM ``opt`` analogue used by the MiniC
compiler personalities and by the recompiler after lifting/symbolization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.module import Function, Module
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .dse import eliminate_dead_stores
from .flagfuse import fuse_flags
from .gvn import eliminate_redundant_loads, global_value_numbering
from .inline import inline_functions
from .mem2reg import promote_allocas
from .simplifycfg import simplify_cfg


@dataclass(frozen=True)
class OptOptions:
    """Knobs that differentiate pipelines (compiler personalities)."""

    level: int = 2                # 0..3
    inline: bool = True
    inline_threshold: int = 40
    gvn: bool = True              # dominator-scoped CSE
    load_elim: bool = True        # alias-driven load forwarding
    dse: bool = True
    rounds: int = 3

    @classmethod
    def o0(cls) -> "OptOptions":
        return cls(level=0, inline=False, gvn=False, load_elim=False,
                   dse=False, rounds=0)

    @classmethod
    def o1(cls) -> "OptOptions":
        return cls(level=1, inline=False, gvn=False, load_elim=True,
                   dse=True, rounds=2)

    @classmethod
    def o2(cls) -> "OptOptions":
        return cls(level=2, rounds=2)

    @classmethod
    def o3(cls) -> "OptOptions":
        return cls(level=3, inline_threshold=80, rounds=3)


def optimize_function(func: Function, module: Module | None = None,
                      options: OptOptions | None = None) -> None:
    opts = options or OptOptions()
    if opts.level == 0:
        return
    for _ in range(max(opts.rounds, 1)):
        changed = False
        changed |= simplify_cfg(func)
        changed |= promote_allocas(func)
        changed |= fold_constants(func)
        changed |= fuse_flags(func)
        if opts.gvn:
            changed |= global_value_numbering(func)
        if opts.load_elim:
            changed |= eliminate_redundant_loads(func, module)
        if opts.dse:
            changed |= eliminate_dead_stores(func, module)
        changed |= eliminate_dead_code(func)
        changed |= simplify_cfg(func)
        if not changed:
            break


def optimize_module(module: Module,
                    options: OptOptions | None = None) -> None:
    opts = options or OptOptions()
    if opts.level == 0:
        return
    for func in module.functions.values():
        optimize_function(func, module, opts)
    if opts.inline:
        if inline_functions(module, max_callee_size=opts.inline_threshold):
            for func in module.functions.values():
                optimize_function(func, module, opts)
    drop_unused_private_functions(module)


def drop_unused_private_functions(module: Module) -> None:
    """Remove functions that are never referenced (post-inlining)."""
    referenced: set[str] = {module.entry_name}
    referenced.update(module.address_table.values())
    for func in module.functions.values():
        for instr in func.instructions():
            for op in instr.operands():
                name = getattr(op, "name", None)
                if isinstance(name, str) and name in module.functions:
                    referenced.add(name)
    for g in module.globals.values():
        if isinstance(g.init, list):
            for word in g.init:
                name = getattr(word, "name", None)
                if isinstance(name, str) and name in module.functions:
                    referenced.add(name)
    module.functions = {name: f for name, f in module.functions.items()
                        if name in referenced}
