"""Compiled (table-dispatch) IR engine: parity with the reference
engine, cache invalidation, and the opt-out switches."""

import pytest

from repro.errors import InterpError
from repro.ir import (
    Builder,
    Const,
    Function,
    GlobalRef,
    GlobalVar,
    Interpreter,
    Module,
    run_module,
)


def simple_module():
    m = Module()
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    return m, f, Builder(f)


def loop_module():
    """sum(i*i for i in 1..9) via a phi loop plus a helper call."""
    m = Module()
    square = Function("square", ["x"])
    m.add_function(square)
    bs = Builder(square)
    bs.position(square.add_block("entry"))
    bs.ret([bs.binop("mul", square.params[0], square.params[0])])

    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    i = b.phi([(entry, Const(1))])
    acc = b.phi([(entry, Const(0))])
    sq = b.call("square", [i])
    acc2 = b.binop("add", acc, sq)
    i2 = b.binop("add", i, Const(1))
    i.add_incoming(loop, i2)
    acc.add_incoming(loop, acc2)
    cond = b.icmp("slt", i2, Const(10))
    b.condbr(cond, loop, done)
    b.position(done)
    b.ret([acc2])
    return m


def test_compiled_and_reference_agree_on_loop():
    expected = sum(i * i for i in range(1, 10))
    m = loop_module()
    assert Interpreter(m, compiled=True).run().exit_code == expected
    assert Interpreter(m, compiled=False).run().exit_code == expected


def test_compiled_memory_and_globals_parity():
    results = []
    for compiled in (True, False):
        m, f, b = simple_module()
        m.add_global(GlobalVar("buf", 16))
        b.position(f.add_block("entry"))
        addr = b.binop("add", GlobalRef("buf"), Const(4))
        b.store(addr, Const(0xDEADBEEF))
        low = b.load(addr, size=2)
        high = b.load(b.binop("add", addr, Const(2)), size=2)
        b.ret([b.binop("sub", high, low)])
        results.append(Interpreter(m, compiled=compiled).run().exit_code)
    assert results[0] == results[1] == (0xDEAD - 0xBEEF) & 0xFFFFFFFF


def test_env_flag_disables_compiled_engine(monkeypatch):
    m = loop_module()
    monkeypatch.setenv("REPRO_IR_COMPILED", "0")
    assert Interpreter(m).compiled is False
    monkeypatch.setenv("REPRO_IR_COMPILED", "1")
    assert Interpreter(m).compiled is True
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_IR_COMPILED", "0")
    assert Interpreter(m, compiled=True).compiled is True


def test_step_budget_enforced_compiled():
    m, f, b = simple_module()
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    b.br(loop)
    with pytest.raises(InterpError):
        Interpreter(m, max_steps=500, compiled=True).run()


def test_step_counts_match_reference():
    m = loop_module()
    compiled = Interpreter(m, compiled=True).run()
    reference = Interpreter(m, compiled=False).run()
    assert compiled.steps == reference.steps


def test_mutation_invalidates_compiled_blocks():
    m, f, b = simple_module()
    b.position(f.add_block("entry"))
    b.ret([Const(1)])
    seen = []
    interp = Interpreter(m, compiled=True,
                         intrinsic_handler=lambda fr, i, a: seen.append(a))
    assert interp.call_function(m.entry_function, []) == [1]
    assert seen == []
    # Splice a probe in front (bumps the function version) and re-run
    # through the same interpreter: the cached block must be rebuilt.
    entry = f.entry
    entry.insert(0, __import__("repro.ir.values", fromlist=["Intrinsic"])
                 .Intrinsic("wyt.test", [Const(42)]))
    assert interp.call_function(m.entry_function, []) == [1]
    assert seen == [[42]]


def test_shadow_plugin_parity():
    class Recorder:
        def __init__(self):
            self.events = []

        def call_enter(self, func, frame_id, args, arg_shadows):
            self.events.append(("enter", func.name, tuple(args)))
            return None

        def call_exit(self, func, frame_id, ret_values, ret_shadows):
            self.events.append(("exit", func.name, tuple(ret_values)))
            return None

        def on_instr(self, frame_id, instr, operand_shadows, result):
            self.events.append(("instr", instr.opcode, result))
            return None

        def on_store(self, frame_id, instr, addr, value, value_shadow):
            self.events.append(("store", addr, value))

        def on_load(self, frame_id, instr, addr, value):
            self.events.append(("load", addr, value))
            return None

        def on_callext(self, frame_id, instr, arg_values, arg_shadows):
            self.events.append(("callext", instr.ext_name,
                                tuple(arg_values)))

        def on_indirect_call(self, callee):
            self.events.append(("indirect", callee.name))

    logs = []
    for compiled in (True, False):
        m = loop_module()
        rec = Recorder()
        result = Interpreter(m, shadow=rec, compiled=compiled).run()
        assert result.exit_code == sum(i * i for i in range(1, 10))
        logs.append(rec.events)
    assert logs[0] == logs[1]
