"""Table 1: normalized runtime of recompiled binaries relative to their
input binaries (paper §6.2).

Rows: benchmarks; per benchmark two lines — recompiled without
symbolization (BinRec) and with symbolization (WYTIWYG); columns: the
input-binary configurations; final column SecondWrite (GCC 4.4 -O3
input, as in the paper).  A "—" marks configurations the pipeline could
not handle, mirroring the paper's dashes for SecondWrite failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads import WORKLOADS
from .harness import CONFIGS, CellResult, geomean, sweep

SECONDWRITE_CONFIG = ("gcc44", "3")


@dataclass
class Table1:
    configs: tuple = CONFIGS
    workloads: tuple = ()
    cells: dict = field(default_factory=dict)

    def rows(self) -> list[dict]:
        out = []
        for name in self.workloads:
            row = {"benchmark": name, "nosym": {}, "sym": {},
                   "secondwrite": None}
            for compiler, opt in self.configs:
                cell: CellResult = self.cells[(name, compiler, opt)]
                key = f"{compiler}-O{opt}"
                row["nosym"][key] = cell.binrec_ratio
                row["sym"][key] = cell.wytiwyg_ratio
            sw_cell = self.cells.get((name, *SECONDWRITE_CONFIG))
            if sw_cell is not None and not sw_cell.secondwrite_error:
                row["secondwrite"] = sw_cell.secondwrite_ratio
            out.append(row)
        return out

    def geomeans(self) -> dict:
        means = {"nosym": {}, "sym": {}}
        for compiler, opt in self.configs:
            key = f"{compiler}-O{opt}"
            means["nosym"][key] = geomean(
                self.cells[(n, compiler, opt)].binrec_ratio
                for n in self.workloads)
            means["sym"][key] = geomean(
                self.cells[(n, compiler, opt)].wytiwyg_ratio
                for n in self.workloads)
        means["secondwrite"] = geomean(
            self.cells[(n, *SECONDWRITE_CONFIG)].secondwrite_ratio
            for n in self.workloads
            if not self.cells[(n, *SECONDWRITE_CONFIG)].secondwrite_error)
        return means

    def render(self) -> str:
        header = ["benchmark", "sym"]
        keys = [f"{c}-O{o}" for c, o in self.configs]
        header += keys + ["SW (gcc44)"]
        lines = ["  ".join(f"{h:>12s}" for h in header)]

        def fmt(v, ok=True):
            if v is None:
                return f"{'—':>12s}"
            text = f"{v:.2f}" + ("" if ok else "!")
            return f"{text:>12s}"

        for row in self.rows():
            name = row["benchmark"]
            nosym_ok = {f"{c}-O{o}":
                        self.cells[(name, c, o)].binrec_match
                        for c, o in self.configs}
            sym_ok = {f"{c}-O{o}":
                      self.cells[(name, c, o)].wytiwyg_match
                      for c, o in self.configs}
            sw_cell = self.cells.get((name, *SECONDWRITE_CONFIG))
            sw_ok = bool(sw_cell and sw_cell.secondwrite_match)
            lines.append("  ".join(
                [f"{name:>12s}", f"{'':>12s}"]
                + [fmt(row["nosym"][k], nosym_ok[k]) for k in keys]
                + [fmt(row["secondwrite"], sw_ok)]))
            lines.append("  ".join(
                [f"{'':>12s}", f"{'✓':>12s}"]
                + [fmt(row["sym"][k], sym_ok[k]) for k in keys]
                + [f"{'':>12s}"]))
        means = self.geomeans()
        lines.append("  ".join(
            [f"{'Geomean':>12s}", f"{'':>12s}"]
            + [fmt(means["nosym"][k]) for k in keys]
            + [fmt(means["secondwrite"])]))
        lines.append("  ".join(
            [f"{'':>12s}", f"{'✓':>12s}"]
            + [fmt(means["sym"][k]) for k in keys]
            + [f"{'':>12s}"]))
        return "\n".join(lines)


def build_table1(workload_names: tuple[str, ...] | None = None,
                 use_cache: bool = True, progress=None,
                 jobs: int = 1) -> Table1:
    names = workload_names or tuple(WORKLOADS)
    cells = sweep(names, CONFIGS, use_cache=use_cache, progress=progress,
                  jobs=jobs)
    return Table1(CONFIGS, names, cells)
