"""Span tree construction, attributes, and the disabled null path."""

import pytest

from repro import obs
from repro.obs.recorder import _env_enabled


@pytest.fixture
def rec():
    recorder = obs.enable(reset=True)
    try:
        yield recorder
    finally:
        obs.disable()


def test_spans_nest_into_a_tree(rec):
    with obs.span("outer", kind="pipeline") as outer:
        with obs.span("inner.a") as a:
            pass
        with obs.span("inner.b") as b:
            with obs.span("leaf") as leaf:
                pass
    assert rec.spans == [outer]
    assert outer.children == [a, b]
    assert b.children == [leaf]
    assert outer.attrs == {"kind": "pipeline"}
    assert outer.seconds >= a.seconds + b.seconds >= 0.0


def test_set_overrides_attrs(rec):
    with obs.span("s", x=1) as sp:
        sp.set(x=2, y="z")
    assert sp.attrs == {"x": 2, "y": "z"}


def test_exception_records_error_attr(rec):
    with pytest.raises(ValueError):
        with obs.span("failing"):
            raise ValueError("boom")
    (sp,) = rec.spans
    assert sp.attrs["error"] == "ValueError: boom"
    assert sp.seconds >= 0.0


def test_to_dict_round_trip(rec):
    with obs.span("parent", n=3) as sp:
        with obs.span("child"):
            pass
    doc = sp.to_dict()
    assert doc["name"] == "parent"
    assert doc["attrs"] == {"n": 3}
    assert [c["name"] for c in doc["children"]] == ["child"]
    assert doc["seconds"] == pytest.approx(sp.seconds)


def test_disabled_returns_inert_null_span():
    obs.disable()
    sp = obs.span("ignored", a=1)
    assert sp is obs.NULL_SPAN
    with sp as entered:
        assert entered.set(b=2) is sp
    assert obs.recorder() is None


def test_enable_is_idempotent_until_reset():
    first = obs.enable(reset=True)
    try:
        obs.count("kept")
        assert obs.enable() is first
        assert first.registry.counters == {"kept": 1}
        fresh = obs.enable(reset=True)
        assert fresh is not first
        assert fresh.registry.counters == {}
    finally:
        obs.disable()


@pytest.mark.parametrize("value,expected", [
    (None, False), ("", False), ("0", False), ("false", False),
    ("off", False), ("1", True), ("true", True), ("yes", True),
])
def test_env_activation_parsing(monkeypatch, value, expected):
    if value is None:
        monkeypatch.delenv("REPRO_OBS", raising=False)
    else:
        monkeypatch.setenv("REPRO_OBS", value)
    assert _env_enabled() is expected
