"""Backend benches: the fingerprint-keyed lowering cache and the
parallel per-function optimizer fan-out.

Runs as the fifth ``tools/bench.sh`` pass and lands in
``BENCH_lower.json``.  Two scenarios:

* **Warm recompile** — ``compile_ir`` over an optimized module, then a
  one-function edit and a recompile: only the edited function may
  re-lower (warm hit rate >= 90%), and the warm compile must beat the
  cold one.
* **Parallel optimization** — the worklist manager at ``jobs=4``
  against the legacy fixed schedule on a multi-function workload,
  byte-identical output required.  The cold stage (which pays the
  one-time fork-pool spawn) is reported separately from the steady
  state: across the repeated refinement stages the legacy schedule
  pays a full sweep each time while the manager pays version checks,
  so on a single-core host the win is carried by the incremental
  layers and the fork pool is additive on multi-core hosts.
  ``jobs=1`` manager time is recorded alongside for the comparison.
"""

import os
import time

import pytest

from repro import obs
from repro.cc.driver import compile_to_ir
from repro.ir.printer import module_to_text
from repro.ir.values import BinOp, Const
from repro.opt import (
    OptOptions,
    canonicalize_module,
    clear_memo,
    close_opt_pool,
    optimize_module,
)
from repro.recompile import clear_lower_cache, compile_ir

pytestmark = pytest.mark.bench

#: Twelve functions: wide enough that a one-function edit keeps the
#: warm hit rate at 11/12 > 90%, and that a per-function fan-out has
#: real work to distribute.
SOURCE = r"""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int mix(int seed, int rounds) {
    int acc = seed;
    for (int i = 0; i < rounds; i++) {
        acc = acc * 31 + i;
        if (acc > 1000000) acc = acc % 1000003;
    }
    return acc;
}
int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}
int scale(int *a, int n, int k) {
    for (int i = 0; i < n; i++) a[i] = a[i] * k;
    return n;
}
int dot(int *a, int *b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i] * b[i];
    return s;
}
int clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}
int gcd(int a, int b) { while (b) { int t = a % b; a = b; b = t; } return a; }
int pow3(int n) { int p = 1; for (int i = 0; i < n; i++) p *= 3; return p; }
int minv(int *a, int n) {
    int m = a[0];
    for (int i = 1; i < n; i++) if (a[i] < m) m = a[i];
    return m;
}
int maxv(int *a, int n) {
    int m = a[0];
    for (int i = 1; i < n; i++) if (a[i] > m) m = a[i];
    return m;
}
int rev(int x) { int r = 0; while (x) { r = r * 10 + x % 10; x /= 10; } return r; }
int main() {
    int arr[8];
    int brr[8];
    for (int i = 0; i < 8; i++) { arr[i] = i * 3; brr[i] = i + 1; }
    int acc = mix(5, 40) + fib(9) + sum(arr, 8) + dot(arr, brr, 8);
    acc += scale(arr, 8, 2) + clamp(acc, 0, 1000);
    acc += gcd(84, 35) + pow3(7) + minv(brr, 8) + maxv(arr, 8) + rev(acc);
    return acc % 97;
}
"""

STAGES = 8
#: Inlining stays off so all thirteen functions survive every stage —
#: o3 collapses this workload to two functions, which would starve
#: both the lowering cache and the per-function fan-out of work.
OPTS = OptOptions(level=2, inline=False)


def _optimized_module():
    module = compile_to_ir(SOURCE, name="lower_bench", config=None)
    clear_memo()
    optimize_module(module, OPTS)
    return module


def _cache_counters():
    counters = dict(obs.recorder().registry.counters)
    return {k.rsplit(".", 1)[-1]: v for k, v in counters.items()
            if k.startswith("lower.cache.")}


def test_bench_lower_cache_warm_recompile(benchmark):
    """Cold vs warm compile_ir; a one-function edit re-lowers exactly
    that function."""
    module = _optimized_module()
    nfuncs = len(module.functions)
    compile_ir(module)  # warm both code paths (and the phi-split keys)

    cold_s = None
    for _ in range(3):
        clear_lower_cache()
        start = time.perf_counter()
        cold_image = compile_ir(module)
        elapsed = time.perf_counter() - start
        cold_s = elapsed if cold_s is None else min(cold_s, elapsed)

    obs.enable(reset=True)
    try:
        start = time.perf_counter()
        warm_image = benchmark.pedantic(lambda: compile_ir(module),
                                        rounds=1, iterations=1)
        warm_s = time.perf_counter() - start
        for _ in range(2):
            start = time.perf_counter()
            compile_ir(module)
            warm_s = min(warm_s, time.perf_counter() - start)
        unchanged = _cache_counters()

        # One-function edit: everything else stays warm.
        victim = module.functions["rev"]
        victim.entry.insert(0, BinOp("add", Const(1), Const(2)))
        victim.invalidate()
        obs.enable(reset=True)
        edited_image = compile_ir(module)
        edited = _cache_counters()
    finally:
        obs.disable()

    assert warm_image.to_json() == cold_image.to_json()
    assert edited_image.to_json() != cold_image.to_json()

    assert unchanged.get("misses", 0) == 0
    assert unchanged.get("hits") == 3 * nfuncs  # three warm compiles
    relowered = edited.get("misses", 0)
    hit_rate = edited.get("hits", 0) / max(
        edited.get("hits", 0) + relowered, 1)
    assert relowered == 1, (
        f"one-function edit re-lowered {relowered} functions")
    assert hit_rate >= 0.9, f"warm hit rate {hit_rate:.0%} < 90%"

    speedup = cold_s / warm_s
    benchmark.extra_info["functions"] = nfuncs
    benchmark.extra_info["cold_seconds"] = cold_s
    benchmark.extra_info["warm_seconds"] = warm_s
    benchmark.extra_info["warm_speedup"] = speedup
    benchmark.extra_info["relowered_after_edit"] = relowered
    benchmark.extra_info["warm_hit_rate"] = hit_rate
    # Assembly/linking still runs warm, so the ceiling is lowering's
    # share of compile_ir; the hit-rate asserts above are the real gate.
    assert speedup >= 1.25, (
        f"warm compile speedup {speedup:.2f}x < 1.25x "
        f"(cold {cold_s*1e3:.1f}ms, warm {warm_s*1e3:.1f}ms)")


def _run_stages(baseline: bool, jobs: int = 1):
    """(cold-stage seconds, warm-stages seconds, final IR text, module).

    The cold stage optimizes the freshly lifted module (and, at
    jobs>1, pays the one-time fork-pool spawn); the warm stages replay
    the pipeline's duplicated canonicalize+optimize invocations over
    the now-stable module.
    """
    if baseline:
        os.environ["REPRO_PASS_BASELINE"] = "1"
    else:
        os.environ.pop("REPRO_PASS_BASELINE", None)
        clear_memo()
    try:
        module = compile_to_ir(SOURCE, name="lower_bench", config=None)
        start = time.perf_counter()
        canonicalize_module(module, jobs=jobs)
        optimize_module(module, OPTS, jobs=jobs)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(STAGES):
            canonicalize_module(module, jobs=jobs)
            optimize_module(module, OPTS, jobs=jobs)
        warm = time.perf_counter() - start
        return cold, warm, module_to_text(module), module
    finally:
        os.environ.pop("REPRO_PASS_BASELINE", None)
        close_opt_pool()


def _best_of(n: int, baseline: bool, jobs: int = 1):
    best = None
    for _ in range(n):
        result = _run_stages(baseline, jobs)
        if best is None or result[1] < best[1]:
            best = result
    return best


def test_bench_parallel_opt_vs_serial(benchmark):
    """Manager at jobs=4 vs the legacy schedule on the multi-function
    workload: byte-identical, and faster across the repeated stages."""
    _run_stages(True)  # warm all three code paths once
    _run_stages(False)
    _run_stages(False, jobs=4)

    baseline_cold, baseline_s, baseline_text, baseline_module = \
        _best_of(3, True)
    _, serial_s, serial_text, _ = _best_of(3, False)

    obs.enable(reset=True)
    try:
        par_cold, par_s, par_text, par_module = benchmark.pedantic(
            lambda: _best_of(3, False, jobs=4), rounds=1, iterations=1)
        counters = dict(obs.recorder().registry.counters)
    finally:
        obs.disable()

    assert par_text == serial_text == baseline_text
    assert compile_ir(par_module).to_json() == \
        compile_ir(baseline_module).to_json()
    assert counters.get("opt.manager.parallel_visits", 0) > 0, \
        "jobs=4 run never fanned out"

    speedup = baseline_s / par_s
    benchmark.extra_info["functions"] = len(par_module.functions)
    benchmark.extra_info["stages"] = STAGES
    benchmark.extra_info["baseline_cold_seconds"] = baseline_cold
    benchmark.extra_info["baseline_seconds"] = baseline_s
    benchmark.extra_info["manager_jobs1_seconds"] = serial_s
    benchmark.extra_info["manager_jobs4_cold_seconds"] = par_cold
    benchmark.extra_info["manager_jobs4_seconds"] = par_s
    benchmark.extra_info["speedup_vs_baseline"] = speedup
    benchmark.extra_info["parallel_visits"] = \
        counters.get("opt.manager.parallel_visits", 0)
    benchmark.extra_info["pool_spawns"] = \
        counters.get("parallel.pool.spawns", 0)
    assert speedup >= 1.3, (
        f"jobs=4 stage speedup {speedup:.2f}x < 1.3x vs legacy schedule "
        f"(baseline {baseline_s*1e3:.1f}ms, jobs=4 {par_s*1e3:.1f}ms)")
