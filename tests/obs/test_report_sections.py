"""The stderr summary: grouped counter sections and percentile rows."""

from repro import obs
from repro.obs.report import SCHEMA_VERSION


def _doc(counters=None, timers=None):
    return {
        "version": SCHEMA_VERSION,
        "spans": [],
        "metrics": {"counters": counters or {}, "gauges": {},
                    "histograms": {}, "timers": timers or {},
                    "profiles": {}},
    }


def test_counter_sections_group_by_prefix():
    text = obs.summary(_doc(counters={
        "lower.cache.hits": 30, "lower.cache.misses": 10,
        "lower.cache.invalidations": 1,
        "parallel.pool.spawns": 2, "parallel.pool.reuses": 5,
        "opt.manager.skipped": 4, "opt.manager.memo_hits": 7,
        "unrelated.counter": 99,
    }))
    assert "lowering cache (lower.cache.*):" in text
    assert "fork pool (parallel.pool.*):" in text
    assert "pass manager (opt.manager.*):" in text
    # Entries appear under their section with the prefix stripped.
    assert "misses" in text and "spawns" in text and "memo_hits" in text
    # hits/(hits+misses) = 75% derived row for the cache section.
    assert "hit rate" in text and "75.00%" in text
    # Prefixes that recorded nothing add no empty section.
    no_pool = obs.summary(_doc(counters={"lower.cache.hits": 1}))
    assert "fork pool" not in no_pool


def test_hit_rate_row_needs_both_counters():
    text = obs.summary(_doc(counters={"lower.cache.hits": 3}))
    assert "lowering cache" in text
    assert "hit rate" not in text


def test_percentile_rows_for_timers():
    timer = {"count": 4, "sum": 0.4, "min": 0.05, "max": 0.2,
             "mean": 0.1, "p50": 0.08, "p95": 0.19, "p99": 0.2}
    text = obs.summary(_doc(timers={"replay.bounds_seconds": timer}))
    assert "p50 ms" in text and "p95 ms" in text and "p99 ms" in text
    assert "replay.bounds_seconds" in text
    assert "80.000" in text   # p50 rendered in milliseconds
    assert "190.000" in text  # p95
    # v1 documents (no percentile keys) still render, as zeros.
    v1 = {"count": 1, "sum": 0.1, "min": 0.1, "max": 0.1, "mean": 0.1}
    old = obs.summary(_doc(timers={"legacy": v1}))
    assert "legacy" in old


def test_empty_timers_add_no_table():
    text = obs.summary(_doc())
    assert "p50 ms" not in text
