"""MiniC type system: sizes, alignment, decay."""

import pytest

from repro.cc.ctypes import (
    ArrayType,
    CHAR,
    FuncType,
    INT,
    IntType,
    PtrType,
    SHORT,
    StructType,
    VOID,
    decay,
    is_pointerish,
    pointee_size,
)
from repro.errors import CompileError


def test_scalar_sizes():
    assert INT.size == 4 and CHAR.size == 1 and SHORT.size == 2
    assert PtrType(INT).size == 4
    assert VOID.size == 0


def test_array_size_and_align():
    arr = ArrayType(INT, 10)
    assert arr.size == 40 and arr.align == 4
    carr = ArrayType(CHAR, 5)
    assert carr.size == 5 and carr.align == 1


def test_struct_layout_with_padding():
    s = StructType("s")
    s.lay_out([("c", CHAR), ("x", INT), ("d", CHAR)])
    offsets = {f.name: f.offset for f in s.fields}
    assert offsets == {"c": 0, "x": 4, "d": 8}
    assert s.size == 12  # tail padding to align 4


def test_incomplete_struct_rejected():
    s = StructType("fwd")
    with pytest.raises(CompileError):
        _ = s.size


def test_field_lookup():
    s = StructType("s")
    s.lay_out([("a", INT)])
    assert s.field_named("a").offset == 0
    with pytest.raises(CompileError):
        s.field_named("zz")


def test_decay():
    assert decay(ArrayType(INT, 4)) == PtrType(INT)
    f = FuncType(INT, (INT,))
    assert decay(f) == PtrType(f)
    assert decay(INT) == INT


def test_pointee_size_scaling():
    assert pointee_size(PtrType(INT)) == 4
    assert pointee_size(ArrayType(SHORT, 4)) == 2
    assert pointee_size(PtrType(VOID)) == 1
    with pytest.raises(CompileError):
        pointee_size(INT)


def test_is_pointerish():
    assert is_pointerish(PtrType(CHAR))
    assert is_pointerish(ArrayType(INT, 2))
    assert not is_pointerish(INT)
