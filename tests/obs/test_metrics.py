"""Metrics registry: recording, serialization, cross-process merging."""

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, Profile


def test_histogram_summary_stats():
    h = Histogram()
    for v in (2.0, 8.0, 5.0):
        h.add(v)
    assert h.count == 3
    assert h.total == pytest.approx(15.0)
    assert (h.min, h.max) == (2.0, 8.0)
    assert h.mean == pytest.approx(5.0)
    doc = h.to_dict()
    assert doc == {"count": 3, "sum": pytest.approx(15.0), "min": 2.0,
                   "max": 8.0, "mean": pytest.approx(5.0),
                   "p50": 5.0, "p95": 8.0, "p99": 8.0,
                   "samples": [2.0, 8.0, 5.0]}


def test_empty_histogram_serializes_finite():
    assert Histogram().to_dict() == {"count": 0, "sum": 0.0, "min": 0.0,
                                     "max": 0.0, "mean": 0.0,
                                     "p50": 0.0, "p95": 0.0, "p99": 0.0,
                                     "samples": []}


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.add(1.0)
    b.add(10.0)
    b.add(4.0)
    a.merge_dict(b.to_dict())
    assert a.count == 3
    assert (a.min, a.max) == (1.0, 10.0)
    a.merge_dict(Histogram().to_dict())  # empty merge is a no-op
    assert a.count == 3


def test_profile_top_and_hex_keys():
    p = Profile()
    p.add(0x401000, 5)
    p.add(0x402000, 9)
    p.add("helper")
    assert p.total == 15
    assert p.top(1) == [(0x402000, 9)]
    doc = p.to_dict(top=2)
    assert doc["unique"] == 3
    assert doc["top"] == [["0x402000", 9], ["0x401000", 5]]


def test_registry_records_every_kind():
    reg = MetricsRegistry()
    reg.count("c", 2)
    reg.count("c")
    reg.gauge("g", 7.5)
    reg.observe("h", 3.0)
    with reg.time("t"):
        pass
    reg.profile("p").add("k", 4)
    doc = reg.to_dict()
    assert doc["counters"] == {"c": 3}
    assert doc["gauges"] == {"g": 7.5}
    assert doc["histograms"]["h"]["count"] == 1
    assert doc["timers"]["t"]["count"] == 1
    assert doc["timers"]["t"]["sum"] >= 0.0
    assert doc["profiles"]["p"]["top"] == [["k", 4]]


def test_registry_merge_sums_and_preserves_totals():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.count("c", 1)
    b.count("c", 2)
    b.gauge("g", 9.0)
    b.observe("h", 4.0)
    for key, n in (("x", 6), ("y", 3), ("z", 1)):
        b.profile("p").add(key, n)
    # Export keeps only the top-1 profile entry; the remainder must
    # survive the merge as the "(other)" sentinel so totals still match.
    a.merge(b.to_dict(top=1))
    assert a.counters == {"c": 3}
    assert a.gauges == {"g": 9.0}
    assert a.histograms["h"].count == 1
    prof = a.profiles["p"]
    assert prof.counts == {"x": 6, "(other)": 4}
    assert prof.total == b.profiles["p"].total


def test_percentiles_over_known_distribution():
    h = Histogram()
    for v in range(1, 101):  # 1..100, uniform
        h.add(float(v))
    assert h.quantile(0.50) == 50.0
    assert h.quantile(0.95) == 95.0
    assert h.quantile(0.99) == 99.0
    doc = h.to_dict()
    assert (doc["p50"], doc["p95"], doc["p99"]) == (50.0, 95.0, 99.0)


def test_percentiles_skewed_distribution():
    h = Histogram()
    for _ in range(99):
        h.add(1.0)
    h.add(1000.0)  # one outlier
    assert h.quantile(0.50) == 1.0
    assert h.quantile(0.99) == 1.0
    assert h.quantile(1.0) == 1000.0
    assert h.max == 1000.0


def test_reservoir_decimates_deterministically_past_cap():
    a, b = Histogram(), Histogram()
    for v in range(10_000):
        a.add(float(v))
        b.add(float(v))
    assert a.count == 10_000
    assert len(a.samples) < 2048
    # Deterministic: two identical streams retain identical samples.
    assert a.samples == b.samples
    # Percentiles stay approximately right after decimation.
    assert a.quantile(0.50) == pytest.approx(5000.0, rel=0.05)
    assert a.quantile(0.95) == pytest.approx(9500.0, rel=0.05)


def test_merge_tolerates_v1_payload_without_samples():
    h = Histogram()
    h.add(2.0)
    # A schema-v1 worker payload has no "samples" key.
    h.merge_dict({"count": 3, "sum": 30.0, "min": 10.0, "max": 10.0,
                  "mean": 10.0})
    assert h.count == 4
    assert h.total == pytest.approx(32.0)
    assert h.samples == [2.0]  # exact stats intact, estimate degrades


def test_merge_extends_and_rebounds_samples():
    a, b = Histogram(), Histogram()
    for v in range(1500):
        a.add(float(v))
        b.add(float(v) + 1500.0)
    a.merge_dict(b.to_dict())
    assert a.count == 3000
    assert len(a.samples) < 2048
    assert a.quantile(0.50) == pytest.approx(1500.0, rel=0.1)


def test_module_helpers_are_noops_when_disabled():
    obs.disable()
    obs.count("never")
    obs.gauge("never", 1.0)
    obs.observe("never", 1.0)
    with obs.timed("never"):
        pass
    assert obs.recorder() is None
    assert not obs.enabled()


def test_module_helpers_record_when_enabled():
    rec = obs.enable(reset=True)
    try:
        obs.count("c", 5)
        obs.gauge("g", 2.0)
        obs.observe("h", 1.5)
        with obs.timed("t"):
            pass
    finally:
        obs.disable()
    assert rec.registry.counters == {"c": 5}
    assert rec.registry.gauges == {"g": 2.0}
    assert rec.registry.histograms["h"].count == 1
    assert rec.registry.timers["t"].count == 1
