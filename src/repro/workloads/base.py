"""Workload infrastructure: a benchmark is MiniC source plus inputs.

Each workload mirrors the role its SPECint 2006 namesake plays in the
paper's evaluation: a distinct mix of stack-usage idioms (arrays of
structs, spills, deep recursion, variadic I/O, pointer loops) with
deterministic, checkable output.  ``ref_inputs`` are the inputs used both
for tracing and for measurement, like the paper's use of the ref
datasets for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..binary.image import BinaryImage
from ..cc.driver import compile_source
from ..emu.machine import RunResult, run_binary

InputItems = list  # list[int | bytes]


@dataclass(frozen=True)
class Workload:
    name: str
    source: str
    ref_inputs: tuple = ()          # tuple[tuple[int|bytes, ...], ...]
    description: str = ""

    def inputs(self) -> list[InputItems]:
        if not self.ref_inputs:
            return [[]]
        return [list(items) for items in self.ref_inputs]

    def compile(self, compiler: str = "gcc12",
                opt_level: str = "3") -> BinaryImage:
        return _compile_cached(self.name, self.source, compiler,
                               opt_level)

    def run_native(self, compiler: str = "gcc12",
                   opt_level: str = "3") -> list[RunResult]:
        image = self.compile(compiler, opt_level)
        return [run_binary(image, items) for items in self.inputs()]


@lru_cache(maxsize=128)
def _compile_cached(name: str, source: str, compiler: str,
                    opt_level: str) -> BinaryImage:
    return compile_source(source, compiler, opt_level, name)


def deterministic_bytes(n: int, seed: int = 1) -> bytes:
    """A reproducible pseudo-random byte string (inputs for the
    compression/transform workloads)."""
    out = bytearray()
    state = seed & 0x7FFFFFFF or 1
    while len(out) < n:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append((state >> 16) & 0xFF)
    return bytes(out)
