"""IR verifier catches malformed structures."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Builder,
    Call,
    Const,
    FuncRef,
    Function,
    GlobalRef,
    Module,
    Phi,
    Ret,
    verify_function,
    verify_module,
)


def valid_function():
    f = Function("f", ["x"])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([f.params[0]])
    return f


def test_valid_function_passes():
    verify_function(valid_function())


def test_missing_terminator_rejected():
    f = Function("f", [])
    f.add_block("entry")
    with pytest.raises(IRError):
        verify_function(f)


def test_foreign_value_rejected():
    f = valid_function()
    other = Function("g", ["y"])
    f.entry.instrs[-1].ops = [other.params[0]]
    with pytest.raises(IRError):
        verify_function(f)


def test_ret_arity_checked():
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([Const(0), Const(1)])
    with pytest.raises(IRError):
        verify_function(f)


def test_phi_preds_must_match():
    f = Function("f", [])
    b = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    u = f.add_block("u")
    b.position(e)
    b.br(t)
    b.position(t)
    phi = Phi([(u, Const(1))])  # wrong: pred is entry, not u
    phi.block = t
    t.instrs.insert(0, phi)
    b.ret([phi])
    with pytest.raises(IRError):
        verify_function(f)


def test_phi_below_non_phi_rejected():
    f = Function("f", ["x"])
    b = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    b.position(e)
    b.br(t)
    b.position(t)
    add = b.add(f.params[0], Const(1))
    b.ret([add])
    phi = Phi([(e, Const(1))])
    phi.block = t
    t.instrs.insert(1, phi)  # after the add: not a leading run
    with pytest.raises(IRError, match="phi below non-phi"):
        verify_function(f)


def test_phi_sandwiched_between_later_phis_rejected():
    # Regression: [phi, op, phi, phi] — a position-vs-phi-count check
    # lets the first out-of-place phi slip through because the later
    # phis pad the count.
    f = Function("f", ["x"])
    b = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    b.position(e)
    b.br(t)
    b.position(t)
    add = b.add(f.params[0], Const(1))
    b.ret([add])
    phis = [Phi([(e, Const(n))]) for n in range(3)]
    for phi in phis:
        phi.block = t
    t.instrs.insert(0, phis[0])
    t.instrs.insert(2, phis[1])  # below the add
    t.instrs.insert(3, phis[2])
    with pytest.raises(IRError, match="phi below non-phi"):
        verify_function(f)


def test_leading_phi_run_accepted():
    f = Function("f", ["x"])
    b = Builder(f)
    e = f.add_block("entry")
    t = f.add_block("t")
    b.position(e)
    b.br(t)
    b.position(t)
    b.ret([f.params[0]])
    phis = [Phi([(e, Const(n))]) for n in range(2)]
    for i, phi in enumerate(phis):
        phi.block = t
        t.instrs.insert(i, phi)
    verify_function(f)


def test_terminator_mid_block_rejected():
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    b.ret([])
    b.block.instrs.append(Ret([]))  # second terminator behind the first
    with pytest.raises(IRError, match="terminator mid-block"):
        verify_function(f)


def test_module_checks_call_arity():
    m = Module()
    callee = Function("callee", ["a", "b"])
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    b.ret([Const(0)])
    m.add_function(callee)

    caller = Function("caller", [])
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    call = b.call("callee", [Const(1)])  # too few args
    b.ret([call])
    m.add_function(caller)
    m.entry_name = "caller"
    with pytest.raises(IRError):
        verify_module(m)


def test_module_checks_unknown_global():
    m = Module()
    f = Function("f", [])
    b = Builder(f)
    b.position(f.add_block("entry"))
    v = b.load(GlobalRef("nope"))
    b.ret([v])
    m.add_function(f)
    m.entry_name = "f"
    with pytest.raises(IRError):
        verify_module(m)


def test_result_index_bounds():
    m = Module()
    callee = Function("c", [])
    b = Builder(callee)
    b.position(callee.add_block("entry"))
    b.ret([Const(0), Const(1)])
    callee.nresults = 2
    m.add_function(callee)

    caller = Function("f", [])
    b = Builder(caller)
    b.position(caller.add_block("entry"))
    call = b.call("c", [], nresults=2)
    bad = b.result(call, 5)
    b.ret([bad])
    m.add_function(caller)
    with pytest.raises(IRError):
        verify_module(m)
