#!/usr/bin/env python
"""Incremental lifting: coverage, traps, and re-analysis (paper §7.2).

WYTIWYG guarantees correct behaviour *for the traced inputs*.  An input
that exercises an untraced path makes the recompiled binary abort with a
distinctive trap code instead of computing garbage — and the fix is
simply to add the input and re-lift, exactly the workflow the paper
describes ("the program can be easily fixed by incrementally
reanalyzing it").

Run: python examples/incremental_lifting.py
"""

from repro import compile_source, run_binary, wytiwyg_recompile

SOURCE = r"""
int score(int kind, int value) {
    if (kind == 0) return value * 2;
    if (kind == 1) return value + 100;
    return -value;             /* the rare path */
}

int main() {
    int kind = read_int();
    int value = read_int();
    printf("score=%d\n", score(kind, value));
    return 0;
}
"""

TRAP_CODES = (198, 199)


def main() -> None:
    image = compile_source(SOURCE, "gcc12", "3", "incremental")

    print("== lift with partial coverage (only kind=0 traced)")
    partial = wytiwyg_recompile(image, [[0, 7]])
    ok = run_binary(partial.recovered, [0, 7])
    print(f"   traced input  -> {ok.stdout.decode().strip()!r}")
    assert ok.stdout == b"score=7\n".replace(b"7", b"14")

    surprise = run_binary(partial.recovered, [2, 5])
    print(f"   untraced input -> trap, exit code {surprise.exit_code}")
    assert surprise.exit_code in TRAP_CODES
    assert surprise.stdout == b""  # aborted before printing garbage

    print("== re-lift incrementally with the new input added")
    full = wytiwyg_recompile(image, [[0, 7], [1, 7], [2, 5]])
    for inputs, expected in (([0, 7], b"score=14\n"),
                             ([1, 7], b"score=107\n"),
                             ([2, 5], b"score=-5\n")):
        result = run_binary(full.recovered, inputs)
        print(f"   {inputs} -> {result.stdout.decode().strip()!r}")
        assert result.stdout == expected
    print("coverage repaired by re-analysis ✔")


if __name__ == "__main__":
    main()
