"""Benchmark configuration.

By default the benches run on the quick workload subset so a full
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set
``REPRO_FULL_EVAL=1`` to sweep all ten benchmarks (the full paper
reproduction, ~30 minutes cold).

Measurements are cycle counts under the deterministic cost model (the
paper's runtime proxy); wall-clock timings reported by pytest-benchmark
measure the emulator and are not the reproduction metric.  Cycle ratios
are attached to each benchmark's ``extra_info``.
"""

import os

import pytest

from repro.evaluation import QUICK_WORKLOADS
from repro.workloads import WORKLOAD_ORDER


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ is wall-time measurement, not tier-1
    # correctness; tag it so ``-m "not bench"`` filters it out.
    for item in items:
        item.add_marker(pytest.mark.bench)


def selected_workloads():
    if os.environ.get("REPRO_FULL_EVAL"):
        return WORKLOAD_ORDER
    return QUICK_WORKLOADS


@pytest.fixture(scope="session")
def workload_names():
    return selected_workloads()
