"""End-to-end tests for the static corroboration gate (paper §4.2 +
the static leg this repo adds on top of it).

The under-traced program is the motivating case: ``int buf[16]``
traced with ``n = 3`` gives the dynamic recovery evidence for three
elements only, while the static interpreter proves the whole array is
reachable.  Corroboration must flag the gap, widening must repair the
layout, and the repaired recompile must be byte-identical on a held-out
input that walks the full array.
"""

import pytest

from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE, cached_image
from repro import obs
from repro.core.driver import wytiwyg_lift, wytiwyg_recompile
from repro.emu import run_binary, trace_binary
from repro.errors import StaticCheckError

UNDERTRACE_SOURCE = r"""
int main() {
    int buf[16];
    int i;
    int n;
    n = read_int();
    for (i = 0; i < n; i++) buf[i] = i * 7;
    int s = 0;
    for (i = 0; i < n; i++) s += buf[i];
    printf("s=%d\n", s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def undertrace_image():
    return cached_image(UNDERTRACE_SOURCE)


def lift_report(image, inputs, **kwargs):
    traces = trace_binary(image.stripped(), inputs)
    return wytiwyg_lift(traces, **kwargs)


# -- fully traced programs corroborate cleanly -------------------------------


@pytest.mark.parametrize("source,inputs", [
    (KERNEL_SOURCE, [[]]),
    (FEATURE_SOURCE, [[]]),
])
def test_fully_traced_programs_have_no_unsound_splits(source, inputs):
    image = cached_image(source)
    _module, _layouts, _notes, report = lift_report(image, inputs)
    splits = report.by_kind("unsound-split")
    assert splits == [], [f.render() for f in splits]
    assert report.by_kind("oob-access") == []
    assert report.by_kind("alias-divergence") == []


# -- the under-traced array --------------------------------------------------


def test_undertrace_yields_coverage_gap(undertrace_image):
    _module, layouts, _notes, report = lift_report(
        undertrace_image, [[3]])
    gaps = report.by_kind("coverage-gap")
    assert len(gaps) >= 1
    gap = gaps[0]
    assert gap.severity == "warning"
    # The suggested widening spans the whole 64-byte array.
    start, end = gap.provenance["suggestion"]
    assert end - start >= 64
    assert report.errors == []


def test_static_widen_repairs_the_layout(undertrace_image):
    _m, narrow, _n, _r = lift_report(undertrace_image, [[3]],
                                     static_widen=False)
    _m, widened, _n, report = lift_report(undertrace_image, [[3]],
                                          static_widen=True)
    applied = [w for w in report.widenings if w["applied"]]
    assert applied, report.widenings
    func = applied[0]["func"]
    span = max(v.end - v.start for v in widened[func].variables)
    assert span >= 64
    assert span > max(v.end - v.start
                      for v in narrow[func].variables)
    # The repaired layout corroborates cleanly: the gap is resolved,
    # not merely papered over in the report.
    assert report.by_kind("coverage-gap") == []


def test_widened_recompile_is_byte_identical_on_held_out_input(
        undertrace_image):
    # Trace with n=3 only; hold out n=16 (walks the full array).
    result = wytiwyg_recompile(undertrace_image, [[3]],
                               collect_accuracy=False,
                               static_widen=True)
    assert not result.fallback
    for held_out in ([16], [9], [0]):
        want = run_binary(undertrace_image, held_out)
        got = run_binary(result.recovered, held_out)
        assert got.stdout == want.stdout, held_out
        assert got.exit_code == want.exit_code


# -- the gate ----------------------------------------------------------------


def test_strict_gate_aborts_before_optimization(undertrace_image):
    with pytest.raises(StaticCheckError) as exc_info:
        wytiwyg_recompile(undertrace_image, [[3]],
                          collect_accuracy=False, check="strict")
    report = exc_info.value.report
    assert report is not None
    assert report.by_kind("coverage-gap")


def test_plain_gate_passes_warnings_through(undertrace_image):
    # Non-strict: warnings annotate the notes instead of aborting.
    result = wytiwyg_recompile(undertrace_image, [[3]],
                               collect_accuracy=False, check=True)
    assert result.check_report is not None
    assert result.check_report.warnings
    assert any(note.startswith("check[warn]:")
               for note in result.notes)


def test_env_gate_strict(undertrace_image, monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")
    with pytest.raises(StaticCheckError):
        wytiwyg_recompile(undertrace_image, [[3]],
                          collect_accuracy=False)


def test_env_static_widen(undertrace_image, monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_WIDEN", "1")
    _m, layouts, _n, report = lift_report(undertrace_image, [[3]])
    assert any(w["applied"] for w in report.widenings)


# -- observability -----------------------------------------------------------


def test_check_findings_surface_in_obs(undertrace_image):
    obs.enable(reset=True)
    try:
        lift_report(undertrace_image, [[3]])
        doc = obs.export(obs.recorder())
    finally:
        obs.disable()
    counters = doc["metrics"]["counters"]
    assert counters.get("sanalysis.findings.warning", 0) >= 1
    spans = {s["name"] for s in obs.iter_spans(doc)}
    assert "stage.sanalysis" in spans
    assert "stage.sanitize" in spans
    assert "sanalysis.function" in spans


def test_check_report_in_result(undertrace_image):
    result = wytiwyg_recompile(undertrace_image, [[3]],
                               collect_accuracy=False)
    assert result.check_report is not None
    doc = result.check_report.to_dict()
    assert doc["counts"]["warning"] >= 1
    assert any(f["kind"] == "coverage-gap" for f in doc["findings"])
