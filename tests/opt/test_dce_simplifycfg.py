"""DCE (incl. phi webs) and CFG simplification."""

from repro.ir import (
    Builder,
    Const,
    Function,
    Module,
    Phi,
    run_module,
    verify_function,
)
from repro.opt import eliminate_dead_code, simplify_cfg


def build():
    m = Module()
    f = Function("main", ["x"])
    m.add_function(f)
    m.entry_name = "main"
    return m, f, Builder(f)


def test_unused_pure_instructions_removed():
    m, f, b = build()
    b.position(f.add_block("entry"))
    b.add(Const(1), Const(2))       # dead
    b.mul(f.params[0], Const(3))    # dead
    b.ret([Const(0)])
    assert eliminate_dead_code(f)
    assert len(list(f.instructions())) == 1


def test_stores_and_calls_are_roots():
    m, f, b = build()
    b.position(f.add_block("entry"))
    slot = b.alloca(4)
    v = b.add(Const(1), Const(2))
    b.store(slot, v)
    call = b.call_external("rand", [])
    b.ret([Const(0)])
    eliminate_dead_code(f)
    names = [i.opcode for i in f.instructions()]
    assert "store" in names and "callext" in names and "add" in names


def test_dead_phi_cycle_removed():
    m, f, b = build()
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    # A live counter and a dead phi web.
    live = b.phi([])
    dead = b.phi([])
    live.add_incoming(entry, Const(0))
    dead.add_incoming(entry, Const(0))
    nxt = b.add(live, Const(1))
    dead_next = b.add(dead, Const(7))
    live.add_incoming(loop, nxt)
    dead.add_incoming(loop, dead_next)
    cond = b.icmp("slt", nxt, Const(3))
    b.condbr(cond, loop, done)
    b.position(done)
    b.ret([live])
    assert eliminate_dead_code(f)
    phis = [i for i in f.instructions() if isinstance(i, Phi)]
    assert len(phis) == 1
    assert run_module(m).exit_code == 2


def test_constant_branch_folded():
    m, f, b = build()
    entry = f.add_block("entry")
    t = f.add_block("t")
    e = f.add_block("e")
    b.position(entry)
    b.condbr(Const(1), t, e)
    b.position(t)
    b.ret([Const(1)])
    b.position(e)
    b.ret([Const(2)])
    assert simplify_cfg(f)
    assert len(f.blocks) == 1  # folded + merged + unreachable removed
    assert run_module(m).exit_code == 1


def test_block_chain_merging():
    m, f, b = build()
    entry = f.add_block("entry")
    mid = f.add_block("mid")
    end = f.add_block("end")
    b.position(entry)
    b.br(mid)
    b.position(mid)
    v = b.add(f.params[0], Const(1))
    b.br(end)
    b.position(end)
    b.ret([v])
    simplify_cfg(f)
    assert len(f.blocks) == 1
    verify_function(f)


def test_single_value_phi_simplified():
    m, f, b = build()
    entry = f.add_block("entry")
    a = f.add_block("a")
    c = f.add_block("c")
    join = f.add_block("join")
    b.position(entry)
    cond = b.icmp("eq", f.params[0], Const(0))
    b.condbr(cond, a, c)
    b.position(a)
    b.br(join)
    b.position(c)
    b.br(join)
    b.position(join)
    phi = b.phi([(a, Const(5)), (c, Const(5))])
    b.ret([phi])
    simplify_cfg(f)
    assert not any(isinstance(i, Phi) for i in f.instructions())
    assert run_module(m).exit_code == 5


def test_switch_constant_folded():
    m, f, b = build()
    entry = f.add_block("entry")
    c1 = f.add_block("c1")
    dflt = f.add_block("dflt")
    b.position(entry)
    b.switch(Const(3), [(3, c1)], dflt)
    b.position(c1)
    b.ret([Const(30)])
    b.position(dflt)
    b.ret([Const(0)])
    simplify_cfg(f)
    assert run_module(m).exit_code == 30
    assert len(f.blocks) == 1
