"""repro.sanalysis — the static leg of layout recovery.

WYTIWYG's dynamic recovery is exact for traced paths and blind past
them (paper §4.2, §6).  This package adds the trust boundary between
tracing and recompilation:

* :mod:`.absint` — VSA-lite abstract interpretation of sp0-relative
  offsets over the pre-symbolization IR (interval domain, widening at
  loop headers, memoized in the versioned CFG-analysis cache);
* :mod:`.corroborate` — diffs the static access set against the
  dynamically recovered :class:`~repro.core.layout.FrameLayout`:
  boundary-straddling accesses are ``unsound-split`` errors, statically
  reachable but untraced bytes are ``coverage-gap`` warnings with
  widening suggestions (`REPRO_STATIC_WIDEN=1` applies them);
* :mod:`.interproc` — whole-module corroboration: a call graph over the
  lifted IR, bottom-up per-function summaries over SCCs to fixpoint
  (escaping regions, derived stack-pointer parameters, callee access
  footprints translated into caller-frame coordinates, memoized per
  ``Function.version``), the ``escaped-split`` check (a dynamic layout
  must not split a variable whose address flows into a callee that
  accesses across the boundary), and EFACT-style extern-signature
  recovery cross-checked against :mod:`repro.core.extfuncs`
  (``REPRO_INTERPROC=0`` disables);
* :mod:`.sanitize` — flow-sensitive lints over the symbolized IR
  (uninitialized reads, constant-offset out-of-bounds accesses,
  escaped frame pointers cross-checked against alias analysis and the
  interprocedural escape summaries);
* :mod:`.report` — :class:`Finding` / :class:`CheckReport`, consumed by
  the pipeline gate (``REPRO_CHECK=1`` / ``--check``), the ``python -m
  repro check`` subcommand, and the observability export
  (``sanalysis.findings.{error,warning}`` counters, per-function
  spans).
"""

from .absint import (
    AbsVal,
    FrameAccessSet,
    StaticAccess,
    analyze_function,
    analyze_module,
)
from .corroborate import (
    WideningSuggestion,
    corroborate_function,
    corroborate_layouts,
)
from .interproc import (
    FunctionSummary,
    LocalSummary,
    interproc_corroborate,
    interproc_enabled,
    local_summary,
    recover_extern_sigs,
    summarize_module,
)
from .report import CheckReport, Finding
from .sanitize import sanitize_function, sanitize_module

__all__ = [
    "AbsVal", "CheckReport", "Finding", "FrameAccessSet",
    "FunctionSummary", "LocalSummary", "StaticAccess",
    "WideningSuggestion", "analyze_function", "analyze_module",
    "corroborate_function", "corroborate_layouts",
    "interproc_corroborate", "interproc_enabled", "local_summary",
    "recover_extern_sigs", "sanitize_function", "sanitize_module",
    "summarize_module",
]
