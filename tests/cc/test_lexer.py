"""MiniC lexer."""

import pytest

from repro.cc import tokenize
from repro.errors import CompileError


def kinds(src):
    return [(t.kind, t.text or t.value) for t in tokenize(src)[:-1]]


def test_identifiers_and_keywords():
    toks = tokenize("int foo while whilex")
    assert [t.kind for t in toks[:-1]] == ["keyword", "ident", "keyword",
                                           "ident"]


def test_numbers():
    toks = tokenize("0 42 0x1F")
    assert [t.value for t in toks[:-1]] == [0, 42, 0x1F]


def test_char_literals_and_escapes():
    toks = tokenize(r"'a' '\n' '\0' '\\'")
    assert [t.value for t in toks[:-1]] == [97, 10, 0, 92]


def test_string_literal_escapes():
    toks = tokenize(r'"a\tb\n"')
    assert toks[0].value == b"a\tb\n"


def test_operators_maximal_munch():
    toks = tokenize("a<<=b >>= == <= ->")
    texts = [t.text for t in toks if t.kind == "op"]
    assert texts == ["<<=", ">>=", "==", "<=", "->"]


def test_comments_stripped_and_lines_counted():
    toks = tokenize("a // comment\n/* multi\nline */ b")
    assert [t.text for t in toks[:-1]] == ["a", "b"]
    assert toks[1].line == 3


def test_unterminated_comment_rejected():
    with pytest.raises(CompileError):
        tokenize("/* never ends")


def test_unterminated_string_rejected():
    with pytest.raises(CompileError):
        tokenize('"abc')


def test_unexpected_character_rejected():
    with pytest.raises(CompileError):
        tokenize("int $x;")
