"""The incremental worklist pass manager (repro.opt.manager).

Two families of guarantees:

* **Equivalence** — the worklist engine's output is byte-identical to
  the legacy fixed schedule (``REPRO_PASS_BASELINE=1``) at every
  optimization level, both as printed IR and as recompiled binaries.
* **Incrementality** — re-optimizing unchanged functions is skipped
  (version tracking on the same object, fingerprint memo across
  objects), and after inlining only the callers that received code are
  re-enqueued.
"""

import copy

import pytest

from repro import obs
from repro.cc.driver import compile_to_ir
from repro.ir import (
    Builder,
    Const,
    Function,
    Module,
    run_module,
    verify_module,
)
from repro.ir.printer import module_to_text
from repro.opt import (
    OptOptions,
    canonicalize_module,
    clear_memo,
    close_opt_pool,
    drop_unused_private_functions,
    optimize_module,
)
from repro.opt import manager as manager_mod
from repro.recompile.link import compile_ir
from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test starts with no cross-stage state and leaves none."""
    clear_memo()
    yield
    clear_memo()
    close_opt_pool()


def _optimized_pair(source, opts, monkeypatch):
    """(worklist module, baseline module) for one source + options."""
    managed = compile_to_ir(source, name="t", config=None)
    baseline = compile_to_ir(source, name="t", config=None)
    optimize_module(managed, opts)
    monkeypatch.setenv("REPRO_PASS_BASELINE", "1")
    optimize_module(baseline, opts)
    monkeypatch.delenv("REPRO_PASS_BASELINE")
    return managed, baseline


@pytest.mark.parametrize("level", ["o0", "o1", "o2", "o3"])
@pytest.mark.parametrize("source", [FEATURE_SOURCE, KERNEL_SOURCE],
                         ids=["feature", "kernel"])
def test_worklist_matches_baseline_ir(source, level, monkeypatch):
    opts = getattr(OptOptions, level)()
    managed, baseline = _optimized_pair(source, opts, monkeypatch)
    verify_module(managed)
    assert module_to_text(managed) == module_to_text(baseline)


@pytest.mark.parametrize("level", ["o1", "o3"])
def test_worklist_matches_baseline_binary(level, monkeypatch):
    opts = getattr(OptOptions, level)()
    managed, baseline = _optimized_pair(FEATURE_SOURCE, opts,
                                        monkeypatch)
    assert compile_ir(managed).to_json() == compile_ir(baseline).to_json()


def test_memo_warm_copy_matches_baseline(monkeypatch):
    """A fresh object served from the fingerprint memo still prints
    identically to a cold baseline run."""
    opts = OptOptions.o2()
    warmup = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(warmup, opts)  # populate the memo
    managed, baseline = _optimized_pair(FEATURE_SOURCE, opts,
                                        monkeypatch)
    assert module_to_text(managed) == module_to_text(baseline)


def test_canonicalize_matches_baseline(monkeypatch):
    managed = compile_to_ir(KERNEL_SOURCE, name="t", config=None)
    baseline = compile_to_ir(KERNEL_SOURCE, name="t", config=None)
    canonicalize_module(managed)
    monkeypatch.setenv("REPRO_PASS_BASELINE", "1")
    canonicalize_module(baseline)
    monkeypatch.delenv("REPRO_PASS_BASELINE")
    verify_module(managed)
    assert module_to_text(managed) == module_to_text(baseline)


def _pass_runs(counters):
    return {name: n for name, n in counters.items()
            if name.startswith("opt.pass.") and name.endswith(".runs")}


def _counters_for(fn):
    obs.enable(reset=True)
    try:
        fn()
        return obs.export_payload()["metrics"]["counters"]
    finally:
        obs.disable()


def test_second_call_skips_everything():
    """Optimizing an already-optimized module runs zero passes: every
    function is accounted as skipped via the module snapshot."""
    opts = OptOptions.o2()
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(module, opts)
    text = module_to_text(module)
    nfuncs = len(module.functions)

    counters = _counters_for(lambda: optimize_module(module, opts))
    assert not _pass_runs(counters)
    assert counters.get("opt.manager.skipped", 0) >= max(nfuncs, 1)
    assert module_to_text(module) == text


def test_fresh_copy_hits_memo():
    """A deep copy (new objects, same content) is skipped through the
    cross-stage fingerprint memo rather than re-optimized."""
    opts = OptOptions.o2()
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(module, opts)
    text = module_to_text(module)

    clone = copy.deepcopy(module)
    counters = _counters_for(lambda: optimize_module(clone, opts))
    assert counters.get("opt.manager.memo_hits", 0) >= 1
    function_runs = {n: c for n, c in _pass_runs(counters).items()
                     if n != "opt.pass.inline.runs"}
    assert not function_runs
    assert module_to_text(clone) == text


def test_memo_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_OPT_MEMO", "0")
    opts = OptOptions.o2()
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(module, opts)
    clone = copy.deepcopy(module)
    counters = _counters_for(lambda: optimize_module(clone, opts))
    assert counters.get("opt.manager.memo_hits", 0) == 0
    assert _pass_runs(counters)  # really re-ran the schedule


def test_inline_requeues_only_changed_callers():
    """After inlining, only callers that received code re-enter the
    worklist (baseline re-optimized the whole module)."""
    src = r"""
    int tiny(int x) { return x + 1; }
    int away(int x) { return x * 2; }
    int main() { return tiny(4); }
    """
    opts = OptOptions.o2()
    module = compile_to_ir(src, name="t", config=None)
    nfuncs = len(module.functions)  # tiny, away, main, _start
    counters = _counters_for(lambda: optimize_module(module, opts))
    # main absorbed tiny and _start absorbed main; away and tiny had
    # already reached fixpoint and must not be revisited.
    assert counters.get("opt.manager.requeued", 0) == 2 < nfuncs
    assert run_module(module).exit_code == 5


def _dead_cycle_module():
    """main plus two mutually-recursive functions nothing references."""
    m = Module()
    for name, other in (("dead_a", "dead_b"), ("dead_b", "dead_a")):
        f = Function(name, ["n"])
        b = Builder(f)
        b.position(f.add_block("entry"))
        b.ret([b.call(other, [f.params[0]])])
        m.add_function(f)
    main = Function("main", [])
    b = Builder(main)
    b.position(main.add_block("entry"))
    b.ret([Const(7)])
    m.add_function(main)
    m.entry_name = "main"
    return m


def test_drop_unused_removes_dead_cycle():
    """Mutually-recursive dead functions keep each other alive under a
    flat reference scan; the transitive sweep drops the whole cycle."""
    m = _dead_cycle_module()
    drop_unused_private_functions(m)
    assert set(m.functions) == {"main"}
    verify_module(m)
    assert run_module(m).exit_code == 7


def test_optimize_module_drops_dead_cycle():
    m = _dead_cycle_module()
    optimize_module(m, OptOptions.o2())
    assert set(m.functions) == {"main"}


def test_mutated_function_is_reoptimized(monkeypatch):
    """Touching one function after fixpoint re-optimizes that function
    (and only it) on the next call.  The memo is disabled because a
    version bump with unchanged content is exactly what the fingerprint
    layer exists to catch — here we want the version layer alone."""
    monkeypatch.setenv("REPRO_OPT_MEMO", "0")
    opts = OptOptions.o1()  # no inlining: isolates the version check
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(module, opts)

    victim = next(iter(module.functions.values()))
    victim.invalidate()
    counters = _counters_for(lambda: optimize_module(module, opts))
    assert _pass_runs(counters)  # the victim really re-ran
    assert counters.get("opt.manager.skipped", 0) >= \
        len(module.functions) - 1


def test_version_bump_with_same_content_served_by_memo():
    """The complement of the previous test: with the memo on, a version
    bump that did not change the function's content costs one
    fingerprint instead of a schedule run."""
    opts = OptOptions.o1()
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(module, opts)

    next(iter(module.functions.values())).invalidate()
    counters = _counters_for(lambda: optimize_module(module, opts))
    assert not _pass_runs(counters)
    assert counters.get("opt.manager.memo_hits", 0) == 1


# -- parallel worklist visits (jobs > 1) --------------------------------------


@pytest.mark.parametrize("level", ["o0", "o1", "o2", "o3"])
@pytest.mark.parametrize("source", [FEATURE_SOURCE, KERNEL_SOURCE],
                         ids=["feature", "kernel"])
def test_parallel_jobs_byte_identical_ir(source, level):
    """jobs=4 worklist output is byte-identical to serial at every
    optimization level, from the same cold start."""
    opts = getattr(OptOptions, level)()
    serial = compile_to_ir(source, name="t", config=None)
    optimize_module(serial, opts, jobs=1)
    clear_memo()  # the parallel run starts equally cold
    par = compile_to_ir(source, name="t", config=None)
    optimize_module(par, opts, jobs=4)
    verify_module(par)
    assert module_to_text(par) == module_to_text(serial)


@pytest.mark.parametrize("level", ["o1", "o3"])
def test_parallel_jobs_byte_identical_binary(level):
    opts = getattr(OptOptions, level)()
    serial = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(serial, opts, jobs=1)
    clear_memo()
    par = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    optimize_module(par, opts, jobs=4)
    assert compile_ir(par).to_json() == compile_ir(serial).to_json()


def test_parallel_canonicalize_byte_identical():
    serial = compile_to_ir(KERNEL_SOURCE, name="t", config=None)
    canonicalize_module(serial, jobs=1)
    clear_memo()
    par = compile_to_ir(KERNEL_SOURCE, name="t", config=None)
    canonicalize_module(par, jobs=4)
    assert module_to_text(par) == module_to_text(serial)


def test_parallel_visits_really_fan_out():
    """Guard against a silent serial fallback: with jobs=4 the pool
    path must actually run (visits counted, a pool spawned)."""
    opts = OptOptions.o2()
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    counters = _counters_for(
        lambda: optimize_module(module, opts, jobs=4))
    assert counters.get("opt.manager.parallel_visits", 0) > 0
    assert counters.get("parallel.pool.spawns", 0) >= 1


def test_opt_jobs_env_sets_default(monkeypatch):
    monkeypatch.setenv("REPRO_OPT_JOBS", "3")
    assert manager_mod.opt_jobs_default() == 3
    serial = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    monkeypatch.delenv("REPRO_OPT_JOBS")
    optimize_module(serial, OptOptions.o2())
    clear_memo()
    monkeypatch.setenv("REPRO_OPT_JOBS", "4")
    par = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    counters = _counters_for(
        lambda: optimize_module(par, OptOptions.o2()))
    assert counters.get("opt.manager.parallel_visits", 0) > 0
    assert module_to_text(par) == module_to_text(serial)


@pytest.mark.parametrize("jobs", [1, 2])
def test_budget_exhausted_function_not_memoized(jobs):
    """Regression (memo poisoning): a function still changing when the
    round budget runs out must not enter the fixpoint memo -- neither
    from a serial visit nor from a pool worker's partial result."""
    opts = OptOptions(level=2, inline=False, rounds=1)
    module = compile_to_ir(FEATURE_SOURCE, name="t", config=None)
    entry_fps = {name: manager_mod.function_fingerprint(f)
                 for name, f in module.functions.items()}
    manager = manager_mod.PassManager(
        module, manager_mod.build_function_pipeline(opts, module),
        ("opt", opts), rounds=1, jobs=jobs)
    manager.run()
    # The single round is not enough for functions the schedule changes.
    assert manager.unresolved
    token = (("opt", opts), manager_mod._module_context(module))
    for name in manager.unresolved:
        partial_fp = manager_mod.function_fingerprint(
            module.functions[name])
        assert not manager_mod._memo_get((token, entry_fps[name]))
        assert not manager_mod._memo_get((token, partial_fp))
    # And the unresolved functions keep making progress on a re-run
    # instead of being skipped off the poisoned entry.
    counters = _counters_for(lambda: manager_mod.PassManager(
        module, manager_mod.build_function_pipeline(opts, module),
        ("opt", opts), rounds=1, jobs=jobs).run())
    assert _pass_runs(counters)
