"""Sparse flat memory used by both the machine emulator and IR interpreter.

Memory is byte-addressed, little-endian, and demand-paged with zero-filled
pages, so freshly mapped stack/heap/BSS reads as zero.  Both execution
engines (machine code and lifted IR) share this model, which is what lets
the lifted program see the exact same address space the original binary
did — global data stays at its original addresses, as in BinRec.

Hot-path design: push/pop/mov dominate the dynamic instruction mix, so
4-byte accesses that stay inside one page take a specialized path that
assembles the value by hand (no intermediate slice object), and the most
recently touched page is cached to skip the page-table dict on the
stack-locality common case.
"""

from __future__ import annotations

from ..binary.image import BinaryImage
from ..errors import EmulationError
from ..obs import recorder as _obs_recorder

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

_SPACE_END = 0x100000000


class Memory:
    """Sparse little-endian byte memory over 4 KiB pages."""

    __slots__ = ("_pages", "_last_index", "_last_page")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        # One-entry page cache: consecutive accesses overwhelmingly hit
        # the same page (the stack), so remember the last one touched.
        self._last_index = -1
        self._last_page: bytearray | None = None

    def _page(self, addr: int) -> bytearray:
        index = addr >> PAGE_SHIFT
        if index == self._last_index:
            return self._last_page  # type: ignore[return-value]
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        self._last_index = index
        self._last_page = page
        return page

    def read(self, addr: int, size: int) -> int:
        """Read an unsigned little-endian integer of ``size`` bytes."""
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            if addr < 0 or addr + size > _SPACE_END:
                raise EmulationError(
                    f"read outside address space: {addr:#x}")
            index = addr >> PAGE_SHIFT
            if index == self._last_index:
                page = self._last_page
            else:
                page = self._pages.get(index)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[index] = page
                self._last_index = index
                self._last_page = page
            if size == 4:
                return (page[off] | page[off + 1] << 8 |          # type: ignore[index]
                        page[off + 2] << 16 | page[off + 3] << 24)  # type: ignore[index]
            if size == 1:
                return page[off]  # type: ignore[index]
            return int.from_bytes(page[off:off + size], "little")  # type: ignore[index]
        if addr < 0 or addr + size > _SPACE_END:
            raise EmulationError(f"read outside address space: {addr:#x}")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write(self, addr: int, size: int, value: int) -> None:
        """Write an integer as ``size`` little-endian bytes (truncating)."""
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            if addr < 0 or addr + size > _SPACE_END:
                raise EmulationError(
                    f"write outside address space: {addr:#x}")
            index = addr >> PAGE_SHIFT
            if index == self._last_index:
                page = self._last_page
            else:
                page = self._pages.get(index)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[index] = page
                self._last_index = index
                self._last_page = page
            if size == 4:
                page[off] = value & 0xFF          # type: ignore[index]
                page[off + 1] = (value >> 8) & 0xFF   # type: ignore[index]
                page[off + 2] = (value >> 16) & 0xFF  # type: ignore[index]
                page[off + 3] = (value >> 24) & 0xFF  # type: ignore[index]
            elif size == 1:
                page[off] = value & 0xFF  # type: ignore[index]
            else:
                value &= (1 << (8 * size)) - 1
                page[off:off + size] = value.to_bytes(size, "little")  # type: ignore[index]
            return
        if addr < 0 or addr + size > _SPACE_END:
            raise EmulationError(f"write outside address space: {addr:#x}")
        value &= (1 << (8 * size)) - 1
        self.write_bytes(addr, value.to_bytes(size, "little"))

    def read_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            off = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - off)
            out += self._page(addr)[off:off + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            off = (addr + pos) & PAGE_MASK
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self._page(addr + pos)[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated byte string (used by the libc model).

        Scans a whole page at a time with ``bytearray.find`` instead of
        issuing a one-byte read per character, stepping across page
        boundaries as needed.
        """
        out = bytearray()
        pos = addr
        remaining = limit
        while remaining > 0:
            if pos < 0 or pos >= _SPACE_END:
                raise EmulationError(
                    f"read outside address space: {pos:#x}")
            off = pos & PAGE_MASK
            page = self._page(pos)
            end = min(PAGE_SIZE, off + remaining)
            nul = page.find(0, off, end)
            if nul >= 0:
                out += page[off:nul]
                return bytes(out)
            out += page[off:end]
            pos += end - off
            remaining -= end - off
        raise EmulationError(f"unterminated string at {addr:#x}")

    def load_image(self, image: BinaryImage) -> None:
        for section in image.sections:
            self.write_bytes(section.base, section.data)


class InstrumentedMemory(Memory):
    """Memory that classifies every scalar access as fast-path (within
    one page, the specialized assembly-by-hand branch) or slow-path
    (page-crossing fallback) into the observability counters.

    Behaviour is bit-identical to :class:`Memory` — it only counts, then
    delegates — so swapping it in cannot perturb an execution.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: dict) -> None:
        super().__init__()
        self._counters = counters

    def read(self, addr: int, size: int) -> int:
        counters = self._counters
        key = "emu.mem.fast_path" \
            if (addr & PAGE_MASK) + size <= PAGE_SIZE else \
            "emu.mem.slow_path"
        counters[key] = counters.get(key, 0) + 1
        return Memory.read(self, addr, size)

    def write(self, addr: int, size: int, value: int) -> None:
        counters = self._counters
        key = "emu.mem.fast_path" \
            if (addr & PAGE_MASK) + size <= PAGE_SIZE else \
            "emu.mem.slow_path"
        counters[key] = counters.get(key, 0) + 1
        Memory.write(self, addr, size, value)


def make_memory() -> Memory:
    """A Memory for one execution: plain when observability is off (the
    zero-overhead default), counting when a recorder is active."""
    rec = _obs_recorder()
    if rec is None:
        return Memory()
    return InstrumentedMemory(rec.registry.counters)
