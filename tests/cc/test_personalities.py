"""Compiler personalities: observable differences between toolchains."""

import pytest

from repro.cc import compile_source, personality
from repro.emu import run_binary
from repro.errors import CompileError
from repro.isa import Disassembler

LOOPY = r'''
int work(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i] * i + (a[i] >> 1);
    return s;
}
int main() {
    int arr[32];
    int i;
    for (i = 0; i < 32; i++) arr[i] = i * 7;
    int total = 0;
    for (i = 0; i < 40; i++) total += work(arr, 32);
    printf("%d\n", total);
    return 0;
}
'''


def test_unknown_personality_rejected():
    with pytest.raises(CompileError):
        personality("msvc", "2")


def test_paper_configs_exist():
    from repro.cc.personalities import PAPER_CONFIGS
    for comp, lvl in PAPER_CONFIGS:
        p = personality(comp, lvl)
        assert p.label


def test_o0_keeps_frame_pointer_and_is_slower():
    o0 = compile_source(LOOPY, "gcc12", "0", "t")
    o3 = compile_source(LOOPY, "gcc12", "3", "t")
    r0 = run_binary(o0)
    r3 = run_binary(o3)
    assert r0.stdout == r3.stdout
    assert r0.cycles > r3.cycles * 1.1
    listing0 = Disassembler(o0).listing()
    assert "push %ebp" in listing0  # classic prologue


def test_gcc44_slower_than_gcc12_on_loops():
    legacy = run_binary(compile_source(LOOPY, "gcc44", "3", "t"))
    modern = run_binary(compile_source(LOOPY, "gcc12", "3", "t"))
    assert legacy.stdout == modern.stdout
    assert legacy.cycles > modern.cycles


def test_modern_o3_omits_frame_pointer():
    image = compile_source(LOOPY, "gcc12", "3", "t")
    listing = Disassembler(image).listing()
    assert "mov %ebp, %esp" not in listing


def test_metadata_records_provenance():
    image = compile_source(LOOPY, "clang16", "3", "prog")
    assert image.metadata["compiler"] == "clang16"
    assert image.metadata["opt"] == "O3"
    assert image.metadata["program"] == "prog"


def test_ground_truth_present_for_traced_functions():
    image = compile_source(LOOPY, "gcc12", "3", "t")
    names = {g.func_name for g in image.ground_truth}
    assert "_start" in names
    # main/work may be inlined, but _start must carry the arr object.
    start_gt = next(g for g in image.ground_truth
                    if g.func_name == "_start")
    sizes = {o.size for o in start_gt.objects if o.kind == "var"}
    assert 128 in sizes  # int arr[32]


def test_jump_tables_only_when_enabled():
    switchy = r'''
int pick(int v) {
    switch (v) {
    case 0: return 5;
    case 1: return 6;
    case 2: return 7;
    case 3: return 8;
    case 4: return 9;
    default: return -1;
    }
}
int main() {
    int i; int s = 0;
    for (i = 0; i < 6; i++) s += pick(i);
    printf("%d\n", s);
    return 0;
}
'''
    modern = compile_source(switchy, "gcc12", "3", "t")
    o0 = compile_source(switchy, "gcc12", "0", "t")
    has_jt = lambda img: any(".jt" in name for name in img.symbols)
    assert has_jt(modern)
    assert not has_jt(o0)
    assert run_binary(modern).stdout == run_binary(o0).stdout
