"""repro.parallel — the shared fork-pool utility.

Both per-function-independent backend stages — the replay engine's
validation / instrumented-bounds sweeps (:mod:`repro.replay.engine`)
and the pass manager's worklist visits (:mod:`repro.opt.manager`) —
fan work out over process pools whose workers read a large cyclic
object graph (the IR module).  Pickling that graph per task is the
dominant cost, so pools are spawned with the ``fork`` start method and
workers read the context from inherited memory instead:

1. the parent publishes the context via :func:`publish_ctx`;
2. the pool forks, each worker inheriting the published snapshot;
3. tasks are submitted as small picklable values (indices) and workers
   combine them with :func:`worker_ctx`.

:class:`ForkPool` wraps that protocol and adds **reuse**: a pool stays
alive after a sweep, and the next ``acquire`` with the same *key* (a
content fingerprint of the inherited context) returns the live
executor instead of forking a fresh one — consecutive replay stages
over an unchanged module share one set of workers.  A key mismatch
shuts the old pool down and respawns.

Contract for callers:

* ``acquire`` immediately before a submit batch and drain the batch
  before the next ``acquire`` anywhere in the process — the published
  context is global, so interleaving un-drained batches of *different*
  pools could fork a late worker under the wrong context;
* after cancelling a batch mid-flight or observing a broken pool, call
  :meth:`ForkPool.invalidate` — a cancelled executor cannot accept new
  work;
* ``close`` when the owning scope ends (the replay engine does this
  when its pipeline run finishes).

Observability: ``parallel.pool.spawns`` counts executor creations,
``parallel.pool.reuses`` counts acquisitions served by a live pool —
their ratio is the cross-stage reuse rate.

Where ``fork`` is unavailable (non-POSIX platforms), ``acquire``
raises and callers fall back to their serial paths, which compute the
same results.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from . import obs

#: Worker state inherited over ``fork``; published by the parent
#: immediately before spawning (or growing) a pool.
_CTX = None


def publish_ctx(ctx) -> None:
    """Publish ``ctx`` for workers forked from this point on."""
    global _CTX
    _CTX = ctx


def worker_ctx():
    """The context snapshot this worker inherited at fork time."""
    return _CTX


class ForkPool:
    """A reusable fork-context process pool keyed by inherited context.

    One ``ForkPool`` per owning scope (a replay engine, a pass-manager
    invocation); at most one executor is live at a time.
    """

    def __init__(self, jobs: int):
        self.jobs = max(1, int(jobs))
        self._exec: ProcessPoolExecutor | None = None
        self._key = None
        self._workers = 0

    @property
    def alive(self) -> bool:
        return self._exec is not None

    def acquire(self, key, ctx, ntasks: int) -> ProcessPoolExecutor:
        """An executor whose workers inherited ``ctx``.

        ``key`` must determine ``ctx``'s observable content: the live
        pool is reused when the keys match (its workers' inherited
        snapshot is interchangeable with ``ctx``), else it is shut down
        and a fresh pool is forked.  The context is (re)published even
        on reuse so workers the executor spawns lazily during later
        submits fork under the right snapshot.
        """
        workers = min(self.jobs, max(int(ntasks), 1))
        if self._exec is not None:
            # A pool sized by a small earlier batch is grown (respawned)
            # rather than reused when a larger batch arrives — a
            # long-lived owner (the serve daemon) would otherwise be
            # stuck at the first request's width forever.
            if self._key == key and workers <= self._workers:
                obs.count("parallel.pool.reuses")
                obs.event("pool.reuse", key=str(key))
                publish_ctx(ctx)
                return self._exec
            self.close()
        publish_ctx(ctx)
        mp_ctx = multiprocessing.get_context("fork")
        self._exec = ProcessPoolExecutor(max_workers=workers,
                                         mp_context=mp_ctx)
        self._key = key
        self._workers = workers
        obs.count("parallel.pool.spawns")
        obs.event("pool.spawn", key=str(key), workers=workers)
        return self._exec

    def invalidate(self, cancel: bool = False) -> None:
        """Drop the live pool without waiting for queued work.

        ``cancel=True`` additionally cancels still-pending futures (the
        early-exit path of a failed validation sweep).
        """
        if self._exec is None:
            return
        pool, self._exec, self._key = self._exec, None, None
        try:
            pool.shutdown(wait=False, cancel_futures=cancel)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the live pool down, waiting for in-flight work."""
        if self._exec is None:
            return
        pool, self._exec, self._key = self._exec, None, None
        try:
            pool.shutdown(wait=True)
        except Exception:
            pass

    def __del__(self):  # best-effort: scopes should close() explicitly
        try:
            self.invalidate()
        except Exception:
            pass
