"""Binary image container: sections, imports, symbols, debug ground truth."""

from .image import (
    HEAP_BASE,
    HEAP_SIZE,
    STACK_SIZE,
    STACK_TOP,
    TEXT_BASE,
    BinaryImage,
    FrameGroundTruth,
    Section,
    StackObject,
)

__all__ = [
    "BinaryImage", "FrameGroundTruth", "HEAP_BASE", "HEAP_SIZE", "Section",
    "STACK_SIZE", "STACK_TOP", "StackObject", "TEXT_BASE",
]
