#!/usr/bin/env python
"""Reoptimizing a legacy binary (the paper's headline use case).

A compute kernel is compiled with the *legacy* gcc44 personality — a
weak register allocator, no load/store optimization, explicit address
arithmetic — standing in for a binary "stuck in time".  WYTIWYG lifts
it, recovers its stack layout, and recompiles it through the modern
pipeline.  The paper reports a 1.22x average speedup for GCC 4.4
binaries; this example shows the same effect end to end, and contrasts
it with the unsymbolized (BinRec-style) recompilation, which cannot
deliver the speedup because the optimizer is blind to the stack.

Run: python examples/reoptimize_legacy.py
"""

from repro import (
    binrec_recompile,
    compile_source,
    run_binary,
    wytiwyg_recompile,
)

SOURCE = r"""
int smooth(int *signal, int *out, int n) {
    int i;
    out[0] = signal[0];
    out[n - 1] = signal[n - 1];
    for (i = 1; i < n - 1; i++) {
        int window = signal[i - 1] + signal[i] * 2 + signal[i + 1];
        out[i] = window / 4;
    }
    int energy = 0;
    for (i = 0; i < n; i++) energy += out[i] * out[i];
    return energy;
}

int main() {
    int signal[64];
    int out[64];
    int i;
    for (i = 0; i < 64; i++)
        signal[i] = ((i * 37) % 23) - 11;
    int total = 0;
    for (i = 0; i < 30; i++)
        total += smooth(signal, out, 64) & 0xFFFF;
    printf("energy checksum: %d\n", total);
    return 0;
}
"""


def main() -> None:
    legacy = compile_source(SOURCE, compiler="gcc44", opt_level="3",
                            name="legacy")
    modern = compile_source(SOURCE, compiler="gcc12", opt_level="3",
                            name="modern")
    legacy_run = run_binary(legacy)
    modern_run = run_binary(modern)
    print(f"legacy  (gcc44 -O3): {legacy_run.cycles} cycles")
    print(f"modern  (gcc12 -O3): {modern_run.cycles} cycles "
          f"({modern_run.cycles / legacy_run.cycles:.2f}x of legacy)")

    print("\nrecompiling the legacy binary without symbolization "
          "(BinRec)...")
    nosym = binrec_recompile(legacy.stripped(), [[]])
    nosym_run = run_binary(nosym)
    print(f"binrec  recompiled : {nosym_run.cycles} cycles "
          f"({nosym_run.cycles / legacy_run.cycles:.2f}x of legacy)")

    print("\nrecompiling the legacy binary with WYTIWYG...")
    result = wytiwyg_recompile(legacy, [[]])
    recovered_run = run_binary(result.recovered)
    print(f"wytiwyg recompiled : {recovered_run.cycles} cycles "
          f"({recovered_run.cycles / legacy_run.cycles:.2f}x of legacy)")

    assert recovered_run.stdout == legacy_run.stdout
    assert nosym_run.stdout == legacy_run.stdout
    speedup = legacy_run.cycles / recovered_run.cycles
    print(f"\nWYTIWYG speedup over the legacy binary: {speedup:.2f}x "
          f"(paper: 1.22x average)")
    assert recovered_run.cycles < nosym_run.cycles


if __name__ == "__main__":
    main()
