"""Ablation benches for the design choices DESIGN.md calls out.

Expected shape: disabling address folding hurts most; dead-argument
elimination matters on call-heavy code; every ablated pipeline stays
functionally correct (asserted inside run_ablation)."""

import os

import pytest

from repro.evaluation import run_ablation

_NAMES = ("hmmer", "mcf") if not os.environ.get("REPRO_FULL_EVAL") \
    else ("hmmer", "mcf", "gcc", "sjeng", "bzip2")


@pytest.mark.parametrize("name", _NAMES)
def test_ablation(benchmark, name):
    report = run_ablation(name)
    print(f"\n{report.render()}")
    ratios = report.ratios()
    for ablation, ratio in ratios.items():
        benchmark.extra_info[ablation] = round(ratio, 3)
    # The full pipeline must not lose to disabling address folding.
    assert ratios["full"] <= ratios["no-addr-folding"] + 0.02  # folding never hurts
    benchmark(lambda: ratios)
