"""Alias analysis over IR addresses.

The precision story here is the paper's core argument made executable:

* the *emulated stack* is one escaping global byte array, so accesses
  through it mostly answer "may alias" and block load/store optimization
  (paper §2.1's use-define discussion);
* after symbolization, locals are distinct allocas — distinct allocas
  never alias, non-escaping allocas cannot be touched by calls or unknown
  pointers, and in-bounds derivation (guaranteed by WYTIWYG for traced
  inputs) keeps derived pointers attached to their alloca.

Address facts form a small lattice: ``None`` (uncomputed), a rooted fact
``(kind, root, offset)`` with kind in {"alloca", "global", "const",
"anyconst"}, or ``UNKNOWN``.
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.values import (
    Alloca,
    BinOp,
    Call,
    CallExt,
    CallInd,
    Const,
    GlobalRef,
    Instr,
    Load,
    Phi,
    Ret,
    Store,
    Switch,
    Unary,
    Value,
)

UNKNOWN = ("unknown", None, None)


class AliasAnalysis:
    """Per-function pointer facts: address roots and escaping allocas."""

    def __init__(self, func: Function, module: Module | None = None):
        self.func = func
        self.module = module
        self._global_ranges = self._collect_global_ranges()
        self.info: dict[Value, tuple] = {}
        self._compute_info()
        self.escaped: set[Alloca] = self._compute_escapes()

    # -- address facts ------------------------------------------------------

    def _collect_global_ranges(self) -> list[tuple[int, int, str]]:
        ranges = []
        if self.module is not None:
            for g in self.module.globals.values():
                if g.fixed_addr is not None:
                    ranges.append((g.fixed_addr, g.fixed_addr + g.size,
                                   g.name))
        return sorted(ranges)

    def _const_fact(self, value: int) -> tuple:
        for lo, hi, name in self._global_ranges:
            if lo <= value < hi:
                return ("global", name, value - lo)
        return ("const", value, 0)

    def fact_for(self, v: Value) -> tuple:
        if isinstance(v, Const):
            return self._const_fact(v.value)
        if isinstance(v, GlobalRef):
            return ("global", v.name, 0)
        if isinstance(v, Alloca):
            return ("alloca", v, 0)
        return self.info.get(v, UNKNOWN)

    @staticmethod
    def _join(a: tuple | None, b: tuple) -> tuple:
        if a is None:
            return b
        if a == b:
            return a
        if a[0] == "unknown" or b[0] == "unknown":
            return UNKNOWN
        if a[0] == b[0] and a[1] == b[1]:
            return (a[0], a[1], None)  # same root, offsets differ
        if a[0] in ("const", "anyconst") and b[0] in ("const", "anyconst"):
            return ("anyconst", None, None)
        return UNKNOWN

    def _transfer(self, instr: Instr) -> tuple | None:
        if isinstance(instr, BinOp) and instr.opcode in ("add", "sub"):
            lf = self.fact_for(instr.lhs)
            rf = self.fact_for(instr.rhs)
            const_side = None
            ptr_side = None
            if isinstance(instr.rhs, Const):
                const_side, ptr_side = instr.rhs.value, lf
            elif isinstance(instr.lhs, Const) and instr.opcode == "add":
                const_side, ptr_side = instr.lhs.value, rf
            if ptr_side is not None and ptr_side[0] in ("alloca", "global"):
                if ptr_side[2] is None:
                    return ptr_side
                delta = const_side if instr.opcode == "add" \
                    else -const_side
                return (ptr_side[0], ptr_side[1], ptr_side[2] + delta)
            # Pointer +/- non-constant stays attached to its root with an
            # unknown offset (in-bounds assumption, see module docstring).
            for fact in (lf, rf):
                if fact[0] in ("alloca", "global"):
                    return (fact[0], fact[1], None)
            if lf[0] in ("const", "anyconst") and \
                    rf[0] in ("const", "anyconst"):
                return ("anyconst", None, None)
            return UNKNOWN
        if isinstance(instr, Phi):
            fact: tuple | None = None
            for op in instr.ops:
                if op is instr:
                    continue
                fact = self._join(fact, self.fact_for(op))
                if fact == UNKNOWN:
                    break
            return fact or UNKNOWN
        return UNKNOWN

    def _compute_info(self) -> None:
        interesting = [i for i in self.func.instructions()
                       if (isinstance(i, BinOp)
                           and i.opcode in ("add", "sub"))
                       or isinstance(i, Phi)]
        # Seed with bottom (absent), iterate to a fixed point; the lattice
        # has height 3 so this terminates quickly.
        for _round in range(12):
            changed = False
            for instr in interesting:
                new = self._transfer(instr)
                if new is not None and self.info.get(instr) != new:
                    self.info[instr] = new
                    changed = True
            if not changed:
                return
        # Anything still unstable degrades to unknown.
        for instr in interesting:
            self.info.setdefault(instr, UNKNOWN)

    # -- escape analysis ----------------------------------------------------

    def _compute_escapes(self) -> set[Alloca]:
        escaped: set[Alloca] = set()
        for instr in self.func.instructions():
            for op in instr.operands():
                fact = self.fact_for(op)
                if fact[0] != "alloca":
                    continue
                alloca = fact[1]
                if isinstance(instr, Load) and instr.addr is op:
                    continue
                if isinstance(instr, Store) and instr.addr is op \
                        and instr.value is not op:
                    continue
                if isinstance(instr, (BinOp, Phi)) and \
                        self.fact_for(instr)[0] == "alloca":
                    continue  # still tracked
                if instr.opcode == "icmp":
                    continue  # comparisons don't leak the pointer
                if isinstance(instr, Switch):
                    continue
                # Stored as a value, passed to any call, returned, or used
                # in untracked arithmetic: the alloca escapes.
                escaped.add(alloca)
        return escaped

    # -- queries ------------------------------------------------------------

    def may_alias(self, addr_a: Value, size_a: int,
                  addr_b: Value, size_b: int) -> bool:
        a = self.fact_for(addr_a)
        b = self.fact_for(addr_b)
        return self._facts_alias(a, size_a, b, size_b)

    def _facts_alias(self, a: tuple, size_a: int,
                     b: tuple, size_b: int) -> bool:
        if a[0] == "unknown" or b[0] == "unknown":
            for fact in (a, b):
                if fact[0] == "alloca" and fact[1] not in self.escaped:
                    return False
            return True
        if a[0] == "alloca" and b[0] == "alloca":
            if a[1] is not b[1]:
                return False
            return self._offsets_overlap(a[2], size_a, b[2], size_b)
        if a[0] == "alloca" or b[0] == "alloca":
            return False  # alloca vs global/const: distinct regions
        if a[0] == "global" and b[0] == "global":
            if a[1] != b[1]:
                return False
            return self._offsets_overlap(a[2], size_a, b[2], size_b)
        if a[0] == "const" and b[0] == "const":
            return self._offsets_overlap(a[1], size_a, b[1], size_b)
        # global vs const: a const fact inside a known fixed global would
        # have been classified as that global, so remaining consts point
        # outside every module global.
        if {a[0], b[0]} == {"global", "const"}:
            return False
        return True  # anyconst vs const/global/anyconst: be conservative

    @staticmethod
    def _offsets_overlap(off_a: int | None, size_a: int,
                         off_b: int | None, size_b: int) -> bool:
        if off_a is None or off_b is None:
            return True
        return off_a < off_b + size_b and off_b < off_a + size_a

    def clobbered_by_call(self, addr: Value) -> bool:
        """May a call (internal or external) modify memory at ``addr``?

        Calls cannot touch allocas that never escape; anything else is
        fair game.
        """
        fact = self.fact_for(addr)
        if fact[0] == "alloca":
            return fact[1] in self.escaped
        return True
