"""Tail-call identification and conversion (paper §5.1, §6.1)."""

from repro.core import wytiwyg_recompile
from repro.emu import run_binary, trace_binary
from repro.ir import run_module
from repro.lifting import lift_traces, recover_cfg, recover_functions

# clang16 -O3 aggressively turns the call into a tail call... our
# personalities do not synthesize tail calls in the backend, so build
# the pattern at the machine level instead.
from repro.isa import (
    AsmFunction,
    AsmProgram,
    DataItem,
    EAX,
    ESP,
    Imm,
    ImportRef,
    Label,
    Mem,
    assemble,
    ins,
)


def tail_call_image():
    """wrapper() tail-calls work() with a shared frame."""
    start = AsmFunction("_start", [
        ins("push", Imm(5)),
        ins("call", Label("wrapper")),
        ins("add", ESP, Imm(4)),
        ins("push", EAX),
        ins("push", Label("fmt")),
        ins("call", ImportRef("printf")),
        ins("add", ESP, Imm(8)),
        ins("mov", EAX, Imm(0)),
        ins("hlt"),
    ])
    wrapper = AsmFunction("wrapper", [
        ins("mov", EAX, Mem(ESP, disp=4)),
        ins("add", EAX, Imm(1)),
        ins("mov", Mem(ESP, disp=4), EAX),
        ins("jmp", Label("work")),      # tail call
    ])
    work = AsmFunction("work", [
        ins("mov", EAX, Mem(ESP, disp=4)),
        ins("imul", EAX, Imm(10)),
        ins("ret"),
    ])
    return assemble(AsmProgram(
        functions=[start, wrapper, work],
        data=[DataItem("fmt", b"%d\n\x00")],
        imports=["printf"]))


def test_tail_call_detected_and_split():
    image = tail_call_image()
    traces = trace_binary(image.stripped(), [[]])
    cfg = recover_cfg(traces)
    functions = recover_functions(cfg)
    # work is only entered via the tail jump; the recovery must still
    # split it into its own function because... it IS also marked: the
    # jmp target becomes an entry through the containment rule.
    entries = set(functions)
    wrapper_entry = image.symbols["wrapper"]
    assert wrapper_entry in entries
    wrapper_fn = functions[wrapper_entry]
    work_entry = image.symbols["work"]
    if work_entry in entries:
        # Split: the wrapper records a tail-call site to work.
        assert any(work_entry in targets
                   for targets in wrapper_fn.tail_calls.values())
    else:
        # Merged (single tail call, no other callers): work's blocks
        # belong to the wrapper.
        assert work_entry in wrapper_fn.blocks


def test_tail_call_lifts_and_replays():
    image = tail_call_image()
    native = run_binary(image)
    traces = trace_binary(image.stripped(), [[]])
    module = lift_traces(traces)
    assert run_module(module).stdout == native.stdout == b"60\n"


def test_tail_call_recompiles_via_wytiwyg():
    image = tail_call_image()
    native = run_binary(image)
    result = wytiwyg_recompile(image, [[]])
    recovered = run_binary(result.recovered)
    assert recovered.stdout == native.stdout
