"""The fingerprint-keyed lowering cache (repro.recompile.lower).

Guarantees:

* **Transparency** — ``compile_ir`` output is byte-identical with the
  cache on (cold and warm) and off, at every optimization level.
* **Warm path** — recompiling unchanged IR hits for every function
  (including across the in-place phi-edge split), and a one-function
  edit re-lowers exactly that function.
"""

import pytest

from repro import obs
from repro.cc.driver import compile_to_ir
from repro.ir import Builder, Function, Module
from repro.ir.values import BinOp, Const
from repro.opt import OptOptions, clear_memo, optimize_module
from repro.recompile import (
    LowerOptions,
    clear_lower_cache,
    compile_ir,
    lower_cache_enabled,
)
from repro.recompile import lower as lower_mod
from tests.conftest import FEATURE_SOURCE, KERNEL_SOURCE


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_lower_cache()
    clear_memo()
    yield
    clear_lower_cache()
    clear_memo()


def _counters_for(fn):
    obs.enable(reset=True)
    try:
        fn()
        return obs.export_payload()["metrics"]["counters"]
    finally:
        obs.disable()


def _cache_stats(counters):
    return {k.rsplit(".", 1)[-1]: v for k, v in counters.items()
            if k.startswith("lower.cache.")}


def _module(source=FEATURE_SOURCE, level=None):
    m = compile_to_ir(source, name="t", config=None)
    if level is not None:
        optimize_module(m, getattr(OptOptions, level)())
    return m


# -- transparency -------------------------------------------------------------


@pytest.mark.parametrize("level", ["o0", "o1", "o2", "o3"])
@pytest.mark.parametrize("source", [FEATURE_SOURCE, KERNEL_SOURCE],
                         ids=["feature", "kernel"])
def test_cache_on_off_byte_identical(source, level, monkeypatch):
    module = _module(source, level)
    cold = compile_ir(module).to_json()
    warm = compile_ir(module).to_json()
    monkeypatch.setenv("REPRO_LOWER_CACHE", "0")
    assert not lower_cache_enabled()
    off = compile_ir(module).to_json()
    assert cold == warm == off


def test_cache_off_records_nothing(monkeypatch):
    monkeypatch.setenv("REPRO_LOWER_CACHE", "0")
    module = _module()
    counters = _counters_for(lambda: compile_ir(module))
    assert not _cache_stats(counters)
    assert not lower_mod._CACHE


# -- warm path ----------------------------------------------------------------


def test_warm_compile_hits_every_function():
    module = _module()
    nfuncs = len(module.functions)
    cold = _cache_stats(_counters_for(lambda: compile_ir(module)))
    assert cold.get("misses") == nfuncs
    assert cold.get("hits", 0) == 0
    warm = _cache_stats(_counters_for(lambda: compile_ir(module)))
    assert warm.get("hits") == nfuncs
    assert warm.get("misses", 0) == 0


def _phi_loop_module():
    """A loop-carried phi behind a critical edge (condbr back into the
    phi block), so lowering must split an edge in place."""
    m = Module()
    f = Function("main", [])
    m.add_function(f)
    m.entry_name = "main"
    b = Builder(f)
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b.position(entry)
    b.br(loop)
    b.position(loop)
    i = b.phi([])
    i.add_incoming(entry, Const(0))
    nxt = b.add(i, Const(1))
    i.add_incoming(loop, nxt)
    cond = b.icmp("slt", nxt, Const(5))
    b.condbr(cond, loop, done)
    b.position(done)
    b.ret([i])
    return m


def test_warm_across_phi_split_mutation():
    """Lowering splits phi edges in place, changing the function's
    fingerprint; the double-keyed entry still serves the re-lower of
    the same mutated module object."""
    module = _phi_loop_module()
    nblocks = len(module.functions["main"].blocks)
    compile_ir(module)
    assert len(module.functions["main"].blocks) > nblocks, \
        "workload has no phi edges to split; pick a phi-ful module"
    warm = _cache_stats(_counters_for(lambda: compile_ir(module)))
    assert warm.get("misses", 0) == 0
    assert warm.get("hits") == len(module.functions)


def test_one_function_edit_relowers_exactly_one():
    module = _module()
    nfuncs = len(module.functions)
    compile_ir(module)
    victim = next(iter(module.functions.values()))
    victim.entry.insert(0, BinOp("add", Const(1), Const(2)))
    victim.invalidate()
    stats = _cache_stats(_counters_for(lambda: compile_ir(module)))
    assert stats.get("misses") == 1
    assert stats.get("hits") == nfuncs - 1
    assert stats.get("invalidations") == 1


def test_fresh_copy_with_same_content_is_warm():
    """The key is content, not object identity: rebuilding the module
    from the same source compiles fully warm."""
    compile_ir(_module())
    stats = _cache_stats(_counters_for(lambda: compile_ir(_module())))
    assert stats.get("misses", 0) == 0


def test_options_are_part_of_the_key():
    module = _module()
    compile_ir(module)
    stats = _cache_stats(_counters_for(
        lambda: compile_ir(module, LowerOptions(frame_pointer=False))))
    assert stats.get("hits", 0) == 0
    assert stats.get("misses") == len(module.functions)


def test_address_table_is_part_of_the_context():
    module = _module()
    ctx_plain = lower_mod._lower_context(module)
    module.address_table[0x1000] = next(iter(module.functions))
    assert lower_mod._lower_context(module) != ctx_plain


def test_lru_bound_evicts_oldest(monkeypatch):
    monkeypatch.setattr(lower_mod, "_CACHE_MAX", 2)
    module = _module()
    assert len(module.functions) > 2
    compile_ir(module)
    assert len(lower_mod._CACHE) <= 2
    # Evicted functions re-lower; the bound holds, output is unchanged.
    again = compile_ir(module)
    assert len(lower_mod._CACHE) <= 2
    assert again.to_json() == compile_ir(module).to_json()
