"""Stack reference identification: folding direct references to sp0
(paper §4.1, second half).

After refinement 1 has broken the save/restore dependence on the emulated
stack, every *direct* stack reference in a lifted function is computable
as ``sp0 + constant``.  This pass propagates those constants through the
SSA graph and classifies which of the offset-known values are **base
pointers** — values with at least one "real" use (memory address, stored
value, call argument, comparison operand, input to untracked arithmetic)
rather than merely feeding another constant-offset computation.

Results are stashed in ``func.meta["sp0_offsets"]`` (value -> offset) and
``func.meta["stack_refs"]`` (the base-pointer subset), for the
instrumentation pass and the final replacement to consume.
"""

from __future__ import annotations

from ..ir.module import Function, Module
from ..ir.values import BinOp, Const, Instr, Phi, Value


def is_lifted_function(func: Function) -> bool:
    return bool(func.params) and func.params[0].name == "sp" \
        and func.orig_entry is not None


def compute_sp0_offsets(func: Function) -> dict[Value, int]:
    """Map every value provably equal to ``sp0 + c`` to its ``c``."""
    offsets: dict[Value, int] = {func.params[0]: 0}
    for _ in range(64):
        changed = False
        for instr in func.instructions():
            if instr in offsets:
                continue
            off = _transfer(instr, offsets)
            if off is not None:
                offsets[instr] = off
                changed = True
        if not changed:
            break
    return offsets


def _signed(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _transfer(instr: Instr, offsets: dict[Value, int]) -> int | None:
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        if instr.opcode == "add":
            if lhs in offsets and isinstance(rhs, Const):
                return offsets[lhs] + rhs.signed
            if rhs in offsets and isinstance(lhs, Const):
                return offsets[rhs] + lhs.signed
        elif instr.opcode == "sub":
            if lhs in offsets and isinstance(rhs, Const):
                return offsets[lhs] - rhs.signed
        return None
    if isinstance(instr, Phi):
        incoming = [op for op in instr.ops if op is not instr]
        if incoming and all(op in offsets for op in incoming):
            values = {offsets[op] for op in incoming}
            if len(values) == 1:
                return values.pop()
    return None


def classify_stack_refs(func: Function) -> dict[Value, int]:
    """The base-pointer subset of the offset-known values."""
    offsets = compute_sp0_offsets(func)
    feeds_only_chain: dict[Value, bool] = {v: True for v in offsets}
    for instr in func.instructions():
        chain_member = instr in offsets and isinstance(instr,
                                                       (BinOp, Phi))
        for op in instr.operands():
            if op in feeds_only_chain and not chain_member:
                feeds_only_chain[op] = False
    refs = {v: off for v, off in offsets.items()
            if not feeds_only_chain[v]}
    func.meta["sp0_offsets"] = offsets
    func.meta["stack_refs"] = refs
    return refs


def fold_module_stack_refs(module: Module) -> dict[str, dict[Value, int]]:
    out = {}
    for func in module.functions.values():
        if is_lifted_function(func):
            out[func.name] = classify_stack_refs(func)
    return out
