"""Replay-engine benches: refinement wall time with the replay
optimizations (dedup + fingerprint-skipped validation + ``jobs``
fan-out) against the pre-engine baseline sweep behaviour.

Runs as the third ``tools/bench.sh`` pass and lands in
``BENCH_replay.json``: each bench's ``extra_info`` records the baseline
and optimized refinement wall times, the speedup, the validation-skip
hit rate, and the dedup count, so a CI job can diff a run against a
saved baseline.

``REPRO_REPLAY_BASELINE=1`` restores the old behaviour (every input
replayed at every stage, every validation sweep executed); the headline
speedup is optimized ``jobs=4`` vs that baseline.  On a single-core
runner the parallel fan-out contributes nothing — the dedup and skip
wins alone must carry the ratio, which is why the workload carries
duplicated inputs (as real trace sets do: the same seed input is
typically traced under several configurations).
"""

import os
import time

import pytest

from repro import obs
from repro.cc import compile_source
from repro.core.driver import wytiwyg_recompile
from repro.emu import trace_binary

pytestmark = pytest.mark.bench

#: Exit-code workload: no printf, so the varargs refinement is a no-op
#: and its validation sweep is fingerprint-skipped.
SOURCE = r"""
int mix(int seed, int rounds) {
    int acc = seed;
    for (int i = 0; i < rounds; i++) {
        acc = acc * 31 + i;
        if (acc > 1000000) acc = acc % 1000003;
    }
    return acc;
}
int main() {
    int n = read_int();
    int seed = read_int();
    return mix(seed, n * 40) % 97;
}
"""

#: >= 4 distinct inputs, each traced twice (8 runs total).
DISTINCT = [[40, 1], [50, 2], [60, 3], [70, 4]]
INPUTS = DISTINCT + DISTINCT


@pytest.fixture(scope="module")
def workload():
    image = compile_source(SOURCE, "gcc12", "3", "replay_bench")
    traces = trace_binary(image, INPUTS)
    return image, traces


def _timed_recompile(image, traces, jobs, baseline=False):
    old = os.environ.get("REPRO_REPLAY_BASELINE")
    if baseline:
        os.environ["REPRO_REPLAY_BASELINE"] = "1"
    else:
        os.environ.pop("REPRO_REPLAY_BASELINE", None)
    try:
        start = time.perf_counter()
        result = wytiwyg_recompile(image, INPUTS, traces=traces,
                                   allow_fallback=False, jobs=jobs)
        return time.perf_counter() - start, result
    finally:
        if old is None:
            os.environ.pop("REPRO_REPLAY_BASELINE", None)
        else:
            os.environ["REPRO_REPLAY_BASELINE"] = old


def test_bench_replay_speedup(benchmark, workload):
    """Optimized refinement (jobs=4) vs the pre-engine baseline; the
    outputs must be byte-identical and the win >= 1.5x."""
    image, traces = workload

    baseline_s, baseline_result = _timed_recompile(
        image, traces, jobs=1, baseline=True)
    serial_s, serial_result = _timed_recompile(image, traces, jobs=1)

    obs.enable(reset=True)
    try:
        jobs4_s, jobs4_result = benchmark.pedantic(
            lambda: _timed_recompile(image, traces, jobs=4),
            rounds=1, iterations=1)
        counters = dict(obs.recorder().registry.counters)
    finally:
        obs.disable()

    # Functional equivalence: every configuration recompiles the same
    # binary (the replay engine's determinism contract).
    assert serial_result.recovered.to_json() == \
        baseline_result.recovered.to_json()
    assert jobs4_result.recovered.to_json() == \
        serial_result.recovered.to_json()
    assert not jobs4_result.fallback

    skipped = counters.get("replay.validations_skipped", 0)
    deduped = counters.get("replay.deduped", 0)
    assert skipped >= 1, "no-op varargs stage must skip its validation"
    assert deduped == len(INPUTS) - len(DISTINCT)

    speedup = baseline_s / jobs4_s
    benchmark.extra_info["baseline_seconds"] = baseline_s
    benchmark.extra_info["serial_seconds"] = serial_s
    benchmark.extra_info["jobs4_seconds"] = jobs4_s
    benchmark.extra_info["speedup_vs_baseline"] = speedup
    benchmark.extra_info["validations_skipped"] = skipped
    # Three refinement validation sweeps per pipeline run.
    benchmark.extra_info["validation_skip_rate"] = skipped / 3
    benchmark.extra_info["inputs_deduped"] = deduped
    benchmark.extra_info["replay_runs"] = counters.get("replay.runs", 0)
    assert speedup >= 1.5, (
        f"replay engine speedup {speedup:.2f}x < 1.5x "
        f"(baseline {baseline_s:.2f}s, jobs=4 {jobs4_s:.2f}s)")
