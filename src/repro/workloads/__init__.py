"""The SPECint-2006-like workload suite (paper §6).

Ten MiniC programs named after and shaped like the paper's benchmarks.
``WORKLOADS`` maps name -> :class:`~repro.workloads.base.Workload`; the
order matches Table 1's rows.
"""

from .base import InputItems, Workload, deterministic_bytes
from .bzip2 import WORKLOAD as _bzip2
from .gcc import WORKLOAD as _gcc
from .mcf import WORKLOAD as _mcf
from .gobmk import WORKLOAD as _gobmk
from .hmmer import WORKLOAD as _hmmer
from .sjeng import WORKLOAD as _sjeng
from .libquantum import WORKLOAD as _libquantum
from .h264ref import WORKLOAD as _h264ref
from .astar import WORKLOAD as _astar
from .xalancbmk import WORKLOAD as _xalancbmk

WORKLOADS: dict[str, Workload] = {
    w.name: w for w in (
        _bzip2, _gcc, _mcf, _gobmk, _hmmer, _sjeng,
        _libquantum, _h264ref, _astar, _xalancbmk,
    )
}

#: Table 1 row order.
WORKLOAD_ORDER = tuple(WORKLOADS)

__all__ = ["InputItems", "WORKLOADS", "WORKLOAD_ORDER", "Workload",
           "deterministic_bytes"]
