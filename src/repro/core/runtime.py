"""The WYTIWYG tracing runtime (paper §4.2.1-§4.2.5, Figure 5).

This is the library that instrumented lifted programs "link against": the
:class:`TracingRuntime` receives every ``wyt.*`` probe from the IR
interpreter and maintains

* one :class:`StackVar` per static base pointer (direct stack reference),
  recording the interval of offsets actually dereferenced through
  pointers derived from it — with bounds deferred until the first
  dereference (out-of-bounds base pointers, §4.2.4) and never updated by
  derivation alone (false derives, §4.2.3);
* per-activation :class:`PointerInfo` metadata for IR values (allocated
  per frame, because one static value points to different objects in
  recursive activations);
* an address map from memory addresses to the PointerInfo stored there;
* linked-variable pairs from pointer subtraction/comparison;
* per-call-site argument-area intervals and callee sets (§4.2.5);
* external-call constraint application (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..emu.libc import parse_format
from ..ir.interp import Frame, Interpreter
from ..ir.values import Intrinsic
from .extfuncs import EXTERNAL_DB, RET


def _signed(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


@dataclass
class StackVar:
    """Observed extent of one base pointer's object.

    ``low``/``high`` are offsets relative to the base pointer; they stay
    ``None`` until a derived pointer is dereferenced.
    """

    ref_id: int
    func_name: str
    sp0_offset: int
    low: int | None = None
    high: int | None = None
    align: int = 4

    @property
    def defined(self) -> bool:
        return self.low is not None

    def touch(self, offset: int, size: int) -> None:
        if self.low is None:
            self.low, self.high = offset, offset + size
        else:
            self.low = min(self.low, offset)
            self.high = max(self.high, offset + size)


@dataclass
class ArgAccess:
    """Observed argument-area use at one call site (paper §4.2.5)."""

    callsite_id: int
    low: int | None = None   # byte offsets relative to the first arg slot
    high: int | None = None
    callees: set[str] = field(default_factory=set)
    #: True when the area was traversed via derived pointers or accessed
    #: at sub-word granularity -- it must then stay one contiguous
    #: object (indirect varargs access, paper §4.2.6).
    walked: bool = False

    def touch(self, offset: int, size: int) -> None:
        if size != 4 or offset % 4:
            self.walked = True
        if self.low is None:
            self.low, self.high = offset, offset + size
        else:
            self.low = min(self.low, offset)
            self.high = max(self.high, offset + size)


@dataclass(frozen=True)
class PointerInfo:
    """A value's association with a stack variable (or arg area)."""

    var: object          # StackVar | ArgAccess
    offset: int          # relative to the var's base pointer


@dataclass
class _FrameRec:
    func_name: str
    sp0: int
    callsite_id: int | None
    infos: dict[int, PointerInfo | None] = field(default_factory=dict)


class TracingRuntime:
    """State shared across all traced executions of one module."""

    def __init__(self) -> None:
        self.stack_vars: dict[int, StackVar] = {}
        self.arg_accesses: dict[int, ArgAccess] = {}
        self.links: set[frozenset[int]] = set()
        self._frames: dict[int, _FrameRec] = {}
        self._addr_map: dict[int, PointerInfo] = {}
        self._pending_args: list[tuple[int, list]] = []
        self._pending_rets: list[list] = []
        self._copy_stage: list = []
        self._interp: Interpreter | None = None

    def snapshot(self) -> dict:
        """The cross-run analysis state, in a pickle-friendly shape.

        Per-execution state (frames, the address map, staged call
        arguments, the bound interpreter) is excluded: it is reset by
        :meth:`bind` and never read across runs, and the interpreter
        reference would drag the whole execution context over a process
        boundary.
        """
        return {
            "stack_vars": self.stack_vars,
            "arg_accesses": self.arg_accesses,
            "links": self.links,
        }

    def merge(self, other: "TracingRuntime | dict") -> "TracingRuntime":
        """Fold another runtime's cross-run observations into this one.

        Merging is commutative and associative on every field — bounds
        combine via min/max, alignment via max, and walked/callees/links
        via or/union — so any merge order yields the same analysis
        facts.  Merging per-input runtimes in traced-input order
        additionally reproduces the exact variable discovery
        (dict-insertion) order of a single runtime shared across the
        same runs, which keeps downstream layout and signature
        construction byte-stable between serial and parallel replay.
        """
        src = other.snapshot() if isinstance(other, TracingRuntime) \
            else other
        for ref_id, var in src["stack_vars"].items():
            mine = self.stack_vars.get(ref_id)
            if mine is None:
                self.stack_vars[ref_id] = var
                continue
            if var.low is not None:
                if mine.low is None:
                    mine.low, mine.high = var.low, var.high
                else:
                    mine.low = min(mine.low, var.low)
                    mine.high = max(mine.high, var.high)
            mine.align = max(mine.align, var.align)
        for callsite_id, access in src["arg_accesses"].items():
            mine = self.arg_accesses.get(callsite_id)
            if mine is None:
                self.arg_accesses[callsite_id] = access
                continue
            if access.low is not None:
                if mine.low is None:
                    mine.low, mine.high = access.low, access.high
                else:
                    mine.low = min(mine.low, access.low)
                    mine.high = max(mine.high, access.high)
            mine.walked |= access.walked
            mine.callees |= access.callees
        self.links |= src["links"]
        return self

    def bind(self, interp: Interpreter) -> None:
        """Attach to one interpreter run (memory access for constraints;
        the address map is per-execution)."""
        self._interp = interp
        self._frames.clear()
        self._addr_map.clear()
        self._pending_args.clear()
        self._pending_rets.clear()

    # -- probe dispatch -------------------------------------------------------

    def handle(self, frame: Frame, instr: Intrinsic,
               args: list[int]) -> None:
        handler = getattr(self, "_op_" + instr.intrinsic[4:])
        handler(frame, instr.meta, args)

    def _rec(self, frame: Frame) -> _FrameRec:
        rec = self._frames.get(frame.frame_id)
        if rec is None:  # frame entered without fnenter (entry wrapper)
            rec = _FrameRec(frame.function.name, 0, None)
            self._frames[frame.frame_id] = rec
        return rec

    # -- frames and calls ------------------------------------------------------

    def _op_fnenter(self, frame: Frame, meta: dict,
                    args: list[int]) -> None:
        sp0 = args[0] if args else 0
        callsite_id = None
        infos: dict[int, PointerInfo | None] = {}
        if self._pending_args:
            callsite_id, staged = self._pending_args.pop()
            for vid, info in zip(meta["param_vids"], staged,
                                 strict=False):
                infos[vid] = info
            access = self.arg_accesses.get(callsite_id)
            if access is not None:
                access.callees.add(frame.function.name)
        self._frames[frame.frame_id] = _FrameRec(
            frame.function.name, sp0, callsite_id, infos)

    def _op_fnexit(self, frame: Frame, meta: dict,
                   args: list[int]) -> None:
        rec = self._rec(frame)
        staged = [rec.infos.get(vid) for vid in meta["ret_vids"]]
        self._pending_rets.append(staged)
        self._frames.pop(frame.frame_id, None)

    def _op_callargs(self, frame: Frame, meta: dict,
                     args: list[int]) -> None:
        rec = self._rec(frame)
        callsite_id = meta["callsite_id"]
        staged = [rec.infos.get(vid) for vid in meta["arg_vids"]]
        self._pending_args.append((callsite_id, staged))
        self.arg_accesses.setdefault(callsite_id,
                                     ArgAccess(callsite_id))

    def _op_callres(self, frame: Frame, meta: dict,
                    args: list[int]) -> None:
        rec = self._rec(frame)
        staged = self._pending_rets.pop() if self._pending_rets else []
        for vid, info in zip(meta["result_vids"], staged, strict=False):
            rec.infos[vid] = info

    # -- pointer tracking -------------------------------------------------------

    def _op_stackref(self, frame: Frame, meta: dict,
                     args: list[int]) -> None:
        rec = self._rec(frame)
        offset = meta["offset"]
        if 0 <= offset < 4 and meta.get("is_sp0"):
            rec.infos[meta["vid"]] = None
            return
        if offset >= 4:
            # Access above sp0: the caller's argument area; recorded per
            # call site (paper §4.2.5).
            if rec.callsite_id is None:
                rec.infos[meta["vid"]] = None
                return
            access = self.arg_accesses.setdefault(
                rec.callsite_id, ArgAccess(rec.callsite_id))
            rec.infos[meta["vid"]] = PointerInfo(access, offset - 4)
            return
        var = self.stack_vars.get(meta["ref_id"])
        if var is None:
            var = StackVar(meta["ref_id"], frame.function.name, offset)
            self.stack_vars[meta["ref_id"]] = var
        rec.infos[meta["vid"]] = PointerInfo(var, 0)

    def _op_derive(self, frame: Frame, meta: dict,
                   args: list[int]) -> None:
        rec = self._rec(frame)
        base = rec.infos.get(meta["base_vid"])
        if base is None:
            rec.infos[meta["result_vid"]] = None
            return
        op = meta["op"]
        const = meta["const"]
        if isinstance(base.var, ArgAccess):
            base.var.walked = True
        if op == "add":
            info = PointerInfo(base.var, base.offset + _signed(const))
        elif op == "sub":
            info = PointerInfo(base.var, base.offset - _signed(const))
        elif op == "or":
            # Low-bit merge (sub-register writes): the result *appears*
            # derived (paper §4.2.3); bounds stay deferred until a real
            # dereference, so a false derive is harmless.
            info = base
        else:  # and: alignment operation (offset approximated unchanged)
            if isinstance(base.var, StackVar):
                mask = (~const) & 0xFFFFFFFF
                base.var.align = max(base.var.align,
                                     min(mask + 1, 4096))
            info = base
        rec.infos[meta["result_vid"]] = info

    def _op_derive2(self, frame: Frame, meta: dict,
                    args: list[int]) -> None:
        rec = self._rec(frame)
        lhs = rec.infos.get(meta["lhs_vid"])
        rhs = rec.infos.get(meta["rhs_vid"])
        lhs_val, rhs_val = args[1], args[2]
        op = meta["op"]
        for side in (lhs, rhs):
            if side is not None and isinstance(side.var, ArgAccess):
                side.var.walked = True
        result: PointerInfo | None = None
        if op == "add":
            if lhs is not None and rhs is None:
                result = PointerInfo(lhs.var, lhs.offset +
                                     _signed(rhs_val))
            elif rhs is not None and lhs is None:
                result = PointerInfo(rhs.var, rhs.offset +
                                     _signed(lhs_val))
        elif op == "sub":
            if lhs is not None and rhs is not None:
                self._link(lhs.var, rhs.var)
            elif lhs is not None:
                result = PointerInfo(lhs.var, lhs.offset -
                                     _signed(rhs_val))
        elif op in ("or", "and"):
            # False-derive shape: keep the (possibly stale) association,
            # offset unchanged; only a dereference will confirm it.
            if lhs is not None and rhs is None:
                result = lhs
            elif rhs is not None and lhs is None:
                result = rhs
        rec.infos[meta["result_vid"]] = result

    def _op_link(self, frame: Frame, meta: dict,
                 args: list[int]) -> None:
        rec = self._rec(frame)
        lhs = rec.infos.get(meta["lhs_vid"])
        rhs = rec.infos.get(meta["rhs_vid"])
        if lhs is not None and rhs is not None:
            self._link(lhs.var, rhs.var)

    def _link(self, a: object, b: object) -> None:
        if a is b:
            return
        if isinstance(a, StackVar) and isinstance(b, StackVar):
            self.links.add(frozenset((a.ref_id, b.ref_id)))

    def _op_copy(self, frame: Frame, meta: dict,
                 args: list[int]) -> None:
        rec = self._rec(frame)
        group = meta.get("group_size")
        if group is None:
            rec.infos[meta["dst_vid"]] = rec.infos.get(meta["src_vid"])
            return
        # Parallel phi-edge copies: read all sources before any write
        # (swap patterns would otherwise observe half-updated state).
        if meta["group_index"] == 0:
            self._copy_stage = []
        self._copy_stage.append((meta["dst_vid"],
                                 rec.infos.get(meta["src_vid"])))
        if meta["group_index"] == group - 1:
            for dst, info in self._copy_stage:
                rec.infos[dst] = info
            self._copy_stage = []

    def _op_load(self, frame: Frame, meta: dict,
                 args: list[int]) -> None:
        rec = self._rec(frame)
        addr_value = args[0]
        info = rec.infos.get(meta["addr_vid"])
        if info is not None:
            info.var.touch(info.offset, meta["size"])
        if meta["size"] == 4:
            rec.infos[meta["result_vid"]] = self._addr_map.get(addr_value)
        else:
            rec.infos[meta["result_vid"]] = None

    def _op_store(self, frame: Frame, meta: dict,
                  args: list[int]) -> None:
        rec = self._rec(frame)
        addr_value, value = args[0], args[1]
        info = rec.infos.get(meta["addr_vid"])
        if info is not None:
            info.var.touch(info.offset, meta["size"])
        value_info = rec.infos.get(meta["value_vid"]) \
            if meta["size"] == 4 else None
        if value_info is not None:
            self._addr_map[addr_value] = value_info
        else:
            self._addr_map.pop(addr_value, None)

    # -- external calls (constraint application, §5.3) ---------------------------

    def _op_extcall(self, frame: Frame, meta: dict,
                    args: list[int]) -> None:
        rec = self._rec(frame)
        name = meta["name"]
        sig = EXTERNAL_DB.get(name)
        if sig is None:
            return
        arg_vids = meta["arg_vids"]
        arg_values = args[:len(arg_vids)]
        result_value = args[len(arg_vids)] if len(args) > len(arg_vids) \
            else 0

        def arg_info(index: int) -> PointerInfo | None:
            if index == RET:
                return None
            if index < len(arg_vids):
                return rec.infos.get(arg_vids[index])
            return None

        def arg_value(index: int) -> int:
            if index == RET:
                return result_value
            return arg_values[index] if index < len(arg_values) else 0

        for c in sig.constraints:
            if c.kind == "ObjectSize":
                info = arg_info(c.args[0])
                nbytes = arg_value(c.args[1])
                if len(c.args) > 2:
                    nbytes *= arg_value(c.args[2])
                if info is not None and nbytes:
                    info.var.touch(info.offset, nbytes)
            elif c.kind == "ZeroTerminated":
                self._zero_terminated(arg_info(c.args[0]),
                                      arg_value(c.args[0]))
            elif c.kind == "Derive":
                dst_i, src_i = c.args
                src = arg_info(src_i)
                if src is not None and dst_i == RET:
                    delta = _signed(result_value - arg_value(src_i))
                    rec.infos[meta["result_vid"]] = PointerInfo(
                        src.var, src.offset + delta)
            elif c.kind == "Clear":
                ptr = arg_value(c.args[0])
                if len(c.args) > 1:
                    size = arg_value(c.args[1])
                else:
                    size = self._cstring_len(ptr) + 1
                for addr in range(ptr, ptr + size):
                    self._addr_map.pop(addr, None)
            elif c.kind == "Copy":
                dst, src = arg_value(c.args[0]), arg_value(c.args[1])
                size = arg_value(c.args[2]) if len(c.args) > 2 else 0
                for k in range(0, size, 4):
                    info = self._addr_map.get(src + k)
                    if info is not None:
                        self._addr_map[dst + k] = info
                    else:
                        self._addr_map.pop(dst + k, None)
            elif c.kind == "FormatStr":
                self._format_str(rec, sig, c.args[0], arg_vids,
                                 arg_values)

    def _zero_terminated(self, info: PointerInfo | None,
                         ptr: int) -> None:
        if info is None:
            return
        info.var.touch(info.offset, self._cstring_len(ptr) + 1)

    def _cstring_len(self, ptr: int) -> int:
        if self._interp is None or ptr == 0:
            return 0
        return len(self._interp.mem.read_cstring(ptr))

    def _format_str(self, rec: _FrameRec, sig, fmt_index: int,
                    arg_vids: list[int], arg_values: list[int]) -> None:
        if self._interp is None:
            return
        fmt = self._interp.mem.read_cstring(arg_values[fmt_index])
        kinds = parse_format(fmt)
        for i, kind in enumerate(kinds):
            arg_i = sig.nargs + i
            if kind == "str" and arg_i < len(arg_values):
                self._zero_terminated(
                    rec.infos.get(arg_vids[arg_i])
                    if arg_i < len(arg_vids) else None,
                    arg_values[arg_i])
