#!/bin/sh
# Run the wall-time benchmark suite and emit a machine-readable report.
#
# Usage:
#   tools/bench.sh                 # engine benches -> BENCH_engine.json
#   tools/bench.sh benchmarks      # every bench (pipeline + eval + engine)
#   REPRO_FULL_EVAL=1 tools/bench.sh benchmarks   # full ten-workload sweep
#
# The JSON includes each bench's extra_info (speedup ratios of the
# cached-block machine and compiled IR interpreter over their per-step
# reference paths), so a CI job can diff it against a saved baseline.
#
# The observability benches (marker ``obs``) run as a second pass and
# emit BENCH_obs.json: per-stage pipeline timings, cache hit rates, and
# the disabled-path overhead ratio of the instrumented engine.
#
# The replay benches run as a third pass and emit BENCH_replay.json:
# refinement wall time of the optimized replay engine (dedup +
# fingerprint-skipped validation + jobs=4 fan-out) against the
# pre-engine baseline sweep, plus the validation-skip hit rate.
#
# The optimizer benches run as a fourth pass and emit BENCH_opt.json:
# fixpoint wall time of the incremental worklist pass manager against
# the legacy fixed schedule (REPRO_PASS_BASELINE=1) on a
# duplicated-stage workload, plus skip/requeue rates.
#
# The backend benches run as a fifth pass and emit BENCH_lower.json:
# cold vs warm compile_ir through the fingerprint-keyed lowering cache
# (warm hit rate, functions re-lowered after a one-function edit) and
# the parallel per-function optimizer (jobs=4) against the legacy
# schedule.
#
# The service benches run as a sixth pass and emit BENCH_serve.json:
# a replayed campaign against the warm artifact store vs N cold
# one-shot recompiles, and an incremental one-input addition vs the
# cold one-shot over the full input set (trace/function reuse rates,
# byte-identity enforced in the tests themselves).
#
# The scheduler benches run as a seventh pass and emit
# BENCH_sched.json: K=4 concurrent distinct-image campaigns on the
# multi-worker daemon vs the single-lock daemon (speedup floor scales
# with the core count; byte identity and affinity hit rate asserted in
# the test itself).
#
# The static-analysis benches run as an eighth pass and emit
# BENCH_sanalysis.json: cold vs warm interprocedural summary sweeps
# through the version-keyed cache, and the recompute count after a
# one-function edit (exactly one; reuse rate asserted in the test).
set -eu
cd "$(dirname "$0")/.."

TARGET="${1:-benchmarks/test_engine.py benchmarks/test_pipeline_costs.py}"
OUT="${BENCH_JSON:-BENCH_engine.json}"
OBS_OUT="${BENCH_OBS_JSON:-BENCH_obs.json}"
REPLAY_OUT="${BENCH_REPLAY_JSON:-BENCH_replay.json}"
OPT_OUT="${BENCH_OPT_JSON:-BENCH_opt.json}"
LOWER_OUT="${BENCH_LOWER_JSON:-BENCH_lower.json}"
SERVE_OUT="${BENCH_SERVE_JSON:-BENCH_serve.json}"
SCHED_OUT="${BENCH_SCHED_JSON:-BENCH_sched.json}"
SANALYSIS_OUT="${BENCH_SANALYSIS_JSON:-BENCH_sanalysis.json}"

# shellcheck disable=SC2086  # TARGET is intentionally word-split
PYTHONPATH=src python -m pytest $TARGET \
    --benchmark-only \
    --benchmark-json "$OUT" \
    -p no:cacheprovider

echo "benchmark report written to $OUT"

PYTHONPATH=src python -m pytest benchmarks/test_obs.py \
    -m obs \
    --benchmark-json "$OBS_OUT" \
    -p no:cacheprovider

echo "observability benchmark report written to $OBS_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_replay.py \
    --benchmark-only \
    --benchmark-json "$REPLAY_OUT" \
    -p no:cacheprovider

echo "replay benchmark report written to $REPLAY_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_opt.py \
    --benchmark-only \
    --benchmark-json "$OPT_OUT" \
    -p no:cacheprovider

echo "optimizer benchmark report written to $OPT_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_lower.py \
    --benchmark-only \
    --benchmark-json "$LOWER_OUT" \
    -p no:cacheprovider

echo "backend benchmark report written to $LOWER_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_serve.py \
    --benchmark-only \
    --benchmark-json "$SERVE_OUT" \
    -p no:cacheprovider

echo "service benchmark report written to $SERVE_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_sched.py \
    --benchmark-only \
    --benchmark-json "$SCHED_OUT" \
    -p no:cacheprovider

echo "scheduler benchmark report written to $SCHED_OUT"

PYTHONPATH=src python -m pytest benchmarks/test_sanalysis.py \
    --benchmark-only \
    --benchmark-json "$SANALYSIS_OUT" \
    -p no:cacheprovider

echo "static-analysis benchmark report written to $SANALYSIS_OUT"
