"""Cross-request incremental recompilation over the artifact store.

The paper's workflow — trace, lift, discover a coverage gap, add an
input, "incrementally reanalyze" — repeats almost all of its work on
every iteration when served by one-shot ``wytiwyg_recompile`` calls.
This module is the store-backed counterpart used by the serve daemon
(:mod:`repro.serve`) and ``repro recompile --store``: every expensive
artifact lands in a content-addressed
:class:`~repro.store.ArtifactStore`, and a repeated request pays only
for what actually changed.

Three layers of reuse, cheapest first:

1. **Result hit** — the final recompiled image is keyed on
   ``(image content, ordered input runs, options)``; an identical
   resubmission is served straight from the store, byte-identical to
   the original run.
2. **Per-input trace reuse** — traces are recorded *per input run*
   (``trace`` kind) and merged with
   :meth:`~repro.emu.tracer.TraceSet.absorb` in request order, which
   reconstructs exactly the TraceSet :func:`~repro.emu.tracer.
   trace_binary` would produce.  Adding one input to a known image
   re-executes only that input; everything else is a ``store.hit``.
3. **Per-function refinement reuse** — the lifted module is optimized
   under the incremental pass manager (:mod:`repro.opt.manager`) and
   lowered through the fingerprint-keyed cache
   (:mod:`repro.recompile.lower`).  In a long-lived server process
   those memos stay warm across requests, so after an input addition
   only the functions whose
   :func:`~repro.replay.fingerprint.function_fingerprint` moved are
   re-refined (``opt.manager.skipped`` / ``opt.manager.memo_hits``
   count the rest).

Byte-identity invariant: for any request, the recovered image equals
the one a cold ``wytiwyg_recompile(image, inputs)`` produces — the
store only ever short-circuits recomputation of content-pinned
artifacts (tests/integration/test_incremental.py and
benchmarks/test_serve.py assert this differentially).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..binary.image import BinaryImage
from ..emu.tracer import TraceSet, trace_binary
from ..store import (
    ArtifactStore,
    image_key,
    options_tag,
    result_key,
    trace_key,
)
from .driver import WytiwygResult, wytiwyg_recompile

__all__ = ["JobStats", "ServedResult", "gather_traces",
           "incremental_recompile", "pipeline_options_tag",
           "warm_stats"]


def warm_stats() -> dict:
    """Snapshot of this process's warm incremental state: the
    optimizer's cross-stage fingerprint memo and the lowering cache.
    In the single-process daemon these belong to the daemon itself; in
    scheduler mode (:mod:`repro.sched`) each worker process reports its
    own via the job-result payload, because the warm state lives
    per-worker, not in the parent."""
    from ..opt.manager import memo_stats
    from ..recompile.lower import lower_cache_stats
    return {"opt": memo_stats(), "lower": lower_cache_stats()}


@dataclass
class JobStats:
    """What one request cost, and what it reused."""

    #: ``"store"`` (result hit), ``"incremental"`` (some traces
    #: reused), or ``"cold"`` (nothing reusable yet).
    served: str = "cold"
    traces_reused: int = 0
    traces_recorded: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_puts: int = 0

    def to_dict(self) -> dict:
        return {"served": self.served,
                "traces_reused": self.traces_reused,
                "traces_recorded": self.traces_recorded,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "store_puts": self.store_puts}


@dataclass
class ServedResult:
    """A recompilation answer, whether computed or served from store."""

    recovered: BinaryImage
    layouts: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    fallback: bool = False
    accuracy: object | None = None
    stats: JobStats = field(default_factory=JobStats)
    image_key: str = ""
    result_key: str = ""
    #: The full pipeline result when this request actually ran the
    #: pipeline (None on a store hit).
    pipeline: WytiwygResult | None = None
    #: Coverage summary of the merged traces (campaign accounting).
    coverage: dict = field(default_factory=dict)


def pipeline_options_tag(optimize: bool = True,
                         check: bool | str | None = None,
                         static_widen: bool | None = None,
                         hybrid: bool = False) -> str:
    """The options part of a result key.

    Only options that change the *artifact* participate; execution
    knobs (``jobs``, ``opt_jobs``) are byte-identity-neutral by the
    PR 3/6 contracts and deliberately excluded, so a parallel server
    and a serial one share entries.
    """
    return options_tag(optimize=optimize, check=check,
                       static_widen=static_widen, hybrid=hybrid)


def gather_traces(image: BinaryImage, runs: list[list],
                  store: ArtifactStore, img_key: str,
                  stats: JobStats) -> TraceSet:
    """Assemble the merged TraceSet for ``runs``, tracing only the
    input runs the store has never seen for this image."""
    traces = TraceSet(image)
    for items in runs:
        tkey = trace_key(img_key, items)
        record = store.get("trace", tkey)
        if record is None:
            with obs.timed("serve.trace_seconds"):
                single = trace_binary(image, [list(items)])
            record = {"transfers": single.transfers,
                      "executed": single.executed,
                      "result": single.results[0],
                      "input": list(items)}
            store.put("trace", tkey, record)
            stats.traces_recorded += 1
        else:
            stats.traces_reused += 1
        traces.absorb(record["transfers"], record["executed"],
                      record["result"], record["input"])
    return traces


def _coverage_summary(traces: TraceSet) -> dict:
    return {"inputs": len(traces.inputs),
            "executed": len(traces.executed),
            "transfers": len(traces.transfers)}


def incremental_recompile(image: BinaryImage,
                          runs: list[list],
                          store: ArtifactStore,
                          optimize: bool = True,
                          check: bool | str | None = None,
                          static_widen: bool | None = None,
                          hybrid: bool = False,
                          jobs: int = 1,
                          opt_jobs: int | None = None,
                          replay_pool=None,
                          collect_accuracy: bool = True) -> ServedResult:
    """Store-backed ``wytiwyg_recompile``: same answer, amortized cost.

    Checks the result store first; otherwise reassembles traces from
    per-input records (tracing only new inputs), runs the pipeline, and
    persists both the new traces and the final result.
    """
    img_key = image_key(image)
    opts = pipeline_options_tag(optimize=optimize, check=check,
                                static_widen=static_widen,
                                hybrid=hybrid)
    rkey = result_key(img_key, runs, opts)
    stats = JobStats()
    before = dict(store.stats)

    def _fill(served: str) -> JobStats:
        stats.served = served
        stats.store_hits = store.stats["hit"] - before["hit"]
        stats.store_misses = (store.stats["miss"] - before["miss"]
                              + store.stats["corrupt"]
                              - before["corrupt"])
        stats.store_puts = store.stats["put"] - before["put"]
        return stats

    cached = store.get("result", rkey)
    if cached is not None:
        obs.count("serve.result_hits")
        return ServedResult(
            recovered=BinaryImage.from_json(cached["image_json"]),
            layouts=cached.get("layouts", {}),
            notes=list(cached.get("notes", [])),
            fallback=bool(cached.get("fallback", False)),
            accuracy=cached.get("accuracy"),
            stats=_fill("store"), image_key=img_key, result_key=rkey,
            coverage=dict(cached.get("coverage", {})))

    traces = gather_traces(image, runs, store, img_key, stats)
    result = wytiwyg_recompile(
        image, [list(items) for items in runs],
        optimize=optimize, collect_accuracy=collect_accuracy,
        hybrid=hybrid, traces=traces, jobs=jobs, check=check,
        static_widen=static_widen, opt_jobs=opt_jobs,
        replay_pool=replay_pool)
    coverage = _coverage_summary(traces)
    store.put("result", rkey, {
        "image_json": result.recovered.to_json(),
        "layouts": result.layouts,
        "notes": list(result.notes),
        "fallback": result.fallback,
        "accuracy": result.accuracy,
        "coverage": coverage,
    })
    served = "incremental" if stats.traces_reused else "cold"
    return ServedResult(
        recovered=result.recovered, layouts=result.layouts,
        notes=list(result.notes), fallback=result.fallback,
        accuracy=result.accuracy, stats=_fill(served),
        image_key=img_key, result_key=rkey, pipeline=result,
        coverage=coverage)
