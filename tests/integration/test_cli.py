"""The ``python -m repro`` command-line interface."""


import pytest

from repro.__main__ import main

SOURCE = r"""
int main() {
    int n = read_int();
    printf("double=%d\n", n * 2);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return path


def test_compile_run_roundtrip(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    assert main(["compile", str(source_file), "-o", str(image)]) == 0
    assert main(["run", str(image), "--input", "int:21"]) == 0
    out = capsys.readouterr().out
    assert "double=42" in out
    assert "[exit 0" in out


def test_recompile_wytiwyg(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    assert main(["recompile", str(image), "-o", str(recovered),
                 "--input", "int:5"]) == 0
    assert main(["run", str(recovered), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "double=10" in out


def test_recompile_binrec(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["recompile", str(image), "-o", str(recovered),
          "--pipeline", "binrec", "--input", "int:5"])
    main(["run", str(recovered), "--input", "int:5"])
    assert "double=10" in capsys.readouterr().out


def test_layout_command(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image),
          "--compiler", "gcc44"])
    assert main(["layout", str(image), "--input", "int:5"]) == 0
    out = capsys.readouterr().out
    assert "fn_" in out and "bytes" in out


def test_multiple_input_runs(source_file, tmp_path, capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    main(["run", str(image), "--input", "int:1", "/", "int:2"])
    out = capsys.readouterr().out
    assert "double=2" in out and "double=4" in out


def test_bad_input_spec_rejected(source_file, tmp_path):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    with pytest.raises(SystemExit):
        main(["run", str(image), "--input", "float:1"])


UNDERTRACE = r"""
int main() {
    int buf[16];
    int i;
    int n;
    n = read_int();
    for (i = 0; i < n; i++) buf[i] = i * 7;
    int s = 0;
    for (i = 0; i < n; i++) s += buf[i];
    printf("s=%d\n", s);
    return 0;
}
"""


@pytest.fixture
def undertrace_file(tmp_path):
    path = tmp_path / "under.c"
    path.write_text(UNDERTRACE)
    return path


def test_check_command_reports_coverage_gap(undertrace_file, tmp_path,
                                            capsys):
    image = tmp_path / "under.img.json"
    report_json = tmp_path / "check.json"
    main(["compile", str(undertrace_file), "-o", str(image)])
    # Warnings alone exit 0 by default, 1 under --strict.
    assert main(["check", str(image), "--input", "int:3",
                 "--json", str(report_json)]) == 0
    out = capsys.readouterr().out
    assert "coverage-gap" in out
    assert "warning" in out
    import json as _json
    doc = _json.loads(report_json.read_text())
    assert doc["counts"]["warning"] >= 1
    assert main(["check", str(image), "--input", "int:3",
                 "--strict"]) == 1


def test_check_command_clean_program_exits_zero(source_file, tmp_path,
                                                capsys):
    image = tmp_path / "prog.img.json"
    main(["compile", str(source_file), "-o", str(image)])
    assert main(["check", str(image), "--input", "int:5",
                 "--strict"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_recompile_check_strict_aborts(undertrace_file, tmp_path,
                                       capsys):
    image = tmp_path / "under.img.json"
    recovered = tmp_path / "rec.img.json"
    main(["compile", str(undertrace_file), "-o", str(image)])
    assert main(["recompile", str(image), "-o", str(recovered),
                 "--input", "int:3", "--check", "strict"]) == 1
    err = capsys.readouterr().err
    assert "static check gate" in err
    assert not recovered.exists()


def test_explain_command_chains_widening(undertrace_file, tmp_path,
                                         capsys):
    """The provenance query names the coverage-gap finding and the
    widening event behind the grown variable."""
    image = tmp_path / "under.img.json"
    main(["compile", str(undertrace_file), "-o", str(image)])
    assert main(["explain", str(image), "--input", "int:3",
                 "--widen"]) == 0
    out = capsys.readouterr().out
    assert "coverage-gap" in out
    assert "widened to cover" in out
    assert "seeded by traced ref" in out
    # An unknown --var spec reports the recovered names and exits 1.
    assert main(["explain", str(image), "--input", "int:3",
                 "--var", "fn_0:sv_m4"]) == 1
    assert "matches no recovered variable" in capsys.readouterr().err


def test_ledger_flag_writes_jsonl(source_file, tmp_path):
    import json as _json
    image = tmp_path / "prog.img.json"
    ledger = tmp_path / "events.jsonl"
    main(["compile", str(source_file), "-o", str(image)])
    from repro import obs
    try:
        assert main(["--ledger", str(ledger), "recompile", str(image),
                     "-o", str(tmp_path / "rec.img.json"),
                     "--input", "int:5"]) == 0
    finally:
        obs.disable_ledger()
    docs = obs.read_events(ledger)
    kinds = {d["kind"] for d in docs}
    assert {"run.start", "run.finish", "frame.var.seed",
            "validate.verdict"} <= kinds
    for d in docs:
        _json.dumps(d)  # every line round-trips


def test_obs_diff_command(tmp_path, capsys):
    import json as _json
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    base = {"version": 2, "spans": [],
            "metrics": {"counters": {"lower.cache.misses": 2},
                        "gauges": {}, "histograms": {}, "timers": {},
                        "profiles": {}}}
    other = {"version": 2, "spans": [],
             "metrics": {"counters": {}, "gauges": {},
                         "histograms": {}, "timers": {},
                         "profiles": {}}}
    a.write_text(_json.dumps(base))
    b.write_text(_json.dumps(other))
    assert main(["obs", "diff", str(a), str(b)]) == 0
    assert "lower.cache.misses" in capsys.readouterr().out
    assert main(["obs", "diff", str(a), str(b), "--json"]) == 0
    doc = _json.loads(capsys.readouterr().out)
    assert doc["counters"]["removed"] == {"lower.cache.misses": 2}


def _bench_json(path, mean):
    import json as _json
    path.write_text(_json.dumps({"benchmarks": [
        {"name": "bench_a", "stats": {"mean": mean, "median": mean},
         "extra_info": {}}]}))
    return str(path)


def test_obs_regress_command_gates(tmp_path, capsys):
    base = _bench_json(tmp_path / "base.json", 1.0)
    ok = _bench_json(tmp_path / "ok.json", 1.2)
    slow = _bench_json(tmp_path / "slow.json", 2.0)
    assert main(["obs", "regress", "--baseline", base,
                 "--fresh", ok]) == 0
    assert "PASS" in capsys.readouterr().out
    assert main(["obs", "regress", "--baseline", base,
                 "--fresh", slow, "--tolerance", "1.5"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "FAIL" in out
